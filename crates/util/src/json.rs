//! Minimal JSON value, pretty printer, and parser.
//!
//! Replaces `serde_json` for result files and replayable artifacts: a
//! small value enum with ordered object keys is all the workspace
//! needs. The writer keeps insertion order so result files diff cleanly
//! run-to-run; the parser exists so artifacts the harness *emits* (knob
//! configurations from the DSE engine, tuning reports) can be read back
//! and replayed.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so result files diff
/// cleanly run-to-run.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Empty object, to be filled with [`Json::set`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert (or replace) a key in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Field of an object, if this is an object and the key is present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Non-negative integer payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric payload (int or float), widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Strict: exactly one value, no trailing
    /// garbage, no comments, no trailing commas.
    ///
    /// # Errors
    ///
    /// A one-line message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a decimal point or exponent so the value
                    // reads back as a float.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the raw bytes; positions in error
/// messages are byte offsets.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected character {:?} at byte {}", b as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for our artifacts;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar, not one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        if let Ok(i) = i64::try_from(v) {
            Json::Int(i)
        } else {
            Json::Float(v as f64)
        }
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::object()
            .set("name", "fig9a")
            .set("ok", true)
            .set(
                "rows",
                Json::Array(vec![
                    Json::object().set("par", 4).set("cycles", 123u64),
                    Json::object().set("par", 8).set("speedup", 1.5),
                ]),
            )
            .set("empty", Json::Array(vec![]))
            .set("missing", Json::Null);
        let s = doc.pretty();
        assert!(s.contains("\"name\": \"fig9a\""));
        assert!(s.contains("\"cycles\": 123"));
        assert!(s.contains("\"speedup\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".to_string()).pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn set_replaces_existing_key() {
        let doc = Json::object().set("k", 1).set("k", 2);
        assert_eq!(doc, Json::object().set("k", 2));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).pretty(), "2.0\n");
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let doc = Json::object()
            .set("workload", "gemm")
            .set("pars", Json::Array(vec![Json::Int(4), Json::Int(16)]))
            .set("flags", Json::object().set("retime", true).set("msr", false))
            .set("alpha", 1.25)
            .set("note", "quote\" slash\\ tab\t")
            .set("nothing", Json::Null);
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accepts_compact_form() {
        let v = Json::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x"},"d":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(Json::parse(r#""xAy\t""#).unwrap().as_str(), Some("xAy\t"));
        assert_eq!(Json::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_large_ints_stay_exact() {
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v.as_i64(), Some(9007199254740993));
        assert_eq!(Json::parse("-42").unwrap().as_i64(), Some(-42));
    }
}
