//! Parallel point-evaluation pool.
//!
//! Callers (the bench binaries, the DSE search engine) evaluate a list
//! of *independent* design points (workload × parallelization × chip),
//! each a full compile → PnR → simulate run. [`run_points`] fans those
//! points out across a scoped-thread work pool (std only:
//! `std::thread::scope` + channels) and returns results **in input
//! order**, so tables and speedup baselines ("first point in the
//! series") are unaffected by scheduling.
//!
//! Guarantees:
//!
//! * **Deterministic ordering** — `results[i]` corresponds to `points[i]`.
//! * **Panic isolation** — a panicking point becomes an `Err` for that
//!   point only; the rest of the sweep completes.
//! * **Thread-count control** — `SARA_BENCH_THREADS=N` overrides the
//!   default of `std::thread::available_parallelism()`, clamped to
//!   `[1, points.len()]`. `SARA_BENCH_THREADS=1` reproduces the exact
//!   sequential behaviour (useful when a binary also measures wall-clock
//!   per point, e.g. `fig11`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "SARA_BENCH_THREADS";

/// Parse a `SARA_BENCH_THREADS` value into a positive worker count.
///
/// # Errors
///
/// A one-line diagnostic when the value is not a positive integer.
pub fn parse_threads(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{THREADS_ENV}={v:?} is not a positive integer")),
    }
}

/// Worker count for a sweep over `n_points` points: the `SARA_BENCH_THREADS`
/// override if set, else available parallelism, clamped to `[1, n_points]`
/// (and to 1 when `n_points` is 0). An unparsable override is a usage
/// error: one-line diagnostic on stderr and exit code 2, never a silent
/// fallback to a different thread count.
pub fn threads_for(n_points: usize) -> usize {
    let requested = match std::env::var(THREADS_ENV) {
        Ok(v) => parse_threads(&v).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    requested.clamp(1, n_points.max(1))
}

/// Evaluate `f` over every point concurrently, returning results in input
/// order. A panic inside `f` is caught and surfaced as that point's `Err`.
pub fn run_points<P, T, F>(points: &[P], f: F) -> Vec<Result<T, String>>
where
    P: Sync,
    T: Send,
    F: Fn(&P) -> Result<T, String> + Sync,
{
    run_points_on(threads_for(points.len()), points, f)
}

/// [`run_points`] with an explicit worker count (still clamped to
/// `[1, points.len()]`).
pub fn run_points_on<P, T, F>(threads: usize, points: &[P], f: F) -> Vec<Result<T, String>>
where
    P: Sync,
    T: Send,
    F: Fn(&P) -> Result<T, String> + Sync,
{
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        // Sequential fast path: no pool, no catch_unwind overhead in the
        // common single-core / SARA_BENCH_THREADS=1 case, but keep the
        // panic→Err contract identical to the parallel path.
        return points.iter().map(|p| eval_point(&f, p)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let result = eval_point(f, &points[idx]);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut results: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
        for (idx, result) in rx {
            results[idx] = Some(result);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("worker delivered every claimed point"))
            .collect()
    })
}

fn eval_point<P, T, F>(f: &F, point: &P) -> Result<T, String>
where
    F: Fn(&P) -> Result<T, String>,
{
    match catch_unwind(AssertUnwindSafe(|| f(point))) {
        Ok(result) => result,
        Err(payload) => Err(format!("panic: {}", panic_message(&*payload))),
    }
}

/// Why a [`JobQueue::try_push`] was refused. The typed rejection is the
/// backpressure signal long-lived services surface to their clients
/// instead of blocking or silently dropping work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later or shed the request.
    Full { capacity: usize },
    /// The queue was closed; no further work is accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "queue full ({capacity} jobs pending)")
            }
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer job queue (std only:
/// `Mutex` + `Condvar`).
///
/// This is the admission-control half of a long-lived service:
/// [`JobQueue::try_push`] never blocks — when the queue is at capacity it
/// returns a typed [`PushError::Full`] so the caller can reject the
/// request upstream (bounded-queue backpressure) instead of letting an
/// unbounded backlog build. Worker threads loop on [`JobQueue::pop`],
/// which blocks until a job arrives or the queue is closed.
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` pending jobs (minimum 1).
    pub fn bounded(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a job without blocking.
    ///
    /// # Errors
    ///
    /// The job is handed back with [`PushError::Full`] when the queue is
    /// at capacity (so the caller can send a typed rejection to whoever
    /// submitted it), or with [`PushError::Closed`] after
    /// [`JobQueue::close`].
    pub fn try_push(&self, job: T) -> Result<(), (T, PushError)> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        if st.closed {
            return Err((job, PushError::Closed));
        }
        if st.items.len() >= self.capacity {
            return Err((job, PushError::Full { capacity: self.capacity }));
        }
        st.items.push_back(job);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next job, blocking until one arrives. Returns `None`
    /// once the queue is closed *and* drained — the worker-shutdown
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = st.items.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue lock poisoned");
        }
    }

    /// Jobs currently pending.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: further pushes fail with [`PushError::Closed`];
    /// blocked and future [`JobQueue::pop`] calls drain the backlog and
    /// then return `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_input_order() {
        // Make later points finish first so out-of-order delivery would
        // show up if ordering weren't restored.
        let points: Vec<u64> = (0..32).collect();
        let results = run_points_on(8, &points, |&p| {
            std::thread::sleep(std::time::Duration::from_micros((32 - p) * 50));
            Ok(p * 10)
        });
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..32).map(|p| p * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_becomes_per_point_error() {
        let results = run_points_on(4, &[1, 2, 3, 4, 5], |&p| {
            if p == 3 {
                panic!("boom at {p}");
            }
            Ok(p)
        });
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                let err = r.as_ref().unwrap_err();
                assert!(err.contains("panic"), "got: {err}");
                assert!(err.contains("boom at 3"), "got: {err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i + 1);
            }
        }
    }

    #[test]
    fn sequential_path_catches_panics_too() {
        let results = run_points_on(1, &[0, 1], |&p| {
            if p == 0 {
                panic!("seq boom");
            }
            Ok(p)
        });
        assert!(results[0].as_ref().unwrap_err().contains("seq boom"));
        assert_eq!(*results[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn every_point_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let results = run_points_on(6, &(0..100).collect::<Vec<usize>>(), |&p: &usize| {
            seen.lock().unwrap().push(p);
            Ok(p)
        });
        assert_eq!(results.len(), 100);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 100);
        assert_eq!(seen.iter().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("3"), Ok(3));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("many").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("").is_err());
    }

    #[test]
    fn errors_pass_through_unchanged() {
        let results = run_points_on(3, &["a", "b"], |p| {
            if *p == "a" {
                Err("no placement".to_string())
            } else {
                Ok(p.len())
            }
        });
        assert_eq!(results[0].as_ref().unwrap_err(), "no placement");
        assert_eq!(*results[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn empty_point_list_is_fine() {
        let results: Vec<Result<u32, String>> = run_points(&Vec::<u32>::new(), |&p| Ok(p));
        assert!(results.is_empty());
    }

    #[test]
    fn job_queue_rejects_when_full_and_drains_in_order() {
        let q: JobQueue<u32> = JobQueue::bounded(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // The rejected job comes back with the typed reason.
        assert_eq!(q.try_push(3), Err((3, PushError::Full { capacity: 2 })));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn job_queue_close_unblocks_workers_after_drain() {
        let q: JobQueue<u32> = JobQueue::bounded(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err((8, PushError::Closed)));
        // The backlog still drains, then pop signals shutdown.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn job_queue_feeds_concurrent_workers_exactly_once() {
        let q: JobQueue<usize> = JobQueue::bounded(128);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(j) = q.pop() {
                        seen.lock().unwrap().push(j);
                    }
                });
            }
            for j in 0..100 {
                while q.try_push(j).is_err() {
                    std::thread::yield_now();
                }
            }
            q.close();
        });
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 100);
        assert_eq!(seen.iter().collect::<HashSet<_>>().len(), 100);
    }
}
