//! Parallel point-evaluation pool.
//!
//! Callers (the bench binaries, the DSE search engine) evaluate a list
//! of *independent* design points (workload × parallelization × chip),
//! each a full compile → PnR → simulate run. [`run_points`] fans those
//! points out across a scoped-thread work pool (std only:
//! `std::thread::scope` + channels) and returns results **in input
//! order**, so tables and speedup baselines ("first point in the
//! series") are unaffected by scheduling.
//!
//! Guarantees:
//!
//! * **Deterministic ordering** — `results[i]` corresponds to `points[i]`.
//! * **Panic isolation** — a panicking point becomes an `Err` for that
//!   point only; the rest of the sweep completes.
//! * **Thread-count control** — `SARA_BENCH_THREADS=N` overrides the
//!   default of `std::thread::available_parallelism()`, clamped to
//!   `[1, points.len()]`. `SARA_BENCH_THREADS=1` reproduces the exact
//!   sequential behaviour (useful when a binary also measures wall-clock
//!   per point, e.g. `fig11`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "SARA_BENCH_THREADS";

/// Parse a `SARA_BENCH_THREADS` value into a positive worker count.
///
/// # Errors
///
/// A one-line diagnostic when the value is not a positive integer.
pub fn parse_threads(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{THREADS_ENV}={v:?} is not a positive integer")),
    }
}

/// Worker count for a sweep over `n_points` points: the `SARA_BENCH_THREADS`
/// override if set, else available parallelism, clamped to `[1, n_points]`
/// (and to 1 when `n_points` is 0). An unparsable override is a usage
/// error: one-line diagnostic on stderr and exit code 2, never a silent
/// fallback to a different thread count.
pub fn threads_for(n_points: usize) -> usize {
    let requested = match std::env::var(THREADS_ENV) {
        Ok(v) => parse_threads(&v).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    requested.clamp(1, n_points.max(1))
}

/// Evaluate `f` over every point concurrently, returning results in input
/// order. A panic inside `f` is caught and surfaced as that point's `Err`.
pub fn run_points<P, T, F>(points: &[P], f: F) -> Vec<Result<T, String>>
where
    P: Sync,
    T: Send,
    F: Fn(&P) -> Result<T, String> + Sync,
{
    run_points_on(threads_for(points.len()), points, f)
}

/// [`run_points`] with an explicit worker count (still clamped to
/// `[1, points.len()]`).
pub fn run_points_on<P, T, F>(threads: usize, points: &[P], f: F) -> Vec<Result<T, String>>
where
    P: Sync,
    T: Send,
    F: Fn(&P) -> Result<T, String> + Sync,
{
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        // Sequential fast path: no pool, no catch_unwind overhead in the
        // common single-core / SARA_BENCH_THREADS=1 case, but keep the
        // panic→Err contract identical to the parallel path.
        return points.iter().map(|p| eval_point(&f, p)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let result = eval_point(f, &points[idx]);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut results: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
        for (idx, result) in rx {
            results[idx] = Some(result);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("worker delivered every claimed point"))
            .collect()
    })
}

fn eval_point<P, T, F>(f: &F, point: &P) -> Result<T, String>
where
    F: Fn(&P) -> Result<T, String>,
{
    match catch_unwind(AssertUnwindSafe(|| f(point))) {
        Ok(result) => result,
        Err(payload) => Err(format!("panic: {}", panic_message(&*payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_input_order() {
        // Make later points finish first so out-of-order delivery would
        // show up if ordering weren't restored.
        let points: Vec<u64> = (0..32).collect();
        let results = run_points_on(8, &points, |&p| {
            std::thread::sleep(std::time::Duration::from_micros((32 - p) * 50));
            Ok(p * 10)
        });
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..32).map(|p| p * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_becomes_per_point_error() {
        let results = run_points_on(4, &[1, 2, 3, 4, 5], |&p| {
            if p == 3 {
                panic!("boom at {p}");
            }
            Ok(p)
        });
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                let err = r.as_ref().unwrap_err();
                assert!(err.contains("panic"), "got: {err}");
                assert!(err.contains("boom at 3"), "got: {err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i + 1);
            }
        }
    }

    #[test]
    fn sequential_path_catches_panics_too() {
        let results = run_points_on(1, &[0, 1], |&p| {
            if p == 0 {
                panic!("seq boom");
            }
            Ok(p)
        });
        assert!(results[0].as_ref().unwrap_err().contains("seq boom"));
        assert_eq!(*results[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn every_point_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let results = run_points_on(6, &(0..100).collect::<Vec<usize>>(), |&p: &usize| {
            seen.lock().unwrap().push(p);
            Ok(p)
        });
        assert_eq!(results.len(), 100);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 100);
        assert_eq!(seen.iter().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("3"), Ok(3));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("many").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("").is_err());
    }

    #[test]
    fn errors_pass_through_unchanged() {
        let results = run_points_on(3, &["a", "b"], |p| {
            if *p == "a" {
                Err("no placement".to_string())
            } else {
                Ok(p.len())
            }
        });
        assert_eq!(results[0].as_ref().unwrap_err(), "no placement");
        assert_eq!(*results[1].as_ref().unwrap(), 1);
    }

    #[test]
    fn empty_point_list_is_fine() {
        let results: Vec<Result<u32, String>> = run_points(&Vec::<u32>::new(), |&p| Ok(p));
        assert!(results.is_empty());
    }
}
