//! # sara-util
//!
//! Shared, dependency-free infrastructure used across the workspace:
//!
//! * [`pool`] — the parallel point-evaluation pool (scoped threads,
//!   deterministic result ordering, per-point panic isolation). Moved
//!   here from `sara_bench::sweep` so crates below the bench harness
//!   (notably `sara-dse`) can fan candidate evaluations out without a
//!   dependency cycle; `sara_bench::sweep` re-exports it unchanged.
//! * [`json`] — the minimal JSON value type with insertion-ordered
//!   object keys, plus a parser so replayable artifacts (knob configs,
//!   fault plans' JSON sidecars) can be read back.
//!
//! The crate is deliberately std-only: it sits below every other
//! workspace crate.

pub mod json;
pub mod pool;

pub use json::Json;
