//! Crash-recovery acceptance for the `sarad` store + engine:
//!
//! * stale `.{key}.tmp.<pid>` writer droppings are swept on open (the
//!   regression test for the leak where an interrupted writer's temp
//!   file lived forever);
//! * a `kill -9` mid-write (torn final file, orphaned temp, or both)
//!   restarts clean: the next open rebuilds the size index, quarantines
//!   the torn artifact on first read, and recomputes the right answer;
//! * quarantined evidence is preserved on disk, never deleted.

use sarad::engine::no_progress;
use sarad::{stage_keys, Engine, Scheduler, StoreRead};
use std::path::PathBuf;
use std::sync::atomic::Ordering;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sarad-recov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn knobs_for(seed: u64) -> sara_dse::KnobConfig {
    let w = sara_workloads::by_name("dotprod").unwrap();
    sara_dse::KnobConfig::default_for(&w, "8x8", seed).unwrap()
}

#[test]
fn stale_writer_tmp_files_are_swept_on_open_and_artifacts_still_serve() {
    let dir = tmp_dir("sweep");
    let knobs = knobs_for(7);
    let art = {
        let engine = Engine::open(&dir).unwrap();
        let mut sink = no_progress();
        engine.run(&knobs, Scheduler::Active, &mut sink).unwrap().1
    };

    // Plant writer droppings of the exact shape an interrupted save
    // leaves behind: `.{key}.tmp.<pid>` next to live artifacts.
    std::fs::write(dir.join("sim").join(".deadkey.tmp.4242"), b"half a write").unwrap();
    std::fs::write(dir.join("place").join(".gone.tmp.1"), b"{").unwrap();

    let engine = Engine::open(&dir).unwrap();
    assert_eq!(
        engine.store().counters.tmp_swept.load(Ordering::Relaxed),
        2,
        "open must sweep every orphaned temp file"
    );
    assert!(!dir.join("sim").join(".deadkey.tmp.4242").exists());
    assert!(!dir.join("place").join(".gone.tmp.1").exists());

    // The live artifacts survived the sweep and still serve from disk.
    let mut sink = no_progress();
    let (_, again) = engine.run(&knobs, Scheduler::Active, &mut sink).unwrap();
    assert_eq!(again, art);
    assert_eq!(engine.stats.sims_run.load(Ordering::Relaxed), 0, "must serve, not recompute");
}

#[test]
fn kill_nine_mid_write_restarts_clean_and_recomputes() {
    let dir = tmp_dir("kill9");
    let knobs = knobs_for(7);
    let keys = stage_keys(&knobs, Scheduler::Active).unwrap();
    let art = {
        let engine = Engine::open(&dir).unwrap();
        let mut sink = no_progress();
        engine.run(&knobs, Scheduler::Active, &mut sink).unwrap().1
    };

    // Simulate dying mid-rename: the sim artifact is torn at its final
    // path AND an orphaned temp file sits beside it.
    let final_path = dir.join("sim").join(format!("{}.json", keys.sim));
    let text = std::fs::read_to_string(&final_path).unwrap();
    std::fs::write(&final_path, &text[..text.len() / 3]).unwrap();
    std::fs::write(dir.join("sim").join(format!(".{}.tmp.777", keys.sim)), &text[..5]).unwrap();

    let engine = Engine::open(&dir).unwrap();
    assert!(engine.store().counters.tmp_swept.load(Ordering::Relaxed) >= 1);
    let mut sink = no_progress();
    let (_, recomputed) = engine.run(&knobs, Scheduler::Active, &mut sink).unwrap();
    assert_eq!(
        recomputed, art,
        "recovery must recompute the exact artifact, not serve the torn one"
    );
    assert!(engine.stats.corrupt_detected.load(Ordering::Relaxed) >= 1);
    assert_eq!(engine.stats.sims_run.load(Ordering::Relaxed), 1);

    // The torn bytes were preserved for post-mortem, not deleted.
    let quarantined = engine.store().quarantine_dir().join(format!("sim-{}.json", keys.sim));
    assert!(quarantined.exists(), "torn artifact must be quarantined, not deleted");

    // And the recompute healed the slot: a third open serves from disk.
    let engine3 = Engine::open(&dir).unwrap();
    assert!(matches!(engine3.store().load("sim", &keys.sim), StoreRead::Hit(_)));
}
