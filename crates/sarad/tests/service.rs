//! End-to-end service acceptance over the Unix-socket protocol:
//! duplicate request bursts hit the cache, progress events stream per
//! stage, autotune runs through the service, backpressure sheds load
//! with a typed rejection, and shutdown is clean.

use sara_util::Json;
use sarad::{Client, ClientError, Endpoint, Engine, Listener, RetryPolicy, ServerOptions};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sarad-svc-{tag}-{}", std::process::id()))
}

type ServeHandle = std::thread::JoinHandle<()>;

fn start_server(
    tag: &str,
    workers: usize,
    queue: usize,
) -> (ServerOptions, Arc<Engine>, ServeHandle) {
    let opts = ServerOptions {
        socket: tmp(&format!("{tag}.sock")),
        cache_dir: tmp(&format!("{tag}-cache")),
        workers,
        queue,
        cache_budget: None,
    };
    let _ = std::fs::remove_dir_all(&opts.cache_dir);
    let engine = Arc::new(Engine::open(&opts.cache_dir).unwrap());
    // Bind before spawning: a returned helper is immediately connectable
    // (no exists() poll, which a stale socket file could fool).
    let listener = Listener::bind(&opts.endpoint()).unwrap();
    let handle = {
        let opts = opts.clone();
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || sarad::serve_on(listener, &opts, engine).unwrap())
    };
    (opts, engine, handle)
}

#[test]
fn duplicate_burst_hits_cache_and_streams_progress() {
    let (opts, engine, serve) = start_server("burst", 2, 16);
    let mut client = Client::connect(&opts.socket).unwrap();

    let req = Json::object().set("op", "run").set("workload", "dotprod").set("pnr_seed", 7);
    let first = client.request(&req).unwrap();
    // Progress events arrive before the terminal line, in stage order.
    let stages: Vec<(String, String)> = first
        .iter()
        .filter(|l| l.get("event").and_then(Json::as_str) == Some("stage"))
        .map(|l| {
            (
                l.get("stage").and_then(Json::as_str).unwrap().to_string(),
                l.get("cache").and_then(Json::as_str).unwrap().to_string(),
            )
        })
        .collect();
    assert!(stages.iter().any(|(s, c)| s == "sim" && c == "miss"), "stages: {stages:?}");
    assert!(stages.iter().any(|(s, c)| s == "compile" && c == "miss"), "stages: {stages:?}");
    let done = first.last().unwrap();
    let cycles = done.get("cycles").and_then(Json::as_u64).unwrap();
    assert!(cycles > 0);
    let sim_key = done.get("keys").and_then(|k| k.get("sim")).and_then(Json::as_str).unwrap();
    assert_eq!(sim_key.len(), 32);

    // The duplicate burst: every repeat is a sim-stage hit with the same
    // cycles and the same keys.
    for _ in 0..3 {
        let lines = client.request(&req).unwrap();
        let done2 = lines.last().unwrap();
        assert_eq!(done2.get("cycles").and_then(Json::as_u64), Some(cycles));
        assert_eq!(
            done2.get("keys").and_then(|k| k.get("sim")).and_then(Json::as_str),
            Some(sim_key)
        );
        let stages2: Vec<&str> = lines
            .iter()
            .filter(|l| l.get("event").and_then(Json::as_str) == Some("stage"))
            .map(|l| l.get("cache").and_then(Json::as_str).unwrap())
            .collect();
        assert!(stages2.contains(&"hit"), "repeat must hit: {stages2:?}");
    }

    let stats = client.stats().unwrap();
    assert!(stats.get("sim_hits").and_then(Json::as_u64).unwrap() >= 3, "{}", stats.pretty());
    assert_eq!(stats.get("sims_run").and_then(Json::as_u64), Some(1));
    // The report also carries the store's resource counters.
    assert!(stats.get("store_bytes").and_then(Json::as_u64).unwrap() > 0, "{}", stats.pretty());
    assert!(stats.get("evictions").is_some());
    assert!(stats.get("degraded").is_some());
    assert!(stats.get("timeouts").is_some());

    client.shutdown().unwrap();
    // Shutdown must terminate the accept loop, not just the worker: the
    // serve thread itself has to return.
    serve.join().unwrap();
    assert_eq!(engine.stats.sims_run.load(Ordering::Relaxed), 1);
}

#[test]
fn autotune_runs_through_the_service_and_warm_repeat_is_free() {
    let (opts, engine, serve) = start_server("tune", 2, 16);
    let mut client = Client::connect(&opts.socket).unwrap();

    let req = Json::object()
        .set("op", "autotune")
        .set("workload", "dotprod")
        .set("budget", 10)
        .set("seed", 42);
    let done = client.call(&req).unwrap();
    let best = done.get("best_cycles").and_then(Json::as_u64).unwrap();
    assert!(best > 0);
    assert!(done.get("speedup").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(done.get("stats").is_some(), "autotune response must carry the service stats report");
    let compiles_cold = engine.stats.compiles_run.load(Ordering::Relaxed);

    // Warm repeat through the service: zero recompilations.
    let done2 = client.call(&req).unwrap();
    assert_eq!(done2.get("best_cycles").and_then(Json::as_u64), Some(best));
    assert_eq!(
        engine.stats.compiles_run.load(Ordering::Relaxed),
        compiles_cold,
        "warm autotune through the service must not recompile"
    );
    let stats = done2.get("stats").unwrap();
    assert!(stats.get("compile_hits").and_then(Json::as_u64).unwrap() > 0);

    client.shutdown().unwrap();
    serve.join().unwrap();
}

#[test]
fn full_queue_sheds_connections_with_typed_backpressure() {
    // One worker, queue capacity one: a delay request occupies the
    // worker, the next connection fills the queue, and every connection
    // beyond that must be rejected with a typed busy error.
    let (opts, engine, serve) = start_server("busy", 1, 1);

    let mut occupier = UnixStream::connect(&opts.socket).unwrap();
    occupier.write_all(b"{\"op\": \"delay\", \"ms\": 1500}\n").unwrap();
    occupier.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200)); // worker now busy

    // Fill the one queue slot, then force rejections.
    let _queued = UnixStream::connect(&opts.socket).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let mut saw_busy = false;
    for _ in 0..5 {
        let Ok(stream) = UnixStream::connect(&opts.socket) else { continue };
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            continue;
        }
        let doc = Json::parse(line.trim()).unwrap();
        if doc.get("code").and_then(Json::as_str) == Some("backpressure") {
            assert!(doc.get("error").and_then(Json::as_str).unwrap().starts_with("busy"));
            saw_busy = true;
            break;
        }
    }
    assert!(saw_busy, "an over-capacity connection must get a typed busy rejection");
    assert!(engine.stats.rejected.load(Ordering::Relaxed) >= 1);

    // Wait out the delay, then release both held connections so the
    // single worker can serve the shutdown request.
    let mut resp = String::new();
    BufReader::new(occupier.try_clone().unwrap()).read_line(&mut resp).unwrap();
    assert!(resp.contains("ok"));
    drop(occupier);
    drop(_queued);
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(&opts.socket).unwrap();
    client.shutdown().unwrap();
    serve.join().unwrap();
}

#[test]
fn protocol_errors_are_typed_not_fatal() {
    let (opts, _engine, serve) = start_server("proto", 1, 8);
    let mut client = Client::connect(&opts.socket).unwrap();

    // Unknown op, unknown workload, malformed knobs: each is a typed
    // error line, and the connection stays usable afterwards.
    let e = client.call(&Json::object().set("op", "florble")).unwrap_err();
    assert!(e.to_string().contains("unknown op"));
    assert_eq!(e.code(), "server");
    assert!(!e.retryable(), "a server-side request error must not be retried");
    let e = client
        .call(&Json::object().set("op", "run").set("workload", "no-such-kernel"))
        .unwrap_err();
    assert!(e.to_string().contains("unknown workload"));
    let e = client.call(&Json::object().set("op", "run")).unwrap_err();
    assert!(e.to_string().contains("workload"));
    let e = client
        .call(&Json::object().set("op", "run").set("workload", "dotprod").set("scheduler", "warp"))
        .unwrap_err();
    assert!(e.to_string().contains("unknown scheduler"));

    // Still alive.
    let pong = client.call(&Json::object().set("op", "ping")).unwrap();
    assert_eq!(pong.get("service").and_then(Json::as_str), Some("sarad"));
    client.shutdown().unwrap();
    serve.join().unwrap();
}

#[test]
fn truncated_and_garbage_mid_response_are_typed_client_errors() {
    // A scripted fake "server" exercising the client's transport-error
    // taxonomy: garbage bytes, a response truncated mid-line, and a
    // connection dropped before the terminal line must each surface as
    // a typed ClientError — never a parse panic, never a hang.
    let sock = tmp("fake.sock");
    let _ = std::fs::remove_file(&sock);
    let listener = UnixListener::bind(&sock).unwrap();
    let fake = std::thread::spawn(move || {
        let answer = |bytes: &[u8]| {
            let (s, _) = listener.accept().unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut req = String::new();
            r.read_line(&mut req).unwrap();
            let mut w = s;
            w.write_all(bytes).unwrap();
            w.flush().unwrap();
        };
        // 1: pure garbage where a response line should be.
        answer(b"}}} this is not json\n");
        // 2: one valid progress event, then the terminal line cut off
        //    mid-byte (server died while writing).
        answer(b"{\"event\": \"stage\", \"stage\": \"compile\", \"cache\": \"miss\"}\n{\"event\": \"do");
        // 3: connection closed with no response at all.
        answer(b"");
    });

    let req = Json::object().set("op", "ping");
    let e = Client::connect(&sock).unwrap().request(&req).unwrap_err();
    assert_eq!(e.code(), "protocol", "garbage bytes: {e}");
    assert!(!e.retryable(), "a protocol violation must not be blindly retried");

    let e = Client::connect(&sock).unwrap().request(&req).unwrap_err();
    assert_eq!(e.code(), "protocol", "truncated mid-response: {e}");

    let e = Client::connect(&sock).unwrap().request(&req).unwrap_err();
    assert_eq!(e.code(), "dropped", "dropped before terminal: {e}");
    assert!(e.retryable(), "a dropped connection is safe to retry (idempotent requests)");

    fake.join().unwrap();
    let _ = std::fs::remove_file(&sock);
}

#[test]
fn tcp_transport_serves_the_full_protocol_end_to_end() {
    // Bind an ephemeral TCP port, serve on it, and run the protocol —
    // ping, a cached compile+sim, stats, shutdown — over the resolved
    // `host:port` endpoint. Same wire format, different transport.
    let opts = ServerOptions {
        socket: PathBuf::from("127.0.0.1:0"), // interpreted as TCP by the spelling rule
        cache_dir: tmp("tcp-cache"),
        workers: 2,
        queue: 16,
        cache_budget: None,
    };
    let _ = std::fs::remove_dir_all(&opts.cache_dir);
    assert_eq!(opts.endpoint(), Endpoint::parse("127.0.0.1:0"));
    let listener = Listener::bind(&opts.endpoint()).unwrap();
    let endpoint = listener.local_endpoint(); // port 0 resolved to the real port
    let engine = Arc::new(Engine::open(&opts.cache_dir).unwrap());
    let serve = {
        let opts = opts.clone();
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || sarad::serve_on(listener, &opts, engine).unwrap())
    };

    let mut client = Client::connect_to(&endpoint).unwrap();
    let pong = client.call(&Json::object().set("op", "ping")).unwrap();
    assert_eq!(pong.get("service").and_then(Json::as_str), Some("sarad"));

    let req = Json::object().set("op", "run").set("workload", "dotprod").set("pnr_seed", 7);
    let done = client.call(&req).unwrap();
    let cycles = done.get("cycles").and_then(Json::as_u64).unwrap();
    assert!(cycles > 0);
    // The repeat over TCP hits the same content-addressed cache.
    let done2 = client.call(&req).unwrap();
    assert_eq!(done2.get("cycles").and_then(Json::as_u64), Some(cycles));
    assert_eq!(engine.stats.sims_run.load(Ordering::Relaxed), 1);

    // Shutdown must wake the TCP accept loop (self-connect) and return.
    client.shutdown().unwrap();
    serve.join().unwrap();
}

#[test]
fn tcp_connect_refused_is_retryable_and_backs_off() {
    // Bind-then-drop an ephemeral port: connecting to it afterwards is
    // deterministically refused (nothing else can grab it fast enough to
    // matter in practice).
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        Endpoint::Tcp(l.local_addr().unwrap().to_string())
    };

    // A refused TCP connect is a typed, retryable Connect error.
    let e = Client::connect_to(&dead).unwrap_err();
    assert_eq!(e.code(), "connect", "{e}");
    assert!(e.retryable(), "connection refused must be retryable");
    assert!(matches!(e, ClientError::Connect(_)));

    // connect_to_with_retry exhausts its attempts with jittered backoff:
    // three attempts means two deterministic sleeps, so the elapsed time
    // is bounded below by delay(0) + delay(1).
    let policy = RetryPolicy { attempts: 3, base_ms: 30, max_ms: 200, seed: 7 };
    let floor = policy.delay(0) + policy.delay(1);
    let start = std::time::Instant::now();
    let e = Client::connect_to_with_retry(&dead, &policy).unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(e.code(), "connect", "{e}");
    assert!(
        elapsed >= floor,
        "retry must back off between attempts: elapsed {elapsed:?} < floor {floor:?}"
    );

    // The same refused endpoint through the request-level retry wrapper.
    let req = Json::object().set("op", "ping");
    let e = sarad::client::run_with_retry_to(&dead, &req, &RetryPolicy::none()).unwrap_err();
    assert_eq!(e.code(), "connect", "{e}");
}

#[test]
fn deadline_timeout_is_typed_and_retry_resumes_from_cached_stages() {
    let (opts, engine, serve) = start_server("deadline", 1, 8);
    // Every stage takes ~200 ms; the request budget is 100 ms. Each
    // attempt finishes exactly one more stage (which stays cached) and
    // then gets a typed timeout, so the third attempt completes.
    engine.set_stage_delay(Some(Duration::from_millis(200)));
    let mut client = Client::connect(&opts.socket).unwrap();
    let req = Json::object()
        .set("op", "run")
        .set("workload", "dotprod")
        .set("pnr_seed", 7)
        .set("deadline_ms", 100);

    let e = client.call(&req).unwrap_err();
    assert_eq!(e.code(), "timeout", "attempt 1: {e}");
    assert!(e.retryable());
    assert!(e.to_string().contains("retry resumes"), "{e}");
    assert_eq!(
        engine.stats.compiles_run.load(Ordering::Relaxed),
        1,
        "the compile finished before the deadline and must stay cached"
    );

    let e = client.call(&req).unwrap_err();
    assert_eq!(e.code(), "timeout", "attempt 2: {e}");
    assert_eq!(engine.stats.compiles_run.load(Ordering::Relaxed), 1, "no recompile on retry");
    assert_eq!(engine.stats.pnrs_run.load(Ordering::Relaxed), 1, "attempt 2 finished the PnR");

    let done = client.call(&req).unwrap();
    assert!(done.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(engine.stats.compiles_run.load(Ordering::Relaxed), 1);
    assert_eq!(engine.stats.pnrs_run.load(Ordering::Relaxed), 1);
    assert_eq!(engine.stats.sims_run.load(Ordering::Relaxed), 1);
    assert!(engine.stats.timeouts.load(Ordering::Relaxed) >= 2);

    // Timeouts are never negatively cached: with the delay disarmed the
    // same tuple under the same deadline is served from cache instantly.
    engine.set_stage_delay(None);
    let again = client.call(&req).unwrap();
    assert_eq!(
        again.get("cycles").and_then(Json::as_u64),
        done.get("cycles").and_then(Json::as_u64)
    );

    client.shutdown().unwrap();
    serve.join().unwrap();
}
