//! Cache-correctness acceptance for the `sarad` engine:
//!
//! * same request twice → bit-identical artifacts + a cache hit;
//! * any single field of the key tuple changed → a miss (distinct keys);
//! * corrupted on-disk artifact → detected by hash mismatch and
//!   recomputed, never served;
//! * served cached sim results bit-identical to fresh computation under
//!   both schedulers;
//! * cache-warm autotune repeat → zero recompilations, verified via the
//!   service hit/miss stats.

use plasticine_arch::ChipSpec;
use sara_dse::{autotune_with, KnobConfig, SearchOptions};
use sarad::engine::{no_progress, Deadline};
use sarad::{stage_keys, CachedEval, Engine, Scheduler};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sarad-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn knobs_for(workload: &str, chip: &str, seed: u64) -> KnobConfig {
    let w = sara_workloads::by_name(workload).unwrap();
    KnobConfig::default_for(&w, chip, seed).unwrap()
}

#[test]
fn repeat_request_hits_and_serves_bit_identical_results() {
    let engine = Engine::open(&tmp_dir("repeat")).unwrap();
    let knobs = knobs_for("dotprod", "8x8", 7);

    for scheduler in [Scheduler::Active, Scheduler::Dense] {
        let mut sink = no_progress();
        let (keys_a, art_a) = engine.run(&knobs, scheduler, &mut sink).unwrap();
        let hits_before = engine.stats.sim_hits.load(Ordering::Relaxed);
        let sims_before = engine.stats.sims_run.load(Ordering::Relaxed);
        let (keys_b, art_b) = engine.run(&knobs, scheduler, &mut sink).unwrap();
        assert_eq!(keys_a, keys_b);
        assert_eq!(art_a, art_b, "cached artifact must be bit-identical");
        assert_eq!(
            engine.stats.sim_hits.load(Ordering::Relaxed),
            hits_before + 1,
            "second identical request must be a sim-stage hit"
        );
        assert_eq!(
            engine.stats.sims_run.load(Ordering::Relaxed),
            sims_before,
            "second identical request must not re-simulate"
        );

        // Bit-identity against a fresh, cacheless computation.
        let chip = ChipSpec::small_8x8();
        let opts = knobs.compiler_options();
        let mut compiled =
            sara_core::compile::compile(&knobs.build_program().unwrap(), &chip, &opts).unwrap();
        sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 7).unwrap();
        let cfg = plasticine_sim::SimConfig {
            dense: scheduler == Scheduler::Dense,
            ..plasticine_sim::SimConfig::default()
        };
        let fresh = plasticine_sim::simulate(&compiled.vudfg, &chip, &cfg).unwrap();
        assert_eq!(art_a.cycles, fresh.cycles, "cached cycles != fresh ({scheduler:?})");
        assert_eq!(art_a.firings, fresh.stats.firings, "cached firings != fresh ({scheduler:?})");
    }
}

#[test]
fn any_single_key_field_change_is_a_miss() {
    let base = knobs_for("dotprod", "8x8", 7);
    let base_keys = stage_keys(&base, Scheduler::Active).unwrap();

    // Different workload (program text).
    let other_workload = knobs_for("gemm", "8x8", 7);
    // Different chip.
    let other_chip = knobs_for("dotprod", "16x8", 7);
    // Different PnR seed.
    let other_seed = knobs_for("dotprod", "8x8", 8);
    // Different optimization flag.
    let mut other_flag = base.clone();
    other_flag.opt.retime = !other_flag.opt.retime;
    // Different par knob (where the loop admits one).
    let mut other_par = base.clone();
    other_par.pars[0].par = other_par.pars[0].par.saturating_mul(2).max(2);

    for (what, k) in [
        ("workload", &other_workload),
        ("chip", &other_chip),
        ("flag", &other_flag),
        ("par", &other_par),
    ] {
        let keys = stage_keys(k, Scheduler::Active).unwrap();
        assert_ne!(keys.sim, base_keys.sim, "{what}: sim key must change");
        assert_ne!(keys.place, base_keys.place, "{what}: place key must change");
        assert_ne!(keys.compile, base_keys.compile, "{what}: compile key must change");
    }

    // A seed change invalidates place/sim but reuses the compile stage.
    let seed_keys = stage_keys(&other_seed, Scheduler::Active).unwrap();
    assert_eq!(seed_keys.compile, base_keys.compile, "seed must not invalidate the compile");
    assert_ne!(seed_keys.place, base_keys.place);
    assert_ne!(seed_keys.sim, base_keys.sim);

    // A scheduler change invalidates only the sim stage.
    let dense_keys = stage_keys(&base, Scheduler::Dense).unwrap();
    assert_eq!(dense_keys.compile, base_keys.compile);
    assert_eq!(dense_keys.place, base_keys.place);
    assert_ne!(dense_keys.sim, base_keys.sim);
}

#[test]
fn every_topology_field_invalidates_the_compile_key() {
    // Knob-reachable topology changes: system name (count, chip kind)
    // and the link overrides. Each must produce a distinct compile key
    // from the others — a cached artifact can never alias across
    // topologies.
    let base = knobs_for("dotprod", "2x8x8", 7);
    let base_keys = stage_keys(&base, Scheduler::Active).unwrap();

    let more_chips = knobs_for("dotprod", "4x8x8", 7);
    let other_chip_kind = knobs_for("dotprod", "2x16x8", 7);
    let single = knobs_for("dotprod", "8x8", 7);
    let mut slow_link = base.clone();
    slow_link.link_latency = Some(80);
    let mut wide_link = base.clone();
    wide_link.link_bandwidth = Some(8);

    let mut seen = vec![("base", base_keys.compile.clone())];
    for (what, k) in [
        ("count", &more_chips),
        ("chip kind", &other_chip_kind),
        ("single-chip", &single),
        ("link latency", &slow_link),
        ("link bandwidth", &wide_link),
    ] {
        let keys = stage_keys(k, Scheduler::Active).unwrap();
        for (prev, key) in &seen {
            assert_ne!(&keys.compile, key, "{what} must not alias {prev}");
        }
        seen.push((what, keys.compile));
    }

    // Fields no knob reaches (grid shape, link FIFO depth, per-chip
    // capabilities) still flow into the key through the field-complete
    // system canon.
    let program = base.build_program().unwrap();
    let opts = base.compiler_options();
    let sys = base.system_spec().unwrap();
    let base_key = sara_core::artifact::compile_key(&program, &opts, &sys);
    assert_eq!(base_key, base_keys.compile, "stage_keys must use the canonical compile key");
    let mut deep = sys.clone();
    deep.link.fifo_depth += 1;
    let mut tall = sys.clone();
    tall.grid_cols = 1;
    let mut hot = sys.clone();
    hot.chip.hop_latency += 1;
    for (what, s) in [("link.fifo_depth", &deep), ("grid_cols", &tall), ("chip.hop_latency", &hot)]
    {
        assert_ne!(
            sara_core::artifact::compile_key(&program, &opts, s),
            base_key,
            "{what} must change the compile key"
        );
    }
}

#[test]
fn multi_chip_requests_run_replay_and_match_direct_simulation() {
    let dir = tmp_dir("multichip");
    let knobs = knobs_for("dotprod", "2x8x8", 7);

    // Cold run through the engine.
    let (art, placed) = {
        let engine = Engine::open(&dir).unwrap();
        let mut sink = no_progress();
        let (keys, art) = engine.run(&knobs, Scheduler::Active, &mut sink).unwrap();
        let placed = engine.place_stage(&knobs, &keys, Deadline::none(), &mut sink).unwrap();
        (art, placed)
    };
    let plan = placed.plan.as_ref().expect("multi-chip placement must carry its shard plan");
    assert_eq!(plan.count, 2);

    // Bit-identity against a fresh, cacheless multi-chip pipeline.
    let system = knobs.system_spec().unwrap();
    let opts = knobs.compiler_options();
    let mut compiled =
        sara_core::compile::compile(&knobs.build_program().unwrap(), &system.chip, &opts).unwrap();
    let pnr =
        sara_pnr::place_and_route_system(&mut compiled.vudfg, &compiled.assignment, &system, 7)
            .unwrap();
    let fresh = plasticine_sim::simulate_system(
        &compiled.vudfg,
        &system,
        &pnr.plan,
        &plasticine_sim::SimConfig::default(),
    )
    .unwrap();
    assert_eq!(art.cycles, fresh.cycles, "cached multi-chip cycles != fresh");
    assert_eq!(art.firings, fresh.stats.firings, "cached multi-chip firings != fresh");
    assert_eq!(*plan, pnr.plan, "cached shard plan != fresh");

    // A fresh engine (same disk store) replays the placement — plan
    // included — without recompiling or re-placing.
    let engine = Engine::open(&dir).unwrap();
    let mut sink = no_progress();
    let keys = stage_keys(&knobs, Scheduler::Active).unwrap();
    let replayed = engine.place_stage(&knobs, &keys, Deadline::none(), &mut sink).unwrap();
    assert_eq!(*replayed, *placed, "disk replay must reproduce the placed artifact exactly");
    assert_eq!(engine.stats.compiles_run.load(Ordering::Relaxed), 0, "no recompile");
    assert_eq!(engine.stats.pnrs_run.load(Ordering::Relaxed), 0, "no re-place");
}

#[test]
fn corrupted_disk_artifact_is_detected_and_recomputed_never_served() {
    let dir = tmp_dir("corrupt");
    let knobs = knobs_for("dotprod", "8x8", 7);
    let keys = stage_keys(&knobs, Scheduler::Active).unwrap();

    let art = {
        let engine = Engine::open(&dir).unwrap();
        let mut sink = no_progress();
        engine.run(&knobs, Scheduler::Active, &mut sink).unwrap().1
    };

    // Tamper with the sim artifact on disk: valid JSON, wrong cycles.
    let path = dir.join("sim").join(format!("{}.json", keys.sim));
    let text = std::fs::read_to_string(&path).unwrap();
    let bogus = format!("{}9", art.cycles); // definitely a different number
    std::fs::write(&path, text.replace(&art.cycles.to_string(), &bogus)).unwrap();

    // A fresh engine (empty in-memory index, same disk store) must not
    // serve the tampered value: hash mismatch → recompute.
    let engine = Engine::open(&dir).unwrap();
    let mut sink = no_progress();
    let (_, art2) = engine.run(&knobs, Scheduler::Active, &mut sink).unwrap();
    assert_eq!(art2, art, "recomputed artifact must match the original, not the tampered file");
    assert!(
        engine.stats.corrupt_detected.load(Ordering::Relaxed) >= 1,
        "corruption must be counted"
    );
    assert_eq!(engine.stats.sims_run.load(Ordering::Relaxed), 1, "must recompute, not serve");

    // The recompute healed the artifact: a third engine reads it from
    // disk without simulating at all.
    let engine3 = Engine::open(&dir).unwrap();
    let mut sink = no_progress();
    let (_, art3) = engine3.run(&knobs, Scheduler::Active, &mut sink).unwrap();
    assert_eq!(art3, art);
    assert_eq!(engine3.stats.sims_run.load(Ordering::Relaxed), 0);
    assert!(engine3.stats.disk_hits.load(Ordering::Relaxed) >= 1);
}

#[test]
fn placed_artifact_replays_from_disk_without_recompiling() {
    let dir = tmp_dir("replay");
    let knobs = knobs_for("gemm", "8x8", 7);
    {
        let engine = Engine::open(&dir).unwrap();
        let mut sink = no_progress();
        engine.run(&knobs, Scheduler::Active, &mut sink).unwrap();
        assert_eq!(engine.stats.compiles_run.load(Ordering::Relaxed), 1);
    }
    // New process (fresh memory): a dense-scheduler request needs the
    // placement but not the compiler — the placed graph replays from the
    // verified store.
    let engine = Engine::open(&dir).unwrap();
    let mut sink = no_progress();
    engine.run(&knobs, Scheduler::Dense, &mut sink).unwrap();
    assert_eq!(engine.stats.compiles_run.load(Ordering::Relaxed), 0, "no recompile");
    assert_eq!(engine.stats.pnrs_run.load(Ordering::Relaxed), 0, "no re-place");
    assert_eq!(engine.stats.sims_run.load(Ordering::Relaxed), 1, "dense sim is new");
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_simulation() {
    let engine = Arc::new(Engine::open(&tmp_dir("flight")).unwrap());
    let knobs = knobs_for("dotprod", "8x8", 7);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let knobs = knobs.clone();
            scope.spawn(move || {
                let mut sink = no_progress();
                engine.run(&knobs, Scheduler::Active, &mut sink).unwrap();
            });
        }
    });
    assert_eq!(
        engine.stats.sims_run.load(Ordering::Relaxed),
        1,
        "single-flight: identical in-flight requests must share one simulation"
    );
    assert_eq!(engine.stats.compiles_run.load(Ordering::Relaxed), 1);
}

#[test]
fn warm_autotune_repeat_runs_zero_recompilations() {
    let engine = Arc::new(Engine::open(&tmp_dir("autotune")).unwrap());
    let backend = CachedEval::new(Arc::clone(&engine));
    let opts = SearchOptions { budget: 12, sim_top: 2, ..SearchOptions::default() };

    let cold = autotune_with("dotprod", &opts, &backend).unwrap();
    let compiles_after_cold = engine.stats.compiles_run.load(Ordering::Relaxed);
    let sims_after_cold = engine.stats.sims_run.load(Ordering::Relaxed);
    assert!(compiles_after_cold >= 1);

    // The warm repeat: identical (program, flags, chip, seed) tuples
    // throughout, so the service must not compile or simulate anything.
    let warm = autotune_with("dotprod", &opts, &backend).unwrap();
    assert_eq!(
        engine.stats.compiles_run.load(Ordering::Relaxed),
        compiles_after_cold,
        "cache-warm autotune must perform zero recompilations"
    );
    assert_eq!(
        engine.stats.sims_run.load(Ordering::Relaxed),
        sims_after_cold,
        "cache-warm autotune must perform zero new simulations"
    );
    assert!(
        engine.stats.compile_hits.load(Ordering::Relaxed) > 0
            && engine.stats.sim_hits.load(Ordering::Relaxed) > 0,
        "the hit counters are the stats report the acceptance criterion cites"
    );

    // Determinism: the warm run reproduces the cold run's result.
    assert_eq!(cold.best.simulated, warm.best.simulated);
    assert_eq!(cold.best.knobs.key(), warm.best.knobs.key());
    assert_eq!(cold.default_point.simulated, warm.default_point.simulated);
}

#[test]
fn eviction_pressure_keeps_results_bit_identical_and_budget_holds() {
    let dir = tmp_dir("evict");
    let tuples: Vec<KnobConfig> =
        [7u64, 8, 9, 10].iter().map(|&s| knobs_for("dotprod", "8x8", s)).collect();

    // Reference artifacts and the total disk footprint from an
    // unbounded engine.
    let clean = Engine::open(&dir.join("clean")).unwrap();
    let mut reference = Vec::new();
    for k in &tuples {
        let mut sink = no_progress();
        reference.push(clean.run(k, Scheduler::Active, &mut sink).unwrap().1);
    }
    let total = clean.store().bytes();
    assert!(total > 0);
    drop(clean);

    // Half the footprint: enough for any single request tuple, not for
    // all of them — every pass below runs under real eviction pressure.
    let budget = total / 2;
    let tight = dir.join("tight");
    let mut evictions = 0u64;
    let mut save_failures = 0u64;
    for pass in 0..2 {
        for (k, expect) in tuples.iter().zip(&reference) {
            // A fresh engine per request: no in-memory cache, so every
            // request exercises the evicting disk store (hit, evicted
            // re-compute, or degraded compute — all must agree).
            let engine = Engine::open_with(&tight, Some(budget), None).unwrap();
            let mut sink = no_progress();
            let (_, art) = engine.run(k, Scheduler::Active, &mut sink).unwrap();
            assert_eq!(
                &art, expect,
                "pass {pass}: results under eviction pressure must be bit-identical to fresh"
            );
            let bytes = engine.store().bytes();
            assert!(bytes <= budget, "store holds {bytes} B over the {budget} B budget");
            evictions += engine.store().counters.evictions.load(Ordering::Relaxed);
            save_failures += engine.store().counters.save_failures.load(Ordering::Relaxed);
        }
    }
    assert!(
        evictions + save_failures > 0,
        "the budget must actually have constrained the store (evictions or refusals)"
    );
}
