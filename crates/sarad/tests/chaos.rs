//! The service-level chaos soak as an acceptance test: a seeded fault
//! schedule (torn writes, orphaned temps, disk-full, read errors, slow
//! stages past their deadline, simulated service crashes) driven
//! through the engine under a byte budget, plus transport abuse against
//! a live server. The contract under test is recover-or-explain: every
//! fault ends in a recovered bit-identical artifact, a degraded
//! compute, or a typed error — never a panic, a hang, or a corrupt
//! artifact served. `sarad-chaos` runs the same harness (with a
//! watchdog) as a CI gate; this test keeps it honest under plain
//! `cargo test`.

use sarad::chaos::{store_soak, transport_soak, ChaosPlan};
use sarad::{Engine, ServerOptions};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sarad-chaos-test-{tag}-{}", std::process::id()))
}

#[test]
fn seeded_store_soak_upholds_the_recover_or_explain_contract() {
    let mut plan = ChaosPlan::seeded(0xc4a05);
    plan.ops = 25;
    let progress = AtomicU64::new(0);
    let report = store_soak(&tmp_dir("store"), &plan, &progress)
        .expect("every injected fault must resolve to recovered/degraded/typed-error");
    assert!(report.recovered > 0, "the soak must mostly succeed: {:?}", report);
    assert!(
        report.peak_bytes <= plan.budget,
        "budget ceiling violated: {} > {}",
        report.peak_bytes,
        plan.budget
    );
    assert!(report.restarts > 0 || plan.restart_pct == 0, "seed must exercise restarts");
}

#[test]
fn second_seed_changes_the_schedule_but_not_the_contract() {
    let mut plan = ChaosPlan::seeded(0xdead_beef);
    plan.ops = 20;
    let progress = AtomicU64::new(0);
    let report = store_soak(&tmp_dir("seed2"), &plan, &progress).expect("contract must hold");
    assert!(report.recovered > 0, "{report:?}");
}

#[test]
fn transport_abuse_never_wedges_the_server() {
    let dir = tmp_dir("transport");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServerOptions {
        socket: dir.join("sock"),
        cache_dir: dir.join("cache"),
        workers: 2,
        queue: 8,
        cache_budget: None,
    };
    let engine = Arc::new(Engine::open(&opts.cache_dir).unwrap());
    let serve = {
        let opts = opts.clone();
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || sarad::serve_with(&opts, engine).unwrap())
    };
    for _ in 0..200 {
        if opts.socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let progress = AtomicU64::new(0);
    transport_soak(&opts.socket, 0x7a05, 25, &progress)
        .expect("the server must survive garbage and dropped connections");
    let mut client = sarad::Client::connect(&opts.socket).unwrap();
    client.shutdown().unwrap();
    serve.join().unwrap();
}
