//! The on-disk artifact store: one JSON file per (stage, content key),
//! wrapped in an envelope that records the payload's own content hash so
//! corruption (truncation, bit rot, concurrent writer damage) is
//! *detected at read time* and turned into a recompute — a corrupted
//! artifact is never served.

use sara_core::artifact::stable_hash_hex;
use sara_util::Json;
use std::path::{Path, PathBuf};

/// Envelope format tag, bumped on breaking layout changes (old files
/// then read as corrupt → recompute, a safe miss).
pub const STORE_FORMAT: &str = "sarad-artifact-v1";

/// Outcome of a store lookup.
#[derive(Debug)]
pub enum StoreRead {
    /// Verified payload.
    Hit(Json),
    /// No artifact on disk for this key.
    Miss,
    /// An artifact exists but failed verification (parse error, envelope
    /// mismatch, or payload-hash mismatch); the caller must recompute
    /// and overwrite.
    Corrupt(String),
}

/// A directory of stage-keyed artifacts (`<dir>/<stage>/<key>.json`).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Store, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(Store { dir: dir.to_path_buf() })
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the artifact for `(stage, key)`.
    pub fn path(&self, stage: &str, key: &str) -> PathBuf {
        self.dir.join(stage).join(format!("{key}.json"))
    }

    /// Look up and verify an artifact.
    pub fn load(&self, stage: &str, key: &str) -> StoreRead {
        let path = self.path(stage, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return StoreRead::Miss,
            Err(e) => return StoreRead::Corrupt(format!("read {}: {e}", path.display())),
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => return StoreRead::Corrupt(format!("parse {}: {e}", path.display())),
        };
        let envelope_ok = doc.get("format").and_then(Json::as_str) == Some(STORE_FORMAT)
            && doc.get("stage").and_then(Json::as_str) == Some(stage)
            && doc.get("key").and_then(Json::as_str) == Some(key);
        if !envelope_ok {
            return StoreRead::Corrupt(format!("envelope mismatch in {}", path.display()));
        }
        let (Some(stored), Some(payload)) =
            (doc.get("payload_hash").and_then(Json::as_str), doc.get("payload"))
        else {
            return StoreRead::Corrupt(format!("missing payload in {}", path.display()));
        };
        let actual = stable_hash_hex(payload.pretty().as_bytes());
        if actual != stored {
            return StoreRead::Corrupt(format!(
                "payload hash mismatch in {} ({actual} != {stored})",
                path.display()
            ));
        }
        StoreRead::Hit(payload.clone())
    }

    /// Write (or overwrite) an artifact. The write goes through a
    /// temporary file + rename so a crash mid-write leaves either the
    /// old artifact or none — never a torn one that would read as
    /// corrupt forever.
    ///
    /// # Errors
    ///
    /// A one-line description of the failing filesystem operation.
    pub fn save(&self, stage: &str, key: &str, payload: &Json) -> Result<PathBuf, String> {
        let path = self.path(stage, key);
        let parent = path.parent().expect("store paths always have a stage directory");
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        let doc = Json::object()
            .set("format", STORE_FORMAT)
            .set("stage", stage)
            .set("key", key)
            .set("payload_hash", stable_hash_hex(payload.pretty().as_bytes()))
            .set("payload", payload.clone());
        let tmp = parent.join(format!(".{key}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.pretty())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot publish {}: {e}", path.display()))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("sarad-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    #[test]
    fn round_trips_and_verifies() {
        let s = tmp_store("rt");
        let payload = Json::object().set("cycles", 1234).set("note", "x");
        s.save("sim", "k1", &payload).unwrap();
        match s.load("sim", "k1") {
            StoreRead::Hit(p) => assert_eq!(p.pretty(), payload.pretty()),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(s.load("sim", "other"), StoreRead::Miss));
        assert!(matches!(s.load("place", "k1"), StoreRead::Miss));
    }

    #[test]
    fn tampered_payload_reads_as_corrupt() {
        let s = tmp_store("tamper");
        let payload = Json::object().set("cycles", 1234);
        let path = s.save("sim", "k2", &payload).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Valid JSON, wrong content: only the payload hash can catch it.
        std::fs::write(&path, text.replace("1234", "9999")).unwrap();
        assert!(matches!(s.load("sim", "k2"), StoreRead::Corrupt(_)));
        // Truncation is caught too.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(s.load("sim", "k2"), StoreRead::Corrupt(_)));
        // Recompute path: overwriting heals the entry.
        s.save("sim", "k2", &payload).unwrap();
        assert!(matches!(s.load("sim", "k2"), StoreRead::Hit(_)));
    }
}
