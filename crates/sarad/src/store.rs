//! The on-disk artifact store: one JSON file per (stage, content key),
//! wrapped in an envelope that records the payload's own content hash so
//! corruption (truncation, bit rot, concurrent writer damage) is
//! *detected at read time* and turned into a recompute — a corrupted
//! artifact is never served.
//!
//! Beyond the verified envelope, the store is the service's disk-budget
//! and crash-recovery layer:
//!
//! * **Byte budget + cost-aware LRU eviction.** With a configured
//!   budget, a write that would exceed it first evicts artifacts that
//!   are *cheapest to recompute*: every `sim` artifact is considered
//!   before any `place` artifact, and every `place` before any
//!   `compile` (a sim re-run costs milliseconds; a recompile costs the
//!   whole pipeline). Within a stage, least-recently-used goes first.
//!   Keys pinned by in-flight requests are never evicted. The budget is
//!   a hard ceiling: the store's on-disk bytes never exceed it.
//! * **Crash recovery on open.** Orphaned `.{key}.tmp.<pid>` files left
//!   by a crashed writer are swept, and the size index is rebuilt from
//!   the directory tree, so a `kill -9` mid-write restarts clean.
//! * **Quarantine, not deletion.** An artifact that fails verification
//!   is moved to `<dir>/quarantine/` (preserved for post-mortem) rather
//!   than deleted or silently overwritten; the caller recomputes.
//! * **Deterministic fault injection.** [`StoreFaults`] arms a seeded
//!   schedule of torn writes, orphaned temp files, `ENOSPC`, read
//!   errors, and slow I/O — the chaos harness drives the whole service
//!   through these and asserts the recover-or-explain contract.

use sara_core::artifact::stable_hash_hex;
use sara_util::Json;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Envelope format tag, bumped on breaking layout changes (old files
/// then read as corrupt → recompute, a safe miss).
pub const STORE_FORMAT: &str = "sarad-artifact-v1";

/// The stage directories the open-time scan rebuilds the index from,
/// ordered by recompute cost: earlier entries are cheaper to recompute
/// and therefore evicted first.
pub const STAGES_BY_EVICTION_PRIORITY: [&str; 3] = ["sim", "place", "compile"];

fn stage_rank(stage: &str) -> usize {
    STAGES_BY_EVICTION_PRIORITY.iter().position(|s| *s == stage).unwrap_or(usize::MAX)
}

/// Outcome of a store lookup.
#[derive(Debug)]
pub enum StoreRead {
    /// Verified payload.
    Hit(Json),
    /// No artifact on disk for this key.
    Miss,
    /// An artifact exists but failed verification (parse error, envelope
    /// mismatch, or payload-hash mismatch). The file has been moved to
    /// the quarantine directory; the caller must recompute.
    Corrupt(String),
    /// A transient I/O failure (permissions, injected read fault, disk
    /// error) — *not* evidence of corruption. The caller should compute
    /// without the cache (degraded mode) rather than fail the request.
    Failed(String),
}

/// Deterministic fault-injection schedule for the chaos harness. Each
/// store operation draws one number from a seeded xorshift stream and
/// compares it against the cumulative fault percentages, so a given
/// seed always injects the same fault sequence.
#[derive(Debug)]
pub struct StoreFaults {
    rng: Mutex<u64>,
    /// Percent of saves that publish a torn (truncated) file directly to
    /// the final path — simulating a non-atomic filesystem — and report
    /// failure.
    pub torn_write_pct: u8,
    /// Percent of saves that write the temp file and then "crash"
    /// (never rename), leaving an orphan for recovery to sweep.
    pub orphan_tmp_pct: u8,
    /// Percent of saves failing up front with a disk-full error.
    pub enospc_pct: u8,
    /// Percent of loads failing with a transient read error.
    pub read_err_pct: u8,
    /// Percent of operations delayed by [`StoreFaults::slow_ms`].
    pub slow_pct: u8,
    /// Injected latency for slow operations, in milliseconds.
    pub slow_ms: u64,
}

impl StoreFaults {
    /// A schedule drawing from `seed` (any value; zero is remapped).
    pub fn seeded(seed: u64) -> StoreFaults {
        StoreFaults {
            rng: Mutex::new(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed }),
            torn_write_pct: 0,
            orphan_tmp_pct: 0,
            enospc_pct: 0,
            read_err_pct: 0,
            slow_pct: 0,
            slow_ms: 0,
        }
    }

    fn roll(&self) -> u64 {
        let mut st = self.rng.lock().expect("fault rng poisoned");
        let mut x = *st;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *st = x;
        x % 100
    }

    fn maybe_sleep(&self) {
        if self.slow_pct > 0 && self.roll() < u64::from(self.slow_pct) {
            std::thread::sleep(std::time::Duration::from_millis(self.slow_ms));
        }
    }
}

/// What a seeded save-fault draw decided.
enum SaveFault {
    None,
    Torn,
    OrphanTmp,
    Enospc,
}

/// Monotonic store counters (all atomics: read without locking).
#[derive(Debug, Default)]
pub struct StoreCounters {
    /// Current on-disk bytes across all live artifacts (gauge).
    pub bytes: AtomicU64,
    /// Artifacts evicted to stay under the byte budget.
    pub evictions: AtomicU64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: AtomicU64,
    /// Orphaned writer temp files swept during open.
    pub tmp_swept: AtomicU64,
    /// Corrupt artifacts moved to the quarantine directory.
    pub quarantined: AtomicU64,
    /// Saves refused or failed (budget, injected or real I/O errors).
    pub save_failures: AtomicU64,
}

impl StoreCounters {
    /// Render every counter.
    pub fn json(&self) -> Json {
        let g = |c: &AtomicU64| i64::try_from(c.load(Ordering::Relaxed)).unwrap_or(i64::MAX);
        Json::object()
            .set("store_bytes", g(&self.bytes))
            .set("evictions", g(&self.evictions))
            .set("evicted_bytes", g(&self.evicted_bytes))
            .set("tmp_swept", g(&self.tmp_swept))
            .set("quarantined", g(&self.quarantined))
            .set("save_failures", g(&self.save_failures))
    }
}

#[derive(Debug)]
struct Entry {
    bytes: u64,
    /// Logical LRU clock value at last touch (monotonic, not wall time,
    /// so eviction order is deterministic under test).
    last_use: u64,
}

#[derive(Debug, Default)]
struct Index {
    entries: HashMap<(String, String), Entry>,
    pins: HashMap<(String, String), usize>,
    clock: u64,
    bytes: u64,
}

impl Index {
    fn touch(&mut self, stage: &str, key: &str) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&(stage.to_string(), key.to_string())) {
            e.last_use = clock;
        }
    }

    fn remove(&mut self, stage: &str, key: &str) -> Option<u64> {
        let e = self.entries.remove(&(stage.to_string(), key.to_string()))?;
        self.bytes = self.bytes.saturating_sub(e.bytes);
        Some(e.bytes)
    }

    fn insert(&mut self, stage: &str, key: &str, bytes: u64) {
        self.remove(stage, key);
        self.clock += 1;
        self.entries
            .insert((stage.to_string(), key.to_string()), Entry { bytes, last_use: self.clock });
        self.bytes += bytes;
    }

    fn pinned(&self, stage: &str, key: &str) -> bool {
        self.pins.get(&(stage.to_string(), key.to_string())).is_some_and(|n| *n > 0)
    }
}

/// RAII pin: while alive, the (stage, key) it names cannot be evicted.
/// The engine pins every key it is actively computing or serving so
/// eviction pressure from concurrent requests never removes an
/// artifact mid-flight.
#[derive(Debug)]
pub struct Pin<'a> {
    store: &'a Store,
    stage: String,
    key: String,
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        let mut idx = self.store.index.lock().expect("store index poisoned");
        if let Some(n) = idx.pins.get_mut(&(self.stage.clone(), self.key.clone())) {
            *n -= 1;
            if *n == 0 {
                idx.pins.remove(&(self.stage.clone(), self.key.clone()));
            }
        }
    }
}

/// A directory of stage-keyed artifacts (`<dir>/<stage>/<key>.json`)
/// with an in-memory size/LRU index, an optional byte budget, and a
/// quarantine directory for artifacts that fail verification.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    budget: Option<u64>,
    index: Mutex<Index>,
    faults: Option<StoreFaults>,
    /// Store-level counters (bytes gauge, evictions, sweeps, ...).
    pub counters: StoreCounters,
}

impl Store {
    /// Open (creating if needed) an unbudgeted store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Store, String> {
        Store::open_with(dir, None, None)
    }

    /// Open a store with an optional byte budget and an optional fault
    /// schedule. Opening sweeps orphaned writer temp files and rebuilds
    /// the size index from the directory tree (crash recovery), then —
    /// if the rebuilt tree already exceeds a newly configured budget —
    /// evicts down to the ceiling.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn open_with(
        dir: &Path,
        budget: Option<u64>,
        faults: Option<StoreFaults>,
    ) -> Result<Store, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        let store = Store {
            dir: dir.to_path_buf(),
            budget,
            index: Mutex::new(Index::default()),
            faults,
            counters: StoreCounters::default(),
        };
        store.recover();
        if store.budget.is_some() {
            let mut idx = store.index.lock().expect("store index poisoned");
            store.evict_for(&mut idx, 0);
            store.counters.bytes.store(idx.bytes, Ordering::Relaxed);
        }
        Ok(store)
    }

    /// Crash-recovery sweep: remove orphaned `.{key}.tmp.<pid>` files
    /// (a writer died between `write` and `rename`) and rebuild the
    /// size index from the artifacts actually on disk.
    fn recover(&self) {
        let mut idx = self.index.lock().expect("store index poisoned");
        for stage in STAGES_BY_EVICTION_PRIORITY {
            let stage_dir = self.dir.join(stage);
            let Ok(entries) = std::fs::read_dir(&stage_dir) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
                if name.starts_with('.') && name.contains(".tmp.") {
                    // Orphan left by a crashed writer: never published,
                    // safe to delete.
                    if std::fs::remove_file(&path).is_ok() {
                        self.counters.tmp_swept.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                let Some(key) = name.strip_suffix(".json") else { continue };
                let Ok(meta) = entry.metadata() else { continue };
                if meta.is_file() {
                    idx.insert(stage, key, meta.len());
                }
            }
        }
        self.counters.bytes.store(idx.bytes, Ordering::Relaxed);
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Current on-disk bytes across live artifacts.
    pub fn bytes(&self) -> u64 {
        self.counters.bytes.load(Ordering::Relaxed)
    }

    /// Path of the artifact for `(stage, key)`.
    pub fn path(&self, stage: &str, key: &str) -> PathBuf {
        self.dir.join(stage).join(format!("{key}.json"))
    }

    /// Directory holding quarantined (verification-failed) artifacts.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Pin `(stage, key)` against eviction for the guard's lifetime.
    pub fn pin(&self, stage: &str, key: &str) -> Pin<'_> {
        let mut idx = self.index.lock().expect("store index poisoned");
        *idx.pins.entry((stage.to_string(), key.to_string())).or_insert(0) += 1;
        Pin { store: self, stage: stage.to_string(), key: key.to_string() }
    }

    /// Move a verification-failed artifact aside instead of deleting
    /// it: the bytes are preserved for post-mortem under
    /// `quarantine/<stage>-<key>.json`, and the slot reads as a miss
    /// until a recompute heals it.
    fn quarantine(&self, stage: &str, key: &str, path: &Path) {
        let qdir = self.quarantine_dir();
        let moved = std::fs::create_dir_all(&qdir).is_ok()
            && std::fs::rename(path, qdir.join(format!("{stage}-{key}.json"))).is_ok();
        if !moved {
            // Quarantine dir unavailable (e.g. disk trouble): leave the
            // file in place; the recompute's save overwrites it.
            return;
        }
        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        let mut idx = self.index.lock().expect("store index poisoned");
        idx.remove(stage, key);
        self.counters.bytes.store(idx.bytes, Ordering::Relaxed);
    }

    /// Look up and verify an artifact.
    pub fn load(&self, stage: &str, key: &str) -> StoreRead {
        if let Some(f) = &self.faults {
            f.maybe_sleep();
            if f.read_err_pct > 0 && f.roll() < u64::from(f.read_err_pct) {
                return StoreRead::Failed(format!(
                    "read {}: injected I/O error",
                    self.path(stage, key).display()
                ));
            }
        }
        let path = self.path(stage, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return StoreRead::Miss,
            Err(e) => return StoreRead::Failed(format!("read {}: {e}", path.display())),
        };
        let verified = verify_envelope(&text, stage, key, &path);
        match verified {
            Ok(payload) => {
                self.index.lock().expect("store index poisoned").touch(stage, key);
                StoreRead::Hit(payload)
            }
            Err(why) => {
                self.quarantine(stage, key, &path);
                StoreRead::Corrupt(why)
            }
        }
    }

    /// Evict unpinned artifacts until `need` more bytes fit under the
    /// budget. Victims are chosen cheapest-to-recompute first (every
    /// sim before any place before any compile), LRU within a stage.
    fn evict_for(&self, idx: &mut Index, need: u64) {
        let Some(budget) = self.budget else { return };
        while idx.bytes + need > budget {
            let victim = idx
                .entries
                .iter()
                .filter(|((stage, key), _)| !idx.pinned(stage, key))
                .min_by_key(|((stage, _), e)| (stage_rank(stage), e.last_use))
                .map(|((stage, key), _)| (stage.clone(), key.clone()));
            let Some((stage, key)) = victim else { break };
            let freed = idx.remove(&stage, &key).unwrap_or(0);
            let _ = std::fs::remove_file(self.path(&stage, &key));
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            self.counters.evicted_bytes.fetch_add(freed, Ordering::Relaxed);
        }
        self.counters.bytes.store(idx.bytes, Ordering::Relaxed);
    }

    /// Write (or overwrite) an artifact. The write goes through a
    /// temporary file + rename so a crash mid-write leaves either the
    /// old artifact or none — never a torn one that would read as
    /// corrupt forever. Under a byte budget the write first evicts
    /// cheapest-to-recompute artifacts to make room; an artifact that
    /// cannot fit (larger than the whole budget, or everything else is
    /// pinned) is refused with an error the engine downgrades to
    /// compute-without-cache.
    ///
    /// # Errors
    ///
    /// A one-line description of the failing filesystem operation or
    /// budget refusal.
    pub fn save(&self, stage: &str, key: &str, payload: &Json) -> Result<PathBuf, String> {
        match self.save_inner(stage, key, payload) {
            Ok(p) => Ok(p),
            Err(e) => {
                self.counters.save_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn save_inner(&self, stage: &str, key: &str, payload: &Json) -> Result<PathBuf, String> {
        let path = self.path(stage, key);
        let parent = path.parent().expect("store paths always have a stage directory");
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        let doc = Json::object()
            .set("format", STORE_FORMAT)
            .set("stage", stage)
            .set("key", key)
            .set("payload_hash", stable_hash_hex(payload.pretty().as_bytes()))
            .set("payload", payload.clone());
        let text = doc.pretty();
        let need = text.len() as u64;
        let tmp = parent.join(format!(".{key}.tmp.{}", std::process::id()));

        let fault = match &self.faults {
            Some(f) => {
                f.maybe_sleep();
                let r = f.roll();
                let torn = u64::from(f.torn_write_pct);
                let orphan = torn + u64::from(f.orphan_tmp_pct);
                let enospc = orphan + u64::from(f.enospc_pct);
                if r < torn {
                    SaveFault::Torn
                } else if r < orphan {
                    SaveFault::OrphanTmp
                } else if r < enospc {
                    SaveFault::Enospc
                } else {
                    SaveFault::None
                }
            }
            None => SaveFault::None,
        };
        match fault {
            SaveFault::Enospc => {
                return Err(format!("cannot write {}: no space left on device", tmp.display()));
            }
            SaveFault::OrphanTmp => {
                // Crash between write and rename: the orphan stays for
                // the next open's recovery sweep.
                let _ = std::fs::write(&tmp, &text);
                return Err(format!(
                    "cannot publish {}: simulated crash mid-write",
                    path.display()
                ));
            }
            SaveFault::Torn => {
                // Non-atomic publish: a truncated file lands at the
                // final path. Read-time verification must catch it. The
                // torn bytes still count toward the budget ceiling.
                let torn_len = text.len() / 2;
                let _ = std::fs::write(&path, &text[..torn_len]);
                let mut idx = self.index.lock().expect("store index poisoned");
                idx.insert(stage, key, torn_len as u64);
                self.evict_for(&mut idx, 0);
                self.counters.bytes.store(idx.bytes, Ordering::Relaxed);
                return Err(format!("cannot write {}: torn write injected", path.display()));
            }
            SaveFault::None => {}
        }

        // The index lock is held across admission, eviction, and the
        // write itself: concurrent saves admit sequentially, so the
        // byte budget is a hard ceiling, not a best-effort target.
        let mut idx = self.index.lock().expect("store index poisoned");
        if let Some(budget) = self.budget {
            if need > budget {
                return Err(format!("cache budget: artifact is {need} B, budget is {budget} B"));
            }
            // An overwrite replaces the old entry: drop its accounting
            // before making room for the full new size.
            if idx.remove(stage, key).is_some() {
                self.counters.bytes.store(idx.bytes, Ordering::Relaxed);
            }
            self.evict_for(&mut idx, need);
            if idx.bytes + need > budget {
                return Err(format!(
                    "cache budget: cannot free {need} B (pinned entries hold the rest)"
                ));
            }
        }
        let publish = std::fs::write(&tmp, &text)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))
            .and_then(|()| {
                std::fs::rename(&tmp, &path).map_err(|e| {
                    let _ = std::fs::remove_file(&tmp);
                    format!("cannot publish {}: {e}", path.display())
                })
            });
        if let Err(e) = publish {
            // The old artifact (if any) is gone or torn; remove both the
            // file and its accounting so disk usage matches the index.
            let _ = std::fs::remove_file(&path);
            idx.remove(stage, key);
            self.counters.bytes.store(idx.bytes, Ordering::Relaxed);
            return Err(e);
        }
        idx.insert(stage, key, need);
        self.counters.bytes.store(idx.bytes, Ordering::Relaxed);
        Ok(path)
    }
}

/// Parse and verify one envelope; `Ok` is the payload.
fn verify_envelope(text: &str, stage: &str, key: &str, path: &Path) -> Result<Json, String> {
    let doc = Json::parse(text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let envelope_ok = doc.get("format").and_then(Json::as_str) == Some(STORE_FORMAT)
        && doc.get("stage").and_then(Json::as_str) == Some(stage)
        && doc.get("key").and_then(Json::as_str) == Some(key);
    if !envelope_ok {
        return Err(format!("envelope mismatch in {}", path.display()));
    }
    let (Some(stored), Some(payload)) =
        (doc.get("payload_hash").and_then(Json::as_str), doc.get("payload"))
    else {
        return Err(format!("missing payload in {}", path.display()));
    };
    let actual = stable_hash_hex(payload.pretty().as_bytes());
    if actual != stored {
        return Err(format!("payload hash mismatch in {} ({actual} != {stored})", path.display()));
    }
    Ok(payload.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sarad-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tmp_store(tag: &str) -> Store {
        Store::open(&tmp_dir(tag)).unwrap()
    }

    fn payload_of_size(bytes: usize) -> Json {
        // The envelope adds overhead; this just needs rough control.
        Json::object().set("blob", "x".repeat(bytes))
    }

    #[test]
    fn round_trips_and_verifies() {
        let s = tmp_store("rt");
        let payload = Json::object().set("cycles", 1234).set("note", "x");
        s.save("sim", "k1", &payload).unwrap();
        match s.load("sim", "k1") {
            StoreRead::Hit(p) => assert_eq!(p.pretty(), payload.pretty()),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(matches!(s.load("sim", "other"), StoreRead::Miss));
        assert!(matches!(s.load("place", "k1"), StoreRead::Miss));
    }

    #[test]
    fn tampered_payload_reads_as_corrupt_and_is_quarantined() {
        let s = tmp_store("tamper");
        let payload = Json::object().set("cycles", 1234);
        let path = s.save("sim", "k2", &payload).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Valid JSON, wrong content: only the payload hash can catch it.
        std::fs::write(&path, text.replace("1234", "9999")).unwrap();
        assert!(matches!(s.load("sim", "k2"), StoreRead::Corrupt(_)));
        // The evidence is preserved, not deleted, and the slot is a miss.
        assert!(s.quarantine_dir().join("sim-k2.json").exists());
        assert!(matches!(s.load("sim", "k2"), StoreRead::Miss));
        assert_eq!(s.counters.quarantined.load(Ordering::Relaxed), 1);
        // Recompute path: overwriting heals the entry.
        s.save("sim", "k2", &payload).unwrap();
        assert!(matches!(s.load("sim", "k2"), StoreRead::Hit(_)));
    }

    #[test]
    fn truncated_artifact_is_quarantined_too() {
        let s = tmp_store("trunc");
        let payload = Json::object().set("cycles", 1234);
        let path = s.save("sim", "k3", &payload).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(s.load("sim", "k3"), StoreRead::Corrupt(_)));
        assert!(s.quarantine_dir().join("sim-k3.json").exists());
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files_and_rebuilds_index() {
        let dir = tmp_dir("sweep");
        let payload = Json::object().set("cycles", 7);
        let size = {
            let s = Store::open(&dir).unwrap();
            let p = s.save("sim", "live", &payload).unwrap();
            std::fs::metadata(p).unwrap().len()
        };
        // A crashed writer's leftovers, in two stage dirs.
        std::fs::write(dir.join("sim").join(".dead.tmp.12345"), b"partial").unwrap();
        std::fs::create_dir_all(dir.join("place")).unwrap();
        std::fs::write(dir.join("place").join(".dead2.tmp.999"), b"partial").unwrap();

        let s = Store::open(&dir).unwrap();
        assert_eq!(s.counters.tmp_swept.load(Ordering::Relaxed), 2);
        assert!(!dir.join("sim").join(".dead.tmp.12345").exists());
        assert!(!dir.join("place").join(".dead2.tmp.999").exists());
        // The index rebuilt from disk sees exactly the live artifact.
        assert_eq!(s.bytes(), size);
        assert!(matches!(s.load("sim", "live"), StoreRead::Hit(_)));
    }

    #[test]
    fn budget_evicts_lru_within_stage_and_never_exceeds_ceiling() {
        let dir = tmp_dir("budget");
        let budget = 4096;
        let s = Store::open_with(&dir, Some(budget), None).unwrap();
        let p = payload_of_size(1000); // ~1.2 KiB per envelope
        s.save("sim", "a", &p).unwrap();
        s.save("sim", "b", &p).unwrap();
        s.save("sim", "c", &p).unwrap();
        assert!(s.bytes() <= budget);
        // Touch `a` so `b` is the LRU victim.
        assert!(matches!(s.load("sim", "a"), StoreRead::Hit(_)));
        s.save("sim", "d", &p).unwrap();
        assert!(s.bytes() <= budget, "bytes {} > budget {budget}", s.bytes());
        assert!(matches!(s.load("sim", "b"), StoreRead::Miss), "LRU victim must be b");
        assert!(matches!(s.load("sim", "a"), StoreRead::Hit(_)));
        assert!(s.counters.evictions.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn eviction_takes_sim_before_place_before_compile() {
        let dir = tmp_dir("rank");
        let s = Store::open_with(&dir, Some(8192), None).unwrap();
        let p = payload_of_size(1000);
        // Compile and place artifacts are *older* than the sim ones, so
        // pure LRU would take them first; cost-aware eviction must not.
        s.save("compile", "c", &p).unwrap();
        s.save("place", "p", &p).unwrap();
        s.save("sim", "s1", &p).unwrap();
        s.save("sim", "s2", &p).unwrap();
        s.save("sim", "s3", &p).unwrap();
        s.save("sim", "s4", &p).unwrap();
        s.save("sim", "s5", &p).unwrap();
        s.save("sim", "s6", &p).unwrap();
        assert!(s.bytes() <= 8192);
        assert!(
            matches!(s.load("compile", "c"), StoreRead::Hit(_)),
            "compile artifact must outlive sim artifacts under pressure"
        );
        assert!(matches!(s.load("place", "p"), StoreRead::Hit(_)));
        assert!(matches!(s.load("sim", "s1"), StoreRead::Miss));
    }

    #[test]
    fn pinned_keys_are_never_evicted() {
        let dir = tmp_dir("pin");
        let s = Store::open_with(&dir, Some(4096), None).unwrap();
        let p = payload_of_size(1000);
        s.save("sim", "hold", &p).unwrap();
        let _pin = s.pin("sim", "hold");
        s.save("sim", "x1", &p).unwrap();
        s.save("sim", "x2", &p).unwrap();
        s.save("sim", "x3", &p).unwrap();
        s.save("sim", "x4", &p).unwrap();
        assert!(s.bytes() <= 4096);
        assert!(
            matches!(s.load("sim", "hold"), StoreRead::Hit(_)),
            "a pinned in-flight key must survive eviction pressure"
        );
    }

    #[test]
    fn oversized_artifact_is_refused_not_stored() {
        let dir = tmp_dir("oversize");
        let s = Store::open_with(&dir, Some(256), None).unwrap();
        let e = s.save("sim", "big", &payload_of_size(4096)).unwrap_err();
        assert!(e.contains("cache budget"), "got: {e}");
        assert!(matches!(s.load("sim", "big"), StoreRead::Miss));
        assert_eq!(s.bytes(), 0);
        assert_eq!(s.counters.save_failures.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reopening_over_budget_tree_evicts_down_to_ceiling() {
        let dir = tmp_dir("reopen");
        {
            let s = Store::open(&dir).unwrap();
            for k in ["a", "b", "c", "d", "e", "f"] {
                s.save("sim", k, &payload_of_size(1000)).unwrap();
            }
        }
        let s = Store::open_with(&dir, Some(3000), None).unwrap();
        assert!(s.bytes() <= 3000, "bytes {} must respect the new budget", s.bytes());
        assert!(s.counters.evictions.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn injected_enospc_fails_save_but_store_stays_consistent() {
        let dir = tmp_dir("enospc");
        let mut faults = StoreFaults::seeded(42);
        faults.enospc_pct = 100;
        let s = Store::open_with(&dir, None, Some(faults)).unwrap();
        let e = s.save("sim", "k", &payload_of_size(100)).unwrap_err();
        assert!(e.contains("no space left"), "got: {e}");
        assert!(matches!(s.load("sim", "k"), StoreRead::Miss));
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn injected_torn_write_is_caught_at_read_time() {
        let dir = tmp_dir("torn");
        let mut faults = StoreFaults::seeded(7);
        faults.torn_write_pct = 100;
        let s = Store::open_with(&dir, None, Some(faults)).unwrap();
        let e = s.save("sim", "k", &payload_of_size(100)).unwrap_err();
        assert!(e.contains("torn write"), "got: {e}");
        // The torn file landed at the final path; verification catches it.
        assert!(matches!(s.load("sim", "k"), StoreRead::Corrupt(_)));
        assert!(matches!(s.load("sim", "k"), StoreRead::Miss), "quarantined after detection");
    }

    #[test]
    fn injected_orphan_tmp_is_swept_on_next_open() {
        let dir = tmp_dir("orphan");
        let mut faults = StoreFaults::seeded(9);
        faults.orphan_tmp_pct = 100;
        {
            let s = Store::open_with(&dir, None, Some(faults)).unwrap();
            assert!(s.save("sim", "k", &payload_of_size(100)).is_err());
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.counters.tmp_swept.load(Ordering::Relaxed), 1);
        assert!(matches!(s.load("sim", "k"), StoreRead::Miss));
    }
}
