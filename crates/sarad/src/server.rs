//! The socket front end: newline-delimited JSON over a Unix domain
//! socket or TCP (see [`crate::net`] for the endpoint spelling rule),
//! a bounded connection queue feeding a worker pool, and typed
//! backpressure rejection when the queue is full.
//!
//! ## Protocol
//!
//! Each request is one JSON object on one line; the server answers with
//! zero or more *progress* lines (`{"event":"stage",...}`) followed by
//! exactly one *terminal* line: `{"ok":...}`, `{"event":"done",...}`,
//! or `{"error":...}`. Ops:
//!
//! | op         | fields                                               |
//! |------------|------------------------------------------------------|
//! | `ping`     | —                                                    |
//! | `run`      | `knobs` (knob JSON) *or* `workload`/`chip`/`pnr_seed`; optional `scheduler` (`active`\|`dense`), `deadline_ms` |
//! | `autotune` | `workload`; optional `budget`, `seed`, `chip`        |
//! | `stats`    | —                                                    |
//! | `delay`    | `ms` — occupies a worker (deterministic backpressure tests) |
//! | `shutdown` | —                                                    |
//!
//! Error terminals carry a machine-readable `code` where one exists:
//! `"backpressure"` (queue-full shedding — safe to retry with backoff,
//! requests are content-addressed and idempotent) and `"timeout"`
//! (`deadline_ms` elapsed between stages — completed stages are cached,
//! so an immediate retry resumes from the last finished stage).

use crate::engine::{stage_keys, CachedEval, Deadline, Engine, Scheduler, TIMEOUT_PREFIX};
use crate::net::{Conn, Endpoint, Listener};
use sara_dse::{autotune_with, speedup, KnobConfig, SearchOptions};
use sara_util::pool::{JobQueue, PushError};
use sara_util::Json;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen endpoint spelling: a Unix socket path (any stale file is
    /// replaced), or a `host:port` TCP address — any value containing
    /// `':'` is TCP (see [`Endpoint::parse`]).
    pub socket: PathBuf,
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it, connections get a
    /// typed `busy` rejection instead of unbounded buffering.
    pub queue: usize,
    /// Artifact-store directory.
    pub cache_dir: PathBuf,
    /// Artifact-store byte budget (`None` = unbounded). Under a budget
    /// the store evicts cheapest-to-recompute artifacts first and never
    /// exceeds the ceiling.
    pub cache_budget: Option<u64>,
}

impl ServerOptions {
    /// The configured listen endpoint: the `socket` field interpreted
    /// under the one spelling rule (`':'` → TCP `host:port`, else a
    /// Unix path).
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::parse(&self.socket.to_string_lossy())
    }
}

impl Default for ServerOptions {
    fn default() -> Self {
        let cache_dir = default_cache_dir();
        ServerOptions {
            socket: cache_dir.join("sarad.sock"),
            workers: 2,
            queue: 16,
            cache_dir,
            cache_budget: default_cache_budget(),
        }
    }
}

/// Run the service until a `shutdown` request arrives.
///
/// # Errors
///
/// When the socket cannot be bound or the cache directory created.
pub fn serve(opts: &ServerOptions) -> Result<(), String> {
    let engine = Arc::new(Engine::open_with(&opts.cache_dir, opts.cache_budget, None)?);
    serve_with(opts, engine)
}

/// [`serve`] over a caller-provided engine (lets tests inspect stats
/// from the same process).
///
/// # Errors
///
/// When the endpoint cannot be bound.
pub fn serve_with(opts: &ServerOptions, engine: Arc<Engine>) -> Result<(), String> {
    let listener = Listener::bind(&opts.endpoint())?;
    serve_on(listener, opts, engine)
}

/// [`serve_with`] over an already-bound listener — the entry point for
/// callers that bind an ephemeral TCP port (`host:0`) and need to read
/// the real one back (via [`Listener::local_endpoint`]) before serving.
///
/// # Errors
///
/// Currently infallible (the signature reserves the error channel).
pub fn serve_on(
    listener: Listener,
    opts: &ServerOptions,
    engine: Arc<Engine>,
) -> Result<(), String> {
    // The *bound* endpoint, not the requested spelling: a shutdown
    // self-connection over TCP must hit the resolved port.
    let local = listener.local_endpoint();
    let queue: Arc<JobQueue<Conn>> = Arc::new(JobQueue::bounded(opts.queue.max(1)));
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..opts.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let local = local.clone();
            std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    handle_connection(stream, &engine, &stop, &local);
                }
            })
        })
        .collect();

    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        match queue.try_push(stream) {
            Ok(()) => {}
            Err((mut stream, reason @ PushError::Full { .. })) => {
                // Bounded-queue backpressure: shed the connection with a
                // typed rejection instead of buffering without bound.
                engine.stats.rejected.fetch_add(1, Ordering::SeqCst);
                write_line(
                    &mut stream,
                    &Json::object()
                        .set("error", format!("busy: {reason}"))
                        .set("code", "backpressure"),
                );
            }
            Err((_, PushError::Closed)) => break,
        }
    }

    queue.close();
    for w in workers {
        let _ = w.join();
    }
    listener.close();
    Ok(())
}

fn write_line(stream: &mut impl Write, doc: &Json) {
    let mut text = doc.pretty().replace('\n', " ");
    text.push('\n');
    let _ = stream.write_all(text.as_bytes());
    let _ = stream.flush();
}

/// An error terminal, with the machine-readable `code` attached when
/// the message carries one (`timeout:` errors from the engine).
fn error_line(msg: &str) -> Json {
    let doc = Json::object().set("error", msg);
    if msg.starts_with(TIMEOUT_PREFIX) {
        doc.set("code", "timeout")
    } else {
        doc
    }
}

fn handle_connection(stream: Conn, engine: &Arc<Engine>, stop: &Arc<AtomicBool>, local: &Endpoint) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut out = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Json::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                write_line(&mut out, &error_line(&format!("bad request: {e}")));
                continue;
            }
        };
        let op = req.get("op").and_then(Json::as_str).unwrap_or("");
        match op {
            "ping" => write_line(&mut out, &Json::object().set("ok", true).set("service", "sarad")),
            "stats" => write_line(
                &mut out,
                &Json::object().set("ok", true).set("stats", engine.stats_json()),
            ),
            "run" => handle_run(&req, engine, &mut out),
            "autotune" => handle_autotune(&req, engine, &mut out),
            "delay" => {
                let ms = req.get("ms").and_then(Json::as_u64).unwrap_or(0).min(10_000);
                std::thread::sleep(std::time::Duration::from_millis(ms));
                write_line(&mut out, &Json::object().set("ok", true));
            }
            "shutdown" => {
                stop.store(true, Ordering::SeqCst);
                write_line(&mut out, &Json::object().set("ok", true).set("stopping", true));
                // The accept loop is blocked in `accept()`; a self-
                // connection wakes it so it can observe the stop flag.
                let _ = Conn::connect(local);
                return;
            }
            other => write_line(&mut out, &error_line(&format!("unknown op {other:?}"))),
        }
    }
}

/// Decode the request's knob configuration: either a full `knobs`
/// object (the replayable `sara-dse-knobs-v1` artifact) or a
/// `workload`/`chip`/`pnr_seed` triple resolved to default knobs.
fn request_knobs(req: &Json) -> Result<KnobConfig, String> {
    if let Some(k) = req.get("knobs") {
        return KnobConfig::from_json(k);
    }
    let workload =
        req.get("workload").and_then(Json::as_str).ok_or("run: need \"knobs\" or \"workload\"")?;
    let w = sara_workloads::by_name(workload)
        .ok_or_else(|| format!("unknown workload {workload:?}"))?;
    let chip = req.get("chip").and_then(Json::as_str).unwrap_or("8x8");
    let seed = req.get("pnr_seed").and_then(Json::as_u64).unwrap_or(7);
    KnobConfig::default_for(&w, chip, seed)
}

fn handle_run(req: &Json, engine: &Arc<Engine>, out: &mut Conn) {
    let scheduler =
        match Scheduler::parse(req.get("scheduler").and_then(Json::as_str).unwrap_or("active")) {
            Ok(s) => s,
            Err(e) => return write_line(out, &error_line(&e)),
        };
    let knobs = match request_knobs(req) {
        Ok(k) => k,
        Err(e) => return write_line(out, &error_line(&e)),
    };
    let keys = match stage_keys(&knobs, scheduler) {
        Ok(k) => k,
        Err(e) => return write_line(out, &error_line(&e)),
    };
    // A client-supplied deadline is enforced server-side between stages;
    // completed stages stay cached, so a retry resumes where this
    // request ran out of time.
    let deadline =
        req.get("deadline_ms").and_then(Json::as_u64).map_or_else(Deadline::none, Deadline::in_ms);
    // Stream per-stage progress events as the pipeline advances.
    let mut progress = |stage: &str, outcome: &str| {
        // The event writes share `out` with the terminal line; a clone
        // of the stream writes to the same socket.
        if let Ok(mut ev) = out.try_clone() {
            write_line(
                &mut ev,
                &Json::object().set("event", "stage").set("stage", stage).set("cache", outcome),
            );
        }
    };
    match engine.sim_stage(&knobs, scheduler, &keys, deadline, &mut progress) {
        Ok(art) => write_line(
            out,
            &Json::object()
                .set("event", "done")
                .set("cycles", i64::try_from(art.cycles).unwrap_or(i64::MAX))
                .set("firings", i64::try_from(art.firings).unwrap_or(i64::MAX))
                .set("dram_blocked_frac", art.dram_blocked_frac)
                .set("bottleneck", art.bottleneck.as_str())
                .set(
                    "keys",
                    Json::object()
                        .set("compile", keys.compile.as_str())
                        .set("place", keys.place.as_str())
                        .set("sim", keys.sim.as_str()),
                ),
        ),
        Err(e) => write_line(out, &error_line(&e)),
    }
}

fn handle_autotune(req: &Json, engine: &Arc<Engine>, out: &mut Conn) {
    let Some(workload) = req.get("workload").and_then(Json::as_str) else {
        return write_line(out, &error_line("autotune: missing \"workload\""));
    };
    let opts = SearchOptions {
        budget: req.get("budget").and_then(Json::as_u64).unwrap_or(24) as usize,
        pnr_seed: req.get("seed").and_then(Json::as_u64).unwrap_or(42),
        chip: req.get("chip").and_then(Json::as_str).unwrap_or("8x8").to_string(),
        ..SearchOptions::default()
    };
    let backend = CachedEval::new(Arc::clone(engine));
    match autotune_with(workload, &opts, &backend) {
        Ok(outcome) => write_line(
            out,
            &Json::object()
                .set("event", "done")
                .set("workload", workload)
                .set(
                    "default_cycles",
                    i64::try_from(outcome.default_point.simulated.unwrap_or(0)).unwrap_or(i64::MAX),
                )
                .set(
                    "best_cycles",
                    i64::try_from(outcome.best.simulated.unwrap_or(0)).unwrap_or(i64::MAX),
                )
                .set("speedup", speedup(&outcome))
                .set("points_explored", outcome.points_explored)
                .set("sims_run", outcome.sims_run)
                .set("sim_failures", outcome.sim_failures.len())
                .set("best_knobs", outcome.best.knobs.to_json())
                .set("stats", engine.stats_json()),
        ),
        Err(e) => write_line(out, &error_line(&e)),
    }
}

/// Default socket path for CLI wiring: `$SARAD_SOCKET`, else a socket
/// *inside* the cache directory. Deriving the socket from the cache dir
/// (which is already per-user) means two users — or two test runs with
/// distinct `SARAD_CACHE_DIR`s — on one machine never collide on a
/// global `/tmp/sarad.sock`.
pub fn default_socket() -> PathBuf {
    std::env::var_os("SARAD_SOCKET")
        .map(PathBuf::from)
        .unwrap_or_else(|| default_cache_dir().join("sarad.sock"))
}

/// Default cache directory: `$SARAD_CACHE_DIR`, else a per-user
/// `<tmp>/sarad-<user>` (so machines shared between users do not share
/// — or fight over — one world-writable cache).
pub fn default_cache_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("SARAD_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    let user = std::env::var("USER")
        .or_else(|_| std::env::var("LOGNAME"))
        .unwrap_or_else(|_| "anon".to_string());
    std::env::temp_dir().join(format!("sarad-{user}"))
}

/// Default store byte budget: `$SARAD_CACHE_BUDGET` (bytes, with an
/// optional `k`/`m`/`g` suffix), else unbounded.
pub fn default_cache_budget() -> Option<u64> {
    std::env::var("SARAD_CACHE_BUDGET").ok().and_then(|v| parse_budget(&v).ok())
}

/// Parse a byte-budget string: a plain integer, or one with a binary
/// `k`/`m`/`g` suffix (case-insensitive), e.g. `512m`.
///
/// # Errors
///
/// A one-line diagnostic for anything else.
pub fn parse_budget(v: &str) -> Result<u64, String> {
    let t = v.trim();
    let (digits, mult) = match t.char_indices().last() {
        Some((i, 'k' | 'K')) => (&t[..i], 1u64 << 10),
        Some((i, 'm' | 'M')) => (&t[..i], 1 << 20),
        Some((i, 'g' | 'G')) => (&t[..i], 1 << 30),
        _ => (t, 1),
    };
    match digits.trim().parse::<u64>() {
        Ok(n) if n > 0 => {
            n.checked_mul(mult).ok_or_else(|| format!("cache budget {v:?} overflows a byte count"))
        }
        _ => Err(format!("cache budget {v:?} is not a positive byte count (try 512m, 2g)")),
    }
}

/// Best-effort removal of a stale socket file (used by tests).
pub fn cleanup_socket(path: &Path) {
    let _ = std::fs::remove_file(path);
}
