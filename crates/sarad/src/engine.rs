//! The service core: a staged compile → place → simulate pipeline where
//! every stage is keyed by a stable content hash of its inputs and
//! served from cache when possible.
//!
//! ## Key derivation
//!
//! ```text
//! compile_key = H(domain, program_canon, options_canon, system_canon)
//! place_key   = H(domain, compile_key, pnr_seed)
//! sim_key     = H(domain, place_key, scheduler)
//! ```
//!
//! Any change to any field of the request tuple changes exactly the
//! stage keys downstream of it: a new PnR seed reuses the compile
//! artifact but re-places; a scheduler change reuses the placement but
//! re-simulates. The system canon ([`plasticine_arch::SystemSpec::canon`]) is
//! field-complete over the *whole* topology — chip geometry, unit
//! capabilities, DRAM technology, chip count, grid shape, and every
//! link parameter — so two configurations that happen to share a
//! display name can never alias in the cache (`tests/cache.rs` checks
//! each field individually). Multi-chip requests run the sharded
//! pipeline: the place artifact carries the shard plan alongside the
//! routed graph, and the sim stage runs the linked multi-chip
//! simulation.
//!
//! ## Cache layers
//!
//! * **In-memory index** — full `Compiled` objects, placed graphs, and
//!   sim artifacts (including *negative* entries: a compile or PnR
//!   failure is cached as its error string, so a hopeless point is
//!   never re-attempted).
//! * **On-disk store** — placed VUDFGs and sim artifacts in the
//!   [`Store`](crate::store::Store), content-verified at read time; a
//!   hash mismatch counts as corruption and forces a recompute, never a
//!   serve. Lowered VUDFGs are persisted too as the compile stage's
//!   artifact of record.
//!
//! ## Single-flight
//!
//! Concurrent requests for the same stage key coalesce: one computes,
//! the rest wait on the per-key flight lock and then read the fresh
//! cache entry. The `coalesced` stat counts the waiters.
//!
//! ## Fault discipline
//!
//! The engine never lets the artifact store fail a request:
//!
//! * a store **write** failure (disk full, permissions, budget refusal,
//!   injected fault) downgrades to compute-without-cache — the computed
//!   result is still served and the `degraded` counter bumps;
//! * a store **read** failure that is not corruption (transient I/O)
//!   likewise degrades to a recompute;
//! * verification failures quarantine the artifact and recompute
//!   (`corrupt_detected`), never serve.
//!
//! Per-request [`Deadline`]s are enforced *between* stages: a request
//! that runs out of time gets a typed `timeout: ...` error, but every
//! stage that completed stays cached, so a retry resumes from the last
//! finished stage instead of starting over. Timeouts are never
//! negatively cached.

use crate::store::{Store, StoreFaults, StoreRead};
use plasticine_sim::{SimConfig, SimOutcome};
use sara_core::artifact::{
    compile_key, shard_plan_from_json, shard_plan_json, vudfg_from_json, vudfg_json, StableHasher,
};
use sara_core::compile::{compile, Compiled};
use sara_core::profile::StallReason;
use sara_core::report::bottleneck_summary;
use sara_core::shard::ShardPlan;
use sara_core::vudfg::Vudfg;
use sara_dse::{estimate, EvalPoint, Evaluator, KnobConfig};
use sara_util::Json;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Every engine timeout error starts with this prefix; the server maps
/// it to the typed `"code": "timeout"` response.
pub const TIMEOUT_PREFIX: &str = "timeout: ";

/// Simulator scheduler selector — part of the sim-stage cache key
/// (cycle counts are identical across the two, but the service proves
/// that rather than assuming it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Wakeup-driven active-list scheduler (default).
    Active,
    /// Dense reference scheduler.
    Dense,
}

impl Scheduler {
    /// Stable protocol name.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Active => "active",
            Scheduler::Dense => "dense",
        }
    }

    /// Parse a protocol name.
    ///
    /// # Errors
    ///
    /// On anything other than `"active"` or `"dense"`.
    pub fn parse(s: &str) -> Result<Scheduler, String> {
        match s {
            "active" => Ok(Scheduler::Active),
            "dense" => Ok(Scheduler::Dense),
            other => Err(format!("unknown scheduler {other:?} (active|dense)")),
        }
    }

    /// Simulator configuration for this scheduler, with profiling on:
    /// profiling never changes cycle counts and the profile scalars are
    /// part of the sim artifact.
    fn config(self) -> SimConfig {
        SimConfig { profile: true, dense: self == Scheduler::Dense, ..SimConfig::default() }
    }
}

/// A per-request compute deadline, checked at stage boundaries. Work
/// completed before the deadline stays cached, so a retried request
/// resumes from the last finished stage.
#[derive(Debug, Clone, Copy)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: stages always run.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// A deadline `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Deadline {
        Deadline(Some(Instant::now() + Duration::from_millis(ms)))
    }

    /// Whether the deadline has passed.
    pub fn exceeded(self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// Typed timeout error if the deadline has passed before `stage`
    /// could start.
    fn check(self, stage: &str) -> Result<(), String> {
        if self.exceeded() {
            Err(format!(
                "{TIMEOUT_PREFIX}deadline exceeded before the {stage} stage \
                 (completed stages are cached; retry resumes from there)"
            ))
        } else {
            Ok(())
        }
    }
}

/// The three stage keys derived from one request tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageKeys {
    pub compile: String,
    pub place: String,
    pub sim: String,
}

/// Derive the stage keys for a knob configuration and scheduler.
///
/// The compile key is [`sara_core::artifact::compile_key`]: it hashes
/// the *field-complete* [`plasticine_arch::SystemSpec::canon`] of the target (with any
/// link-knob overrides applied), never just a display name — so cached
/// artifacts cannot alias across topologies that differ in chip count,
/// grid shape, link latency/bandwidth/FIFO depth, or any per-chip
/// capability.
///
/// # Errors
///
/// When the knobs name an unknown chip/system or cannot build a
/// program.
pub fn stage_keys(knobs: &KnobConfig, scheduler: Scheduler) -> Result<StageKeys, String> {
    let program = knobs.build_program()?;
    let system = knobs.system_spec()?;
    let compile = compile_key(&program, &knobs.compiler_options(), &system);
    let mut h = StableHasher::new();
    h.str("sarad-place-v2").str(&compile).u64(knobs.pnr_seed);
    let place = h.hex();
    let mut h = StableHasher::new();
    h.str("sarad-sim-v1").str(&place).str(scheduler.name());
    Ok(StageKeys { compile, place, sim: h.hex() })
}

/// The cached result of one simulation stage.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArtifact {
    /// Cycles to completion (bit-identical to a fresh run).
    pub cycles: u64,
    /// Total unit firings (cheap cross-check of bit-identity).
    pub firings: u64,
    /// Fraction of VCU cycles stalled on DRAM.
    pub dram_blocked_frac: f64,
    /// Human-readable bottleneck summary.
    pub bottleneck: String,
}

impl SimArtifact {
    fn from_outcome(out: &SimOutcome) -> Result<SimArtifact, String> {
        let profile = out
            .profile
            .as_ref()
            .ok_or_else(|| "sim: profiled run returned no profile".to_string())?;
        let total: u64 = profile.vcus.iter().map(|v| v.total_cycles()).sum();
        let dram: u64 = profile.vcus.iter().map(|v| v.stalled(StallReason::DramBlocked)).sum();
        Ok(SimArtifact {
            cycles: out.cycles,
            firings: out.stats.firings,
            dram_blocked_frac: if total == 0 { 0.0 } else { dram as f64 / total as f64 },
            bottleneck: bottleneck_summary(profile, 3),
        })
    }

    fn to_json(&self) -> Json {
        Json::object()
            .set("cycles", i64::try_from(self.cycles).unwrap_or(i64::MAX))
            .set("firings", i64::try_from(self.firings).unwrap_or(i64::MAX))
            .set("dram_blocked_frac", self.dram_blocked_frac)
            .set("bottleneck", self.bottleneck.as_str())
    }

    fn from_json(v: &Json) -> Result<SimArtifact, String> {
        Ok(SimArtifact {
            cycles: v.get("cycles").and_then(Json::as_u64).ok_or("sim artifact: cycles")?,
            firings: v.get("firings").and_then(Json::as_u64).ok_or("sim artifact: firings")?,
            dram_blocked_frac: v
                .get("dram_blocked_frac")
                .and_then(Json::as_f64)
                .ok_or("sim artifact: dram_blocked_frac")?,
            bottleneck: v
                .get("bottleneck")
                .and_then(Json::as_str)
                .ok_or("sim artifact: bottleneck")?
                .to_string(),
        })
    }
}

/// Monotonic service counters. All atomics: read without locking.
#[derive(Debug, Default)]
pub struct Stats {
    pub compile_hits: AtomicU64,
    pub compile_misses: AtomicU64,
    pub place_hits: AtomicU64,
    pub place_misses: AtomicU64,
    pub sim_hits: AtomicU64,
    pub sim_misses: AtomicU64,
    /// Real compiler invocations (the number the warm-autotune
    /// acceptance test pins to zero on a repeat run).
    pub compiles_run: AtomicU64,
    pub pnrs_run: AtomicU64,
    pub sims_run: AtomicU64,
    /// On-disk artifacts served after hash verification.
    pub disk_hits: AtomicU64,
    /// On-disk artifacts that failed verification and were recomputed.
    pub corrupt_detected: AtomicU64,
    /// Requests that waited on another in-flight computation of the
    /// same key instead of redoing the work.
    pub coalesced: AtomicU64,
    /// Requests rejected by queue backpressure (maintained by the
    /// server front end).
    pub rejected: AtomicU64,
    /// Requests that completed *without* the cache because a store read
    /// or write failed (disk full, permissions, budget refusal): the
    /// result was still served, just not persisted.
    pub degraded: AtomicU64,
    /// Requests cut off by their deadline between stages.
    pub timeouts: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render every counter.
    pub fn json(&self) -> Json {
        let g = |c: &AtomicU64| i64::try_from(c.load(Ordering::Relaxed)).unwrap_or(i64::MAX);
        Json::object()
            .set("compile_hits", g(&self.compile_hits))
            .set("compile_misses", g(&self.compile_misses))
            .set("place_hits", g(&self.place_hits))
            .set("place_misses", g(&self.place_misses))
            .set("sim_hits", g(&self.sim_hits))
            .set("sim_misses", g(&self.sim_misses))
            .set("compiles_run", g(&self.compiles_run))
            .set("pnrs_run", g(&self.pnrs_run))
            .set("sims_run", g(&self.sims_run))
            .set("disk_hits", g(&self.disk_hits))
            .set("corrupt_detected", g(&self.corrupt_detected))
            .set("coalesced", g(&self.coalesced))
            .set("rejected", g(&self.rejected))
            .set("degraded", g(&self.degraded))
            .set("timeouts", g(&self.timeouts))
    }
}

/// Per-stage progress callback: `(stage, outcome)` where outcome is
/// `"hit"`, `"disk-hit"`, or `"miss"`.
pub type Progress<'a> = &'a mut dyn FnMut(&str, &str);

/// A no-op progress sink.
pub fn no_progress() -> impl FnMut(&str, &str) {
    |_: &str, _: &str| {}
}

/// A placement artifact: the routed graph plus, for multi-chip systems,
/// the shard plan the linked simulation needs to model chip crossings.
#[derive(Debug, Clone, PartialEq)]
pub struct Placed {
    /// The placed-and-routed VUDFG (crossing streams carry their link
    /// latencies and widened FIFO depths for multi-chip systems).
    pub vudfg: Vudfg,
    /// Where every unit lives; `None` for single-chip placements.
    pub plan: Option<ShardPlan>,
}

impl Placed {
    fn to_json(&self) -> Json {
        let doc = Json::object().set("vudfg", vudfg_json(&self.vudfg));
        match &self.plan {
            Some(p) => doc.set("plan", shard_plan_json(p)),
            None => doc,
        }
    }

    fn from_json(v: &Json) -> Result<Placed, String> {
        let vudfg = vudfg_from_json(v.get("vudfg").ok_or("place artifact: missing vudfg")?)?;
        let plan = match v.get("plan") {
            None | Some(Json::Null) => None,
            Some(p) => Some(shard_plan_from_json(p)?),
        };
        Ok(Placed { vudfg, plan })
    }
}

type CompileEntry = Result<Arc<Compiled>, String>;
type PlaceEntry = Result<Arc<Placed>, String>;
type SimEntry = Result<SimArtifact, String>;

/// The cached pipeline engine shared by the socket server and the
/// in-process [`CachedEval`] autotune backend.
#[derive(Debug)]
pub struct Engine {
    store: Store,
    compiled: Mutex<HashMap<String, CompileEntry>>,
    placed: Mutex<HashMap<String, PlaceEntry>>,
    sims: Mutex<HashMap<String, SimEntry>>,
    flights: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Artificial per-stage compute latency — a chaos/test hook for
    /// exercising deadlines and watchdogs; `None` in production.
    stage_delay: Mutex<Option<Duration>>,
    /// Service counters (public: the server also bumps `rejected`).
    pub stats: Stats,
}

impl Engine {
    /// Open an engine with an unbounded artifact store rooted at
    /// `cache_dir`.
    ///
    /// # Errors
    ///
    /// When the cache directory cannot be created.
    pub fn open(cache_dir: &Path) -> Result<Engine, String> {
        Engine::open_with(cache_dir, None, None)
    }

    /// Open an engine with an optional store byte budget and an
    /// optional fault-injection schedule (the chaos harness's entry
    /// point).
    ///
    /// # Errors
    ///
    /// When the cache directory cannot be created.
    pub fn open_with(
        cache_dir: &Path,
        budget: Option<u64>,
        faults: Option<StoreFaults>,
    ) -> Result<Engine, String> {
        Ok(Engine {
            store: Store::open_with(cache_dir, budget, faults)?,
            compiled: Mutex::new(HashMap::new()),
            placed: Mutex::new(HashMap::new()),
            sims: Mutex::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
            stage_delay: Mutex::new(None),
            stats: Stats::default(),
        })
    }

    /// The underlying artifact store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Arm (or disarm) an artificial per-stage compute delay. Chaos and
    /// deadline tests use this to make stages reliably slow; it has no
    /// effect on cache hits, so the "retry resumes from the completed
    /// stage" contract is observable.
    pub fn set_stage_delay(&self, delay: Option<Duration>) {
        *self.stage_delay.lock().expect("stage delay poisoned") = delay;
    }

    fn apply_stage_delay(&self) {
        let delay = *self.stage_delay.lock().expect("stage delay poisoned");
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
    }

    /// Engine counters merged with the store's eviction/bytes counters
    /// — the full `stats` report the protocol exposes.
    pub fn stats_json(&self) -> Json {
        let g = |c: &AtomicU64| i64::try_from(c.load(Ordering::Relaxed)).unwrap_or(i64::MAX);
        let c = &self.store.counters;
        let mut doc = self.stats.json();
        doc = doc
            .set("store_bytes", g(&c.bytes))
            .set("evictions", g(&c.evictions))
            .set("evicted_bytes", g(&c.evicted_bytes))
            .set("tmp_swept", g(&c.tmp_swept))
            .set("quarantined", g(&c.quarantined))
            .set("save_failures", g(&c.save_failures));
        if let Some(b) = self.store.budget() {
            doc = doc.set("cache_budget", i64::try_from(b).unwrap_or(i64::MAX));
        }
        doc
    }

    /// Acquire the per-key flight lock (creating it on first use).
    fn flight(&self, key: &str) -> Arc<Mutex<()>> {
        let mut flights = self.flights.lock().expect("flight registry poisoned");
        flights.entry(key.to_string()).or_default().clone()
    }

    fn flight_done(&self, key: &str) {
        self.flights.lock().expect("flight registry poisoned").remove(key);
    }

    /// Persist a stage artifact, downgrading failure to degraded mode:
    /// the request still succeeds, the artifact just is not cached.
    fn save_or_degrade(&self, stage: &str, key: &str, payload: &Json) {
        if self.store.save(stage, key, payload).is_err() {
            Stats::bump(&self.stats.degraded);
        }
    }

    /// Compile stage: lowered VUDFG + reports, keyed by
    /// (program, options, system). Compilation itself is chip-local —
    /// sharding happens at placement — but the key covers the full
    /// topology so downstream stages can never alias. Failures are
    /// cached as errors so a hopeless point never compiles twice.
    ///
    /// # Errors
    ///
    /// Setup failures (bad chip/knobs), (cached) compile failures, and
    /// typed `timeout:` errors when the deadline passed before the
    /// compile could start.
    pub fn compile_stage(
        &self,
        knobs: &KnobConfig,
        keys: &StageKeys,
        deadline: Deadline,
        progress: Progress,
    ) -> Result<Arc<Compiled>, String> {
        if let Some(entry) =
            self.compiled.lock().expect("compile cache poisoned").get(&keys.compile)
        {
            Stats::bump(&self.stats.compile_hits);
            progress("compile", "hit");
            return entry.clone();
        }
        let fl = self.flight(&keys.compile);
        let _g = fl.lock().expect("flight lock poisoned");
        if let Some(entry) =
            self.compiled.lock().expect("compile cache poisoned").get(&keys.compile)
        {
            Stats::bump(&self.stats.compile_hits);
            Stats::bump(&self.stats.coalesced);
            progress("compile", "hit");
            return entry.clone();
        }
        // The deadline gates the *computation*, never a cache hit, and a
        // timeout is returned before anything is cached — so it is never
        // memoized as a negative entry.
        if let Err(e) = deadline.check("compile") {
            Stats::bump(&self.stats.timeouts);
            self.flight_done(&keys.compile);
            return Err(e);
        }
        Stats::bump(&self.stats.compile_misses);
        progress("compile", "miss");
        let _pin = self.store.pin("compile", &keys.compile);
        let entry: CompileEntry = (|| {
            self.apply_stage_delay();
            let program = knobs.build_program()?;
            let system = knobs.system_spec()?;
            Stats::bump(&self.stats.compiles_run);
            let compiled = compile(&program, &system.chip, &knobs.compiler_options())
                .map_err(|e| format!("compile: {e}"))?;
            // Artifact of record: the lowered graph, content-addressed.
            let payload = Json::object()
                .set("vudfg", vudfg_json(&compiled.vudfg))
                .set("pcus", compiled.report.pcus)
                .set("pmus", compiled.report.pmus)
                .set("ags", compiled.report.ags);
            self.save_or_degrade("compile", &keys.compile, &payload);
            Ok(Arc::new(compiled))
        })();
        self.compiled
            .lock()
            .expect("compile cache poisoned")
            .insert(keys.compile.clone(), entry.clone());
        self.flight_done(&keys.compile);
        entry
    }

    /// Place stage: PnR'd VUDFG (plus the shard plan for multi-chip
    /// systems) keyed by (compile_key, pnr_seed). Served from memory,
    /// then from the verified disk store, then recomputed (via the
    /// compile stage).
    ///
    /// # Errors
    ///
    /// Setup failures plus (cached) compile/PnR failures and typed
    /// `timeout:` errors.
    pub fn place_stage(
        &self,
        knobs: &KnobConfig,
        keys: &StageKeys,
        deadline: Deadline,
        progress: Progress,
    ) -> Result<Arc<Placed>, String> {
        if let Some(entry) = self.placed.lock().expect("place cache poisoned").get(&keys.place) {
            Stats::bump(&self.stats.place_hits);
            progress("place", "hit");
            return entry.clone();
        }
        let fl = self.flight(&keys.place);
        let _g = fl.lock().expect("flight lock poisoned");
        if let Some(entry) = self.placed.lock().expect("place cache poisoned").get(&keys.place) {
            Stats::bump(&self.stats.place_hits);
            Stats::bump(&self.stats.coalesced);
            progress("place", "hit");
            return entry.clone();
        }
        let _pin = self.store.pin("place", &keys.place);
        // Disk: a placed graph from a previous service run replays
        // without recompiling or re-placing.
        match self.store.load("place", &keys.place) {
            StoreRead::Hit(payload) => {
                if let Ok(p) = Placed::from_json(&payload) {
                    let entry: PlaceEntry = Ok(Arc::new(p));
                    Stats::bump(&self.stats.place_hits);
                    Stats::bump(&self.stats.disk_hits);
                    progress("place", "disk-hit");
                    self.placed
                        .lock()
                        .expect("place cache poisoned")
                        .insert(keys.place.clone(), entry.clone());
                    self.flight_done(&keys.place);
                    return entry;
                }
                // Verified envelope but undecodable payload: treat as
                // corruption and fall through to recompute.
                Stats::bump(&self.stats.corrupt_detected);
            }
            StoreRead::Corrupt(_) => Stats::bump(&self.stats.corrupt_detected),
            StoreRead::Failed(_) => Stats::bump(&self.stats.degraded),
            StoreRead::Miss => {}
        }
        if let Err(e) = deadline.check("place") {
            Stats::bump(&self.stats.timeouts);
            self.flight_done(&keys.place);
            return Err(e);
        }
        Stats::bump(&self.stats.place_misses);
        progress("place", "miss");
        let entry: PlaceEntry = (|| {
            let compiled = self.compile_stage(knobs, keys, deadline, progress)?;
            // Re-check after the nested stage: a compile that consumed
            // the whole budget stays cached, and this request stops here
            // instead of starting a PnR it cannot afford.
            if let Err(e) = deadline.check("place") {
                Stats::bump(&self.stats.timeouts);
                return Err(e);
            }
            let system = knobs.system_spec()?;
            let mut g = compiled.vudfg.clone();
            self.apply_stage_delay();
            Stats::bump(&self.stats.pnrs_run);
            // `place_and_route_system` delegates to the single-chip
            // placer (same seed, bit-identical) when `count <= 1`; the
            // plan is only kept when the linked simulation needs it.
            let pnr = sara_pnr::place_and_route_system(
                &mut g,
                &compiled.assignment,
                &system,
                knobs.pnr_seed,
            )
            .map_err(|e| format!("pnr: {e}"))?;
            let plan = (system.count > 1).then_some(pnr.plan);
            let placed = Placed { vudfg: g, plan };
            self.save_or_degrade("place", &keys.place, &placed.to_json());
            Ok(Arc::new(placed))
        })();
        if let Err(e) = &entry {
            // A timeout inside the nested compile stage must not be
            // memoized as a permanent placement failure.
            if e.starts_with(TIMEOUT_PREFIX) {
                self.flight_done(&keys.place);
                return entry;
            }
        }
        self.placed.lock().expect("place cache poisoned").insert(keys.place.clone(), entry.clone());
        self.flight_done(&keys.place);
        entry
    }

    /// Sim stage: cycles + profile scalars keyed by
    /// (place_key, scheduler). Cached sim results are bit-identical to
    /// fresh computation (`tests/cache.rs` proves it for both
    /// schedulers).
    ///
    /// # Errors
    ///
    /// Setup failures plus (cached) compile/PnR/sim failures and typed
    /// `timeout:` errors.
    pub fn sim_stage(
        &self,
        knobs: &KnobConfig,
        scheduler: Scheduler,
        keys: &StageKeys,
        deadline: Deadline,
        progress: Progress,
    ) -> Result<SimArtifact, String> {
        if let Some(entry) = self.sims.lock().expect("sim cache poisoned").get(&keys.sim) {
            Stats::bump(&self.stats.sim_hits);
            progress("sim", "hit");
            return entry.clone();
        }
        let fl = self.flight(&keys.sim);
        let _g = fl.lock().expect("flight lock poisoned");
        if let Some(entry) = self.sims.lock().expect("sim cache poisoned").get(&keys.sim) {
            Stats::bump(&self.stats.sim_hits);
            Stats::bump(&self.stats.coalesced);
            progress("sim", "hit");
            return entry.clone();
        }
        let _pin = self.store.pin("sim", &keys.sim);
        match self.store.load("sim", &keys.sim) {
            StoreRead::Hit(payload) => {
                if let Ok(art) = SimArtifact::from_json(&payload) {
                    Stats::bump(&self.stats.sim_hits);
                    Stats::bump(&self.stats.disk_hits);
                    progress("sim", "disk-hit");
                    self.sims
                        .lock()
                        .expect("sim cache poisoned")
                        .insert(keys.sim.clone(), Ok(art.clone()));
                    self.flight_done(&keys.sim);
                    return Ok(art);
                }
                Stats::bump(&self.stats.corrupt_detected);
            }
            StoreRead::Corrupt(_) => Stats::bump(&self.stats.corrupt_detected),
            StoreRead::Failed(_) => Stats::bump(&self.stats.degraded),
            StoreRead::Miss => {}
        }
        if let Err(e) = deadline.check("sim") {
            Stats::bump(&self.stats.timeouts);
            self.flight_done(&keys.sim);
            return Err(e);
        }
        Stats::bump(&self.stats.sim_misses);
        progress("sim", "miss");
        let entry: SimEntry = (|| {
            let placed = self.place_stage(knobs, keys, deadline, progress)?;
            if let Err(e) = deadline.check("sim") {
                Stats::bump(&self.stats.timeouts);
                return Err(e);
            }
            let system = knobs.system_spec()?;
            self.apply_stage_delay();
            Stats::bump(&self.stats.sims_run);
            let out = match &placed.plan {
                Some(plan) => plasticine_sim::simulate_system(
                    &placed.vudfg,
                    &system,
                    plan,
                    &scheduler.config(),
                ),
                None => plasticine_sim::simulate(&placed.vudfg, &system.chip, &scheduler.config()),
            }
            .map_err(|e| format!("sim: {e}"))?;
            let art = SimArtifact::from_outcome(&out)?;
            self.save_or_degrade("sim", &keys.sim, &art.to_json());
            Ok(art)
        })();
        if let Err(e) = &entry {
            if e.starts_with(TIMEOUT_PREFIX) {
                self.flight_done(&keys.sim);
                return entry;
            }
        }
        self.sims.lock().expect("sim cache poisoned").insert(keys.sim.clone(), entry.clone());
        self.flight_done(&keys.sim);
        entry
    }

    /// Run the full pipeline for one request tuple.
    ///
    /// # Errors
    ///
    /// Any stage failure (possibly served from the negative cache).
    pub fn run(
        &self,
        knobs: &KnobConfig,
        scheduler: Scheduler,
        progress: Progress,
    ) -> Result<(StageKeys, SimArtifact), String> {
        self.run_with(knobs, scheduler, Deadline::none(), progress)
    }

    /// [`Engine::run`] under a per-request deadline.
    ///
    /// # Errors
    ///
    /// Stage failures, or a typed `timeout:` error when the deadline
    /// passes between stages (completed stages stay cached).
    pub fn run_with(
        &self,
        knobs: &KnobConfig,
        scheduler: Scheduler,
        deadline: Deadline,
        progress: Progress,
    ) -> Result<(StageKeys, SimArtifact), String> {
        let keys = stage_keys(knobs, scheduler)?;
        let art = self.sim_stage(knobs, scheduler, &keys, deadline, progress)?;
        Ok((keys, art))
    }
}

/// The cached [`Evaluator`] backend: `sara-dse` autotune served by an
/// [`Engine`], making a warm autotune run skip every repeated
/// compilation (see `tests/cache.rs`).
#[derive(Debug, Clone)]
pub struct CachedEval {
    engine: Arc<Engine>,
}

impl CachedEval {
    /// Wrap an engine.
    pub fn new(engine: Arc<Engine>) -> CachedEval {
        CachedEval { engine }
    }

    /// The shared engine (for stats inspection).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }
}

impl Evaluator for CachedEval {
    fn evaluate(&self, knobs: &KnobConfig) -> Result<EvalPoint, String> {
        // Same contract as `LocalEval`: setup failures are `Err`, a
        // compile failure is an infeasible point, and multi-chip points
        // are feasibility-checked against the system's aggregate
        // capacity.
        let system = knobs.system_spec()?;
        let program = knobs.build_program()?;
        let keys = stage_keys(knobs, Scheduler::Active)?;
        let mut sink = no_progress();
        match self.engine.compile_stage(knobs, &keys, Deadline::none(), &mut sink) {
            Ok(compiled) => {
                let r = compiled.report;
                Ok(EvalPoint {
                    estimate: Some(estimate(&program, &compiled, &system.chip)),
                    report: Some(r),
                    feasible: system.can_fit(r.pcus as u32, r.pmus as u32, r.ags as u32),
                    knobs: knobs.clone(),
                    simulated: None,
                    dram_blocked_frac: None,
                    bottleneck: None,
                })
            }
            Err(_) => Ok(EvalPoint {
                knobs: knobs.clone(),
                estimate: None,
                report: None,
                feasible: false,
                simulated: None,
                dram_blocked_frac: None,
                bottleneck: None,
            }),
        }
    }

    fn simulate(&self, point: &mut EvalPoint) -> Result<(), String> {
        let mut sink = no_progress();
        let (_, art) = self.engine.run(&point.knobs, Scheduler::Active, &mut sink)?;
        point.simulated = Some(art.cycles);
        point.dram_blocked_frac = Some(art.dram_blocked_frac);
        point.bottleneck = Some(art.bottleneck);
        Ok(())
    }
}
