//! A blocking line-JSON client for the `sarad` socket protocol.

use sara_util::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a running `sarad`.
#[derive(Debug)]
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

/// True when a response line is terminal (exactly one per request).
pub fn is_terminal(line: &Json) -> bool {
    line.get("ok").is_some()
        || line.get("error").is_some()
        || line.get("event").and_then(Json::as_str) == Some("done")
}

impl Client {
    /// Connect to the server socket.
    ///
    /// # Errors
    ///
    /// When the socket is absent or refuses the connection.
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let reader = BufReader::new(
            stream.try_clone().map_err(|e| format!("cannot clone socket stream: {e}"))?,
        );
        Ok(Client { writer: stream, reader })
    }

    /// Send one request and collect every response line through the
    /// terminal one (progress events first, terminal last).
    ///
    /// # Errors
    ///
    /// On I/O failure or a malformed response line. A server-side
    /// `{"error": ...}` terminal is returned as `Ok` — the caller
    /// distinguishes protocol errors from transport errors.
    pub fn request(&mut self, req: &Json) -> Result<Vec<Json>, String> {
        let mut text = req.pretty().replace('\n', " ");
        text.push('\n');
        self.writer.write_all(text.as_bytes()).map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut lines = Vec::new();
        loop {
            let mut raw = String::new();
            let n = self.reader.read_line(&mut raw).map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("connection closed before a terminal response".to_string());
            }
            if raw.trim().is_empty() {
                continue;
            }
            let line = Json::parse(raw.trim()).map_err(|e| format!("bad response line: {e}"))?;
            let terminal = is_terminal(&line);
            lines.push(line);
            if terminal {
                return Ok(lines);
            }
        }
    }

    /// The terminal line of one request (progress events discarded).
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's `error` field hoisted to `Err`.
    pub fn call(&mut self, req: &Json) -> Result<Json, String> {
        let lines = self.request(req)?;
        let last = lines.last().ok_or("empty response")?;
        if let Some(e) = last.get("error").and_then(Json::as_str) {
            return Err(e.to_string());
        }
        Ok(last.clone())
    }

    /// Fetch the service stats counters.
    ///
    /// # Errors
    ///
    /// Transport or protocol failure.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::object().set("op", "stats"))?;
        resp.get("stats").cloned().ok_or_else(|| "stats response missing counters".to_string())
    }

    /// Ask the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport or protocol failure.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call(&Json::object().set("op", "shutdown")).map(|_| ())
    }
}
