//! A blocking line-JSON client for the `sarad` socket protocol — over
//! a Unix domain socket or TCP (see [`crate::net`]) — with typed
//! errors and jittered exponential retry.
//!
//! Every failure mode is a distinct [`ClientError`] variant, so callers
//! can tell a dead daemon (fall back to local compilation) from a busy
//! one (back off and retry — safe because requests are
//! content-addressed and idempotent) from a server that died mid-
//! response (typed, never a parse panic) from a genuine server-side
//! error (do not retry).

use crate::net::{Conn, Endpoint};
use sara_util::Json;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Duration;

/// Typed client-side failure taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not connect to the socket (daemon absent or refusing).
    Connect(String),
    /// The server shed the request with a typed `busy` rejection
    /// (bounded-queue backpressure). Retryable with backoff.
    Busy(String),
    /// The connection closed before a terminal response line arrived
    /// (server died or dropped the connection mid-response).
    Dropped(String),
    /// The server sent bytes that do not parse as a protocol line.
    Protocol(String),
    /// A server-side typed error terminal (compile failure, unknown
    /// workload, ...). Not retryable.
    Server(String),
    /// The server-side per-request deadline elapsed between stages.
    /// Retryable: completed stages are cached, so a retry resumes from
    /// the last finished stage.
    Timeout(String),
}

impl ClientError {
    /// Short machine-readable tag for logs and reports.
    pub fn code(&self) -> &'static str {
        match self {
            ClientError::Connect(_) => "connect",
            ClientError::Busy(_) => "busy",
            ClientError::Dropped(_) => "dropped",
            ClientError::Protocol(_) => "protocol",
            ClientError::Server(_) => "server",
            ClientError::Timeout(_) => "timeout",
        }
    }

    /// Whether retrying the same request may succeed: connection
    /// failures, shed (busy) requests, dropped connections, and
    /// deadline timeouts are all safe to retry because requests are
    /// content-addressed and idempotent.
    pub fn retryable(&self) -> bool {
        !matches!(self, ClientError::Server(_) | ClientError::Protocol(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(m)
            | ClientError::Busy(m)
            | ClientError::Dropped(m)
            | ClientError::Protocol(m)
            | ClientError::Server(m)
            | ClientError::Timeout(m) => write!(f, "{m}"),
        }
    }
}

/// Jittered exponential backoff for retryable failures. The jitter is
/// drawn from a seeded xorshift stream, so tests are reproducible and
/// a thundering herd of identical clients still decorrelates.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Base delay before the first retry.
    pub base_ms: u64,
    /// Ceiling on any single delay.
    pub max_ms: u64,
    /// Jitter seed (zero is remapped).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 5, base_ms: 20, max_ms: 1000, seed: 0x5eed }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, fail fast.
    pub fn none() -> RetryPolicy {
        RetryPolicy { attempts: 1, ..RetryPolicy::default() }
    }

    /// The delay before retry number `attempt` (0-based): exponential
    /// in the attempt, capped at `max_ms`, with multiplicative jitter
    /// in `[0.5, 1.0)` so synchronized clients spread out.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(self.max_ms);
        let mut x = self.seed.wrapping_add(u64::from(attempt) + 1);
        if x == 0 {
            x = 0x9e37_79b9_7f4a_7c15;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter_half = (capped / 2).saturating_mul(x % 1000) / 1000;
        Duration::from_millis(capped / 2 + jitter_half)
    }
}

/// One connection to a running `sarad`.
#[derive(Debug)]
pub struct Client {
    writer: Conn,
    reader: BufReader<Conn>,
}

/// True when a response line is terminal (exactly one per request).
pub fn is_terminal(line: &Json) -> bool {
    line.get("ok").is_some()
        || line.get("error").is_some()
        || line.get("event").and_then(Json::as_str) == Some("done")
}

/// Map a server error terminal to the typed variant its `code` names.
fn server_error(line: &Json, msg: &str) -> ClientError {
    match line.get("code").and_then(Json::as_str) {
        Some("backpressure") => ClientError::Busy(msg.to_string()),
        Some("timeout") => ClientError::Timeout(msg.to_string()),
        _ => ClientError::Server(msg.to_string()),
    }
}

impl Client {
    /// Connect to a Unix server socket (see [`Client::connect_to`] for
    /// the transport-generic entry point).
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the socket is absent or refuses.
    pub fn connect(socket: &Path) -> Result<Client, ClientError> {
        Client::connect_to(&Endpoint::unix(socket))
    }

    /// Connect to an endpoint — a Unix socket path or a TCP
    /// `host:port` address.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the endpoint is absent or refuses
    /// (over TCP, a refused connection is this variant too — and it is
    /// retryable, since the daemon may still be binding its port).
    pub fn connect_to(endpoint: &Endpoint) -> Result<Client, ClientError> {
        let stream = Conn::connect(endpoint)
            .map_err(|e| ClientError::Connect(format!("cannot connect to {endpoint}: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Connect(format!("cannot clone socket stream: {e}")))?,
        );
        Ok(Client { writer: stream, reader })
    }

    /// Connect to a Unix socket, retrying transient failures with
    /// jittered exponential backoff.
    ///
    /// # Errors
    ///
    /// The last [`ClientError::Connect`] once attempts are exhausted.
    pub fn connect_with_retry(socket: &Path, policy: &RetryPolicy) -> Result<Client, ClientError> {
        Client::connect_to_with_retry(&Endpoint::unix(socket), policy)
    }

    /// Connect to an endpoint, retrying transient failures (absent
    /// socket, TCP connection refused) with jittered exponential
    /// backoff.
    ///
    /// # Errors
    ///
    /// The last [`ClientError::Connect`] once attempts are exhausted.
    pub fn connect_to_with_retry(
        endpoint: &Endpoint,
        policy: &RetryPolicy,
    ) -> Result<Client, ClientError> {
        let mut last = ClientError::Connect("no attempts configured".to_string());
        for attempt in 0..policy.attempts.max(1) {
            match Client::connect_to(endpoint) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            if attempt + 1 < policy.attempts {
                std::thread::sleep(policy.delay(attempt));
            }
        }
        Err(last)
    }

    /// Send one request and collect every response line through the
    /// terminal one (progress events first, terminal last).
    ///
    /// # Errors
    ///
    /// Typed transport errors: [`ClientError::Dropped`] when the server
    /// dies before the terminal line, [`ClientError::Protocol`] on
    /// unparsable bytes. A server-side `{"error": ...}` terminal is
    /// returned as `Ok` — the caller distinguishes protocol errors from
    /// request errors.
    pub fn request(&mut self, req: &Json) -> Result<Vec<Json>, ClientError> {
        let mut text = req.pretty().replace('\n', " ");
        text.push('\n');
        self.writer
            .write_all(text.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| ClientError::Dropped(format!("send: {e}")))?;
        let mut lines = Vec::new();
        loop {
            let mut raw = String::new();
            let n = self
                .reader
                .read_line(&mut raw)
                .map_err(|e| ClientError::Dropped(format!("recv: {e}")))?;
            if n == 0 {
                return Err(ClientError::Dropped(
                    "connection closed before a terminal response".to_string(),
                ));
            }
            if raw.trim().is_empty() {
                continue;
            }
            let line = Json::parse(raw.trim())
                .map_err(|e| ClientError::Protocol(format!("bad response line: {e}")))?;
            let terminal = is_terminal(&line);
            lines.push(line);
            if terminal {
                return Ok(lines);
            }
        }
    }

    /// The terminal line of one request (progress events discarded).
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's `error` terminal hoisted to the
    /// typed variant its `code` names.
    pub fn call(&mut self, req: &Json) -> Result<Json, ClientError> {
        let lines = self.request(req)?;
        let last = lines.last().ok_or_else(|| ClientError::Protocol("empty response".into()))?;
        if let Some(e) = last.get("error").and_then(Json::as_str) {
            return Err(server_error(last, e));
        }
        Ok(last.clone())
    }

    /// Fetch the service stats counters.
    ///
    /// # Errors
    ///
    /// Transport or protocol failure.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let resp = self.call(&Json::object().set("op", "stats"))?;
        resp.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats response missing counters".into()))
    }

    /// Ask the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport or protocol failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(&Json::object().set("op", "shutdown")).map(|_| ())
    }
}

/// One-shot request with full retry handling: connects (with backoff),
/// sends `req`, and retries the whole connect+send cycle on retryable
/// failures — connection refused, `busy` shedding, dropped connections,
/// deadline timeouts. Safe because `sarad` requests are
/// content-addressed and idempotent: a retried request re-serves (or
/// resumes) cached work, never duplicates it.
///
/// # Errors
///
/// The first non-retryable error, or the last error once attempts are
/// exhausted.
pub fn run_with_retry(
    socket: &Path,
    req: &Json,
    policy: &RetryPolicy,
) -> Result<Vec<Json>, ClientError> {
    run_with_retry_to(&Endpoint::unix(socket), req, policy)
}

/// [`run_with_retry`] over either transport: the endpoint names a Unix
/// socket path or a TCP `host:port` address.
///
/// # Errors
///
/// The first non-retryable error, or the last error once attempts are
/// exhausted.
pub fn run_with_retry_to(
    endpoint: &Endpoint,
    req: &Json,
    policy: &RetryPolicy,
) -> Result<Vec<Json>, ClientError> {
    let mut last: Option<ClientError> = None;
    for attempt in 0..policy.attempts.max(1) {
        let outcome = Client::connect_to(endpoint).and_then(|mut c| c.request(req));
        match outcome {
            Ok(lines) => {
                // A terminal `busy`/`timeout` error is retryable; other
                // error terminals are final and returned to the caller.
                let Some(e) = lines.last().and_then(|l| {
                    l.get("error").and_then(Json::as_str).map(|m| server_error(l, m))
                }) else {
                    return Ok(lines);
                };
                if !e.retryable() {
                    return Ok(lines);
                }
                last = Some(e);
            }
            Err(e) if e.retryable() => last = Some(e),
            Err(e) => return Err(e),
        }
        if attempt + 1 < policy.attempts {
            std::thread::sleep(policy.delay(attempt));
        }
    }
    Err(last.unwrap_or_else(|| ClientError::Connect("no attempts configured".to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered_within_bounds() {
        let p = RetryPolicy { attempts: 8, base_ms: 10, max_ms: 200, seed: 99 };
        let mut prev_cap = 0;
        for attempt in 0..8 {
            let d = p.delay(attempt).as_millis() as u64;
            let cap = (10u64 << attempt).min(200);
            assert!(d >= cap / 2, "attempt {attempt}: {d} < half of {cap}");
            assert!(d <= cap, "attempt {attempt}: {d} > cap {cap}");
            assert!(cap >= prev_cap, "caps must be monotone");
            prev_cap = cap;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy { seed: 7, ..RetryPolicy::default() };
        let b = RetryPolicy { seed: 7, ..RetryPolicy::default() };
        for attempt in 0..5 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
        }
    }

    #[test]
    fn error_taxonomy_retryability() {
        assert!(ClientError::Connect("x".into()).retryable());
        assert!(ClientError::Busy("x".into()).retryable());
        assert!(ClientError::Dropped("x".into()).retryable());
        assert!(ClientError::Timeout("x".into()).retryable());
        assert!(!ClientError::Server("x".into()).retryable());
        assert!(!ClientError::Protocol("x".into()).retryable());
    }
}
