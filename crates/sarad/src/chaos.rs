//! Service-level chaos harness: a seeded soak that drives the engine
//! and the socket front end through injected faults — torn writes,
//! orphaned temp files, disk-full, read errors, slow stages past their
//! deadline, corrupted artifacts, service restarts, dropped and
//! garbage connections — and asserts PR 4's recover-or-explain
//! contract one layer up:
//!
//! > Every injected fault ends in **Recovered** (the request still
//! > produced the bit-identical artifact), **Degraded** (produced it
//! > without the cache), or a **typed error** (timeout, budget, typed
//! > stage failure). Never a panic, never a hang, and never a served
//! > artifact whose content differs from fresh computation.
//!
//! The store soak first computes reference artifacts with a clean,
//! fault-free engine, then replays a seeded schedule of requests
//! against a fault-injected, byte-budgeted engine — including periodic
//! `kill -9`-style restarts (drop the engine mid-stream, reopen over
//! the same directory) — verifying every successful response against
//! the reference and the byte budget after every operation. The
//! transport soak abuses a live server socket (garbage lines, dropped
//! connections mid-request and mid-response) and then proves the
//! service still answers.
//!
//! Both `sarad-chaos` (the CI entry point) and `tests/chaos.rs` drive
//! these functions; the binary adds a liveness watchdog so a hang
//! fails loudly instead of eating the CI timeout.

use crate::engine::{Deadline, Engine, Scheduler, TIMEOUT_PREFIX};
use crate::store::StoreFaults;
use sara_dse::KnobConfig;
use sara_util::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Seeded xorshift64 — the only randomness in the harness, so a seed
/// fully determines the fault schedule.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator from `seed` (zero is remapped).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    /// Next raw draw.
    pub fn draw(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.draw() % n.max(1)
    }
}

/// Tuning for one store-soak run.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Master seed for the request and fault schedules.
    pub seed: u64,
    /// Requests to issue against the fault-injected engine.
    pub ops: usize,
    /// Store byte budget for the chaotic engine (small on purpose, so
    /// eviction pressure is constant).
    pub budget: u64,
    /// Percent of saves publishing a torn file.
    pub torn_write_pct: u8,
    /// Percent of saves crashing between write and rename.
    pub orphan_tmp_pct: u8,
    /// Percent of saves failing with disk-full.
    pub enospc_pct: u8,
    /// Percent of loads failing with a transient read error.
    pub read_err_pct: u8,
    /// Percent of ops run with an artificially slow stage *and* a
    /// deadline too short for it (forcing typed timeouts + staged
    /// resume).
    pub slow_stage_pct: u8,
    /// Percent of ops preceded by a service "crash" (drop the engine,
    /// reopen over the same directory).
    pub restart_pct: u8,
}

impl ChaosPlan {
    /// The default soak shape for `seed`.
    pub fn seeded(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            ops: 40,
            budget: 48 * 1024,
            torn_write_pct: 12,
            orphan_tmp_pct: 8,
            enospc_pct: 10,
            read_err_pct: 10,
            slow_stage_pct: 12,
            restart_pct: 8,
        }
    }

    fn faults(&self, seed: u64) -> StoreFaults {
        let mut f = StoreFaults::seeded(seed);
        f.torn_write_pct = self.torn_write_pct;
        f.orphan_tmp_pct = self.orphan_tmp_pct;
        f.enospc_pct = self.enospc_pct;
        f.read_err_pct = self.read_err_pct;
        f
    }
}

/// Outcome tally of a store soak. Every op lands in exactly one of
/// `recovered` / `timeouts` / `typed_errors`; the counters below them
/// explain *how* the service coped.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Requests that returned the bit-identical artifact despite any
    /// injected faults along the way.
    pub recovered: u64,
    /// Requests cut off by their deadline with the typed `timeout:`
    /// error (their completed stages stayed cached).
    pub timeouts: u64,
    /// Requests ending in any other typed error (budget refusal
    /// surfaced as degraded-compute is *not* an error; this counts
    /// genuine typed failures).
    pub typed_errors: u64,
    /// Store read/write failures downgraded to compute-without-cache.
    pub degraded: u64,
    /// Artifacts evicted to hold the byte budget.
    pub evictions: u64,
    /// Corrupt (torn/tampered) artifacts detected and quarantined.
    pub corrupt_detected: u64,
    /// Orphaned writer temp files swept during restarts.
    pub tmp_swept: u64,
    /// Simulated service crashes (engine drop + reopen).
    pub restarts: u64,
    /// Peak observed store size (must stay ≤ the budget).
    pub peak_bytes: u64,
}

impl ChaosReport {
    /// Render the tally.
    pub fn json(&self) -> Json {
        let g = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        Json::object()
            .set("recovered", g(self.recovered))
            .set("timeouts", g(self.timeouts))
            .set("typed_errors", g(self.typed_errors))
            .set("degraded", g(self.degraded))
            .set("evictions", g(self.evictions))
            .set("corrupt_detected", g(self.corrupt_detected))
            .set("tmp_swept", g(self.tmp_swept))
            .set("restarts", g(self.restarts))
            .set("peak_bytes", g(self.peak_bytes))
    }
}

/// The request tuples the soak cycles through: small workloads, two
/// PnR seeds, both schedulers — enough key diversity to churn the
/// cache without making the suite slow.
fn soak_tuples() -> Result<Vec<(KnobConfig, Scheduler)>, String> {
    let mut tuples = Vec::new();
    for (workload, seeds) in [("dotprod", &[7u64, 8][..]), ("gemm", &[7][..])] {
        let w = sara_workloads::by_name(workload)
            .ok_or_else(|| format!("chaos: unknown workload {workload}"))?;
        for &seed in seeds {
            let knobs = KnobConfig::default_for(&w, "8x8", seed)?;
            tuples.push((knobs.clone(), Scheduler::Active));
            if seed == 7 {
                tuples.push((knobs, Scheduler::Dense));
            }
        }
    }
    Ok(tuples)
}

/// Run the seeded store soak under `dir`. `progress` is bumped after
/// every op so an external watchdog can detect a hang.
///
/// # Errors
///
/// A contract violation: a served artifact differing from fresh
/// computation, a store exceeding its byte budget, or an untyped
/// (empty) error. Panics inside the engine propagate to the caller —
/// in both the test harness and the binary a panic is a failure.
pub fn store_soak(
    dir: &Path,
    plan: &ChaosPlan,
    progress: &AtomicU64,
) -> Result<ChaosReport, String> {
    let _ = std::fs::remove_dir_all(dir);
    let tuples = soak_tuples()?;

    // Phase 1: fault-free references. Every later response is checked
    // against these bit-for-bit.
    let clean = Engine::open(&dir.join("clean"))?;
    let mut references = Vec::new();
    for (knobs, scheduler) in &tuples {
        let mut sink = crate::engine::no_progress();
        let (_, art) = clean.run(knobs, *scheduler, &mut sink)?;
        references.push(art);
        progress.fetch_add(1, Ordering::Relaxed);
    }
    drop(clean);

    // Phase 2: the chaotic engine — byte-budgeted, fault-injected,
    // periodically "crashed" and reopened.
    let chaos_dir = dir.join("chaos");
    let mut rng = Rng::new(plan.seed);
    let mut engine =
        Engine::open_with(&chaos_dir, Some(plan.budget), Some(plan.faults(rng.draw())))?;
    let mut report = ChaosReport::default();

    for op in 0..plan.ops {
        if rng.below(100) < u64::from(plan.restart_pct) {
            // Simulated kill -9: drop the engine mid-stream (in-memory
            // caches vanish, temp orphans may remain) and reopen over
            // the same directory. Recovery must sweep and rebuild.
            report.tmp_swept += engine.store().counters.tmp_swept.load(Ordering::Relaxed);
            report.degraded += engine.stats.degraded.load(Ordering::Relaxed);
            report.evictions += engine.store().counters.evictions.load(Ordering::Relaxed);
            report.corrupt_detected += engine.stats.corrupt_detected.load(Ordering::Relaxed);
            drop(engine);
            engine =
                Engine::open_with(&chaos_dir, Some(plan.budget), Some(plan.faults(rng.draw())))?;
            report.restarts += 1;
        }

        let which = rng.below(tuples.len() as u64) as usize;
        let (knobs, scheduler) = &tuples[which];
        let slow = rng.below(100) < u64::from(plan.slow_stage_pct);
        let deadline = if slow {
            // A stage delay longer than the deadline: unless every
            // stage is already cached, this must end in a typed
            // timeout, with completed stages kept for the next try.
            engine.set_stage_delay(Some(Duration::from_millis(30)));
            Deadline::in_ms(10)
        } else {
            engine.set_stage_delay(None);
            Deadline::none()
        };

        let mut sink = crate::engine::no_progress();
        match engine.run_with(knobs, *scheduler, deadline, &mut sink) {
            Ok((_, art)) => {
                let expect = &references[which];
                if &art != expect {
                    return Err(format!(
                        "op {op}: served artifact diverges from fresh computation \
                         ({} cycles != {} cycles) — corruption served",
                        art.cycles, expect.cycles
                    ));
                }
                report.recovered += 1;
            }
            Err(e) if e.starts_with(TIMEOUT_PREFIX) => report.timeouts += 1,
            Err(e) if e.trim().is_empty() => {
                return Err(format!("op {op}: empty (untyped) error"));
            }
            Err(_) => report.typed_errors += 1,
        }

        let bytes = engine.store().bytes();
        report.peak_bytes = report.peak_bytes.max(bytes);
        if bytes > plan.budget {
            return Err(format!(
                "op {op}: store holds {bytes} B, budget is {} B — ceiling violated",
                plan.budget
            ));
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }

    engine.set_stage_delay(None);
    report.tmp_swept += engine.store().counters.tmp_swept.load(Ordering::Relaxed);
    report.degraded += engine.stats.degraded.load(Ordering::Relaxed);
    report.evictions += engine.store().counters.evictions.load(Ordering::Relaxed);
    report.corrupt_detected += engine.stats.corrupt_detected.load(Ordering::Relaxed);

    // Epilogue: with faults quiesced, every tuple must still resolve to
    // the reference artifact — the cache healed, nothing stayed wedged.
    let calm = Engine::open_with(&chaos_dir, Some(plan.budget), None)?;
    for ((knobs, scheduler), expect) in tuples.iter().zip(&references) {
        let mut sink = crate::engine::no_progress();
        let (_, art) = calm.run(knobs, *scheduler, &mut sink)?;
        if &art != expect {
            return Err(format!(
                "post-soak: artifact diverges from fresh computation ({} != {} cycles)",
                art.cycles, expect.cycles
            ));
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }
    Ok(report)
}

fn raw_connect(socket: &Path) -> Result<UnixStream, String> {
    UnixStream::connect(socket).map_err(|e| format!("connect {}: {e}", socket.display()))
}

/// Abuse a live server socket: garbage requests, connections dropped
/// before, during, and after a request, and partial writes. After the
/// whole schedule the server must still answer a `ping` — no panic, no
/// wedged worker.
///
/// # Errors
///
/// When the server stops answering, or answers a garbage request with
/// anything but a parseable typed error line.
pub fn transport_soak(
    socket: &Path,
    seed: u64,
    ops: usize,
    progress: &AtomicU64,
) -> Result<(), String> {
    let mut rng = Rng::new(seed);
    for op in 0..ops {
        match rng.below(5) {
            // Garbage line: must come back as one typed error line.
            0 => {
                let mut s = raw_connect(socket)?;
                s.write_all(b"{{{ not json at all\n").map_err(|e| format!("send: {e}"))?;
                let mut line = String::new();
                BufReader::new(s)
                    .read_line(&mut line)
                    .map_err(|e| format!("op {op}: recv after garbage: {e}"))?;
                let doc = Json::parse(line.trim())
                    .map_err(|e| format!("op {op}: unparseable error response: {e}"))?;
                if doc.get("error").and_then(Json::as_str).is_none() {
                    return Err(format!("op {op}: garbage must yield a typed error line"));
                }
            }
            // Valid request, connection dropped without reading the
            // response: the server writes into a closed socket and must
            // shrug it off.
            1 => {
                let mut s = raw_connect(socket)?;
                s.write_all(b"{\"op\": \"run\", \"workload\": \"dotprod\", \"pnr_seed\": 7}\n")
                    .map_err(|e| format!("send: {e}"))?;
                drop(s);
            }
            // Connect-and-vanish.
            2 => {
                let s = raw_connect(socket)?;
                drop(s);
            }
            // Partial request line (no terminating newline), then gone.
            3 => {
                let mut s = raw_connect(socket)?;
                s.write_all(b"{\"op\": \"ru").map_err(|e| format!("send: {e}"))?;
                drop(s);
            }
            // A full valid round trip mixed into the abuse.
            _ => {
                let mut s = raw_connect(socket)?;
                s.write_all(b"{\"op\": \"ping\"}\n").map_err(|e| format!("send: {e}"))?;
                let mut line = String::new();
                BufReader::new(s)
                    .read_line(&mut line)
                    .map_err(|e| format!("op {op}: recv: {e}"))?;
                if !line.contains("\"ok\"") {
                    return Err(format!("op {op}: ping answered {line:?}"));
                }
            }
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }

    // The service survived the whole schedule.
    let mut s = raw_connect(socket)?;
    s.write_all(b"{\"op\": \"ping\"}\n").map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    BufReader::new(s).read_line(&mut line).map_err(|e| format!("final ping: {e}"))?;
    if line.contains("\"ok\"") {
        Ok(())
    } else {
        Err(format!("server no longer answers after transport soak: {line:?}"))
    }
}
