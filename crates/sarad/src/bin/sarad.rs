//! `sarad` — the standalone service binary.
//!
//! ```text
//! sarad [--socket PATH|HOST:PORT] [--cache-dir DIR] [--workers N] [--queue N]
//!       [--cache-budget BYTES[k|m|g]]
//! ```
//!
//! A `--socket` value containing `':'` is a TCP `host:port` address;
//! anything else is a Unix socket path. Runs until a `shutdown` request
//! arrives on the endpoint. Exits 2 on usage errors, 1 on service
//! failures, with one-line diagnostics.

use sarad::server::{default_cache_dir, default_socket, parse_budget};
use sarad::ServerOptions;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: sarad [--socket PATH|HOST:PORT] [--cache-dir DIR] [--workers N] [--queue N] \
         [--cache-budget BYTES[k|m|g]]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ServerOptions {
        socket: default_socket(),
        cache_dir: default_cache_dir(),
        ..ServerOptions::default()
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => opts.socket = PathBuf::from(value(&args, &mut i, "--socket")),
            "--cache-dir" => opts.cache_dir = PathBuf::from(value(&args, &mut i, "--cache-dir")),
            "--workers" => {
                opts.workers = value(&args, &mut i, "--workers").parse().unwrap_or_else(|_| {
                    eprintln!("error: --workers expects a positive integer");
                    std::process::exit(2);
                })
            }
            "--queue" => {
                opts.queue = value(&args, &mut i, "--queue").parse().unwrap_or_else(|_| {
                    eprintln!("error: --queue expects a positive integer");
                    std::process::exit(2);
                })
            }
            "--cache-budget" => {
                let raw = value(&args, &mut i, "--cache-budget");
                opts.cache_budget = Some(parse_budget(&raw).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other}");
                usage();
            }
        }
        i += 1;
    }
    let budget =
        opts.cache_budget.map_or_else(|| "unbounded".to_string(), |b| format!("{b} B budget"));
    eprintln!(
        "sarad: listening on {} (cache {}, {budget}, {} workers, queue {})",
        opts.socket.display(),
        opts.cache_dir.display(),
        opts.workers,
        opts.queue
    );
    if let Err(e) = sarad::serve(&opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
