//! `sarad-chaos` — the service-level chaos soak, as a CI gate.
//!
//! ```text
//! sarad-chaos [--seed N] [--ops N] [--budget BYTES[k|m|g]]
//!             [--transport-ops N] [--watchdog-secs N]
//! ```
//!
//! Runs the seeded store soak (fault-injected engine under a byte
//! budget, with simulated crashes) and then the transport soak against
//! a live in-process server. A watchdog thread monitors forward
//! progress: if no operation completes for `--watchdog-secs`, the
//! harness prints a diagnostic and exits 1 instead of hanging the CI
//! job. Exit 0 means every injected fault resolved to the
//! recover-or-explain contract; anything else is a contract violation.

use sarad::chaos::{store_soak, transport_soak, ChaosPlan};
use sarad::server::parse_budget;
use sarad::{Engine, ServerOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sarad-chaos [--seed N] [--ops N] [--budget BYTES[k|m|g]] \
         [--transport-ops N] [--watchdog-secs N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 0xc4a05u64;
    let mut ops = 40usize;
    let mut budget: Option<u64> = None;
    let mut transport_ops = 30usize;
    let mut watchdog_secs = 60u64;
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = value(&args, &mut i, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed expects an integer");
                    std::process::exit(2);
                })
            }
            "--ops" => {
                ops = value(&args, &mut i, "--ops").parse().unwrap_or_else(|_| {
                    eprintln!("error: --ops expects a positive integer");
                    std::process::exit(2);
                })
            }
            "--budget" => {
                budget = Some(parse_budget(&value(&args, &mut i, "--budget")).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }))
            }
            "--transport-ops" => {
                transport_ops =
                    value(&args, &mut i, "--transport-ops").parse().unwrap_or_else(|_| {
                        eprintln!("error: --transport-ops expects a positive integer");
                        std::process::exit(2);
                    })
            }
            "--watchdog-secs" => {
                watchdog_secs =
                    value(&args, &mut i, "--watchdog-secs").parse().unwrap_or_else(|_| {
                        eprintln!("error: --watchdog-secs expects a positive integer");
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other}");
                usage();
            }
        }
        i += 1;
    }

    let mut plan = ChaosPlan::seeded(seed);
    plan.ops = ops;
    if let Some(b) = budget {
        plan.budget = b;
    }

    // Liveness watchdog: a hang is a contract violation too, and it must
    // fail the job loudly rather than eat the CI timeout.
    let progress = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    {
        let progress = Arc::clone(&progress);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last = 0u64;
            loop {
                std::thread::sleep(Duration::from_secs(watchdog_secs));
                if done.load(Ordering::Relaxed) {
                    return;
                }
                let now = progress.load(Ordering::Relaxed);
                if now == last {
                    eprintln!(
                        "sarad-chaos: WATCHDOG — no forward progress for {watchdog_secs}s \
                         (stuck after {now} ops); a hang violates the recover-or-explain contract"
                    );
                    std::process::exit(1);
                }
                last = now;
            }
        });
    }

    let dir = std::env::temp_dir().join(format!("sarad-chaos-{seed}-{}", std::process::id()));
    eprintln!("sarad-chaos: store soak (seed {seed}, {ops} ops, {} B budget)", plan.budget);
    let report = match store_soak(&dir, &plan, &progress) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sarad-chaos: FAIL (store soak): {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.json().pretty());

    // Transport soak against a live server on a private socket.
    eprintln!("sarad-chaos: transport soak ({transport_ops} ops)");
    let opts = ServerOptions {
        socket: dir.join("chaos.sock"),
        cache_dir: dir.join("transport-cache"),
        workers: 2,
        queue: 8,
        cache_budget: None,
    };
    let engine = match Engine::open(&opts.cache_dir) {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("sarad-chaos: FAIL: {e}");
            std::process::exit(1);
        }
    };
    let serve = {
        let opts = opts.clone();
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || sarad::serve_with(&opts, engine))
    };
    for _ in 0..200 {
        if opts.socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let transport = transport_soak(&opts.socket, seed ^ 0x7a05, transport_ops, &progress);
    if let Ok(mut c) = sarad::Client::connect(&opts.socket) {
        let _ = c.shutdown();
    }
    let _ = serve.join();
    done.store(true, Ordering::Relaxed);
    let _ = std::fs::remove_dir_all(&dir);
    match transport {
        Ok(()) => {
            eprintln!("sarad-chaos: OK — every fault recovered, degraded, or errored typed");
        }
        Err(e) => {
            eprintln!("sarad-chaos: FAIL (transport soak): {e}");
            std::process::exit(1);
        }
    }
}
