//! # sarad
//!
//! The persistent compile-and-simulate service for the SARA stack. The
//! compiler pipeline (lower → CMMC → partition → PnR → simulate) is
//! deterministic in its inputs, and heavy clients — the DSE autotuner,
//! the sweep harness — issue thousands of near-identical requests that
//! differ in a knob or two. `sarad` exploits that shape:
//!
//! * [`engine`] — the staged pipeline with content-addressed caching:
//!   every stage output is keyed by a stable hash of its inputs
//!   (program text, compiler options, chip, PnR seed, scheduler) and
//!   served from an in-memory index or the verified on-disk store.
//!   Identical in-flight requests coalesce (single-flight).
//!   [`engine::CachedEval`] plugs the engine into `sara-dse` as an
//!   [`Evaluator`](sara_dse::Evaluator) backend, so a cache-warm
//!   autotune run performs **zero** recompilations for repeated
//!   (program, flags, chip, seed) tuples.
//! * [`store`] — one JSON artifact per (stage, key) with a payload
//!   content hash checked at read time: corruption is detected and
//!   recomputed, never served.
//! * [`server`] / [`client`] — newline-delimited JSON over a Unix
//!   domain socket or TCP ([`net`] holds the transport abstraction;
//!   an endpoint containing `':'` is a `host:port` address), a bounded
//!   connection queue with typed backpressure rejection, per-stage
//!   progress events, and a stats report (`sarac --server` /
//!   `sarac --connect` wire these into the compiler driver).

pub mod chaos;
pub mod client;
pub mod engine;
pub mod net;
pub mod server;
pub mod store;

pub use client::{Client, ClientError, RetryPolicy};
pub use engine::{stage_keys, CachedEval, Deadline, Engine, Scheduler, SimArtifact, StageKeys};
pub use net::{Conn, Endpoint, Listener};
pub use server::{serve, serve_on, serve_with, ServerOptions};
pub use store::{Store, StoreFaults, StoreRead};
