//! Transport abstraction: the line-JSON service protocol over either a
//! Unix domain socket or TCP.
//!
//! One spelling rule applies everywhere an endpoint is written down
//! (`sarad --socket`, `sarac --server --socket`, `sarac --connect`):
//! a value containing `':'` is a `host:port` TCP address; anything else
//! is a Unix socket path. The protocol itself is transport-agnostic —
//! [`Conn`] implements `Read`/`Write`/`try_clone` over both, so the
//! server and client never branch on the transport past connect time.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// Where a `sarad` service listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket at this path.
    Unix(PathBuf),
    /// A TCP `host:port` address.
    Tcp(String),
}

impl Endpoint {
    /// Parse an endpoint spelling: anything containing `':'` is a TCP
    /// `host:port` address, anything else a Unix socket path.
    pub fn parse(s: &str) -> Endpoint {
        if s.contains(':') {
            Endpoint::Tcp(s.to_string())
        } else {
            Endpoint::Unix(PathBuf::from(s))
        }
    }

    /// The Unix-socket endpoint for a path (no spelling rule applied).
    pub fn unix(path: &Path) -> Endpoint {
        Endpoint::Unix(path.to_path_buf())
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "{a}"),
        }
    }
}

/// One protocol connection over either transport.
#[derive(Debug)]
pub enum Conn {
    /// Over a Unix domain socket.
    Unix(UnixStream),
    /// Over TCP.
    Tcp(TcpStream),
}

impl Conn {
    /// Connect to an endpoint.
    ///
    /// # Errors
    ///
    /// The underlying connect error (absent socket, connection refused,
    /// unresolvable address).
    pub fn connect(ep: &Endpoint) -> io::Result<Conn> {
        match ep {
            Endpoint::Unix(p) => UnixStream::connect(p).map(Conn::Unix),
            Endpoint::Tcp(a) => TcpStream::connect(a.as_str()).map(Conn::Tcp),
        }
    }

    /// A second handle to the same connection (for split read/write).
    ///
    /// # Errors
    ///
    /// The underlying clone error.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A listening socket over either transport.
#[derive(Debug)]
pub enum Listener {
    /// A bound Unix listener and the path it owns (removed on
    /// [`Listener::close`]).
    Unix(UnixListener, PathBuf),
    /// A bound TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind an endpoint. For Unix sockets the parent directory is
    /// created and any stale socket file replaced; for TCP, port `0`
    /// binds an ephemeral port (read it back via
    /// [`Listener::local_endpoint`]).
    ///
    /// # Errors
    ///
    /// A one-line diagnostic naming the endpoint.
    pub fn bind(ep: &Endpoint) -> Result<Listener, String> {
        match ep {
            Endpoint::Unix(path) => {
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent).map_err(|e| {
                        format!("cannot create socket dir {}: {e}", parent.display())
                    })?;
                }
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path)
                    .map(|l| Listener::Unix(l, path.clone()))
                    .map_err(|e| format!("cannot bind {}: {e}", path.display()))
            }
            Endpoint::Tcp(addr) => TcpListener::bind(addr.as_str())
                .map(Listener::Tcp)
                .map_err(|e| format!("cannot bind {addr}: {e}")),
        }
    }

    /// Accept one connection (blocking).
    ///
    /// # Errors
    ///
    /// The underlying accept error.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    /// The endpoint this listener is actually bound to. For TCP this
    /// resolves an ephemeral port `0` to the real one, so it is also
    /// the address a self-connection (shutdown wake) must use.
    pub fn local_endpoint(&self) -> Endpoint {
        match self {
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
            Listener::Tcp(l) => {
                Endpoint::Tcp(l.local_addr().map_or_else(|_| "?:?".to_string(), |a| a.to_string()))
            }
        }
    }

    /// Release transport resources: removes the Unix socket file
    /// (TCP needs no cleanup).
    pub fn close(&self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spelling_rule_splits_on_colon() {
        assert_eq!(Endpoint::parse("127.0.0.1:7777"), Endpoint::Tcp("127.0.0.1:7777".into()));
        assert_eq!(Endpoint::parse("localhost:0"), Endpoint::Tcp("localhost:0".into()));
        assert_eq!(Endpoint::parse("/tmp/sarad.sock"), Endpoint::Unix("/tmp/sarad.sock".into()));
        assert_eq!(Endpoint::parse("relative.sock"), Endpoint::Unix("relative.sock".into()));
    }

    #[test]
    fn tcp_listener_reports_its_ephemeral_port() {
        let l = Listener::bind(&Endpoint::parse("127.0.0.1:0")).unwrap();
        let ep = l.local_endpoint();
        let Endpoint::Tcp(addr) = &ep else { panic!("want tcp endpoint, got {ep}") };
        assert!(!addr.ends_with(":0"), "port 0 must resolve to the bound port, got {addr}");
        // And the reported endpoint is connectable.
        let mut conn = Conn::connect(&ep).unwrap();
        let accepted = l.accept().unwrap();
        use std::io::Write as _;
        conn.write_all(b"x").unwrap();
        drop(accepted);
    }
}
