//! Debug aid: classify the first N generated cases so tests can pick
//! seeds with known outcomes. `cargo run -p sara-fuzz --example probe`.

use sara_fuzz::gen;
use sara_fuzz::oracle::{silence_panics, Oracle, Verdict};

fn main() {
    silence_panics();
    for seed in 0..32u64 {
        let case = gen::generate(seed);
        let oracle = Oracle { relax_credits: case.cfg.relax_credits, ..Oracle::default() };
        let v = oracle.run(&case.program);
        let s = match &v {
            Verdict::Pass { cycles } => format!("PASS {cycles}"),
            Verdict::Reject { stage, reason } => format!("REJECT {stage}: {reason}"),
            Verdict::Failure { kind, detail } => format!("FAILURE {kind:?}: {detail}"),
        };
        println!("seed {seed}: {s}");
    }
}
