//! Debug aid: compile + simulate a `.sara` file and dump per-unit
//! firing counts and DRAM images next to the interpreter's.

use plasticine_arch::ChipSpec;
use plasticine_sim::{simulate, SimConfig};
use sara_core::compile::{compile, CompilerOptions};
use sara_ir::interp::Interp;
use sara_ir::MemKind;

fn main() {
    let path = std::env::args().nth(1).expect("usage: probe2 FILE");
    let text = std::fs::read_to_string(&path).unwrap();
    let p = sara_fuzz::textio::from_text(&text).unwrap();
    let chip = ChipSpec::small_8x8();
    let reference = Interp::new(&p).run().unwrap();
    let mut compiled = compile(&p, &chip, &CompilerOptions::default()).unwrap();
    sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 42).unwrap();
    let out = simulate(&compiled.vudfg, &chip, &SimConfig::default()).unwrap();
    for (i, u) in compiled.vudfg.units.iter().enumerate() {
        println!("unit {i}: {}", u.label);
    }
    for s in &compiled.vudfg.streams {
        println!(
            "stream {} -> {}: {}",
            compiled.vudfg.units[s.src.0 as usize].label,
            compiled.vudfg.units[s.dst.0 as usize].label,
            s.label
        );
    }
    let mut units: Vec<_> = out.stats.unit_firings.iter().collect();
    units.sort();
    for (label, n) in units {
        println!("{n:>6}  {label}");
    }
    for (mi, m) in p.mems.iter().enumerate() {
        if m.kind != MemKind::Dram {
            continue;
        }
        let mem = sara_ir::MemId(mi as u32);
        println!("interp {}: {:?}", m.name, reference.mem[mi]);
        println!("fabric {}: {:?}", m.name, out.dram_final.get(&mem));
    }
}
