//! End-to-end smoke tests for the `sara-fuzz` binary: a planted failure
//! must be detected, minimized to a smaller replayable artifact, and
//! reported with exit code 1; a small clean budget must exit 0.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sara-fuzz")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sara-fuzz-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// `--plant` prepends a known-good program as case 0; a tiny cycle
/// budget turns it into a deterministic sim failure the whole pipeline
/// must handle: classify, minimize, write artifacts, exit nonzero.
#[test]
fn planted_failure_is_minimized_into_artifacts() {
    let dir = scratch_dir("plant");
    let out = Command::new(bin())
        .args(["--plant", "--cases", "0", "--max-cycles", "200", "--min-budget", "80"])
        .arg("--artifact-dir")
        .arg(&dir)
        .output()
        .expect("run sara-fuzz");
    assert_eq!(out.status.code(), Some(1), "planted failure must exit 1");

    let orig = dir.join("case-000000.orig.sara");
    let min = dir.join("case-000000.min.sara");
    let report = dir.join("case-000000.report.txt");
    for f in [&orig, &min, &report] {
        assert!(f.exists(), "missing artifact {}", f.display());
    }

    let orig_p = sara_fuzz::textio::from_text(&std::fs::read_to_string(&orig).unwrap())
        .expect("orig artifact parses");
    let min_p = sara_fuzz::textio::from_text(&std::fs::read_to_string(&min).unwrap())
        .expect("min artifact parses");
    let (before, after) =
        (sara_fuzz::minimize::size_of(&orig_p), sara_fuzz::minimize::size_of(&min_p));
    assert!(
        after < before,
        "minimizer must shrink the planted case ({before} -> {after} size units)"
    );

    let rep = std::fs::read_to_string(&report).unwrap();
    assert!(rep.contains("class: simfail@"), "report records the failure class:\n{rep}");

    // The minimized artifact must replay to the same failure class.
    let replay = Command::new(bin())
        .arg("--replay")
        .arg(&min)
        .args(["--max-cycles", "200"])
        .output()
        .expect("replay");
    assert_eq!(replay.status.code(), Some(1), "minimized case must still fail under replay");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A small clean budget: every case passes or is a typed reject, the
/// process exits 0 and writes no artifacts.
#[test]
fn small_clean_budget_exits_zero() {
    let dir = scratch_dir("clean");
    let out = Command::new(bin())
        .args(["--cases", "4", "--seed", "0"])
        .arg("--artifact-dir")
        .arg(&dir)
        .output()
        .expect("run sara-fuzz");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "clean run must exit 0; stderr:\n{stderr}");
    assert!(!dir.exists(), "clean run must not create artifacts");
}

/// Malformed CLI usage: one-line diagnostic on stderr, exit code 2, no
/// panic backtrace.
#[test]
fn bad_usage_is_a_one_line_diagnostic() {
    for args in [&["--cases"][..], &["--cases", "many"][..], &["--frobnicate"][..]] {
        let out = Command::new(bin()).args(args).output().expect("run sara-fuzz");
        assert_eq!(out.status.code(), Some(2), "bad usage {args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error:") || stderr.starts_with("usage:"), "{stderr}");
        assert!(!stderr.contains("panicked"), "no panic backtrace: {stderr}");
    }
}
