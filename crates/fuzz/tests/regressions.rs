//! One named test per real bug found by the differential fuzzer during
//! development. Each program under `fuzz_regressions/` is the minimized
//! reproducer (delta-debugged by `sara_fuzz::minimize`, then checked in
//! as a replayable text artifact).

use sara_fuzz::oracle::{Oracle, Verdict};
use sara_fuzz::textio;

fn run(text: &str) -> Verdict {
    let p = textio::from_text(text).expect("regression program parses");
    Oracle::default().run(&p)
}

/// Bug 1: `lower.rs` kept FIFO writers in a map keyed by memory only, so
/// a second writer hyperblock silently overwrote the first — one arm's
/// stores were never wired into the dataflow graph and the consumer
/// deadlocked ("wb stalled on 'data input'"). Multi-writer FIFOs are now
/// a typed `CompileError::Unpartitionable` reject.
#[test]
fn multi_writer_fifo_is_a_typed_reject() {
    let v = run(include_str!("fuzz_regressions/multi_writer_fifo.sara"));
    match v {
        Verdict::Reject { reason, .. } => {
            assert!(
                reason.contains("writer hyperblocks"),
                "expected the multi-writer fifo diagnostic, got: {reason}"
            );
        }
        other => panic!("expected a typed compile reject, got {other:?}"),
    }
}

/// Bug 2: route-through elimination (`opt_ir::rtelm`) removed a pure
/// copy `m1[i] = m0[i]` sitting under a *branch arm*, rewiring readers
/// of `m1` to `m0`. On iterations where the interpreter skips the copy,
/// readers must see stale data — after the rewrite they saw `m0`'s
/// fresh values. The pass now refuses conditional copies.
#[test]
fn conditional_route_through_copy_is_kept() {
    let v = run(include_str!("fuzz_regressions/conditional_copy_rtelm.sara"));
    match v {
        Verdict::Pass { .. } => {}
        other => panic!("expected pass, got {other:?}"),
    }
}

/// Bug 3: CMMC transitive reduction removed the direct RAW token edge
/// then-arm → reader because a chain then-arm → else-arm → reader
/// existed. But a skipped branch arm releases its tokens *vacuously*
/// (before upstream writes complete), so on taken-then iterations the
/// reader ran against an unwritten buffer. The reduction now only
/// relays ordering through unconditional accesses.
#[test]
fn branch_arm_token_chains_are_not_reduced_away() {
    let v = run(include_str!("fuzz_regressions/branch_arm_token_reduction.sara"));
    match v {
        Verdict::Pass { .. } => {}
        other => panic!("expected pass, got {other:?}"),
    }
}
