//! Delta-debugging case minimizer.
//!
//! Greedy reduction over program-level transformations: remove a
//! controller subtree, shrink a loop's trip count or parallelization,
//! drop a store (plus its dead upstream computation), or drop an unused
//! memory. A candidate is accepted only if it still validates *and* the
//! oracle reproduces the same failure class — the classic ddmin accept
//! rule, which keeps the minimizer honest even when a transformation
//! changes program semantics.
//!
//! All transformations rebuild the program with dense ID remaps
//! (controllers, memories, and expression slots are index-based), so the
//! minimized program is a self-contained, replayable artifact.

use crate::oracle::Oracle;
use sara_ir::{Bound, CtrlId, CtrlKind, Expr, ExprId, Hyperblock, MemId, Program};
use std::collections::{HashMap, HashSet};

/// Outcome of a minimization run.
#[derive(Debug)]
pub struct Minimized {
    pub program: Program,
    /// Oracle invocations spent.
    pub oracle_calls: usize,
    /// Size (exprs + ctrls + mems) before and after.
    pub size_before: usize,
    pub size_after: usize,
}

/// Rough program size: expression slots + controllers + memories.
pub fn size_of(p: &Program) -> usize {
    p.total_exprs() + p.ctrls.len() + p.mems.len()
}

/// Greedily minimize `p` while the oracle keeps reproducing failure
/// class `class`, spending at most `budget` oracle invocations.
pub fn minimize(p: &Program, oracle: &Oracle, class: &str, budget: usize) -> Minimized {
    let size_before = size_of(p);
    let mut cur = p.clone();
    let mut calls = 0usize;
    let mut progress = true;
    while progress && calls < budget {
        progress = false;
        for cand in candidates(&cur) {
            if calls >= budget {
                break;
            }
            if size_of(&cand) >= size_of(&cur) {
                continue;
            }
            if cand.validate().is_err() {
                continue;
            }
            calls += 1;
            if oracle.run(&cand).failure_class().as_deref() == Some(class) {
                cur = cand;
                progress = true;
                break;
            }
        }
    }
    let size_after = size_of(&cur);
    Minimized { program: cur, oracle_calls: calls, size_before, size_after }
}

/// All one-step reduction candidates of `p`, biggest reductions first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // 1. Remove controller subtrees (larger subtrees first so the greedy
    //    loop takes big bites when it can).
    let mut subtrees: Vec<(usize, CtrlId)> = (0..p.ctrls.len())
        .map(CtrlId::from_index)
        .filter(|c| p.ctrls[c.index()].parent.is_some())
        .map(|c| (subtree_size(p, c), c))
        .collect();
    subtrees.sort_by_key(|t| std::cmp::Reverse(t.0));
    for (_, c) in subtrees {
        if let Some(q) = remove_subtree(p, c) {
            out.push(q);
        }
    }
    // 2. Drop individual stores (with their now-dead upstream exprs).
    for (ci, c) in p.ctrls.iter().enumerate() {
        if let CtrlKind::Leaf(hb) = &c.kind {
            for (ei, e) in hb.exprs.iter().enumerate() {
                if matches!(e, Expr::Store { .. }) {
                    let mut q = p.clone();
                    let mut drop: HashSet<usize> = HashSet::new();
                    drop.insert(ei);
                    if let CtrlKind::Leaf(h) = &mut q.ctrls[ci].kind {
                        if let Some(nh) = drop_exprs(hb, &drop) {
                            *h = nh;
                            out.push(dce(&q));
                        }
                    }
                }
            }
        }
    }
    // 3. Shrink loop trip counts and parallelization factors.
    for (ci, c) in p.ctrls.iter().enumerate() {
        if let CtrlKind::Loop(spec) = &c.kind {
            if let (Bound::Const(lo), Bound::Const(hi)) = (spec.min, spec.max) {
                let trip = (hi - lo + spec.step.abs() - 1) / spec.step.abs().max(1);
                if spec.step > 0 && trip > 1 {
                    let mut q = p.clone();
                    if let CtrlKind::Loop(s) = &mut q.ctrls[ci].kind {
                        s.max = Bound::Const(lo + (trip / 2).max(1) * s.step);
                    }
                    out.push(q);
                }
            }
            if spec.par > 1 {
                let mut q = p.clone();
                if let CtrlKind::Loop(s) = &mut q.ctrls[ci].kind {
                    s.par = 1;
                }
                out.push(q);
            }
        }
        if let CtrlKind::DoWhile { max_iter, .. } = &c.kind {
            if *max_iter > 1 {
                let mut q = p.clone();
                if let CtrlKind::DoWhile { max_iter: m, .. } = &mut q.ctrls[ci].kind {
                    *m /= 2;
                }
                out.push(q);
            }
        }
    }
    // 4. Drop unused memories.
    for mi in 0..p.mems.len() {
        let mem = MemId(mi as u32);
        if mem_unused(p, mem) {
            if let Some(q) = remove_mem(p, mem) {
                out.push(q);
            }
        }
    }
    out
}

// Note: trip-count shrinking (candidate class 3) intentionally halves
// toward 1 rather than bisecting exhaustively; each accepted candidate
// re-enters the greedy loop, so repeated halving converges the same way.

/// Number of controllers in the subtree rooted at `c`.
fn subtree_size(p: &Program, c: CtrlId) -> usize {
    let mut n = 0;
    p.visit_preorder(c, &mut |_| n += 1);
    n
}

trait CtrlIdExt {
    fn from_index(i: usize) -> CtrlId;
}

impl CtrlIdExt for CtrlId {
    fn from_index(i: usize) -> CtrlId {
        CtrlId(i as u32)
    }
}

/// Remove the subtree rooted at `c`, renumbering controllers and
/// dropping any expression (plus dependents) that referenced a removed
/// controller. Returns `None` when the removal is structurally hopeless
/// (e.g. it would orphan the root).
fn remove_subtree(p: &Program, c: CtrlId) -> Option<Program> {
    let mut removed: HashSet<usize> = HashSet::new();
    p.visit_preorder(c, &mut |x| {
        removed.insert(x.index());
    });
    if removed.contains(&0) {
        return None;
    }
    // Dense remap of surviving controllers.
    let mut remap: HashMap<usize, u32> = HashMap::new();
    let mut next = 0u32;
    for i in 0..p.ctrls.len() {
        if !removed.contains(&i) {
            remap.insert(i, next);
            next += 1;
        }
    }
    let mut q = Program::new(&p.name);
    q.ctrls.clear();
    q.mems = p.mems.clone();
    for (i, c) in p.ctrls.iter().enumerate() {
        if removed.contains(&i) {
            continue;
        }
        let mut nc = c.clone();
        nc.parent = nc.parent.and_then(|par| remap.get(&par.index()).map(|r| CtrlId(*r)));
        nc.children = nc
            .children
            .iter()
            .filter_map(|ch| remap.get(&ch.index()).map(|r| CtrlId(*r)))
            .collect();
        // Drop exprs referencing removed controllers (and their
        // dependents).
        if let CtrlKind::Leaf(hb) = &nc.kind {
            let drop: HashSet<usize> = hb
                .exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| expr_ctrls(e).iter().any(|x| removed.contains(&x.index())))
                .map(|(ei, _)| ei)
                .collect();
            let nh = if drop.is_empty() { hb.clone() } else { drop_exprs(hb, &drop)? };
            // Remap surviving controller references.
            let mut nh2 = nh;
            for e in &mut nh2.exprs {
                remap_expr_ctrls(e, &remap);
            }
            nc.kind = CtrlKind::Leaf(nh2);
        }
        q.ctrls.push(nc);
    }
    Some(dce(&q))
}

/// Controller ids referenced by an expression.
fn expr_ctrls(e: &Expr) -> Vec<CtrlId> {
    match e {
        Expr::Idx(c) | Expr::IsFirst(c) | Expr::IsLast(c) => vec![*c],
        Expr::Reduce { over, .. } => vec![*over],
        _ => vec![],
    }
}

fn remap_expr_ctrls(e: &mut Expr, remap: &HashMap<usize, u32>) {
    let fix = |c: &mut CtrlId| {
        if let Some(r) = remap.get(&c.index()) {
            *c = CtrlId(*r);
        }
    };
    match e {
        Expr::Idx(c) | Expr::IsFirst(c) | Expr::IsLast(c) => fix(c),
        Expr::Reduce { over, .. } => fix(over),
        _ => {}
    }
}

/// Drop the slots in `drop` plus every transitive dependent, remapping
/// surviving operand ids. Returns `None` if everything would be dropped
/// in a way that leaves dangling references (never happens for forward
/// SSA, but be defensive).
fn drop_exprs(hb: &Hyperblock, drop: &HashSet<usize>) -> Option<Hyperblock> {
    let n = hb.exprs.len();
    let mut dead = vec![false; n];
    for &d in drop {
        if d < n {
            dead[d] = true;
        }
    }
    // Forward cascade: an expr depending on a dead expr dies too.
    for i in 0..n {
        if dead[i] {
            continue;
        }
        if hb.exprs[i].operands().iter().any(|o| dead[o.index()]) {
            dead[i] = true;
        }
    }
    let mut remap: HashMap<usize, u32> = HashMap::new();
    let mut next = 0u32;
    for (i, &d) in dead.iter().enumerate() {
        if !d {
            remap.insert(i, next);
            next += 1;
        }
    }
    let mut exprs = Vec::with_capacity(next as usize);
    for (i, e) in hb.exprs.iter().enumerate() {
        if dead[i] {
            continue;
        }
        let mut ne = e.clone();
        if !remap_expr_operands(&mut ne, &remap) {
            return None;
        }
        exprs.push(ne);
    }
    Some(Hyperblock { exprs })
}

/// Remap operand ids; false if an operand no longer exists.
fn remap_expr_operands(e: &mut Expr, remap: &HashMap<usize, u32>) -> bool {
    let fix = |x: &mut ExprId, remap: &HashMap<usize, u32>| -> bool {
        match remap.get(&x.index()) {
            Some(r) => {
                *x = ExprId(*r);
                true
            }
            None => false,
        }
    };
    match e {
        Expr::Const(_) | Expr::Idx(_) | Expr::IsFirst(_) | Expr::IsLast(_) => true,
        Expr::Un(_, a) => fix(a, remap),
        Expr::Bin(_, a, b) => fix(a, remap) && fix(b, remap),
        Expr::Mux { c, t, f } => fix(c, remap) && fix(t, remap) && fix(f, remap),
        Expr::Load { addr, .. } => addr.iter_mut().all(|a| fix(a, remap)),
        Expr::Store { addr, value, cond, .. } => {
            addr.iter_mut().all(|a| fix(a, remap))
                && fix(value, remap)
                && cond.as_mut().map(|c| fix(c, remap)).unwrap_or(true)
        }
        Expr::Reduce { value, .. } => fix(value, remap),
    }
}

/// Dead-code elimination inside every leaf: keep only the backward
/// closure of stores (the side-effecting roots).
pub fn dce(p: &Program) -> Program {
    let mut q = p.clone();
    for c in &mut q.ctrls {
        if let CtrlKind::Leaf(hb) = &mut c.kind {
            let n = hb.exprs.len();
            let mut live = vec![false; n];
            let mut stack: Vec<usize> = hb
                .exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, Expr::Store { .. }))
                .map(|(i, _)| i)
                .collect();
            while let Some(i) = stack.pop() {
                if live[i] {
                    continue;
                }
                live[i] = true;
                for o in hb.exprs[i].operands() {
                    stack.push(o.index());
                }
            }
            let drop: HashSet<usize> = (0..n).filter(|i| !live[*i]).collect();
            if !drop.is_empty() {
                if let Some(nh) = drop_exprs(hb, &drop) {
                    *hb = nh;
                }
            }
        }
    }
    q
}

/// A memory is unused when no expression accesses it and no controller
/// reads it as a condition or dynamic bound.
fn mem_unused(p: &Program, mem: MemId) -> bool {
    if !p.accesses_of(mem).is_empty() {
        return false;
    }
    for c in &p.ctrls {
        match &c.kind {
            CtrlKind::Branch { cond } | CtrlKind::DoWhile { cond, .. } if *cond == mem => {
                return false;
            }
            CtrlKind::Loop(s) if s.min == Bound::Reg(mem) || s.max == Bound::Reg(mem) => {
                return false;
            }
            _ => {}
        }
    }
    true
}

/// Remove memory `mem`, renumbering all higher memory ids.
fn remove_mem(p: &Program, mem: MemId) -> Option<Program> {
    let mut q = p.clone();
    q.mems.remove(mem.index());
    let shift = |m: &mut MemId| {
        if m.0 > mem.0 {
            m.0 -= 1;
        }
    };
    for c in &mut q.ctrls {
        match &mut c.kind {
            CtrlKind::Branch { cond } => shift(cond),
            CtrlKind::DoWhile { cond, .. } => shift(cond),
            CtrlKind::Loop(s) => {
                if let Bound::Reg(m) = &mut s.min {
                    shift(m);
                }
                if let Bound::Reg(m) = &mut s.max {
                    shift(m);
                }
            }
            CtrlKind::Leaf(hb) => {
                for e in &mut hb.exprs {
                    match e {
                        Expr::Load { mem: m, .. } | Expr::Store { mem: m, .. } => shift(m),
                        _ => {}
                    }
                }
            }
            CtrlKind::Root => {}
        }
    }
    Some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{Oracle, Verdict};
    use plasticine_sim::SimConfig;

    #[test]
    fn dce_removes_dead_chains() {
        let mut p = Program::new("d");
        let root = p.root();
        let dst = p.dram("dst", &[4], sara_ir::DType::I64, sara_ir::MemInit::Zero);
        let l = p.add_loop(root, "l", sara_ir::LoopSpec::new(0, 4, 1)).unwrap();
        let hb = p.add_leaf(l, "h").unwrap();
        let i = p.idx(hb, l).unwrap();
        // dead chain
        let c = p.c_i64(hb, 9).unwrap();
        let _dead = p.bin(hb, sara_ir::BinOp::Mul, c, i).unwrap();
        // live store
        p.store(hb, dst, &[i], i).unwrap();
        let before = p.total_exprs();
        let q = dce(&p);
        assert!(q.total_exprs() < before);
        q.validate().unwrap();
    }

    #[test]
    fn minimizer_shrinks_a_timeout_case() {
        // A tiny cycle budget makes any simulating program a "failure";
        // the minimizer must then produce a smaller program with the
        // same failure class.
        let case = crate::gen::generate(0);
        let oracle = Oracle {
            sim_cfg: SimConfig { max_cycles: 3, ..SimConfig::default() },
            relax_credits: case.cfg.relax_credits,
            ..Oracle::default()
        };
        let v = oracle.run(&case.program);
        let class = v.failure_class().expect("tiny budget must fail");
        let m = minimize(&case.program, &oracle, &class, 200);
        assert!(m.size_after < m.size_before, "no shrink: {m:?}");
        m.program.validate().unwrap();
        match oracle.run(&m.program) {
            Verdict::Failure { .. } => {}
            other => panic!("minimized case no longer fails: {other:?}"),
        }
    }
}
