//! Seeded random-program generator with a widened grammar.
//!
//! Compared to the generators in `proptest_invariants.rs` and
//! `proptest_diff.rs` (fixed two/three-stage pipelines), this one draws
//! from the full control vocabulary the IR validates: deep loop nesting,
//! branches over computed conditions, do-while loops with register-carried
//! exit conditions, dynamic (register-read) loop bounds, parallelization
//! factors on any loop, sequential vs. pipelined schedules (which flips
//! multibuffer depths), integer and float element types, and FIFO
//! channels between stages.
//!
//! Every generated program is structurally valid (`Program::validate`
//! passes) and terminates under the reference interpreter — the generator
//! only emits grammar the IR accepts, so any downstream panic, deadlock
//! or divergence is a pipeline bug, not a generator artifact.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sara_ir::{BinOp, Bound, DType, Elem, LoopSpec, MemId, MemInit, Program, Schedule, UnOp};

/// Tuning knobs for one generated case.
#[derive(Debug, Clone)]
pub struct GenCfg {
    /// Trip count of the outer stage loop.
    pub outer_trip: i64,
    /// Elements per tile (inner loop trips).
    pub tile: i64,
    /// Elementwise stages between load and writeback.
    pub stages: usize,
    /// Inner-loop parallelization factor.
    pub inner_par: u32,
    /// Wrap one middle stage in a branch.
    pub use_branch: bool,
    /// Wrap one middle stage in a do-while refinement loop.
    pub use_do_while: bool,
    /// Read the inner trip count from a register (dynamic bound).
    pub dynamic_bound: bool,
    /// Split one stage's tile loop into a 2-deep nest.
    pub deep_nest: bool,
    /// Route one stage through a FIFO instead of an SRAM buffer.
    pub use_fifo: bool,
    /// Sequential (vs pipelined) schedule on the outer loop.
    pub sequential_outer: bool,
    /// Integer (vs float) element type.
    pub integer: bool,
    /// End with a cross-iteration reduction instead of a writeback.
    pub reduce_tail: bool,
    /// Relax CMMC credits in the compiler options.
    pub relax_credits: bool,
    /// DRAM init / PnR seed.
    pub seed: u64,
}

impl GenCfg {
    /// Draw a configuration from a seeded RNG.
    pub fn sample(rng: &mut SmallRng) -> Self {
        GenCfg {
            outer_trip: rng.gen_range(1i64..5),
            tile: rng.gen_range(2i64..13),
            stages: rng.gen_range(1usize..4),
            inner_par: [1u32, 1, 2, 4, 8][rng.gen_range(0usize..5)],
            use_branch: rng.gen_bool(0.4),
            use_do_while: rng.gen_bool(0.3),
            dynamic_bound: rng.gen_bool(0.3),
            deep_nest: rng.gen_bool(0.3),
            use_fifo: rng.gen_bool(0.2),
            sequential_outer: rng.gen_bool(0.25),
            integer: rng.gen_bool(0.3),
            reduce_tail: rng.gen_bool(0.5),
            relax_credits: rng.gen_bool(0.5),
            seed: rng.gen_range(0u64..1000),
        }
    }
}

/// A generated case: the program, the memory holding the checked output,
/// and the configuration that produced it.
#[derive(Debug, Clone)]
pub struct Case {
    pub program: Program,
    pub dst: MemId,
    pub cfg: GenCfg,
}

/// Generate the case for `case_seed` (deterministic).
pub fn generate(case_seed: u64) -> Case {
    let mut rng = SmallRng::seed_from_u64(case_seed);
    let cfg = GenCfg::sample(&mut rng);
    let (program, dst) = build(&cfg, &mut rng);
    Case { program, dst, cfg }
}

/// Materialize a program from a configuration. `rng` draws the leftover
/// micro-choices (op selection, branch modulus, do-while iteration cap).
pub fn build(cfg: &GenCfg, rng: &mut SmallRng) -> (Program, MemId) {
    let dtype = if cfg.integer { DType::I64 } else { DType::F64 };
    let n = (cfg.outer_trip * cfg.tile) as usize;
    // FIFO stage buffers are order-sensitive: parallel lanes and re-run
    // do-while bodies would push elements in a different order (or a
    // different number of times) than the sequential interpreter pops
    // them, which is a generator artifact, not a pipeline bug. Keep the
    // grammar valid by restricting those combinations.
    let use_fifo = cfg.use_fifo;
    let use_do_while = cfg.use_do_while && !use_fifo;
    let mut p = Program::new("fuzz");
    let root = p.root();
    let src = if cfg.integer {
        p.dram("src", &[n], dtype, MemInit::RandomI { seed: cfg.seed, lo: -50, hi: 50 })
    } else {
        p.dram("src", &[n], dtype, MemInit::RandomF { seed: cfg.seed })
    };
    let dst_len = if cfg.reduce_tail { cfg.outer_trip as usize } else { n };
    let dst = p.dram("dst", &[dst_len], dtype, MemInit::Zero);
    let bufs: Vec<MemId> = (0..=cfg.stages)
        .map(|i| {
            if use_fifo && i == 1 {
                p.fifo(&format!("q{i}"), cfg.tile as usize + 4, dtype)
            } else {
                p.sram(&format!("m{i}"), &[cfg.tile as usize], dtype)
            }
        })
        .collect();

    let la = p.add_loop(root, "A", LoopSpec::new(0, cfg.outer_trip, 1)).unwrap();
    if cfg.sequential_outer {
        p.set_schedule(la, Schedule::Sequential);
    }

    // Dynamic bound: a register holding the tile size. The compiler's
    // rate rule requires a control register to be written exactly once
    // per activation of the consuming level, so the setup leaf lives
    // *inside* the outer loop, as the first stage of each iteration.
    let tile_bound = if cfg.dynamic_bound {
        let b = p.reg("trip", DType::I64);
        let hb = p.add_leaf(la, "setup").unwrap();
        let t = p.c_i64(hb, cfg.tile).unwrap();
        let z = p.c_i64(hb, 0).unwrap();
        p.store(hb, b, &[z], t).unwrap();
        Some(b)
    } else {
        None
    };
    let inner_max = match tile_bound {
        Some(b) => Bound::Reg(b),
        None => Bound::Const(cfg.tile),
    };
    // Dynamically-bounded loops can't be spatially unrolled the same way,
    // and FIFO push order must match the interpreter's sequential order;
    // keep par=1 in both cases so the generator stays inside the valid
    // grammar.
    let inner_par = if cfg.dynamic_bound || use_fifo { 1 } else { cfg.inner_par };

    // stage 0: load a tile from DRAM.
    {
        let spec = LoopSpec { min: Bound::Const(0), max: inner_max, step: 1, par: inner_par };
        let l = p.add_loop(la, "load", spec).unwrap();
        let hb = p.add_leaf(l, "ld").unwrap();
        let ia = p.idx(hb, la).unwrap();
        let ij = p.idx(hb, l).unwrap();
        let t = p.c_i64(hb, cfg.tile).unwrap();
        let b = p.bin(hb, BinOp::Mul, ia, t).unwrap();
        let a = p.bin(hb, BinOp::Add, b, ij).unwrap();
        let v = p.load(hb, src, &[a]).unwrap();
        store_stage(&mut p, hb, bufs[0], ij, v);
    }

    // Middle stages, each optionally wrapped in richer control.
    let branch_stage = if cfg.use_branch { rng.gen_range(0..cfg.stages) } else { cfg.stages };
    let dw_stage = if use_do_while { rng.gen_range(0..cfg.stages) } else { cfg.stages };
    for s in 0..cfg.stages {
        let op = rng.gen_range(0u8..5);
        if s == branch_stage {
            emit_branch_stage(&mut p, cfg, la, bufs[s], bufs[s + 1], inner_max, inner_par, op, rng);
        } else if s == dw_stage {
            emit_do_while_stage(&mut p, cfg, la, s, bufs[s], bufs[s + 1], op, rng);
        } else if cfg.deep_nest && s == 0 && cfg.tile % 2 == 0 && tile_bound.is_none() {
            emit_nested_stage(&mut p, cfg, la, s, bufs[s], bufs[s + 1], inner_par, op);
        } else {
            let spec = LoopSpec { min: Bound::Const(0), max: inner_max, step: 1, par: inner_par };
            let l = p.add_loop(la, &format!("s{s}"), spec).unwrap();
            let hb = p.add_leaf(l, &format!("b{s}")).unwrap();
            let ij = p.idx(hb, l).unwrap();
            let x = load_stage(&mut p, hb, bufs[s], ij);
            let y = emit_op(&mut p, hb, cfg, op, x, ij);
            store_stage(&mut p, hb, bufs[s + 1], ij, y);
        }
    }

    // Tail: write back or reduce per outer iteration.
    {
        let spec = LoopSpec { min: Bound::Const(0), max: inner_max, step: 1, par: inner_par };
        let l = p.add_loop(la, "tail", spec).unwrap();
        let hb = p.add_leaf(l, "wb").unwrap();
        let ia = p.idx(hb, la).unwrap();
        let ij = p.idx(hb, l).unwrap();
        let x = load_stage(&mut p, hb, bufs[cfg.stages], ij);
        if cfg.reduce_tail {
            let acc = p.reduce(hb, BinOp::Add, x, dtype.zero(), l).unwrap();
            let last = p.is_last(hb, l).unwrap();
            p.store_if(hb, dst, &[ia], acc, last).unwrap();
        } else {
            let t = p.c_i64(hb, cfg.tile).unwrap();
            let b = p.bin(hb, BinOp::Mul, ia, t).unwrap();
            let a = p.bin(hb, BinOp::Add, b, ij).unwrap();
            p.store(hb, dst, &[a], x).unwrap();
        }
    }
    (p, dst)
}

/// Store helper (FIFOs take a single, ignored address coordinate, same
/// shape as the 1-D SRAM buffers here).
fn store_stage(
    p: &mut Program,
    hb: sara_ir::CtrlId,
    mem: MemId,
    ij: sara_ir::ExprId,
    v: sara_ir::ExprId,
) {
    p.store(hb, mem, &[ij], v).unwrap();
}

/// Load helper; see [`store_stage`].
fn load_stage(
    p: &mut Program,
    hb: sara_ir::CtrlId,
    mem: MemId,
    ij: sara_ir::ExprId,
) -> sara_ir::ExprId {
    p.load(hb, mem, &[ij]).unwrap()
}

/// One elementwise op drawn from the widened op menu.
fn emit_op(
    p: &mut Program,
    hb: sara_ir::CtrlId,
    cfg: &GenCfg,
    op: u8,
    x: sara_ir::ExprId,
    ij: sara_ir::ExprId,
) -> sara_ir::ExprId {
    if cfg.integer {
        match op {
            0 => {
                let c = p.c_i64(hb, 3).unwrap();
                p.bin(hb, BinOp::Mul, x, c).unwrap()
            }
            1 => {
                let c = p.c_i64(hb, 7).unwrap();
                p.bin(hb, BinOp::Add, x, c).unwrap()
            }
            2 => {
                let c = p.c_i64(hb, 5).unwrap();
                p.bin(hb, BinOp::Mod, x, c).unwrap()
            }
            3 => p.bin(hb, BinOp::Max, x, ij).unwrap(),
            _ => {
                let c = p.c_i64(hb, 0).unwrap();
                let g = p.bin(hb, BinOp::Gt, x, c).unwrap();
                let n = p.un(hb, UnOp::Neg, x).unwrap();
                p.mux(hb, g, x, n).unwrap()
            }
        }
    } else {
        match op {
            0 => {
                let c = p.c_f64(hb, 1.5).unwrap();
                p.bin(hb, BinOp::Mul, x, c).unwrap()
            }
            1 => {
                let c = p.c_f64(hb, 0.25).unwrap();
                p.bin(hb, BinOp::Add, x, c).unwrap()
            }
            2 => p.un(hb, UnOp::Relu, x).unwrap(),
            3 => p.un(hb, UnOp::Abs, x).unwrap(),
            _ => {
                let ix = p.un(hb, UnOp::ToF, ij).unwrap();
                p.bin(hb, BinOp::Add, x, ix).unwrap()
            }
        }
    }
}

/// A stage wrapped in a two-arm branch: `then` applies the op, `else`
/// copies through (so both arms write the full output tile and the result
/// stays deterministic).
#[allow(clippy::too_many_arguments)]
fn emit_branch_stage(
    p: &mut Program,
    cfg: &GenCfg,
    la: sara_ir::CtrlId,
    src: MemId,
    dst: MemId,
    inner_max: Bound,
    inner_par: u32,
    op: u8,
    rng: &mut SmallRng,
) {
    let modulus = rng.gen_range(2i64..4);
    let cond = p.reg("brc", DType::I64);
    let hh = p.add_leaf(la, "brhead").unwrap();
    let i = p.idx(hh, la).unwrap();
    let m = p.c_i64(hh, modulus).unwrap();
    let r = p.bin(hh, BinOp::Mod, i, m).unwrap();
    let z = p.c_i64(hh, 0).unwrap();
    let c = p.bin(hh, BinOp::Eq, r, z).unwrap();
    p.store(hh, cond, &[z], c).unwrap();
    let br = p.add_branch(la, "br", cond).unwrap();
    for (arm, apply) in [("then", true), ("else", false)] {
        let spec = LoopSpec { min: Bound::Const(0), max: inner_max, step: 1, par: inner_par };
        let l = p.add_loop(br, &format!("br_{arm}"), spec).unwrap();
        let hb = p.add_leaf(l, arm).unwrap();
        let ij = p.idx(hb, l).unwrap();
        let x = load_stage(p, hb, src, ij);
        let y = if apply { emit_op(p, hb, cfg, op, x, ij) } else { x };
        store_stage(p, hb, dst, ij, y);
    }
}

/// A stage wrapped in a do-while: the body processes the tile, then a
/// tail leaf decrements a register counter; the loop repeats while the
/// counter is positive. Exercises register-carried exit conditions and
/// bounded iteration.
#[allow(clippy::too_many_arguments)]
fn emit_do_while_stage(
    p: &mut Program,
    cfg: &GenCfg,
    la: sara_ir::CtrlId,
    s: usize,
    src: MemId,
    dst: MemId,
    op: u8,
    rng: &mut SmallRng,
) {
    let iters = rng.gen_range(1i64..4);
    let ctr = p.reg_init("dwctr", Elem::I64(iters));
    let cond = p.reg("dwcond", DType::I64);
    let dw = p.add_do_while(la, &format!("dw{s}"), cond, 8).unwrap();
    // Body: process the tile. Do-while bodies re-run, so the stage must be
    // idempotent across passes: copy src→dst applying the op once (the op
    // uses src only, never dst, so repeated passes write the same values).
    let spec = LoopSpec { min: Bound::Const(0), max: Bound::Const(cfg.tile), step: 1, par: 1 };
    let l = p.add_loop(dw, &format!("dws{s}"), spec).unwrap();
    let hb = p.add_leaf(l, &format!("dwb{s}")).unwrap();
    let ij = p.idx(hb, l).unwrap();
    let x = load_stage(p, hb, src, ij);
    let y = emit_op(p, hb, cfg, op, x, ij);
    store_stage(p, hb, dst, ij, y);
    // Tail: decrement the counter, write cond = (ctr > 0).
    let ht = p.add_leaf(dw, "dwt").unwrap();
    let z = p.c_i64(ht, 0).unwrap();
    let one = p.c_i64(ht, 1).unwrap();
    let cur = p.load(ht, ctr, &[z]).unwrap();
    let nxt = p.bin(ht, BinOp::Sub, cur, one).unwrap();
    p.store(ht, ctr, &[z], nxt).unwrap();
    let more = p.bin(ht, BinOp::Gt, nxt, z).unwrap();
    p.store(ht, cond, &[z], more).unwrap();
}

/// A stage whose tile loop is split into a 2-deep nest (tile = 2 × half),
/// deepening the control tree and exercising multi-level counter chains.
#[allow(clippy::too_many_arguments)]
fn emit_nested_stage(
    p: &mut Program,
    cfg: &GenCfg,
    la: sara_ir::CtrlId,
    s: usize,
    src: MemId,
    dst: MemId,
    inner_par: u32,
    op: u8,
) {
    let half = cfg.tile / 2;
    let lo = p.add_loop(la, &format!("n{s}o"), LoopSpec::new(0, 2, 1)).unwrap();
    let li =
        p.add_loop(lo, &format!("n{s}i"), LoopSpec::new(0, half, 1).par(inner_par.min(2))).unwrap();
    let hb = p.add_leaf(li, &format!("nb{s}")).unwrap();
    let io = p.idx(hb, lo).unwrap();
    let ii = p.idx(hb, li).unwrap();
    let h = p.c_i64(hb, half).unwrap();
    let b = p.bin(hb, BinOp::Mul, io, h).unwrap();
    let ij = p.bin(hb, BinOp::Add, b, ii).unwrap();
    let x = load_stage(p, hb, src, ij);
    let y = emit_op(p, hb, cfg, op, x, ij);
    store_stage(p, hb, dst, ij, y);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate() {
        for seed in 0..64u64 {
            let case = generate(seed);
            case.program.validate().unwrap_or_else(|e| {
                panic!("seed {seed}: invalid program: {e}\ncfg {:?}", case.cfg)
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(crate::textio::to_text(&a.program), crate::textio::to_text(&b.program));
    }
}
