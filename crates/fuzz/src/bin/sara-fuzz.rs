//! `sara-fuzz` — seeded differential fuzzing of the compile→simulate
//! pipeline with automatic case minimization.
//!
//! ```text
//! sara-fuzz [--cases N] [--seed S] [--artifact-dir DIR] [--max-cycles N]
//!           [--min-budget N] [--no-minimize] [--plant] [--fault-mode]
//!           [--fault-plans N]
//! sara-fuzz --replay FILE [--max-cycles N]
//! ```
//!
//! Each case is generated from `seed + index`, so any case from a run can
//! be regenerated in isolation. Failures (panics, simulator errors on
//! interpreter-accepted programs, scheduler divergences, wrong results)
//! are minimized by delta debugging and written to the artifact
//! directory as replayable `.sara` text files plus a human-readable
//! report. Typed compiler/PnR rejections are counted but are *not*
//! failures — they are the graceful path this harness exists to enforce.
//!
//! Exit codes: 0 = no failures, 1 = failures found (artifacts written),
//! 2 = bad usage.
//!
//! `--plant` prepends a known-good built-in program as case 0; combined
//! with a tiny `--max-cycles` it deterministically produces a failure,
//! which the smoke tests use to prove the minimizer end to end.
//!
//! `--fault-mode` additionally replays every *passing* case under
//! `--fault-plans` (default 2) seeded fault-injection plans with the
//! invariant sanitizer enabled, enforcing the fault model's contract:
//! every injected fault recovers or yields a typed diagnosis — a panic or
//! an undiagnosed hang is a failure and writes a replayable artifact.

use plasticine_sim::SimConfig;
use sara_fuzz::gen;
use sara_fuzz::minimize::{minimize, size_of};
use sara_fuzz::oracle::{silence_panics, FaultVerdict, Oracle, Verdict};
use sara_fuzz::textio;
use std::path::{Path, PathBuf};

struct Args {
    cases: u64,
    seed: u64,
    artifact_dir: PathBuf,
    max_cycles: Option<u64>,
    min_budget: usize,
    minimize: bool,
    plant: bool,
    replay: Option<PathBuf>,
    fault_mode: bool,
    fault_plans: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: sara-fuzz [--cases N] [--seed S] [--artifact-dir DIR] [--max-cycles N]\n\
         \x20                [--min-budget N] [--no-minimize] [--plant] [--fault-mode]\n\
         \x20                [--fault-plans N]\n\
         \x20      sara-fuzz --replay FILE [--max-cycles N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        cases: 200,
        seed: 0x5A7A,
        artifact_dir: PathBuf::from("fuzz-artifacts"),
        max_cycles: None,
        min_budget: 300,
        minimize: true,
        plant: false,
        replay: None,
        fault_mode: false,
        fault_plans: 2,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> String {
        match argv.get(i + 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            }
        }
    };
    let parse_u64 = |v: &str, flag: &str| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects an integer, got {v:?}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--cases" => {
                a.cases = parse_u64(&value(&argv, i, "--cases"), "--cases");
                i += 1;
            }
            "--seed" => {
                a.seed = parse_u64(&value(&argv, i, "--seed"), "--seed");
                i += 1;
            }
            "--artifact-dir" => {
                a.artifact_dir = PathBuf::from(value(&argv, i, "--artifact-dir"));
                i += 1;
            }
            "--max-cycles" => {
                a.max_cycles = Some(parse_u64(&value(&argv, i, "--max-cycles"), "--max-cycles"));
                i += 1;
            }
            "--min-budget" => {
                a.min_budget = parse_u64(&value(&argv, i, "--min-budget"), "--min-budget") as usize;
                i += 1;
            }
            "--no-minimize" => a.minimize = false,
            "--plant" => a.plant = true,
            "--fault-mode" => a.fault_mode = true,
            "--fault-plans" => {
                a.fault_plans = parse_u64(&value(&argv, i, "--fault-plans"), "--fault-plans");
                i += 1;
            }
            "--replay" => {
                a.replay = Some(PathBuf::from(value(&argv, i, "--replay")));
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    a
}

fn oracle_for(args: &Args, relax: bool) -> Oracle {
    let mut sim_cfg = SimConfig::default();
    if let Some(mc) = args.max_cycles {
        sim_cfg.max_cycles = mc;
    }
    Oracle { sim_cfg, relax_credits: relax, ..Oracle::default() }
}

/// A fixed, known-compiling program (a two-stage scaled copy) used by
/// `--plant` to produce a deterministic failure under a tiny cycle
/// budget.
fn planted_program() -> sara_ir::Program {
    use sara_ir::{BinOp, DType, LoopSpec, MemInit, Program};
    let mut p = Program::new("planted");
    let root = p.root();
    let src = p.dram("src", &[32], DType::F64, MemInit::LinSpace { start: 0.0, step: 1.0 });
    let dst = p.dram("dst", &[32], DType::F64, MemInit::Zero);
    let buf = p.sram("buf", &[8], DType::F64);
    let la = p.add_loop(root, "A", LoopSpec::new(0, 4, 1)).unwrap();
    let li = p.add_loop(la, "in", LoopSpec::new(0, 8, 1)).unwrap();
    let hb = p.add_leaf(li, "ld").unwrap();
    let ia = p.idx(hb, la).unwrap();
    let ij = p.idx(hb, li).unwrap();
    let t = p.c_i64(hb, 8).unwrap();
    let b = p.bin(hb, BinOp::Mul, ia, t).unwrap();
    let addr = p.bin(hb, BinOp::Add, b, ij).unwrap();
    let v = p.load(hb, src, &[addr]).unwrap();
    let c = p.c_f64(hb, 2.0).unwrap();
    let y = p.bin(hb, BinOp::Mul, v, c).unwrap();
    p.store(hb, buf, &[ij], y).unwrap();
    let lo = p.add_loop(la, "out", LoopSpec::new(0, 8, 1)).unwrap();
    let ho = p.add_leaf(lo, "st").unwrap();
    let ia2 = p.idx(ho, la).unwrap();
    let ij2 = p.idx(ho, lo).unwrap();
    let x = p.load(ho, buf, &[ij2]).unwrap();
    let t2 = p.c_i64(ho, 8).unwrap();
    let b2 = p.bin(ho, BinOp::Mul, ia2, t2).unwrap();
    let a2 = p.bin(ho, BinOp::Add, b2, ij2).unwrap();
    p.store(ho, dst, &[a2], x).unwrap();
    p
}

fn replay(path: &Path, args: &Args) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let p = match textio::from_text(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot parse {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let oracle = oracle_for(args, false);
    let v = oracle.run(&p);
    match &v {
        Verdict::Pass { cycles } => {
            println!("replay {}: PASS ({cycles} cycles)", path.display());
            std::process::exit(0);
        }
        Verdict::Reject { stage, reason } => {
            println!("replay {}: REJECT at {stage}: {reason}", path.display());
            std::process::exit(0);
        }
        Verdict::Failure { kind, detail } => {
            println!("replay {}: FAILURE {kind:?}: {detail}", path.display());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.replay {
        replay(path, &args);
    }
    silence_panics();

    let mut passes = 0u64;
    let mut rejects = 0u64;
    let mut failures = 0u64;
    let mut fault_runs = 0u64;
    let mut fault_recovered = 0u64;
    let mut fault_diagnosed = 0u64;
    let mut reject_stages: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();

    for idx in 0..args.cases + u64::from(args.plant) {
        let planted = args.plant && idx == 0;
        let (program, relax, label) = if planted {
            (planted_program(), false, "planted".to_string())
        } else {
            let case_seed = args.seed.wrapping_add(idx);
            let case = gen::generate(case_seed);
            (case.program, case.cfg.relax_credits, format!("seed {case_seed}"))
        };
        let oracle = oracle_for(&args, relax);
        let verdict = oracle.run(&program);
        match &verdict {
            Verdict::Pass { .. } => {
                passes += 1;
                if args.fault_mode {
                    for k in 0..args.fault_plans {
                        let fault_seed =
                            args.seed.wrapping_mul(1_000_003).wrapping_add(idx * 97 + k);
                        fault_runs += 1;
                        match oracle.run_faulted(&program, fault_seed) {
                            FaultVerdict::Recovered { .. } => fault_recovered += 1,
                            FaultVerdict::Diagnosed { .. } => fault_diagnosed += 1,
                            FaultVerdict::NotApplicable { .. } => {}
                            FaultVerdict::Failure { detail } => {
                                failures += 1;
                                eprintln!("case {idx} ({label}): FAULT-MODE FAILURE: {detail}");
                                if let Err(e) = emit_fault_artifact(&args, idx, &program, &detail) {
                                    eprintln!("error: cannot write artifacts: {e}");
                                    std::process::exit(2);
                                }
                            }
                        }
                    }
                }
            }
            Verdict::Reject { stage, .. } => {
                rejects += 1;
                *reject_stages.entry(stage.to_string()).or_insert(0) += 1;
            }
            Verdict::Failure { kind, detail } => {
                failures += 1;
                let class = verdict.failure_class().unwrap_or_default();
                eprintln!("case {idx} ({label}): FAILURE {kind:?}: {detail}");
                if let Err(e) = emit_artifacts(&args, idx, &program, &oracle, &class, detail) {
                    eprintln!("error: cannot write artifacts: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    println!(
        "fuzz: {} cases — {passes} pass, {rejects} reject, {failures} failure",
        args.cases + u64::from(args.plant)
    );
    if args.fault_mode {
        println!(
            "fault-mode: {fault_runs} injected runs — {fault_recovered} recovered, \
             {fault_diagnosed} diagnosed"
        );
    }
    for (stage, n) in &reject_stages {
        println!("  rejects at {stage}: {n}");
    }
    if failures > 0 {
        println!("artifacts in {}", args.artifact_dir.display());
        std::process::exit(1);
    }
}

/// Write a fault-mode failure artifact: the program plus the failing
/// plan/diagnosis (fault cases are not minimized — the plan text in the
/// detail replays via `sarac --faults`).
fn emit_fault_artifact(
    args: &Args,
    idx: u64,
    program: &sara_ir::Program,
    detail: &str,
) -> Result<(), String> {
    std::fs::create_dir_all(&args.artifact_dir)
        .map_err(|e| format!("{}: {e}", args.artifact_dir.display()))?;
    let stem = args.artifact_dir.join(format!("fault-{idx:06}"));
    let prog_path = stem.with_extension("sara");
    std::fs::write(&prog_path, textio::to_text(program))
        .map_err(|e| format!("{}: {e}", prog_path.display()))?;
    let report_path = stem.with_extension("report.txt");
    std::fs::write(&report_path, format!("class: fault-mode\ndetail: {detail}\n"))
        .map_err(|e| format!("{}: {e}", report_path.display()))?;
    Ok(())
}

/// Write the original program, the minimized reproducer, and a report.
fn emit_artifacts(
    args: &Args,
    idx: u64,
    program: &sara_ir::Program,
    oracle: &Oracle,
    class: &str,
    detail: &str,
) -> Result<(), String> {
    std::fs::create_dir_all(&args.artifact_dir)
        .map_err(|e| format!("{}: {e}", args.artifact_dir.display()))?;
    let stem = args.artifact_dir.join(format!("case-{idx:06}"));
    let orig_path = stem.with_extension("orig.sara");
    std::fs::write(&orig_path, textio::to_text(program))
        .map_err(|e| format!("{}: {e}", orig_path.display()))?;
    let (min_program, min_note) = if args.minimize {
        let m = minimize(program, oracle, class, args.min_budget);
        let note = format!(
            "minimized {} -> {} (size units) in {} oracle calls",
            m.size_before, m.size_after, m.oracle_calls
        );
        (m.program, note)
    } else {
        (program.clone(), format!("not minimized (size {})", size_of(program)))
    };
    let min_path = stem.with_extension("min.sara");
    std::fs::write(&min_path, textio::to_text(&min_program))
        .map_err(|e| format!("{}: {e}", min_path.display()))?;
    let report = format!(
        "class: {class}\ndetail: {detail}\n{min_note}\nreplay: sara-fuzz --replay {}\n",
        min_path.display()
    );
    let report_path = stem.with_extension("report.txt");
    std::fs::write(&report_path, report).map_err(|e| format!("{}: {e}", report_path.display()))?;
    eprintln!("  wrote {} ({min_note})", min_path.display());
    Ok(())
}
