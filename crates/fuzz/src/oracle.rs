//! The differential oracle: one program through the whole stack, every
//! stage isolated behind `catch_unwind`, every outcome classified.
//!
//! The contract under test is the CMMC correctness theorem: for any valid
//! program, compile → place-and-route → simulate (under *both*
//! schedulers) must reproduce the sequential interpreter's DRAM image —
//! or fail with a *typed* error. A panic anywhere, a simulator
//! deadlock/timeout/fault on a program the interpreter accepts, a
//! scheduler disagreement, or a wrong DRAM image are all failures; typed
//! `IrError`/`CompileError`/PnR rejections are clean rejects.

use plasticine_arch::ChipSpec;
use plasticine_sim::{simulate, SimConfig, SimOutcome};
use sara_core::compile::{compile, CompilerOptions};
use sara_ir::interp::Interp;
use sara_ir::{MemKind, Program};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pipeline stage at which an outcome was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Validate,
    Interp,
    Compile,
    Pnr,
    SimDense,
    SimActive,
    Compare,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Validate => "validate",
            Stage::Interp => "interp",
            Stage::Compile => "compile",
            Stage::Pnr => "pnr",
            Stage::SimDense => "sim-dense",
            Stage::SimActive => "sim-active",
            Stage::Compare => "compare",
        };
        f.write_str(s)
    }
}

/// What the oracle concluded about one program.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Full agreement: both schedulers match each other and the
    /// interpreter.
    Pass { cycles: u64 },
    /// The pipeline rejected the program with a typed error before
    /// simulation — an acceptable outcome for off-nominal inputs.
    Reject { stage: Stage, reason: String },
    /// A bug: panic, simulator failure on an interpreter-accepted
    /// program, scheduler divergence, or a wrong result.
    Failure { kind: FailureKind, detail: String },
}

/// Failure classes; minimization preserves the class, not the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A `panic!`/`unwrap` fired somewhere in the stack.
    Panic(Stage),
    /// The simulator returned `SimError` (deadlock/timeout/fault) on a
    /// program the interpreter executed successfully.
    SimFailure(Stage),
    /// Dense and active-list schedulers disagree (cycles, firings, or
    /// DRAM image).
    SchedulerDivergence,
    /// The fabric's DRAM image differs from the interpreter's memory.
    ResultDivergence,
}

impl Verdict {
    /// Stable string key identifying the failure class (used by the
    /// minimizer to check a candidate reproduces the *same* failure).
    pub fn failure_class(&self) -> Option<String> {
        match self {
            Verdict::Failure { kind, .. } => Some(match kind {
                FailureKind::Panic(s) => format!("panic@{s}"),
                FailureKind::SimFailure(s) => format!("simfail@{s}"),
                FailureKind::SchedulerDivergence => "sched-divergence".to_string(),
                FailureKind::ResultDivergence => "result-divergence".to_string(),
            }),
            _ => None,
        }
    }
}

/// Fixed harness configuration shared by a fuzz run and its minimizer.
pub struct Oracle {
    pub chip: ChipSpec,
    /// Base simulator config; both scheduler variants derive from it.
    pub sim_cfg: SimConfig,
    pub pnr_seed: u64,
    /// Interpreter fuel (total hyperblock firings) guarding divergence.
    pub fuel: u64,
    /// CMMC credit relaxation, mirrored from the generated case.
    pub relax_credits: bool,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle {
            chip: ChipSpec::small_8x8(),
            sim_cfg: SimConfig::default(),
            pnr_seed: 42,
            fuel: 2_000_000,
            relax_credits: false,
        }
    }
}

impl Oracle {
    /// Run the full differential check on one program.
    pub fn run(&self, p: &Program) -> Verdict {
        // ---- validate ----
        match guard(Stage::Validate, || p.validate()) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Verdict::Reject { stage: Stage::Validate, reason: e.to_string() },
            Err(v) => return v,
        }

        // ---- reference interpreter ----
        let reference = match guard(Stage::Interp, || Interp::new(p).with_fuel(self.fuel).run()) {
            Ok(Ok(o)) => o,
            Ok(Err(e)) => return Verdict::Reject { stage: Stage::Interp, reason: e.to_string() },
            Err(v) => return v,
        };

        // ---- compile ----
        let mut opts = CompilerOptions::default();
        opts.lower.cmmc.relax_credits = self.relax_credits;
        let mut compiled = match guard(Stage::Compile, || compile(p, &self.chip, &opts)) {
            Ok(Ok(c)) => c,
            Ok(Err(e)) => return Verdict::Reject { stage: Stage::Compile, reason: e.to_string() },
            Err(v) => return v,
        };

        // ---- place and route ----
        match guard(Stage::Pnr, || {
            sara_pnr::place_and_route(
                &mut compiled.vudfg,
                &compiled.assignment,
                &self.chip,
                self.pnr_seed,
            )
        }) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => return Verdict::Reject { stage: Stage::Pnr, reason: e.to_string() },
            Err(v) => return v,
        }

        // ---- simulate under both schedulers ----
        let dense_cfg = SimConfig { dense: true, ..self.sim_cfg.clone() };
        let active_cfg = SimConfig { dense: false, ..self.sim_cfg.clone() };
        let dense =
            match guard(Stage::SimDense, || simulate(&compiled.vudfg, &self.chip, &dense_cfg)) {
                Ok(Ok(o)) => o,
                Ok(Err(e)) => {
                    return Verdict::Failure {
                        kind: FailureKind::SimFailure(Stage::SimDense),
                        detail: e.to_string(),
                    }
                }
                Err(v) => return v,
            };
        let active =
            match guard(Stage::SimActive, || simulate(&compiled.vudfg, &self.chip, &active_cfg)) {
                Ok(Ok(o)) => o,
                Ok(Err(e)) => {
                    return Verdict::Failure {
                        kind: FailureKind::SimFailure(Stage::SimActive),
                        detail: e.to_string(),
                    }
                }
                Err(v) => return v,
            };

        // ---- scheduler agreement ----
        if let Some(detail) = scheduler_diff(&dense, &active) {
            return Verdict::Failure { kind: FailureKind::SchedulerDivergence, detail };
        }

        // ---- fabric vs interpreter ----
        for (mi, m) in p.mems.iter().enumerate() {
            if m.kind != MemKind::Dram {
                continue;
            }
            let mem = sara_ir::MemId(mi as u32);
            let Some(got) = active.dram_final.get(&mem) else {
                return Verdict::Failure {
                    kind: FailureKind::ResultDivergence,
                    detail: format!("DRAM {} missing from fabric image", m.name),
                };
            };
            let want = &reference.mem[mi];
            if want.len() != got.len() {
                return Verdict::Failure {
                    kind: FailureKind::ResultDivergence,
                    detail: format!(
                        "DRAM {}: length {} vs interpreter {}",
                        m.name,
                        got.len(),
                        want.len()
                    ),
                };
            }
            for (i, (w, g)) in want.iter().zip(got).enumerate() {
                if !elems_close(*w, *g) {
                    return Verdict::Failure {
                        kind: FailureKind::ResultDivergence,
                        detail: format!("DRAM {}[{i}]: fabric {g:?} vs interpreter {w:?}", m.name),
                    };
                }
            }
        }
        Verdict::Pass { cycles: active.cycles }
    }
}

/// Fault-mode verdict: what happened when a seeded fault plan was
/// injected into an otherwise-passing program.
///
/// The contract under test is "recover or explain": every injected fault
/// must lead to a completed run or a *typed* diagnosis (sanitizer report,
/// watchdog deadlock diagnosis, typed DRAM/unit fault). A panic or an
/// undiagnosed timeout is a harness failure.
#[derive(Debug, Clone)]
pub enum FaultVerdict {
    /// Completed with the fault-free DRAM image (timing-only fault,
    /// absorbed retry, or a fault that never landed).
    Recovered { cycles: u64 },
    /// Ended in a typed diagnosis (or a completed run whose image
    /// divergence the differential comparison itself detected).
    Diagnosed { class: String, detail: String },
    /// The program never reached fault injection (reject or pre-stage
    /// failure) — not a fault-mode outcome.
    NotApplicable { reason: String },
    /// Panic or undiagnosed hang: the fault model's contract is broken.
    Failure { detail: String },
}

impl Oracle {
    /// Fault-mode oracle: compile and place the program, capture the
    /// fault-free baseline, then inject the seeded single-fault plan
    /// derived from `fault_seed` (see [`plasticine_sim::seeded_plan`])
    /// with the sanitizer enabled, and classify the outcome.
    pub fn run_faulted(&self, p: &Program, fault_seed: u64) -> FaultVerdict {
        let na = |reason: String| FaultVerdict::NotApplicable { reason };
        let mut opts = CompilerOptions::default();
        opts.lower.cmmc.relax_credits = self.relax_credits;
        let mut compiled = match guard(Stage::Compile, || compile(p, &self.chip, &opts)) {
            Ok(Ok(c)) => c,
            Ok(Err(e)) => return na(format!("compile reject: {e}")),
            Err(_) => return na("compile panic (covered by the base oracle)".to_string()),
        };
        if sara_pnr::place_and_route(
            &mut compiled.vudfg,
            &compiled.assignment,
            &self.chip,
            self.pnr_seed,
        )
        .is_err()
        {
            return na("pnr reject".to_string());
        }
        let base_cfg = SimConfig { sanitize: true, ..self.sim_cfg.clone() };
        let baseline = match simulate(&compiled.vudfg, &self.chip, &base_cfg) {
            Ok(o) => o,
            Err(e) => return na(format!("fault-free baseline failed: {e}")),
        };
        let plan = plasticine_sim::seeded_plan(
            &compiled.vudfg,
            fault_seed,
            (baseline.cycles * 3 / 4).max(2),
        );
        let plan_text = plan.to_string().trim_end().to_string();
        let cfg = SimConfig {
            faults: Some(plan),
            sanitize: true,
            max_cycles: baseline.cycles * 50 + 1_000_000,
            ..self.sim_cfg.clone()
        };
        let result = catch_unwind(AssertUnwindSafe(|| simulate(&compiled.vudfg, &self.chip, &cfg)));
        match result {
            Err(e) => FaultVerdict::Failure {
                detail: format!("panic under plan [{plan_text}]: {}", panic_message(&e)),
            },
            Ok(Ok(o)) if o.dram_final == baseline.dram_final => {
                FaultVerdict::Recovered { cycles: o.cycles }
            }
            Ok(Ok(o)) => FaultVerdict::Diagnosed {
                class: "image-divergence".to_string(),
                detail: format!(
                    "plan [{plan_text}] completed in {} cycles with a divergent DRAM image",
                    o.cycles
                ),
            },
            Ok(Err(e)) => {
                use plasticine_sim::SimError;
                match &e {
                    SimError::Sanitizer(r) => FaultVerdict::Diagnosed {
                        class: format!("sanitizer:{}", r.invariant.label()),
                        detail: format!("plan [{plan_text}]: {e}"),
                    },
                    SimError::Deadlock { .. } => FaultVerdict::Diagnosed {
                        class: "watchdog".to_string(),
                        detail: format!("plan [{plan_text}]: {e}"),
                    },
                    SimError::Dram { .. } | SimError::Fault { .. } => FaultVerdict::Diagnosed {
                        class: "typed-fault".to_string(),
                        detail: format!("plan [{plan_text}]: {e}"),
                    },
                    SimError::Timeout { .. } | SimError::Config { .. } => FaultVerdict::Failure {
                        detail: format!("plan [{plan_text}]: undiagnosed {e}"),
                    },
                }
            }
        }
    }
}

/// Run `f` behind `catch_unwind`, mapping a panic to a classified
/// failure verdict.
fn guard<T>(stage: Stage, f: impl FnOnce() -> T) -> Result<T, Verdict> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| Verdict::Failure {
        kind: FailureKind::Panic(stage),
        detail: panic_message(&e),
    })
}

/// Extract a printable message from a caught panic payload.
pub fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Install a silent panic hook so caught panics don't spam stderr with
/// backtraces during a fuzz run.
pub fn silence_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn scheduler_diff(dense: &SimOutcome, active: &SimOutcome) -> Option<String> {
    if dense.cycles != active.cycles {
        return Some(format!("cycles: dense {} vs active {}", dense.cycles, active.cycles));
    }
    if dense.stats.firings != active.stats.firings {
        return Some(format!(
            "firings: dense {} vs active {}",
            dense.stats.firings, active.stats.firings
        ));
    }
    if dense.stats.unit_firings != active.stats.unit_firings {
        return Some("per-unit firing divergence".to_string());
    }
    if dense.stats.dram != active.stats.dram {
        return Some("dram statistics divergence".to_string());
    }
    if dense.dram_final != active.dram_final {
        return Some("dram image divergence".to_string());
    }
    None
}

/// Float comparison with the same tolerance the existing differential
/// tests use (1e-9 relative); integers compare exactly.
fn elems_close(a: sara_ir::Elem, b: sara_ir::Elem) -> bool {
    use sara_ir::Elem;
    match (a, b) {
        (Elem::I64(x), Elem::I64(y)) => x == y,
        (Elem::F64(x), Elem::F64(y)) => {
            if x.is_nan() && y.is_nan() {
                return true;
            }
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_passes_known_good_program() {
        let case = crate::gen::generate(0);
        let oracle = Oracle { relax_credits: case.cfg.relax_credits, ..Oracle::default() };
        match oracle.run(&case.program) {
            Verdict::Pass { cycles } => assert!(cycles > 0),
            v => {
                // A typed reject is tolerable (resource limits); a failure
                // is not.
                assert!(v.failure_class().is_none(), "unexpected failure: {v:?}");
            }
        }
    }

    #[test]
    fn fault_mode_never_fails_on_known_good_program() {
        let case = crate::gen::generate(0);
        let oracle = Oracle { relax_credits: case.cfg.relax_credits, ..Oracle::default() };
        for fault_seed in 0..4u64 {
            if let FaultVerdict::Failure { detail } = oracle.run_faulted(&case.program, fault_seed)
            {
                panic!("fault contract broken (seed {fault_seed}): {detail}")
            }
        }
    }

    #[test]
    fn oracle_flags_timeout_as_sim_failure() {
        let case = crate::gen::generate(0);
        let oracle = Oracle {
            sim_cfg: SimConfig { max_cycles: 3, ..SimConfig::default() },
            relax_credits: case.cfg.relax_credits,
            ..Oracle::default()
        };
        let v = oracle.run(&case.program);
        match v.failure_class().as_deref() {
            Some(c) if c.starts_with("simfail@") => {}
            other => panic!("expected simfail class, got {other:?} ({v:?})"),
        }
    }
}
