//! # sara-fuzz
//!
//! Seeded differential fuzzing for the SARA compile→simulate pipeline.
//!
//! The harness generates random valid programs from a widened grammar
//! ([`gen`]), runs each through the full stack — reference interpreter,
//! compiler, place-and-route, and the simulator under *both* schedulers —
//! with every stage isolated behind `catch_unwind` ([`oracle`]), and on
//! any panic, simulator failure, scheduler divergence, or wrong result,
//! delta-debugs the case down to a minimal reproducer ([`minimize`]) and
//! writes it as a replayable text artifact ([`textio`]).
//!
//! Run it via the `sara-fuzz` binary:
//!
//! ```text
//! sara-fuzz --cases 500 --seed 7 --artifact-dir fuzz-artifacts
//! sara-fuzz --replay fuzz-artifacts/case-000123.min.sara
//! ```
//!
//! Everything is deterministic given `--seed`: case `i` of a run is
//! reproducible in isolation, and artifacts replay bit-identically.

pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod textio;
