//! Replayable text serialization of [`Program`]s.
//!
//! The workspace's `serde` shim is a no-op (marker traits only), so fuzz
//! artifacts use a small line-oriented text format instead: one line per
//! memory, controller, or expression slot, referencing memories and
//! controllers by index. Floats are serialized as IEEE-754 bit patterns
//! so a round trip is exact (including NaNs), which matters for
//! byte-identical replay of divergence cases.
//!
//! The format is intentionally dumb — `to_text` followed by `from_text`
//! reconstructs the program field-for-field, and artifacts diff cleanly
//! under version control.

use sara_ir::{
    BinOp, Bound, Ctrl, CtrlId, CtrlKind, DType, Elem, Expr, ExprId, Hyperblock, LoopSpec, MemDecl,
    MemId, MemInit, MemKind, Program, Schedule, UnOp,
};

/// Serialize a program to the artifact text format.
pub fn to_text(p: &Program) -> String {
    let mut out = String::new();
    out.push_str("sara-fuzz-program v1\n");
    out.push_str(&format!("name {}\n", sanitize(&p.name)));
    for m in &p.mems {
        out.push_str(&format!(
            "mem {} {} {} dims={} init={}\n",
            kind_str(m.kind),
            sanitize(&m.name),
            dtype_str(m.dtype),
            m.dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(","),
            init_str(&m.init),
        ));
    }
    for c in &p.ctrls {
        let parent = c.parent.map(|q| q.index().to_string()).unwrap_or_else(|| "-".to_string());
        let children =
            c.children.iter().map(|q| q.index().to_string()).collect::<Vec<_>>().join(",");
        let children = if children.is_empty() { "-".to_string() } else { children };
        let sched = match c.schedule {
            Schedule::Pipelined => "pipelined",
            Schedule::Sequential => "sequential",
        };
        match &c.kind {
            CtrlKind::Root => out.push_str(&format!(
                "ctrl root {} parent={parent} sched={sched} children={children}\n",
                sanitize(&c.name)
            )),
            CtrlKind::Loop(s) => out.push_str(&format!(
                "ctrl loop {} parent={parent} sched={sched} children={children} min={} max={} step={} par={}\n",
                sanitize(&c.name),
                bound_str(s.min),
                bound_str(s.max),
                s.step,
                s.par,
            )),
            CtrlKind::Branch { cond } => out.push_str(&format!(
                "ctrl branch {} parent={parent} sched={sched} children={children} cond={}\n",
                sanitize(&c.name),
                cond.0
            )),
            CtrlKind::DoWhile { cond, max_iter } => out.push_str(&format!(
                "ctrl dowhile {} parent={parent} sched={sched} children={children} cond={} max_iter={max_iter}\n",
                sanitize(&c.name),
                cond.0
            )),
            CtrlKind::Leaf(_) => out.push_str(&format!(
                "ctrl leaf {} parent={parent} sched={sched} children={children}\n",
                sanitize(&c.name)
            )),
        }
    }
    // Expression slots, grouped per leaf, in slot order.
    for (ci, c) in p.ctrls.iter().enumerate() {
        if let CtrlKind::Leaf(hb) = &c.kind {
            for e in &hb.exprs {
                out.push_str(&format!("expr {ci} {}\n", expr_str(e)));
            }
        }
    }
    out
}

/// Parse a program from the artifact text format.
///
/// # Errors
///
/// Returns a line-labelled description of the first malformed line.
pub fn from_text(text: &str) -> Result<Program, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('#')
    });
    let (_, header) = lines.next().ok_or("empty artifact")?;
    if header.trim() != "sara-fuzz-program v1" {
        return Err(format!("bad header {header:?}"));
    }
    let mut p = Program::new("artifact");
    p.ctrls.clear();
    for (ln, line) in lines {
        let err = |m: &str| format!("line {}: {m}: {line:?}", ln + 1);
        let mut it = line.split_whitespace();
        match it.next() {
            Some("name") => p.name = it.next().unwrap_or("artifact").to_string(),
            Some("mem") => {
                let kind = parse_kind(it.next().ok_or_else(|| err("missing kind"))?)
                    .ok_or_else(|| err("bad kind"))?;
                let name = it.next().ok_or_else(|| err("missing name"))?.to_string();
                let dtype = match it.next() {
                    Some("i64") => DType::I64,
                    Some("f64") => DType::F64,
                    _ => return Err(err("bad dtype")),
                };
                let mut dims = Vec::new();
                let mut init = MemInit::Zero;
                for kv in it {
                    if let Some(v) = kv.strip_prefix("dims=") {
                        dims = v
                            .split(',')
                            .map(|d| d.parse::<usize>().map_err(|_| err("bad dim")))
                            .collect::<Result<_, _>>()?;
                    } else if let Some(v) = kv.strip_prefix("init=") {
                        init = parse_init(v).ok_or_else(|| err("bad init"))?;
                    }
                }
                p.mems.push(MemDecl { name, kind, dims, dtype, init });
            }
            Some("ctrl") => {
                let kind_tok = it.next().ok_or_else(|| err("missing ctrl kind"))?;
                let name = it.next().ok_or_else(|| err("missing name"))?.to_string();
                let mut parent: Option<CtrlId> = None;
                let mut children: Vec<CtrlId> = Vec::new();
                let mut schedule = Schedule::Pipelined;
                let mut min = Bound::Const(0);
                let mut max = Bound::Const(0);
                let mut step = 1i64;
                let mut par = 1u32;
                let mut cond = MemId(0);
                let mut max_iter = 0u64;
                for kv in it {
                    let (k, v) = kv.split_once('=').ok_or_else(|| err("bad key=value"))?;
                    match k {
                        "parent" if v != "-" => {
                            parent = Some(CtrlId(v.parse().map_err(|_| err("bad parent"))?));
                        }
                        "parent" => {}
                        "children" if v != "-" => {
                            children = v
                                .split(',')
                                .map(|c| c.parse().map(CtrlId).map_err(|_| err("bad child")))
                                .collect::<Result<_, _>>()?;
                        }
                        "children" => {}
                        "sched" => {
                            schedule = match v {
                                "pipelined" => Schedule::Pipelined,
                                "sequential" => Schedule::Sequential,
                                _ => return Err(err("bad sched")),
                            }
                        }
                        "min" => min = parse_bound(v).ok_or_else(|| err("bad min"))?,
                        "max" => max = parse_bound(v).ok_or_else(|| err("bad max"))?,
                        "step" => step = v.parse().map_err(|_| err("bad step"))?,
                        "par" => par = v.parse().map_err(|_| err("bad par"))?,
                        "cond" => cond = MemId(v.parse().map_err(|_| err("bad cond"))?),
                        "max_iter" => max_iter = v.parse().map_err(|_| err("bad max_iter"))?,
                        _ => return Err(err("unknown key")),
                    }
                }
                let kind = match kind_tok {
                    "root" => CtrlKind::Root,
                    "loop" => CtrlKind::Loop(LoopSpec { min, max, step, par }),
                    "branch" => CtrlKind::Branch { cond },
                    "dowhile" => CtrlKind::DoWhile { cond, max_iter },
                    "leaf" => CtrlKind::Leaf(Hyperblock::default()),
                    _ => return Err(err("unknown ctrl kind")),
                };
                p.ctrls.push(Ctrl { name, parent, kind, children, schedule });
            }
            Some("expr") => {
                let ci: usize =
                    it.next().and_then(|v| v.parse().ok()).ok_or_else(|| err("bad ctrl index"))?;
                let e = parse_expr(&mut it).ok_or_else(|| err("bad expr"))?;
                let c = p.ctrls.get_mut(ci).ok_or_else(|| err("expr ctrl out of range"))?;
                match &mut c.kind {
                    CtrlKind::Leaf(hb) => hb.exprs.push(e),
                    _ => return Err(err("expr on non-leaf")),
                }
            }
            Some(tok) => return Err(err(&format!("unknown directive {tok}"))),
            None => {}
        }
    }
    if p.ctrls.is_empty() {
        return Err("artifact has no controllers".into());
    }
    Ok(p)
}

// -------------------------------------------------------------- helpers

fn sanitize(s: &str) -> String {
    let t: String = s.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect();
    if t.is_empty() {
        "_".to_string()
    } else {
        t
    }
}

fn kind_str(k: MemKind) -> &'static str {
    match k {
        MemKind::Dram => "dram",
        MemKind::Sram => "sram",
        MemKind::Reg => "reg",
        MemKind::Fifo => "fifo",
    }
}

fn parse_kind(s: &str) -> Option<MemKind> {
    Some(match s {
        "dram" => MemKind::Dram,
        "sram" => MemKind::Sram,
        "reg" => MemKind::Reg,
        "fifo" => MemKind::Fifo,
        _ => return None,
    })
}

fn dtype_str(d: DType) -> &'static str {
    match d {
        DType::I64 => "i64",
        DType::F64 => "f64",
    }
}

fn elem_str(e: Elem) -> String {
    match e {
        Elem::I64(v) => format!("i:{v}"),
        Elem::F64(v) => format!("f:{:016x}", v.to_bits()),
    }
}

fn parse_elem(s: &str) -> Option<Elem> {
    if let Some(v) = s.strip_prefix("i:") {
        return v.parse().ok().map(Elem::I64);
    }
    if let Some(v) = s.strip_prefix("f:") {
        return u64::from_str_radix(v, 16).ok().map(|b| Elem::F64(f64::from_bits(b)));
    }
    None
}

fn bound_str(b: Bound) -> String {
    match b {
        Bound::Const(v) => format!("c:{v}"),
        Bound::Reg(m) => format!("r:{}", m.0),
    }
}

fn parse_bound(s: &str) -> Option<Bound> {
    if let Some(v) = s.strip_prefix("c:") {
        return v.parse().ok().map(Bound::Const);
    }
    if let Some(v) = s.strip_prefix("r:") {
        return v.parse().ok().map(|m| Bound::Reg(MemId(m)));
    }
    None
}

fn init_str(i: &MemInit) -> String {
    match i {
        MemInit::Zero => "zero".to_string(),
        MemInit::Data(d) => {
            format!("data:{}", d.iter().map(|e| elem_str(*e)).collect::<Vec<_>>().join(";"))
        }
        MemInit::LinSpace { start, step } => {
            format!("linspace:{:016x}:{:016x}", start.to_bits(), step.to_bits())
        }
        MemInit::RandomF { seed } => format!("randf:{seed}"),
        MemInit::RandomI { seed, lo, hi } => format!("randi:{seed}:{lo}:{hi}"),
    }
}

fn parse_init(s: &str) -> Option<MemInit> {
    if s == "zero" {
        return Some(MemInit::Zero);
    }
    if let Some(v) = s.strip_prefix("data:") {
        let elems: Option<Vec<Elem>> =
            if v.is_empty() { Some(vec![]) } else { v.split(';').map(parse_elem).collect() };
        return elems.map(MemInit::Data);
    }
    if let Some(v) = s.strip_prefix("linspace:") {
        let (a, b) = v.split_once(':')?;
        let start = f64::from_bits(u64::from_str_radix(a, 16).ok()?);
        let step = f64::from_bits(u64::from_str_radix(b, 16).ok()?);
        return Some(MemInit::LinSpace { start, step });
    }
    if let Some(v) = s.strip_prefix("randf:") {
        return v.parse().ok().map(|seed| MemInit::RandomF { seed });
    }
    if let Some(v) = s.strip_prefix("randi:") {
        let mut it = v.split(':');
        let seed = it.next()?.parse().ok()?;
        let lo = it.next()?.parse().ok()?;
        let hi = it.next()?.parse().ok()?;
        return Some(MemInit::RandomI { seed, lo, hi });
    }
    None
}

fn ids_str(ids: &[ExprId]) -> String {
    ids.iter().map(|i| i.index().to_string()).collect::<Vec<_>>().join(",")
}

fn expr_str(e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!("const {}", elem_str(*v)),
        Expr::Idx(c) => format!("idx {}", c.index()),
        Expr::IsFirst(c) => format!("isfirst {}", c.index()),
        Expr::IsLast(c) => format!("islast {}", c.index()),
        Expr::Un(op, a) => format!("un {} {}", unop_str(*op), a.index()),
        Expr::Bin(op, a, b) => format!("bin {} {} {}", binop_str(*op), a.index(), b.index()),
        Expr::Mux { c, t, f } => format!("mux {} {} {}", c.index(), t.index(), f.index()),
        Expr::Load { mem, addr } => format!("load {} {}", mem.0, ids_str(addr)),
        Expr::Store { mem, addr, value, cond } => format!(
            "store {} {} {} {}",
            mem.0,
            ids_str(addr),
            value.index(),
            cond.map(|c| c.index().to_string()).unwrap_or_else(|| "-".to_string()),
        ),
        Expr::Reduce { op, value, init, over } => format!(
            "reduce {} {} {} {}",
            binop_str(*op),
            value.index(),
            elem_str(*init),
            over.index()
        ),
    }
}

fn parse_ids(s: &str) -> Option<Vec<ExprId>> {
    if s.is_empty() {
        return Some(vec![]);
    }
    s.split(',').map(|v| v.parse::<u32>().ok().map(ExprId)).collect()
}

fn parse_expr<'a>(it: &mut impl Iterator<Item = &'a str>) -> Option<Expr> {
    let eid = |s: &str| s.parse::<u32>().ok().map(ExprId);
    Some(match it.next()? {
        "const" => Expr::Const(parse_elem(it.next()?)?),
        "idx" => Expr::Idx(CtrlId(it.next()?.parse().ok()?)),
        "isfirst" => Expr::IsFirst(CtrlId(it.next()?.parse().ok()?)),
        "islast" => Expr::IsLast(CtrlId(it.next()?.parse().ok()?)),
        "un" => Expr::Un(parse_unop(it.next()?)?, eid(it.next()?)?),
        "bin" => Expr::Bin(parse_binop(it.next()?)?, eid(it.next()?)?, eid(it.next()?)?),
        "mux" => Expr::Mux { c: eid(it.next()?)?, t: eid(it.next()?)?, f: eid(it.next()?)? },
        "load" => Expr::Load { mem: MemId(it.next()?.parse().ok()?), addr: parse_ids(it.next()?)? },
        "store" => {
            let mem = MemId(it.next()?.parse().ok()?);
            let addr = parse_ids(it.next()?)?;
            let value = eid(it.next()?)?;
            let cond = match it.next()? {
                "-" => None,
                c => Some(eid(c)?),
            };
            Expr::Store { mem, addr, value, cond }
        }
        "reduce" => Expr::Reduce {
            op: parse_binop(it.next()?)?,
            value: eid(it.next()?)?,
            init: parse_elem(it.next()?)?,
            over: CtrlId(it.next()?.parse().ok()?),
        },
        _ => return None,
    })
}

const BINOPS: &[(BinOp, &str)] = &[
    (BinOp::Add, "add"),
    (BinOp::Sub, "sub"),
    (BinOp::Mul, "mul"),
    (BinOp::Div, "div"),
    (BinOp::Mod, "mod"),
    (BinOp::Min, "min"),
    (BinOp::Max, "max"),
    (BinOp::And, "and"),
    (BinOp::Or, "or"),
    (BinOp::Xor, "xor"),
    (BinOp::Shl, "shl"),
    (BinOp::Shr, "shr"),
    (BinOp::Lt, "lt"),
    (BinOp::Le, "le"),
    (BinOp::Gt, "gt"),
    (BinOp::Ge, "ge"),
    (BinOp::Eq, "eq"),
    (BinOp::Ne, "ne"),
];

const UNOPS: &[(UnOp, &str)] = &[
    (UnOp::Neg, "neg"),
    (UnOp::Not, "not"),
    (UnOp::Abs, "abs"),
    (UnOp::Exp, "exp"),
    (UnOp::Log, "log"),
    (UnOp::Sqrt, "sqrt"),
    (UnOp::Sigmoid, "sigmoid"),
    (UnOp::Tanh, "tanh"),
    (UnOp::Relu, "relu"),
    (UnOp::Floor, "floor"),
    (UnOp::ToI, "toi"),
    (UnOp::ToF, "tof"),
];

fn binop_str(op: BinOp) -> &'static str {
    BINOPS.iter().find(|(o, _)| *o == op).map(|(_, s)| *s).unwrap_or("add")
}

fn parse_binop(s: &str) -> Option<BinOp> {
    BINOPS.iter().find(|(_, n)| *n == s).map(|(o, _)| *o)
}

fn unop_str(op: UnOp) -> &'static str {
    UNOPS.iter().find(|(o, _)| *o == op).map(|(_, s)| *s).unwrap_or("neg")
}

fn parse_unop(s: &str) -> Option<UnOp> {
    UNOPS.iter().find(|(_, n)| *n == s).map(|(o, _)| *o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_program() {
        let mut p = Program::new("rt");
        let root = p.root();
        let src = p.dram("src", &[8], DType::F64, MemInit::RandomF { seed: 3 });
        let dst = p.dram("dst", &[8], DType::F64, MemInit::Zero);
        let l = p.add_loop(root, "l", LoopSpec::new(0, 8, 1).par(2)).unwrap();
        let hb = p.add_leaf(l, "h").unwrap();
        let i = p.idx(hb, l).unwrap();
        let v = p.load(hb, src, &[i]).unwrap();
        let c = p.c_f64(hb, 1.5).unwrap();
        let y = p.bin(hb, BinOp::Mul, v, c).unwrap();
        p.store(hb, dst, &[i], y).unwrap();
        p.validate().unwrap();

        let text = to_text(&p);
        let q = from_text(&text).unwrap();
        assert_eq!(p.mems, q.mems);
        assert_eq!(p.ctrls.len(), q.ctrls.len());
        for (a, b) in p.ctrls.iter().zip(&q.ctrls) {
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.children, b.children);
            assert_eq!(a.schedule, b.schedule);
        }
        q.validate().unwrap();
        assert_eq!(to_text(&q), text);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("sara-fuzz-program v1\nbogus line\n").is_err());
        assert!(from_text("sara-fuzz-program v1\nexpr 0 const i:1\n").is_err());
    }
}
