//! Artifact wire-form acceptance: every registry workload's lowered and
//! placed VUDFG must survive a JSON round trip exactly, and a graph
//! deserialized from the wire form must simulate to bit-identical
//! results under both schedulers — the property that makes serving a
//! cached sim artifact indistinguishable from recomputing it.

use plasticine_arch::ChipSpec;
use plasticine_sim::{simulate, SimConfig};
use sara_core::artifact::{vudfg_from_json, vudfg_json};
use sara_core::compile::{compile, CompilerOptions};

#[test]
fn placed_vudfg_round_trips_and_simulates_bit_identically() {
    let chip = ChipSpec::small_8x8();
    for w in sara_workloads::all_small() {
        let mut compiled = compile(&w.program, &chip, &CompilerOptions::default()).unwrap();
        let doc = vudfg_json(&compiled.vudfg);
        let back = vudfg_from_json(&doc).unwrap();
        assert_eq!(back, compiled.vudfg, "{}: lowered round trip", w.name);
        assert_eq!(doc.pretty(), vudfg_json(&back).pretty(), "{}: canonical text", w.name);

        sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 17).unwrap();
        // Round-trip through the *parser* too: on-disk artifacts are
        // read back as text, not as in-memory Json values.
        let text = vudfg_json(&compiled.vudfg).pretty();
        let placed = vudfg_from_json(&sara_util::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(placed, compiled.vudfg, "{}: placed round trip", w.name);

        for cfg in [SimConfig::default(), SimConfig::dense()] {
            let fresh = simulate(&compiled.vudfg, &chip, &cfg).unwrap();
            let cached = simulate(&placed, &chip, &cfg).unwrap();
            assert_eq!(fresh.cycles, cached.cycles, "{}: cycles must be bit-identical", w.name);
            assert_eq!(fresh.stats.firings, cached.stats.firings, "{}: firings", w.name);
            assert_eq!(fresh.dram_final, cached.dram_final, "{}: final DRAM state", w.name);
        }
    }
}
