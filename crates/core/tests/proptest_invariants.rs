//! Property tests of the compiler's graph algorithms: transitive
//! reduction preserves reachability; both partitioning algorithm families
//! produce valid solutions (capacity, arity, acyclicity, class
//! feasibility) on random layered DAGs; the solver never allocates more
//! partitions than the best traversal.

use plasticine_arch::PartitionConstraints;
use proptest::prelude::*;
use sara_core::depgraph::DiGraph;
use sara_core::partition::{partition, Algo, Problem, SolverCfg, TraversalOrder};

fn random_dag(n: usize, edges: &[(usize, usize)]) -> DiGraph {
    let mut g = DiGraph::new(n);
    for (a, b) in edges {
        // orient edges forward to guarantee a DAG
        let (x, y) = (a % n, b % n);
        if x < y {
            g.add_edge(x, y);
        } else if y < x {
            g.add_edge(y, x);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn transitive_reduction_preserves_reachability(
        n in 2usize..14,
        edges in proptest::collection::vec((0usize..14, 0usize..14), 0..40),
    ) {
        let g = random_dag(n, &edges);
        let tr = g.transitive_reduction();
        prop_assert!(tr.edge_count() <= g.edge_count());
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(g.reaches(a, b), tr.reaches(a, b), "({},{})", a, b);
            }
        }
    }

    #[test]
    fn partitioning_produces_valid_solutions(
        n in 2usize..24,
        edges in proptest::collection::vec((0usize..24, 0usize..24), 0..60),
        costs in proptest::collection::vec(0u32..4, 24),
        max_ops in 2u32..8,
    ) {
        let g = random_dag(n, &edges);
        let cons = PartitionConstraints {
            max_ops,
            max_in: 6,
            max_out: 4,
            buffer_depth: 16,
            max_counters: 8,
        };
        let costs: Vec<u32> = costs[..n].iter().map(|c| (*c).min(max_ops)).collect();
        let p = Problem::new(costs, g.edges(), cons);
        // Instances with a node whose intrinsic fan-in exceeds the input
        // ports are infeasible by definition and must be *reported*.
        let max_indeg = (0..n)
            .map(|i| {
                g.edges()
                    .iter()
                    .filter(|(_, b)| *b == i)
                    .map(|(a, _)| *a)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
            })
            .max()
            .unwrap_or(0);
        for algo in [
            Algo::Traversal(TraversalOrder::DfsFwd),
            Algo::Traversal(TraversalOrder::BfsBwd),
            Algo::BestTraversal,
            Algo::Solver(SolverCfg { gap: 0.25, budget_ms: 50 }),
        ] {
            match partition(&p, algo) {
                Ok(sol) => {
                    let groups = p.check(&sol.group).expect("valid solution");
                    prop_assert_eq!(groups, sol.num_groups);
                    prop_assert!(sol.num_groups >= p.lower_bound());
                }
                Err(_) => prop_assert!(max_indeg > 6, "feasible instance rejected"),
            }
        }
    }

    #[test]
    fn solver_not_worse_than_best_traversal(
        n in 2usize..16,
        edges in proptest::collection::vec((0usize..16, 0usize..16), 0..40),
    ) {
        let g = random_dag(n, &edges);
        let cons = PartitionConstraints {
            max_ops: 4,
            max_in: 6,
            max_out: 4,
            buffer_depth: 16,
            max_counters: 8,
        };
        let p = Problem::new(vec![1; n], g.edges(), cons);
        let t = partition(&p, Algo::BestTraversal);
        let s = partition(&p, Algo::Solver(SolverCfg { gap: 0.0, budget_ms: 200 }));
        match (t, s) {
            (Ok(t), Ok(s)) => {
                prop_assert!(s.num_groups <= t.num_groups, "solver {} vs traversal {}", s.num_groups, t.num_groups);
            }
            // infeasible instances (a node's fan-in exceeds the ports)
            // must be rejected by both algorithms
            (Err(_), Err(_)) => {}
            (t, s) => prop_assert!(false, "feasibility disagreement: {t:?} vs {s:?}"),
        }
    }

    #[test]
    fn class_feasibility_respected(
        n in 2usize..16,
        classes in proptest::collection::vec(0u32..3, 16),
    ) {
        let cons = PartitionConstraints {
            max_ops: 8,
            max_in: 6,
            max_out: 4,
            buffer_depth: 16,
            max_counters: 8,
        };
        let p = Problem::new(vec![1; n], vec![], cons).with_classes(classes[..n].to_vec());
        let sol = partition(&p, Algo::BestTraversal).unwrap();
        p.check(&sol.group).expect("classes respected");
    }
}
