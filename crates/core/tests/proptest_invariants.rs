//! Property tests of the compiler's graph algorithms: transitive
//! reduction preserves reachability; both partitioning algorithm families
//! produce valid solutions (capacity, arity, acyclicity, class
//! feasibility) on random layered DAGs; the solver never allocates more
//! partitions than the best traversal. Extended with an end-to-end
//! property: random programs compiled and simulated under both the dense
//! and the active-list scheduler produce identical outcomes.
//!
//! Cases are drawn from a seeded RNG (no proptest in the offline build):
//! deterministic, reproducible by case index.

use plasticine_arch::{ChipSpec, PartitionConstraints};
use plasticine_sim::{simulate, SimConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sara_core::compile::{compile, CompilerOptions};
use sara_core::depgraph::DiGraph;
use sara_core::partition::{partition, Algo, Problem, SolverCfg, TraversalOrder};
use sara_ir::{BinOp, DType, LoopSpec, MemInit, Program, UnOp};

fn random_dag(n: usize, edges: &[(usize, usize)]) -> DiGraph {
    let mut g = DiGraph::new(n);
    for (a, b) in edges {
        // orient edges forward to guarantee a DAG
        let (x, y) = (a % n, b % n);
        if x < y {
            g.add_edge(x, y);
        } else if y < x {
            g.add_edge(y, x);
        }
    }
    g
}

fn random_edges(rng: &mut SmallRng, node_bound: usize, max_edges: usize) -> Vec<(usize, usize)> {
    let count = rng.gen_range(0usize..=max_edges);
    (0..count)
        .map(|_| (rng.gen_range(0usize..node_bound), rng.gen_range(0usize..node_bound)))
        .collect()
}

#[test]
fn transitive_reduction_preserves_reachability() {
    let mut rng = SmallRng::seed_from_u64(0x7124);
    for _case in 0..64 {
        let n = rng.gen_range(2usize..14);
        let edges = random_edges(&mut rng, 14, 39);
        let g = random_dag(n, &edges);
        let tr = g.transitive_reduction();
        assert!(tr.edge_count() <= g.edge_count());
        for a in 0..n {
            for b in 0..n {
                assert_eq!(g.reaches(a, b), tr.reaches(a, b), "({a},{b}) n={n} edges={edges:?}");
            }
        }
    }
}

#[test]
fn partitioning_produces_valid_solutions() {
    let mut rng = SmallRng::seed_from_u64(0x9A27);
    for _case in 0..64 {
        let n = rng.gen_range(2usize..24);
        let edges = random_edges(&mut rng, 24, 59);
        let max_ops = rng.gen_range(2u32..8);
        let g = random_dag(n, &edges);
        let cons = PartitionConstraints {
            max_ops,
            max_in: 6,
            max_out: 4,
            buffer_depth: 16,
            max_counters: 8,
        };
        let costs: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..4).min(max_ops)).collect();
        let p = Problem::new(costs, g.edges(), cons);
        // Instances with a node whose intrinsic fan-in exceeds the input
        // ports are infeasible by definition and must be *reported*.
        let max_indeg = (0..n)
            .map(|i| {
                g.edges()
                    .iter()
                    .filter(|(_, b)| *b == i)
                    .map(|(a, _)| *a)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
            })
            .max()
            .unwrap_or(0);
        for algo in [
            Algo::Traversal(TraversalOrder::DfsFwd),
            Algo::Traversal(TraversalOrder::BfsBwd),
            Algo::BestTraversal,
            Algo::Solver(SolverCfg { gap: 0.25, budget_ms: 50 }),
        ] {
            match partition(&p, algo) {
                Ok(sol) => {
                    let groups = p.check(&sol.group).expect("valid solution");
                    assert_eq!(groups, sol.num_groups);
                    assert!(sol.num_groups >= p.lower_bound());
                }
                Err(_) => assert!(max_indeg > 6, "feasible instance rejected (n={n})"),
            }
        }
    }
}

#[test]
fn solver_not_worse_than_best_traversal() {
    let mut rng = SmallRng::seed_from_u64(0x501F);
    for _case in 0..64 {
        let n = rng.gen_range(2usize..16);
        let edges = random_edges(&mut rng, 16, 39);
        let g = random_dag(n, &edges);
        let cons = PartitionConstraints {
            max_ops: 4,
            max_in: 6,
            max_out: 4,
            buffer_depth: 16,
            max_counters: 8,
        };
        let p = Problem::new(vec![1; n], g.edges(), cons);
        let t = partition(&p, Algo::BestTraversal);
        let s = partition(&p, Algo::Solver(SolverCfg { gap: 0.0, budget_ms: 200 }));
        match (t, s) {
            (Ok(t), Ok(s)) => {
                assert!(
                    s.num_groups <= t.num_groups,
                    "solver {} vs traversal {}",
                    s.num_groups,
                    t.num_groups
                );
            }
            // infeasible instances (a node's fan-in exceeds the ports)
            // must be rejected by both algorithms
            (Err(_), Err(_)) => {}
            (t, s) => panic!("feasibility disagreement: {t:?} vs {s:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Corpus replay: the shrunken counterexamples recorded in
// `proptest_invariants.proptest-regressions` rerun here as explicit
// named tests, so the historical failures stay pinned even if the
// seeded case loops above are ever reshuffled.

/// Replays corpus entry `d9e0faac…`: a 12-node DAG with self-loops and
/// out-of-range endpoints (taken mod n) whose hub node ends up with 7
/// distinct producers against `max_in = 6`. The instance is infeasible
/// by definition, and every partitioning algorithm must *report* that
/// rather than emit a solution that violates the arity constraint.
#[test]
fn corpus_partitioning_infeasible_arity_is_reported() {
    let n = 12;
    let edges = [
        (6, 11),
        (12, 11),
        (11, 2),
        (11, 3),
        (17, 11),
        (11, 13),
        (11, 19),
        (0, 0),
        (0, 0),
        (0, 0),
        (0, 13),
        (8, 0),
    ];
    let costs = vec![0u32, 0, 1, 0, 0, 0, 1, 3, 1, 0, 0, 1];
    let max_ops = 2;
    let g = random_dag(n, &edges);
    let cons =
        PartitionConstraints { max_ops, max_in: 6, max_out: 4, buffer_depth: 16, max_counters: 8 };
    // The corpus case has a node cost above max_ops; the harness clamps.
    let costs: Vec<u32> = costs.into_iter().map(|c| c.min(max_ops)).collect();
    let p = Problem::new(costs, g.edges(), cons);
    for algo in [
        Algo::Traversal(TraversalOrder::DfsFwd),
        Algo::Traversal(TraversalOrder::BfsBwd),
        Algo::BestTraversal,
        Algo::Solver(SolverCfg { gap: 0.25, budget_ms: 50 }),
    ] {
        match partition(&p, algo) {
            Ok(sol) => panic!("infeasible corpus instance produced a solution: {sol:?}"),
            Err(e) => assert!(
                e.contains("exceeding input arity"),
                "infeasibility must name the arity violation, got: {e}"
            ),
        }
    }
}

/// Replays corpus entry `53ed4f9c…`: a 12-node star around node 11 with
/// endpoints taken mod n. Transitive reduction must preserve pairwise
/// reachability exactly.
#[test]
fn corpus_transitive_reduction_star() {
    let n = 12;
    let edges = [(11, 13), (2, 11), (11, 0), (11, 3), (4, 11), (11, 5), (11, 6)];
    let g = random_dag(n, &edges);
    let tr = g.transitive_reduction();
    assert!(tr.edge_count() <= g.edge_count());
    for a in 0..n {
        for b in 0..n {
            assert_eq!(g.reaches(a, b), tr.reaches(a, b), "({a},{b})");
        }
    }
}

#[test]
fn class_feasibility_respected() {
    let mut rng = SmallRng::seed_from_u64(0xC1A5);
    for _case in 0..64 {
        let n = rng.gen_range(2usize..16);
        let classes: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..3)).collect();
        let cons = PartitionConstraints {
            max_ops: 8,
            max_in: 6,
            max_out: 4,
            buffer_depth: 16,
            max_counters: 8,
        };
        let p = Problem::new(vec![1; n], vec![], cons).with_classes(classes);
        let sol = partition(&p, Algo::BestTraversal).unwrap();
        p.check(&sol.group).expect("classes respected");
    }
}

// ---------------------------------------------------------------------
// End-to-end scheduler property: random programs through the full stack
// under both the dense reference scheduler and the default active-list
// scheduler must produce identical cycle counts, firings and DRAM images.

/// A random two-stage pipeline (load → transform → store/reduce) with
/// randomized trips, tiles, vector widths and op choices.
fn random_program(rng: &mut SmallRng) -> Program {
    let outer = rng.gen_range(2i64..5);
    let tile = rng.gen_range(4i64..13);
    let par = [1u32, 4][rng.gen_range(0usize..2)];
    let op = rng.gen_range(0u8..3);
    let reduce_tail = rng.gen_bool(0.5);
    let seed = rng.gen_range(0u64..1000);
    let n = (outer * tile) as usize;

    let mut p = Program::new("sched_prop");
    let root = p.root();
    let src = p.dram("src", &[n], DType::F64, MemInit::RandomF { seed });
    let dst_len = if reduce_tail { outer as usize } else { n };
    let dst = p.dram("dst", &[dst_len], DType::F64, MemInit::Zero);
    let buf = p.sram("buf", &[tile as usize], DType::F64);
    let la = p.add_loop(root, "A", LoopSpec::new(0, outer, 1)).unwrap();
    {
        let l = p.add_loop(la, "in", LoopSpec::new(0, tile, 1).par(par)).unwrap();
        let hb = p.add_leaf(l, "ld").unwrap();
        let ia = p.idx(hb, la).unwrap();
        let ij = p.idx(hb, l).unwrap();
        let t = p.c_i64(hb, tile).unwrap();
        let b = p.bin(hb, BinOp::Mul, ia, t).unwrap();
        let a = p.bin(hb, BinOp::Add, b, ij).unwrap();
        let v = p.load(hb, src, &[a]).unwrap();
        let y = match op {
            0 => {
                let c = p.c_f64(hb, 2.0).unwrap();
                p.bin(hb, BinOp::Mul, v, c).unwrap()
            }
            1 => p.un(hb, UnOp::Relu, v).unwrap(),
            _ => {
                let c = p.c_f64(hb, -0.5).unwrap();
                p.bin(hb, BinOp::Add, v, c).unwrap()
            }
        };
        p.store(hb, buf, &[ij], y).unwrap();
    }
    {
        let l = p.add_loop(la, "out", LoopSpec::new(0, tile, 1).par(par)).unwrap();
        let hb = p.add_leaf(l, "st").unwrap();
        let ia = p.idx(hb, la).unwrap();
        let ij = p.idx(hb, l).unwrap();
        let x = p.load(hb, buf, &[ij]).unwrap();
        if reduce_tail {
            let acc = p.reduce(hb, BinOp::Add, x, sara_ir::Elem::F64(0.0), l).unwrap();
            let last = p.is_last(hb, l).unwrap();
            p.store_if(hb, dst, &[ia], acc, last).unwrap();
        } else {
            let t = p.c_i64(hb, tile).unwrap();
            let b = p.bin(hb, BinOp::Mul, ia, t).unwrap();
            let a = p.bin(hb, BinOp::Add, b, ij).unwrap();
            p.store(hb, dst, &[a], x).unwrap();
        }
    }
    p
}

#[test]
fn random_programs_identical_under_both_schedulers() {
    let mut rng = SmallRng::seed_from_u64(0x5CED);
    let chip = ChipSpec::small_8x8();
    for case in 0..20u64 {
        let p = random_program(&mut rng);
        p.validate().unwrap();
        let mut compiled = compile(&p, &chip, &CompilerOptions::default()).unwrap();
        sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, case).unwrap();
        let active = simulate(&compiled.vudfg, &chip, &SimConfig::default()).unwrap();
        let dense = simulate(&compiled.vudfg, &chip, &SimConfig::dense()).unwrap();
        assert_eq!(active.cycles, dense.cycles, "case {case}: cycle divergence");
        assert_eq!(active.stats.firings, dense.stats.firings, "case {case}: firings");
        assert_eq!(
            active.stats.unit_firings, dense.stats.unit_firings,
            "case {case}: per-unit firings"
        );
        assert_eq!(active.stats.dram, dense.stats.dram, "case {case}: dram stats");
        assert_eq!(active.dram_final, dense.dram_final, "case {case}: dram image");
    }
}

#[test]
fn registry_workloads_identical_under_both_schedulers() {
    // A couple of real registry kernels from the compiler crate's view;
    // the broader registry sweep lives in plasticine-sim's sched_equiv
    // tests.
    let chip = ChipSpec::small_8x8();
    for name in ["dotprod", "bs"] {
        let w = sara_workloads::by_name(name).unwrap();
        let mut compiled = compile(&w.program, &chip, &CompilerOptions::default()).unwrap();
        sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 3).unwrap();
        let active = simulate(&compiled.vudfg, &chip, &SimConfig::default()).unwrap();
        let dense = simulate(&compiled.vudfg, &chip, &SimConfig::dense()).unwrap();
        assert_eq!(active.cycles, dense.cycles, "{name}: cycle divergence");
        assert_eq!(active.dram_final, dense.dram_final, "{name}: dram image divergence");
    }
}
