//! Typed reports emitted by the simulator's robustness layer: the runtime
//! invariant sanitizer and the liveness watchdog.
//!
//! The simulator lives in `plasticine-sim`; the report *types* live here,
//! next to [`crate::profile`], so that campaign drivers (`sara-bench`) and
//! the fault-mode fuzz oracle (`sara-fuzz`) can consume structured
//! diagnoses without reaching into simulator internals — mirroring how
//! [`crate::profile::SimProfile`] decouples profile consumers from the
//! collector.
//!
//! A [`SanitizerReport`] names the violated invariant, the CMMC edge and
//! units involved, and a ring buffer of the protocol events leading up to
//! the violation. A [`WatchdogReport`] names the wait-for cycle (or
//! starvation chain) behind a liveness failure, with each member's stall
//! attribution in the [`crate::profile::StallReason`] taxonomy.

use crate::profile::StallReason;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The runtime invariant a [`SanitizerReport`] found violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantKind {
    /// Packet conservation on a stream: queued + in-flight occupancy must
    /// equal initial tokens + pushes − pops − marker skips. A mismatch
    /// means a credit/token/packet was created or destroyed outside the
    /// protocol (e.g. a leaked or stolen CMMC credit).
    TokenConservation,
    /// Stream occupancy exceeded its slot bound (FIFO depth + in-flight
    /// latency registers) — something pushed past backpressure.
    FifoOverflow,
    /// A multibuffered VMU's writer lapped a reader: a write epoch ran
    /// more than `multibuffer` epochs ahead of a read epoch, so a buffer
    /// still being read would be overwritten.
    EpochOrdering,
    /// A DRAM response arrived that matches no outstanding request run of
    /// the addressed unit (or addressed no unit at all).
    DramResponseMismatch,
    /// The DRAM model reported a response stalled past its drain budget.
    DramResponseStall,
}

impl InvariantKind {
    /// Short stable name (artifact keys, test assertions).
    pub fn label(self) -> &'static str {
        match self {
            InvariantKind::TokenConservation => "token-conservation",
            InvariantKind::FifoOverflow => "fifo-overflow",
            InvariantKind::EpochOrdering => "epoch-ordering",
            InvariantKind::DramResponseMismatch => "dram-response-mismatch",
            InvariantKind::DramResponseStall => "dram-response-stall",
        }
    }
}

/// One entry of the protocol-event ring buffer carried by a
/// [`SanitizerReport`]: a cheap, pre-rendered record of a token push/pop
/// delta, an epoch switch, a DRAM issue/complete, or an injected fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolEvent {
    pub cycle: u64,
    pub what: String,
}

impl fmt::Display for ProtocolEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.cycle, self.what)
    }
}

/// A runtime invariant violation: the simulator aborts with this instead
/// of silently diverging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerReport {
    /// Cycle the check fired.
    pub cycle: u64,
    /// Which invariant was violated.
    pub invariant: InvariantKind,
    /// Stream index of the implicated CMMC edge, when one is implicated.
    pub stream: Option<usize>,
    /// `src -> dst [label]` of the implicated edge, or the implicated
    /// unit's label.
    pub edge: String,
    /// Human-readable specifics (expected vs observed counts, epochs, …).
    pub detail: String,
    /// The last few protocol events before the violation, oldest first.
    pub recent: Vec<ProtocolEvent>,
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sanitizer: {} violated at cycle {} on {}: {}",
            self.invariant.label(),
            self.cycle,
            self.edge,
            self.detail
        )?;
        if !self.recent.is_empty() {
            writeln!(f, "  recent protocol events:")?;
            for e in &self.recent {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

/// One member of a wait-for cycle (or starvation chain): the unit, why it
/// is blocked, and the stream it is blocked on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitMember {
    /// Unit index in the VUDFG.
    pub unit: usize,
    /// Unit label.
    pub label: String,
    /// Stall attribution in the profiler taxonomy.
    pub reason: StallReason,
    /// The stream this unit is blocked on, when attributable.
    pub stream: Option<usize>,
    /// `src -> dst [label]` of that stream (empty when none).
    pub via: String,
    /// Free-form specifics ("waiting for token", "output full", …).
    pub detail: String,
}

/// Liveness diagnosis produced when the watchdog declares a deadlock:
/// the wait-for graph walk with per-member stall attribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogReport {
    /// Cycle the watchdog fired.
    pub cycle: u64,
    /// Cycles without global progress when it fired.
    pub stalled_for: u64,
    /// `true`: `members` form a closed wait-for cycle (true deadlock).
    /// `false`: `members` is the longest blocked chain found — starvation
    /// (e.g. a credit stolen from an edge whose producer already
    /// finished) rather than circular wait.
    pub is_cycle: bool,
    /// Members of the cycle (or chain), in wait-for order.
    pub members: Vec<WaitMember>,
    /// Total streams at full occupancy when the watchdog fired.
    pub backpressured_streams: usize,
}

impl WatchdogReport {
    /// `input-starved` / `output-backpressured` / … count per reason,
    /// in [`StallReason::ALL`] order.
    pub fn reason_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for m in &self.members {
            h[m.reason.index()] += 1;
        }
        h
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shape = if self.is_cycle { "wait-for cycle" } else { "starvation chain" };
        writeln!(
            f,
            "watchdog: {} of {} unit(s) after {} cycles without progress:",
            shape,
            self.members.len(),
            self.stalled_for
        )?;
        for m in &self.members {
            let via = if m.via.is_empty() { String::new() } else { format!(" via {}", m.via) };
            writeln!(f, "  {} [{}]{}: {}", m.label, m.reason.label(), via, m.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_report_renders_edge_and_events() {
        let r = SanitizerReport {
            cycle: 42,
            invariant: InvariantKind::TokenConservation,
            stream: Some(3),
            edge: "vcu0 -> vcu1 [tok]".into(),
            detail: "occupancy 2 != init 1 + pushed 4 - popped 4".into(),
            recent: vec![ProtocolEvent { cycle: 41, what: "s3 push token".into() }],
        };
        let s = r.to_string();
        assert!(s.contains("token-conservation"));
        assert!(s.contains("cycle 42"));
        assert!(s.contains("vcu0 -> vcu1 [tok]"));
        assert!(s.contains("@41 s3 push token"));
    }

    #[test]
    fn watchdog_report_histogram_counts_reasons() {
        let m = |r| WaitMember {
            unit: 0,
            label: "u".into(),
            reason: r,
            stream: None,
            via: String::new(),
            detail: String::new(),
        };
        let rep = WatchdogReport {
            cycle: 100,
            stalled_for: 50,
            is_cycle: true,
            members: vec![
                m(StallReason::CreditBlocked),
                m(StallReason::CreditBlocked),
                m(StallReason::OutputBackpressured),
            ],
            backpressured_streams: 1,
        };
        let h = rep.reason_histogram();
        assert_eq!(h[StallReason::CreditBlocked.index()], 2);
        assert_eq!(h[StallReason::OutputBackpressured.index()], 1);
        assert!(rep.to_string().contains("wait-for cycle"));
        assert!(rep.to_string().contains("credit-blocked"));
    }
}
