//! Compute partitioning (paper §III-B1, Tables I–III): splitting an
//! oversized dataflow graph into unit-sized partitions subject to
//! capacity, input/output arity and acyclicity constraints, minimizing the
//! number of allocated partitions (plus projected retiming partitions).
//!
//! Two algorithm families are provided, as in the paper:
//!
//! * **traversal-based** ([`Algo::Traversal`]): topologically sort the
//!   graph (DFS or BFS tie-breaking, forward or backward dataflow order)
//!   and greedily pack consecutive nodes into partitions — fast, decent;
//! * **solver-based** ([`Algo::Solver`]): branch-and-bound over the exact
//!   node-to-partition assignment model of Table III, warm-started by the
//!   best traversal solution and stopped at a configurable optimality gap
//!   or time budget — near-optimal, slow. (The paper uses Gurobi; this
//!   reproduction ships its own exact-model solver, see DESIGN.md.)

use crate::depgraph::DiGraph;
use plasticine_arch::PartitionConstraints;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// A partitioning problem instance: a DAG of nodes with stage costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// Stage cost per node (0-cost nodes ride along for free).
    pub costs: Vec<u32>,
    /// Data edges `(src, dst)`, deduplicated.
    pub edges: Vec<(usize, usize)>,
    /// Hardware constraints.
    pub cons: PartitionConstraints,
    /// Optional feasibility classes (Table III's matrix `F`): nodes may
    /// share a group only if they have the same class. Used by global
    /// merging, where only units with identical control signatures can
    /// fuse into one physical unit.
    pub classes: Option<Vec<u32>>,
}

impl Problem {
    /// Build from cost and edge lists; edges are deduplicated and
    /// self-loops (internal loop-carried dependencies, legal inside a
    /// partition) dropped.
    pub fn new(
        costs: Vec<u32>,
        mut edges: Vec<(usize, usize)>,
        cons: PartitionConstraints,
    ) -> Self {
        edges.retain(|(a, b)| a != b);
        edges.sort_unstable();
        edges.dedup();
        Problem { costs, edges, cons, classes: None }
    }

    /// Attach feasibility classes (builder style).
    pub fn with_classes(mut self, classes: Vec<u32>) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Whether two nodes may share a group.
    fn compatible(&self, a: usize, b: usize) -> bool {
        match &self.classes {
            None => true,
            Some(c) => c[a] == c[b],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    fn graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.len());
        for (a, b) in &self.edges {
            g.add_edge(*a, *b);
        }
        g
    }

    /// Lower bound on the number of partitions (capacity relaxation).
    pub fn lower_bound(&self) -> usize {
        let total: u32 = self.costs.iter().sum();
        (total as usize).div_ceil(self.cons.max_ops.max(1) as usize).max(1)
    }

    /// Check a full assignment for validity; returns the violation.
    pub fn check(&self, group: &[usize]) -> Result<usize, String> {
        let n_groups = group.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        // capacity
        let mut cost = vec![0u32; n_groups];
        for (i, g) in group.iter().enumerate() {
            cost[*g] += self.costs[i];
        }
        if let Some((g, c)) = cost.iter().enumerate().find(|(_, c)| **c > self.cons.max_ops) {
            return Err(format!("group {g} cost {c} exceeds {}", self.cons.max_ops));
        }
        // arity
        for g in 0..n_groups {
            let (ins, outs) = self.group_arity(group, g);
            if ins > self.cons.max_in as usize {
                return Err(format!("group {g} input arity {ins}"));
            }
            if outs > self.cons.max_out as usize {
                return Err(format!("group {g} output arity {outs}"));
            }
        }
        // class feasibility
        if let Some(classes) = &self.classes {
            let mut rep: Vec<Option<u32>> = vec![None; n_groups];
            for (i, g) in group.iter().enumerate() {
                match rep[*g] {
                    None => rep[*g] = Some(classes[i]),
                    Some(c) if c != classes[i] => {
                        return Err(format!("group {g} mixes classes"));
                    }
                    _ => {}
                }
            }
        }
        // acyclicity
        let q = self.graph().quotient(group, n_groups);
        if !q.is_dag() {
            return Err("cyclic quotient".into());
        }
        Ok(n_groups)
    }

    /// `(input arity, output arity)` of one group under an assignment:
    /// unique external producer nodes feeding the group, and unique group
    /// nodes with at least one external consumer (broadcast counts once).
    pub fn group_arity(&self, group: &[usize], g: usize) -> (usize, usize) {
        let mut ins: HashSet<usize> = HashSet::new();
        let mut outs: HashSet<usize> = HashSet::new();
        for (a, b) in &self.edges {
            if group[*b] == g && group[*a] != g {
                ins.insert(*a);
            }
            if group[*a] == g && group[*b] != g {
                outs.insert(*a);
            }
        }
        (ins.len(), outs.len())
    }
}

/// Traversal order for the heuristic packer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraversalOrder {
    DfsFwd,
    DfsBwd,
    BfsFwd,
    BfsBwd,
}

impl TraversalOrder {
    /// All four orders (the Fig 11 sweep).
    pub const ALL: [TraversalOrder; 4] = [
        TraversalOrder::DfsFwd,
        TraversalOrder::DfsBwd,
        TraversalOrder::BfsFwd,
        TraversalOrder::BfsBwd,
    ];
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverCfg {
    /// Stop when within this fraction of the capacity lower bound
    /// (paper uses a 15% optimality gap with Gurobi).
    pub gap: f64,
    /// Wall-clock budget.
    pub budget_ms: u64,
}

impl Default for SolverCfg {
    fn default() -> Self {
        SolverCfg { gap: 0.15, budget_ms: 2_000 }
    }
}

/// Algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Algo {
    Traversal(TraversalOrder),
    /// Best of all four traversal orders.
    BestTraversal,
    Solver(SolverCfg),
}

/// A partitioning result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// Group id per node.
    pub group: Vec<usize>,
    /// Number of groups.
    pub num_groups: usize,
}

/// Partition a problem with the chosen algorithm.
///
/// # Errors
///
/// Returns a message when a single node exceeds the capacity constraint
/// (no valid partitioning exists).
pub fn partition(p: &Problem, algo: Algo) -> Result<Solution, String> {
    if p.is_empty() {
        return Ok(Solution { group: vec![], num_groups: 0 });
    }
    if let Some((i, c)) = p.costs.iter().enumerate().find(|(_, c)| **c > p.cons.max_ops) {
        return Err(format!("node {i} cost {c} exceeds unit capacity {}", p.cons.max_ops));
    }
    // A node with more distinct producers than input ports is infeasible
    // even in a singleton group.
    for i in 0..p.len() {
        let preds: HashSet<usize> =
            p.edges.iter().filter(|(_, b)| *b == i).map(|(a, _)| *a).collect();
        if preds.len() > p.cons.max_in as usize {
            return Err(format!(
                "node {i} has {} distinct producers, exceeding input arity {}",
                preds.len(),
                p.cons.max_in
            ));
        }
    }
    match algo {
        Algo::Traversal(ord) => traversal(p, ord),
        Algo::BestTraversal => {
            let mut best: Option<Solution> = None;
            for ord in TraversalOrder::ALL {
                let s = traversal(p, ord)?;
                if best.as_ref().map(|b| s.num_groups < b.num_groups).unwrap_or(true) {
                    best = Some(s);
                }
            }
            best.ok_or_else(|| "no traversal order produced a partition".to_string())
        }
        Algo::Solver(cfg) => solver(p, cfg),
    }
}

/// Topological order with DFS/BFS tie-breaking, forward or backward.
fn order_nodes(p: &Problem, ord: TraversalOrder) -> Vec<usize> {
    let n = p.len();
    let g = p.graph();
    let backward = matches!(ord, TraversalOrder::DfsBwd | TraversalOrder::BfsBwd);
    // Build the graph to traverse (reverse edges for backward orders).
    let mut adj = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (a, b) in g.edges() {
        let (x, y) = if backward { (b, a) } else { (a, b) };
        adj[x].push(y);
        indeg[y] += 1;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let dfs = matches!(ord, TraversalOrder::DfsFwd | TraversalOrder::DfsBwd);
    while let Some(x) = if dfs { ready.pop() } else { Some(ready.remove(0)) } {
        out.push(x);
        for &s in &adj[x] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                // DFS: newly enabled nodes go on top (depth-first chains);
                // BFS: at the back (layer by layer).
                ready.push(s);
            }
        }
        if out.len() == n {
            break;
        }
        if ready.is_empty() && out.len() < n {
            // Cycle remnants (should not happen on DAGs): append rest.
            for i in 0..n {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
            break;
        }
    }
    if backward {
        out.reverse();
    }
    out
}

/// Greedy consecutive packing along a topological order. Packing
/// consecutive order segments guarantees the quotient stays acyclic.
fn traversal(p: &Problem, ord: TraversalOrder) -> Result<Solution, String> {
    let order = order_nodes(p, ord);
    let n = p.len();
    let mut group = vec![usize::MAX; n];
    let mut gid = 0usize;
    let mut gcost = 0u32;
    let mut grep: Option<usize> = None;
    for (i, &node) in order.iter().enumerate() {
        let c = p.costs[node];
        if i > 0 {
            // try current group
            group[node] = gid;
            let fits = gcost + c <= p.cons.max_ops
                && grep.map(|r| p.compatible(r, node)).unwrap_or(true)
                && arity_ok(p, &group, gid);
            if !fits {
                group[node] = usize::MAX;
                gid += 1;
                gcost = 0;
                grep = None;
            }
        }
        group[node] = gid;
        gcost += c;
        grep = grep.or(Some(node));
        if !arity_ok(p, &group, gid) {
            // a single node violating arity cannot be fixed by packing;
            // keep it alone (arity with one node is minimal already)
            if count_in_group(&group, gid) > 1 {
                group[node] = gid + 1;
                gid += 1;
                gcost = c;
                grep = Some(node);
            }
        }
    }
    let num_groups = gid + 1;
    // Final validation (acyclicity holds by construction for forward
    // segment packing; verify everything anyway).
    let sol = Solution { group, num_groups };
    p.check(&sol.group).map_err(|e| format!("traversal produced invalid solution: {e}"))?;
    Ok(sol)
}

fn count_in_group(group: &[usize], g: usize) -> usize {
    group.iter().filter(|x| **x == g).count()
}

fn arity_ok(p: &Problem, group: &[usize], g: usize) -> bool {
    // Treat unassigned (usize::MAX) as external.
    let (ins, outs) = group_arity_partial(p, group, g);
    ins <= p.cons.max_in as usize && outs <= p.cons.max_out as usize
}

fn group_arity_partial(p: &Problem, group: &[usize], g: usize) -> (usize, usize) {
    let mut ins: HashSet<usize> = HashSet::new();
    let mut outs: HashSet<usize> = HashSet::new();
    for (a, b) in &p.edges {
        let ga = group.get(*a).copied().unwrap_or(usize::MAX);
        let gb = group.get(*b).copied().unwrap_or(usize::MAX);
        if gb == g && ga != g {
            ins.insert(*a);
        }
        if ga == g && gb != g {
            outs.insert(*a);
        }
    }
    (ins.len(), outs.len())
}

/// Branch-and-bound solver over the Table III assignment model: nodes are
/// assigned in topological order either to an existing group or to a new
/// one; partial assignments are pruned against capacity/arity/acyclicity
/// and against the incumbent bound.
fn solver(p: &Problem, cfg: SolverCfg) -> Result<Solution, String> {
    let warm = partition(p, Algo::BestTraversal)?;
    let lb = p.lower_bound();
    let target = ((lb as f64) * (1.0 + cfg.gap)).floor() as usize;
    if warm.num_groups <= target.max(lb) {
        return Ok(warm);
    }
    let order = order_nodes(p, TraversalOrder::BfsFwd);
    let deadline = Instant::now() + Duration::from_millis(cfg.budget_ms);
    let mut best = warm.clone();
    let n = p.len();
    // DFS over assignments.
    struct Ctx<'x> {
        p: &'x Problem,
        order: &'x [usize],
        deadline: Instant,
        best: Solution,
        lb: usize,
        target: usize,
        expanded: u64,
    }
    fn rec(ctx: &mut Ctx<'_>, idx: usize, group: &mut Vec<usize>, gcost: &mut Vec<u32>) {
        if ctx.best.num_groups <= ctx.target.max(ctx.lb) {
            return; // good enough
        }
        ctx.expanded += 1;
        if ctx.expanded.is_multiple_of(512) && Instant::now() > ctx.deadline {
            return;
        }
        let used = gcost.len();
        if used >= ctx.best.num_groups {
            return; // cannot beat the incumbent
        }
        if idx == ctx.order.len() {
            if ctx.p.check(group).is_ok() && used < ctx.best.num_groups {
                ctx.best = Solution { group: group.clone(), num_groups: used };
            }
            return;
        }
        let node = ctx.order[idx];
        let c = ctx.p.costs[node];
        // Try existing groups (most recently opened first: keeps locality)
        for g in (0..used).rev() {
            if gcost[g] + c > ctx.p.cons.max_ops {
                continue;
            }
            if let Some(rep) = group.iter().position(|x| *x == g) {
                if !ctx.p.compatible(rep, node) {
                    continue;
                }
            }
            group[node] = g;
            gcost[g] += c;
            if arity_ok(ctx.p, group, g) && partial_acyclic(ctx.p, group, used) {
                rec(ctx, idx + 1, group, gcost);
            }
            gcost[g] -= c;
            group[node] = usize::MAX;
            if Instant::now() > ctx.deadline {
                return;
            }
        }
        // New group
        if used + 1 < ctx.best.num_groups {
            group[node] = used;
            gcost.push(c);
            rec(ctx, idx + 1, group, gcost);
            gcost.pop();
            group[node] = usize::MAX;
        }
    }
    fn partial_acyclic(p: &Problem, group: &[usize], used: usize) -> bool {
        let mut q = DiGraph::new(used);
        for (a, b) in &p.edges {
            let (ga, gb) = (group[*a], group[*b]);
            if ga != usize::MAX && gb != usize::MAX && ga != gb && ga < used && gb < used {
                q.add_edge(ga, gb);
            }
        }
        q.is_dag()
    }
    let mut group = vec![usize::MAX; n];
    let mut gcost: Vec<u32> = Vec::new();
    let mut ctx = Ctx { p, order: &order, deadline, best: best.clone(), lb, target, expanded: 0 };
    rec(&mut ctx, 0, &mut group, &mut gcost);
    best = ctx.best;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cons(max_ops: u32, max_in: u32, max_out: u32) -> PartitionConstraints {
        PartitionConstraints { max_ops, max_in, max_out, buffer_depth: 16, max_counters: 8 }
    }

    /// A chain of 12 unit-cost nodes on units of capacity 4 needs 3 groups.
    #[test]
    fn chain_packs_tightly() {
        let n = 12;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let p = Problem::new(vec![1; n], edges, cons(4, 4, 4));
        for ord in TraversalOrder::ALL {
            let s = partition(&p, Algo::Traversal(ord)).unwrap();
            assert_eq!(s.num_groups, 3, "{ord:?}");
            p.check(&s.group).unwrap();
        }
        let s = partition(&p, Algo::Solver(SolverCfg::default())).unwrap();
        assert_eq!(s.num_groups, 3);
    }

    /// Wide fan-out forces arity-driven splits the solver can pack better.
    #[test]
    fn solver_not_worse_than_traversal() {
        // random-ish DAG: two layers with cross edges
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in 0..3 {
                edges.push((a, 6 + (a + b) % 6));
            }
        }
        let p = Problem::new(vec![1; 12], edges, cons(3, 4, 2));
        let t = partition(&p, Algo::BestTraversal).unwrap();
        let s = partition(&p, Algo::Solver(SolverCfg { gap: 0.0, budget_ms: 3_000 })).unwrap();
        p.check(&t.group).unwrap();
        p.check(&s.group).unwrap();
        assert!(s.num_groups <= t.num_groups);
        assert!(s.num_groups >= p.lower_bound());
    }

    #[test]
    fn oversized_node_rejected() {
        let p = Problem::new(vec![10], vec![], cons(6, 4, 4));
        assert!(partition(&p, Algo::BestTraversal).is_err());
    }

    #[test]
    fn acyclicity_enforced_on_diamond() {
        // diamond with shortcut; capacity 2 forces splits
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        let p = Problem::new(vec![1; 4], edges, cons(2, 4, 4));
        let s = partition(&p, Algo::BestTraversal).unwrap();
        assert_eq!(p.check(&s.group).unwrap(), s.num_groups);
        assert_eq!(s.num_groups, 2);
    }

    #[test]
    fn zero_cost_nodes_ride_free() {
        let edges = vec![(0, 1), (1, 2)];
        let p = Problem::new(vec![0, 0, 0], edges, cons(6, 4, 4));
        let s = partition(&p, Algo::BestTraversal).unwrap();
        assert_eq!(s.num_groups, 1);
    }

    #[test]
    fn empty_problem() {
        let p = Problem::new(vec![], vec![], cons(6, 4, 4));
        let s = partition(&p, Algo::BestTraversal).unwrap();
        assert_eq!(s.num_groups, 0);
    }

    #[test]
    fn arity_limits_respected() {
        // 8 producers feeding one sink with max_in 4: infeasible even as a
        // singleton group — must be reported, not silently violated.
        let mut edges = Vec::new();
        for a in 0..8 {
            edges.push((a, 8));
        }
        let p = Problem::new(vec![1; 9], edges, cons(6, 4, 4));
        assert!(partition(&p, Algo::BestTraversal).is_err());

        // With fan-in 4 the instance is feasible; grouping producers with
        // the sink internalizes edges and must respect the limits.
        let edges4: Vec<(usize, usize)> = (0..4).map(|a| (a, 4)).collect();
        let p4 = Problem::new(vec![1; 5], edges4, cons(6, 4, 4));
        let s = partition(&p4, Algo::BestTraversal).unwrap();
        p4.check(&s.group).unwrap();
    }
}
