//! Global merging (paper §III-B(b)): pack small virtual units into larger
//! physical units. This is the partitioning problem generalized to the
//! VUDFG unit graph: nodes are compute-class virtual units, edges are the
//! zero-credit streams between them (credit-initialized token streams are
//! legal cycle-breakers and do not constrain merging), and feasibility
//! restricts fusion to units with identical control signatures.

use crate::partition::{partition, Algo, Problem, Solution};
use crate::vudfg::{StreamKind, UnitId, UnitKind, Vudfg};
use plasticine_arch::PartitionConstraints;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Result of global merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    /// Units that participated in merging, in problem-node order.
    pub units: Vec<UnitId>,
    /// Group assignment aligned with `units`.
    pub solution: Solution,
}

impl MergePlan {
    /// Number of physical compute units after merging.
    pub fn merged_count(&self) -> usize {
        self.solution.num_groups
    }

    /// Group id of a unit, if it participated in merging.
    pub fn group_of(&self, u: UnitId) -> Option<usize> {
        self.units.iter().position(|x| *x == u).map(|i| self.solution.group[i])
    }
}

/// Whether a unit participates in compute-side merging (PCU-class units).
/// VMUs and AGs map to their own physical classes; response units ride in
/// the PMU of the memory they observe (paper §III-A1).
pub fn is_mergeable_compute(g: &Vudfg, u: UnitId) -> bool {
    match &g.unit(u).kind {
        UnitKind::Vcu(v) => !matches!(v.role, crate::vudfg::VcuRole::Response { .. }),
        UnitKind::Sync(_) | UnitKind::XbarDist(_) | UnitKind::XbarColl(_) => true,
        UnitKind::Vmu(_) | UnitKind::Ag(_) => false,
    }
}

/// Control-signature class of a unit: only units that iterate identically
/// can share one physical unit's counter chain. Stream-driven helpers
/// (sync, crossbars) have a dedicated class and merge among themselves.
fn class_of(g: &Vudfg, u: UnitId) -> u32 {
    match &g.unit(u).kind {
        UnitKind::Vcu(v) => {
            let mut h = DefaultHasher::new();
            for l in &v.levels {
                // Full level identity: lane offsets distinguish spatially
                // unrolled lanes — one physical counter chain cannot serve
                // two lanes.
                format!("{l:?}").hash(&mut h);
            }
            v.width.hash(&mut h);
            (h.finish() as u32) | 1 // never collides with the helper class 0
        }
        _ => 0,
    }
}

/// Stage cost of a unit for merging purposes (zero-datapath units still
/// consume a pipeline slot when fused).
fn cost_of(g: &Vudfg, u: UnitId, transcendental_stages: u32) -> u32 {
    match &g.unit(u).kind {
        UnitKind::Vcu(v) => v.stage_cost(transcendental_stages).max(1),
        UnitKind::Sync(_) => 0,
        UnitKind::XbarDist(_) | UnitKind::XbarColl(_) => 1,
        _ => 0,
    }
}

/// Build and solve the global-merging problem.
///
/// `precost` optionally overrides the cost of units that were already
/// internally partitioned: units needing more than one physical unit are
/// excluded from merging (their cost is accounted separately).
///
/// # Errors
///
/// Propagates partitioning failures (none expected for well-formed
/// inputs; per-unit costs are clamped to capacity).
pub fn merge(
    g: &Vudfg,
    cons: PartitionConstraints,
    transcendental_stages: u32,
    algo: Algo,
    precost: &HashMap<UnitId, u32>,
) -> Result<MergePlan, String> {
    let units: Vec<UnitId> = g
        .unit_ids()
        .filter(|u| is_mergeable_compute(g, *u))
        .filter(|u| precost.get(u).copied().unwrap_or(1) <= 1)
        .collect();
    let index: HashMap<UnitId, usize> = units.iter().enumerate().map(|(i, u)| (*u, i)).collect();
    let costs: Vec<u32> =
        units.iter().map(|u| cost_of(g, *u, transcendental_stages).min(cons.max_ops)).collect();
    let classes: Vec<u32> = units.iter().map(|u| class_of(g, *u)).collect();
    let mut edges = Vec::new();
    for s in &g.streams {
        // Credit-initialized token streams break cycles by construction.
        if matches!(s.kind, StreamKind::Token { init } if init > 0) {
            continue;
        }
        if let (Some(a), Some(b)) = (index.get(&s.src), index.get(&s.dst)) {
            if a != b {
                edges.push((*a, *b));
            }
        }
    }
    let problem = Problem::new(costs, edges, cons).with_classes(classes);
    let solution = partition(&problem, algo)?;
    Ok(MergePlan { units, solution })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vudfg::{CBound, DfgNode, Level, NodeOp, Vcu, VcuRole};
    use sara_ir::{BinOp, CtrlId};

    fn vcu(levels: Vec<Level>, n_ops: usize) -> UnitKind {
        let dfg =
            (0..n_ops).map(|_| DfgNode { op: NodeOp::Bin(BinOp::Add), ins: vec![] }).collect();
        UnitKind::Vcu(Vcu {
            levels,
            dfg,
            width: 1,
            role: VcuRole::Merge,
            token_pops: vec![],
            token_pushes: vec![],
            producer_gate_mask: vec![],
            epoch_emit: None,
        })
    }

    fn lvl(c: u32) -> Level {
        Level::Counter {
            min: CBound::Const(0),
            max: CBound::Const(8),
            step: 1,
            lane_offset: 0,
            lane_stride: 1,
            ctrl: CtrlId(c),
        }
    }

    fn cons() -> PartitionConstraints {
        PartitionConstraints {
            max_ops: 6,
            max_in: 10,
            max_out: 4,
            buffer_depth: 16,
            max_counters: 8,
        }
    }

    #[test]
    fn same_signature_units_fuse() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", vcu(vec![lvl(1)], 2));
        let b = g.add_unit("b", vcu(vec![lvl(1)], 2));
        g.connect(a, b, StreamKind::Scalar, 4, "s");
        let plan = merge(&g, cons(), 2, Algo::BestTraversal, &HashMap::new()).unwrap();
        assert_eq!(plan.merged_count(), 1);
        assert_eq!(plan.group_of(a), plan.group_of(b));
    }

    #[test]
    fn different_signatures_stay_apart() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", vcu(vec![lvl(1)], 1));
        let b = g.add_unit("b", vcu(vec![lvl(2)], 1));
        let plan = merge(&g, cons(), 2, Algo::BestTraversal, &HashMap::new()).unwrap();
        assert_eq!(plan.merged_count(), 2);
        assert_ne!(plan.group_of(a), plan.group_of(b));
    }

    #[test]
    fn capacity_limits_fusion() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", vcu(vec![lvl(1)], 4));
        let _b = g.add_unit("b", vcu(vec![lvl(1)], 4));
        let plan = merge(&g, cons(), 2, Algo::BestTraversal, &HashMap::new()).unwrap();
        assert_eq!(plan.merged_count(), 2);
        let _ = a;
    }

    #[test]
    fn credited_token_cycles_do_not_block_merging() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", vcu(vec![lvl(1)], 1));
        let b = g.add_unit("b", vcu(vec![lvl(1)], 1));
        g.connect(a, b, StreamKind::Scalar, 4, "fwd");
        g.connect(b, a, StreamKind::Token { init: 1 }, 4, "credit");
        let plan = merge(&g, cons(), 2, Algo::BestTraversal, &HashMap::new()).unwrap();
        assert_eq!(plan.merged_count(), 1);
    }

    #[test]
    fn prepartitioned_units_excluded() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", vcu(vec![lvl(1)], 2));
        let b = g.add_unit("b", vcu(vec![lvl(1)], 2));
        let mut pre = HashMap::new();
        pre.insert(a, 3u32); // a already needs 3 PUs
        let plan = merge(&g, cons(), 2, Algo::BestTraversal, &pre).unwrap();
        assert_eq!(plan.units, vec![b]);
        assert_eq!(plan.merged_count(), 1);
    }
}
