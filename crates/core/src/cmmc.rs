//! Compiler-managed memory consistency (CMMC), paper §III-A1 and §III-A3.
//!
//! For every data structure, CMMC builds a dependency graph over its access
//! sites (nodes = accessors in program order; solid forward edges =
//! same-activation dependencies; dashed backward edges = loop-carried
//! dependencies), reduces it (transitive reduction on the forward graph,
//! subsumption pruning on the backward graph), and converts each surviving
//! edge into a **token** exchanged between the request/response units of
//! the two accessors:
//!
//! * a forward edge `A -> B` sends a token when the controller
//!   `child_toward(LCA, A)` completes and is consumed before each
//!   activation of `child_toward(LCA, B)` starts (zero initial credits);
//! * a backward edge `B -> A` over loop `L` is a **credit**: initialized to
//!   the multibuffer depth so that `A` may run ahead of `B` by that many
//!   activations of `L` before back-pressuring.

use crate::depgraph::DiGraph;
use sara_ir::affine::access_affine;
use sara_ir::{Access, AccessId, CtrlId, CtrlKind, MemId, MemKind, Program, Schedule};
use serde::{Deserialize, Serialize};

/// Dependency classification of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    Raw,
    War,
    Waw,
    /// Read-after-read, enforced only for PMU-backed memories because the
    /// Plasticine PMU serves a single read request stream at a time.
    Rar,
}

/// A synchronization edge to realize with a token stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenEdge {
    /// Token source access (its response/completion side pushes).
    pub src: AccessId,
    /// Token destination access (its request side pops).
    pub dst: AccessId,
    /// Controller whose completion triggers the push: `child_toward(lca,
    /// src)`; when equal to the source's own hyperblock the exchange is
    /// per firing.
    pub src_level: CtrlId,
    /// Controller whose activation start pops the token.
    pub dst_level: CtrlId,
    /// Initial credits at the destination (0 for forward edges).
    pub init: u32,
    /// Dependency kind.
    pub dep: DepKind,
    /// For backward edges: the loop carrying the dependency.
    pub lcd_loop: Option<CtrlId>,
}

/// Reduction statistics (how much synchronization the analysis removed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmmcStats {
    pub forward_before: usize,
    pub forward_after: usize,
    pub backward_before: usize,
    pub backward_after: usize,
}

impl CmmcStats {
    /// Total edges before reduction.
    pub fn before(&self) -> usize {
        self.forward_before + self.backward_before
    }

    /// Total edges after reduction.
    pub fn after(&self) -> usize {
        self.forward_after + self.backward_after
    }
}

/// Options controlling CMMC synthesis (ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CmmcOptions {
    /// Apply transitive reduction + LCD subsumption (paper §III-A3). When
    /// off, every dependency edge gets its own token (the naive scheme).
    pub reduce: bool,
    /// Order read-after-read on PMU-backed memories with tokens. The
    /// Plasticine PMU serves one read request stream at a time; this
    /// reproduction models that *structurally* (the simulated VMU
    /// arbitrates one read port per cycle), so explicit RAR tokens are
    /// redundant and default off. Enable for strict stream-serialized
    /// reads.
    pub order_rar: bool,
    /// Relax backward credits to the multibuffer depth when the enclosing
    /// schedule is pipelined and the address analysis allows it. When off,
    /// all credits are 1 (sequential-consistent hierarchical execution).
    pub relax_credits: bool,
    /// Multibuffer depth granted when relaxation applies (classic double
    /// buffering = 2).
    pub multibuffer: u32,
}

impl Default for CmmcOptions {
    fn default() -> Self {
        CmmcOptions { reduce: true, order_rar: false, relax_credits: true, multibuffer: 2 }
    }
}

/// The synthesized synchronization plan for a whole program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CmmcPlan {
    /// Token edges to materialize, across all memories.
    pub edges: Vec<TokenEdge>,
    /// Per-memory multibuffering chosen by credit relaxation:
    /// `(memory, buffer-switch loop, depth)`. The loop is the LCD loop
    /// whose activations delimit buffer epochs.
    pub multibuffer: Vec<(MemId, CtrlId, u32)>,
    /// Aggregate reduction statistics.
    pub stats: CmmcStats,
}

impl CmmcPlan {
    /// Multibuffer depth and epoch loop chosen for a memory, if any.
    pub fn multibuffer_of(&self, mem: MemId) -> Option<(CtrlId, u32)> {
        self.multibuffer.iter().find(|(m, _, d)| *m == mem && *d > 1).map(|(_, l, d)| (*l, *d))
    }
}

/// One backward (loop-carried) dependency before reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BackEdge {
    /// Index of the later accessor (source of the backward edge).
    from: usize,
    /// Index of the earlier accessor.
    to: usize,
    lcd_loop: CtrlId,
    dep: DepKind,
}

/// Synthesize the CMMC plan for a validated program.
pub fn synthesize(p: &Program, opts: &CmmcOptions) -> CmmcPlan {
    let mut plan = CmmcPlan::default();
    for mem_idx in 0..p.mems.len() {
        let mem = MemId(mem_idx as u32);
        synthesize_mem(p, mem, opts, &mut plan);
    }
    plan
}

/// Innermost iterative controller that is a common ancestor of both
/// accesses (if any).
fn common_loop(p: &Program, a: CtrlId, b: CtrlId) -> Option<CtrlId> {
    let lca = p.lca(a, b);
    p.ancestors(lca).into_iter().find(|c| p.ctrl(*c).is_iterative())
}

/// Whether two hyperblocks are mutually exclusive (their LCA is a branch
/// and they live in different arms).
fn mutually_exclusive(p: &Program, a: CtrlId, b: CtrlId) -> bool {
    let lca = p.lca(a, b);
    matches!(p.ctrl(lca).kind, CtrlKind::Branch { .. }) && a != lca && b != lca
}

fn dep_kind(a_write: bool, b_write: bool) -> Option<DepKind> {
    match (a_write, b_write) {
        (true, true) => Some(DepKind::Waw),
        (true, false) => Some(DepKind::Raw),
        (false, true) => Some(DepKind::War),
        (false, false) => None, // RAR decided by memory kind at the call site
    }
}

fn synthesize_mem(p: &Program, mem: MemId, opts: &CmmcOptions, plan: &mut CmmcPlan) {
    let accs: Vec<Access> = p.accesses_of(mem);
    if accs.len() < 2 {
        return;
    }
    let kind = p.mem(mem).kind;
    // RAR ordering is a PMU restriction: a PMU serves one read stream at a
    // time. DRAM interfaces and broadcast registers allow concurrent reads.
    let order_rar = opts.order_rar && kind == MemKind::Sram;
    // FIFOs are inherently ordered streams: producers/consumers pair
    // elementwise, and the lowering maps them to input buffers; ordering
    // tokens would deadlock genuinely streaming producers/consumers.
    if kind == MemKind::Fifo {
        return;
    }

    let n = accs.len();
    let mut fwd = DiGraph::new(n);
    let mut back: Vec<BackEdge> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (&accs[i], &accs[j]);
            let dep = match dep_kind(a.is_write, b.is_write) {
                Some(d) => Some(d),
                None if order_rar => Some(DepKind::Rar),
                None => None,
            };
            let Some(dep) = dep else { continue };
            // Mutually exclusive accesses (different branch arms, Fig 5b)
            // cannot conflict within one iteration, but their streams
            // still need cross-iteration ordering: the forward token is
            // kept and released *vacuously* by skipped activations (the
            // Fig 4 mechanism, "tokens are immediately released to the
            // downstream consumer"). The sequential baseline thus remains
            // safe while skipped arms add no delay.
            let _excl = mutually_exclusive(p, a.id.hb, b.id.hb);
            fwd.add_edge(i, j);
            if let Some(l) = common_loop(p, a.id.hb, b.id.hb) {
                // The backward edge carries the reversed hazard: if the
                // forward dependency is RAW (write then read), the
                // loop-carried one is WAR (the next write must wait for
                // this read), and vice versa. WAW/RAR stay symmetric.
                let back_dep = match dep {
                    DepKind::Raw => DepKind::War,
                    DepKind::War => DepKind::Raw,
                    other => other,
                };
                back.push(BackEdge { from: j, to: i, lcd_loop: l, dep: back_dep });
            }
        }
    }

    plan.stats.forward_before += fwd.edge_count();
    plan.stats.backward_before += back.len();

    // ---- reduction (§III-A3b) ----
    // An access under a branch arm releases its tokens *vacuously* on
    // skipped activations, before its upstream dependencies complete — a
    // token chain through it enforces nothing that iteration. Only
    // unconditional accesses may relay ordering for a removed edge
    // (found by differential fuzzing: then-arm → else-arm → reader
    // chains let the reader run before the then-arm's writes landed).
    let relay: Vec<bool> = accs
        .iter()
        .map(|a| {
            !p.ancestors(a.id.hb)
                .into_iter()
                .any(|c| matches!(p.ctrl(c).kind, CtrlKind::Branch { .. }))
        })
        .collect();
    let fwd_red = if opts.reduce { fwd.transitive_reduction_relaying(&relay) } else { fwd.clone() };
    let back_red: Vec<BackEdge> =
        if opts.reduce { reduce_backward(&fwd, &back, &relay) } else { back.clone() };

    plan.stats.forward_after += fwd_red.edge_count();
    plan.stats.backward_after += back_red.len();

    // ---- credits ----
    // Loop-carried *flow* (a backward RAW edge: some read observes the
    // previous iteration's writes) rules out multibuffering entirely — a
    // buffer switch would hand readers a stale copy. Accumulator tensors
    // (weights, running sums) hit this; producer/consumer tiles do not.
    let has_lcd_flow =
        back_red.iter().any(|b| b.dep == DepKind::Raw && accs[b.from].id.hb != accs[b.to].id.hb);
    let mut mem_multibuffer: Option<(CtrlId, u32)> = None;
    let mut edges: Vec<TokenEdge> = Vec::new();
    for (i, j) in fwd_red.edges() {
        let (a, b) = (&accs[i], &accs[j]);
        let lca = p.lca(a.id.hb, b.id.hb);
        edges.push(TokenEdge {
            src: a.id,
            dst: b.id,
            src_level: p.child_toward(lca, a.id.hb),
            dst_level: p.child_toward(lca, b.id.hb),
            init: 0,
            dep: if a.is_write && !b.is_write {
                DepKind::Raw
            } else if !a.is_write && b.is_write {
                DepKind::War
            } else if a.is_write {
                DepKind::Waw
            } else {
                DepKind::Rar
            },
            lcd_loop: None,
        });
    }
    for be in &back_red {
        let (a, b) = (&accs[be.from], &accs[be.to]);
        let l = be.lcd_loop;
        // Cross-hyperblock credits above 1 require real multibuffering in
        // the backing VMU; a VMU supports one buffer-switch dimension, so
        // only the first relaxed loop gets depth > 1 and later edges over
        // *different* loops fall back to credit 1.
        // Multibuffering switches buffers at activation boundaries of the
        // LCD loop's children; an accessor whose hyperblock sits
        // *directly* under the loop would need per-firing epochs, which
        // the buffer-switch protocol cannot express — force credit 1.
        let leaf_epoch = accs
            .iter()
            .filter(|x| p.is_ancestor(l, x.id.hb))
            .any(|x| p.child_toward(l, x.id.hb) == x.id.hb);
        let mut credit = if (has_lcd_flow || leaf_epoch) && a.id.hb != b.id.hb {
            1
        } else {
            credit_for(p, mem, a, b, l, opts)
        };
        if credit > 1 && a.id.hb != b.id.hb {
            match mem_multibuffer {
                None => mem_multibuffer = Some((l, credit)),
                Some((ml, md)) if ml == l => {
                    mem_multibuffer = Some((ml, md.max(credit)));
                }
                Some(_) => credit = 1,
            }
        }
        edges.push(TokenEdge {
            src: a.id,
            dst: b.id,
            src_level: p.child_toward(l, a.id.hb),
            dst_level: p.child_toward(l, b.id.hb),
            init: credit,
            dep: be.dep,
            lcd_loop: Some(l),
        });
    }
    if kind == MemKind::Sram || kind == MemKind::Reg {
        if let Some((l, d)) = mem_multibuffer {
            plan.multibuffer.push((mem, l, d.min(opts.multibuffer.max(1))));
        }
    }
    plan.edges.extend(edges);
}

/// Backward-edge subsumption (paper §III-A3b): a backward edge `a -> b`
/// with `X` initial tokens is removable if an alternative path from `a` to
/// `b` exists that contains exactly one backward edge of the same loop with
/// the same credit — i.e. forward path `a ->* c`, backward edge `c -> d` of
/// the same loop, forward path `d ->* b`.
fn reduce_backward(fwd: &DiGraph, back: &[BackEdge], relay: &[bool]) -> Vec<BackEdge> {
    let mut keep: Vec<bool> = vec![true; back.len()];
    for (ei, e) in back.iter().enumerate() {
        for (oi, o) in back.iter().enumerate() {
            if ei == oi || !keep[oi] {
                continue;
            }
            if o.lcd_loop != e.lcd_loop {
                continue;
            }
            // `o`'s endpoints act as intermediates of the implied chain
            // e.from ->* o.from ~> o.to ->* e.to, so unless they coincide
            // with `e`'s endpoints they must be reliable relays (an access
            // in a skipped branch arm releases its backward token
            // vacuously and enforces nothing).
            let reach_src =
                e.from == o.from || (relay[o.from] && fwd.reaches_via(e.from, o.from, relay));
            let reach_dst = o.to == e.to || (relay[o.to] && fwd.reaches_via(o.to, e.to, relay));
            if reach_src && reach_dst {
                keep[ei] = false;
                break;
            }
        }
    }
    back.iter().zip(&keep).filter(|(_, k)| **k).map(|(e, _)| *e).collect()
}

/// Initial credits for a backward edge over loop `l` (paper §III-A1:
/// "the initial credit often matches the VMU's multibuffer depth").
fn credit_for(
    p: &Program,
    _mem: MemId,
    a: &Access,
    b: &Access,
    l: CtrlId,
    opts: &CmmcOptions,
) -> u32 {
    if !opts.relax_credits {
        return 1;
    }
    // Sequential schedules admit no overlap across children.
    if p.ctrl(l).schedule == Schedule::Sequential {
        return 1;
    }
    // Mutually exclusive accessors (different branch arms) exchange data
    // *across* iterations of the branch's parent loop: producer epoch e is
    // consumed at epoch e+1, so same-epoch multibuffering would pair the
    // consumer with the wrong buffer. Keep the credit at 1.
    if mutually_exclusive(p, a.id.hb, b.id.hb) {
        return 1;
    }
    // Same-hyperblock (leaf-LCA) fine-grained exchange: allow deep
    // pipelining when both accesses follow the *same* affine address
    // pattern with nonzero movement per iteration — then the write of
    // firing n+k can never clobber a location an outstanding read has not
    // yet consumed.
    if a.id.hb == b.id.hb {
        let fa = access_affine(p, a.id.hb, a.id.expr);
        let fb = access_affine(p, b.id.hb, b.id.expr);
        let inner = p.loop_ancestors(a.id.hb).first().copied();
        return match (fa, fb, inner) {
            (Some(fa), Some(fb), Some(il)) if fa == fb && fa.coeff(il) != 0 => {
                opts.multibuffer.max(2)
            }
            _ => 1,
        };
    }
    // Cross-hyperblock: relax to the multibuffer depth when the producer's
    // address span analysis succeeds (affine accessors). This mirrors the
    // paper's reliance on Spatial's address analysis for A(R) ⊆ A(W).
    let fa = access_affine(p, a.id.hb, a.id.expr);
    let fb = access_affine(p, b.id.hb, b.id.expr);
    if fa.is_some() && fb.is_some() {
        opts.multibuffer.max(1)
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::{BinOp, DType, Elem, LoopSpec, MemInit};

    /// Build the paper's Fig 2a-like program:
    /// A { B { C: w m1; D: r m1, w m2; E: r m2, w m3 }, F: r m3 w m4, G: r m4 }
    fn fig2_like() -> (Program, Vec<MemId>) {
        let mut p = Program::new("fig2");
        let root = p.root();
        let m1 = p.sram("m1", &[16], DType::F64);
        let m2 = p.sram("m2", &[16], DType::F64);
        let m3 = p.sram("m3", &[16], DType::F64);
        let m4 = p.sram("m4", &[16], DType::F64);
        let a = p.add_loop(root, "A", LoopSpec::new(0, 4, 1)).unwrap();
        let b = p.add_loop(a, "B", LoopSpec::new(0, 2, 1)).unwrap();
        let c = p.add_loop(b, "C", LoopSpec::new(0, 8, 1)).unwrap();
        let chb = p.add_leaf(c, "c").unwrap();
        let ci = p.idx(chb, c).unwrap();
        let cv = p.c_f64(chb, 1.0).unwrap();
        p.store(chb, m1, &[ci], cv).unwrap();
        let d = p.add_loop(b, "D", LoopSpec::new(0, 8, 1)).unwrap();
        let dhb = p.add_leaf(d, "d").unwrap();
        let di = p.idx(dhb, d).unwrap();
        let dv = p.load(dhb, m1, &[di]).unwrap();
        p.store(dhb, m2, &[di], dv).unwrap();
        let e = p.add_loop(b, "E", LoopSpec::new(0, 8, 1)).unwrap();
        let ehb = p.add_leaf(e, "e").unwrap();
        let ei = p.idx(ehb, e).unwrap();
        let ev = p.load(ehb, m2, &[ei]).unwrap();
        p.store(ehb, m3, &[ei], ev).unwrap();
        let f = p.add_loop(a, "F", LoopSpec::new(0, 8, 1)).unwrap();
        let fhb = p.add_leaf(f, "f").unwrap();
        let fi = p.idx(fhb, f).unwrap();
        let fv = p.load(fhb, m3, &[fi]).unwrap();
        p.store(fhb, m4, &[fi], fv).unwrap();
        let g = p.add_loop(a, "G", LoopSpec::new(0, 8, 1)).unwrap();
        let ghb = p.add_leaf(g, "g").unwrap();
        let gi = p.idx(ghb, g).unwrap();
        let gv = p.load(ghb, m4, &[gi]).unwrap();
        let acc = p.reduce(ghb, BinOp::Add, gv, Elem::F64(0.0), g).unwrap();
        let last = p.is_last(ghb, g).unwrap();
        let out = p.dram("out", &[1], DType::F64, MemInit::Zero);
        let z = p.c_i64(ghb, 0).unwrap();
        p.store_if(ghb, out, &[z], acc, last).unwrap();
        p.validate().unwrap();
        (p, vec![m1, m2, m3, m4])
    }

    #[test]
    fn fig2_tokens_per_memory() {
        let (p, mems) = fig2_like();
        let plan = synthesize(&p, &CmmcOptions::default());
        for m in &mems {
            let fwd: Vec<_> = plan
                .edges
                .iter()
                .filter(|e| e.init == 0 && p.accesses_of(*m).iter().any(|a| a.id == e.src))
                .collect();
            // each intermediate memory has exactly one forward (RAW) edge
            assert_eq!(fwd.len(), 1, "mem {m}");
            let bwd: Vec<_> = plan
                .edges
                .iter()
                .filter(|e| e.lcd_loop.is_some() && p.accesses_of(*m).iter().any(|a| a.id == e.src))
                .collect();
            // and exactly one backward WAR credit edge
            assert_eq!(bwd.len(), 1, "mem {m}");
            assert!(bwd[0].init >= 1);
        }
    }

    #[test]
    fn fig2_m4_levels_are_children_of_lca() {
        let (p, mems) = fig2_like();
        let plan = synthesize(&p, &CmmcOptions::default());
        let m4 = mems[3];
        let accs = p.accesses_of(m4);
        let w = accs.iter().find(|a| a.is_write).unwrap();
        let r = accs.iter().find(|a| !a.is_write).unwrap();
        let fwd = plan
            .edges
            .iter()
            .find(|e| e.src == w.id && e.dst == r.id && e.init == 0)
            .expect("W->R token");
        // LCA of F and G is loop A; the push/pop levels are loops F and G.
        let f_loop = p.ctrl(w.id.hb).parent.unwrap();
        let g_loop = p.ctrl(r.id.hb).parent.unwrap();
        assert_eq!(fwd.src_level, f_loop);
        assert_eq!(fwd.dst_level, g_loop);
    }

    /// Fig 5c/d/e: three accessors W1, R1, W2 on one memory inside a loop.
    /// Forward: W1->R1, R1->W2 (W1->W2 removed by TR). Backward edges
    /// reduced to a single cycle-closing credit.
    #[test]
    fn fig5_reduction() {
        let mut p = Program::new("fig5");
        let root = p.root();
        let m = p.sram("m", &[8], DType::F64);
        let a = p.add_loop(root, "A", LoopSpec::new(0, 4, 1)).unwrap();
        for (i, name) in ["w1", "r1", "w2"].iter().enumerate() {
            let l = p.add_loop(a, name, LoopSpec::new(0, 8, 1)).unwrap();
            let hb = p.add_leaf(l, name).unwrap();
            let ix = p.idx(hb, l).unwrap();
            if i == 1 {
                p.load(hb, m, &[ix]).unwrap();
            } else {
                let v = p.c_f64(hb, 1.0).unwrap();
                p.store(hb, m, &[ix], v).unwrap();
            }
        }
        p.validate().unwrap();

        let raw = synthesize(&p, &CmmcOptions { reduce: false, ..CmmcOptions::default() });
        let red = synthesize(&p, &CmmcOptions::default());
        // Before: forward W1->R1, W1->W2, R1->W2 (3); backward R1->W1,
        // W2->W1, W2->R1 (3).
        assert_eq!(raw.stats.forward_before, 3);
        assert_eq!(raw.stats.backward_before, 3);
        assert_eq!(raw.stats.forward_after, 3);
        // After TR: W1->W2 pruned. After LCD subsumption: only one
        // backward edge survives.
        assert_eq!(red.stats.forward_after, 2);
        assert_eq!(red.stats.backward_after, 1);
        assert!(red.stats.after() < raw.stats.after());
    }

    /// Fig 5a/b: W0,R0 under `then`, W1,R1 under `else` of a branch inside
    /// a loop. Cross-arm accesses must have no forward edges (mutually
    /// exclusive) but keep LCDs.
    #[test]
    fn branch_mutual_exclusion() {
        let mut p = Program::new("fig5ab");
        let root = p.root();
        let m = p.sram("m", &[8], DType::F64);
        let cond = p.reg("c", DType::I64);
        let a = p.add_loop(root, "A", LoopSpec::new(0, 4, 1)).unwrap();
        let chb = p.add_leaf(a, "cond").unwrap();
        let i = p.idx(chb, a).unwrap();
        let two = p.c_i64(chb, 2).unwrap();
        let r = p.bin(chb, BinOp::Mod, i, two).unwrap();
        let z = p.c_i64(chb, 0).unwrap();
        let even = p.bin(chb, BinOp::Eq, r, z).unwrap();
        p.store(chb, cond, &[z], even).unwrap();
        let br = p.add_branch(a, "br", cond).unwrap();
        let t = p.add_leaf(br, "then").unwrap();
        let ti = p.c_i64(t, 0).unwrap();
        let tv = p.c_f64(t, 1.0).unwrap();
        p.store(t, m, &[ti], tv).unwrap(); // W0
        let e = p.add_leaf(br, "else").unwrap();
        let ei = p.c_i64(e, 0).unwrap();
        p.load(e, m, &[ei]).unwrap(); // R1
        p.validate().unwrap();

        let plan = synthesize(&p, &CmmcOptions::default());
        let m_edges: Vec<_> = plan
            .edges
            .iter()
            .filter(|ed| p.accesses_of(m).iter().any(|ac| ac.id == ed.src || ac.id == ed.dst))
            .collect();
        // one forward token (released vacuously by skipped arms) plus one
        // LCD backward credit over loop A
        assert_eq!(m_edges.len(), 2);
        let fwd = m_edges.iter().find(|e| e.lcd_loop.is_none()).expect("forward edge");
        assert_eq!(fwd.init, 0);
        let bwd = m_edges.iter().find(|e| e.lcd_loop.is_some()).expect("backward edge");
        assert_eq!(bwd.lcd_loop, Some(a));
    }

    #[test]
    fn rar_ordered_for_sram_not_dram() {
        let mut p = Program::new("rar");
        let root = p.root();
        let s = p.sram("s", &[8], DType::F64);
        let d = p.dram("d", &[8], DType::F64, MemInit::Zero);
        for (n, mem) in [("l1", s), ("l2", s), ("l3", d), ("l4", d)] {
            let l = p.add_loop(root, n, LoopSpec::new(0, 8, 1)).unwrap();
            let hb = p.add_leaf(l, n).unwrap();
            let i = p.idx(hb, l).unwrap();
            p.load(hb, mem, &[i]).unwrap();
        }
        p.validate().unwrap();
        let plan = synthesize(&p, &CmmcOptions { order_rar: true, ..CmmcOptions::default() });
        let sram_edges = plan.edges.iter().filter(|e| e.dep == DepKind::Rar).count();
        // the two SRAM reads are RAR-ordered; the DRAM reads are not
        assert!(sram_edges >= 1);
        let dram_accs = p.accesses_of(d);
        assert!(plan
            .edges
            .iter()
            .all(|e| !dram_accs.iter().any(|a| a.id == e.src && e.dep == DepKind::Rar)));
    }

    #[test]
    fn no_relax_forces_unit_credits() {
        let (p, _) = fig2_like();
        let plan = synthesize(&p, &CmmcOptions { relax_credits: false, ..CmmcOptions::default() });
        assert!(plan.edges.iter().filter(|e| e.lcd_loop.is_some()).all(|e| e.init == 1));
    }

    #[test]
    fn sequential_schedule_forces_unit_credits() {
        let (mut p, _) = fig2_like();
        // Make every controller sequential.
        for i in 0..p.ctrls.len() {
            p.set_schedule(CtrlId(i as u32), Schedule::Sequential);
        }
        let plan = synthesize(&p, &CmmcOptions::default());
        assert!(plan.edges.iter().filter(|e| e.lcd_loop.is_some()).all(|e| e.init == 1));
    }

    #[test]
    fn single_accessor_memories_need_no_tokens() {
        let mut p = Program::new("single");
        let root = p.root();
        let m = p.sram("m", &[8], DType::F64);
        let l = p.add_loop(root, "l", LoopSpec::new(0, 8, 1)).unwrap();
        let hb = p.add_leaf(l, "b").unwrap();
        let i = p.idx(hb, l).unwrap();
        let v = p.c_f64(hb, 1.0).unwrap();
        p.store(hb, m, &[i], v).unwrap();
        p.validate().unwrap();
        let plan = synthesize(&p, &CmmcOptions::default());
        assert!(plan.edges.is_empty());
    }

    use sara_ir::CtrlId;
}
