//! The virtual unit dataflow graph (VUDFG): SARA's hierarchical dataflow
//! representation (paper §III).
//!
//! The top level is a graph of **virtual units** (compute, memory, address
//! generator, token-sync and crossbar units) connected by **streams**; the
//! inner level is the dataflow graph inside each compute unit. Virtual
//! units carry no physical-resource assumptions until partitioning,
//! merging and assignment run.

use sara_ir::{AccessId, BinOp, CtrlId, Elem, MemId, UnOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a virtual unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId(pub u32);

impl UnitId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Identifier of a stream (an edge of the VUDFG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub u32);

impl StreamId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What a stream carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamKind {
    /// Vector data of the given SIMD width.
    Vector(u32),
    /// Scalar data (width 1).
    Scalar,
    /// Single-bit synchronization tokens, initialized with `init` credits
    /// available at the destination (paper §III-A1).
    Token { init: u32 },
}

impl StreamKind {
    /// SIMD width of the payload (tokens count as width 0).
    pub fn width(self) -> u32 {
        match self {
            StreamKind::Vector(w) => w,
            StreamKind::Scalar => 1,
            StreamKind::Token { .. } => 0,
        }
    }

    /// Whether this is a token stream.
    pub fn is_token(self) -> bool {
        matches!(self, StreamKind::Token { .. })
    }
}

/// A stream: a point-to-point FIFO channel between two units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stream {
    pub src: UnitId,
    pub dst: UnitId,
    pub kind: StreamKind,
    /// Receive-FIFO depth in elements.
    pub depth: u32,
    /// Network latency in cycles; refined by place-and-route.
    pub latency: u32,
    /// Debug label.
    pub label: String,
}

/// A control level of a unit's control context, outermost first. The chain
/// mirrors the unit's ancestor controllers in the original program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Level {
    /// Counted loop level. Bounds are constants or values consumed from an
    /// input port once per activation of this level (dynamic bounds,
    /// §III-A2a). `lane_offset` is added to the resolved `min` — the
    /// spatial-unrolling lane shift of a cyclically distributed counter —
    /// and `lane_stride` is the per-SIMD-lane index increment within one
    /// vectorized firing (the original loop step).
    Counter {
        min: CBound,
        max: CBound,
        step: i64,
        lane_offset: i64,
        lane_stride: i64,
        ctrl: CtrlId,
    },
    /// Branch-arm gate: one value is consumed from the cond input per
    /// activation; if it differs from `expect`, the activation is skipped
    /// (vacuously completing inner levels and still exchanging tokens,
    /// §III-A2b).
    Gate { cond_in: usize, expect: bool, ctrl: CtrlId },
    /// Do-while level: after each iteration one value is consumed from the
    /// cond input; iteration repeats while it is true (§III-A2c).
    While { cond_in: usize, ctrl: CtrlId },
}

impl Level {
    /// The program controller this level mirrors.
    pub fn ctrl(&self) -> CtrlId {
        match self {
            Level::Counter { ctrl, .. } | Level::Gate { ctrl, .. } | Level::While { ctrl, .. } => {
                *ctrl
            }
        }
    }

    /// Static trip count of a counter level, if known.
    pub fn static_trip(&self) -> Option<u64> {
        match self {
            Level::Counter { min: CBound::Const(a), max: CBound::Const(b), step, .. } => {
                if *step > 0 {
                    Some(((b - a).max(0) as u64).div_ceil(*step as u64))
                } else if *step < 0 {
                    Some(((a - b).max(0) as u64).div_ceil((-*step) as u64))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// A counter bound: constant or streamed from an input port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CBound {
    Const(i64),
    /// Index into the unit's input list; one value consumed per activation
    /// of the level.
    Port(usize),
}

/// Inner dataflow-node operation of a compute unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeOp {
    /// Constant (broadcast across lanes).
    Const(Elem),
    /// Current index of control level `level` (per-lane value for the
    /// vectorized innermost level).
    CounterIdx { level: usize },
    /// First-iteration predicate of a counter level.
    IsFirst { level: usize },
    /// Last-iteration predicate of a counter level.
    IsLast { level: usize },
    /// Unary ALU op.
    Un(UnOp),
    /// Binary ALU op.
    Bin(BinOp),
    /// Select (operands: cond, then, else).
    Mux,
    /// Pop one element per firing from input port `port`.
    StreamIn { port: usize },
    /// Push operand 0 to output port `port` each firing. With `pred`, the
    /// last operand is a predicate filtering lanes. `empty_pred` controls
    /// what a fully-disabled firing pushes: `true` emits a zero-length
    /// packet (memory-port streams: keeps request/ack counts aligned with
    /// firings for predicated stores), `false` emits nothing (partial
    /// reduction emissions, control values).
    StreamOut { port: usize, pred: bool, empty_pred: bool },
    /// Loop-carried accumulator: reset to `init` at each activation of
    /// level `reset_level`, updated with `op(acc, operand)` per firing.
    /// In a vectorized unit each SIMD lane keeps its own accumulator.
    Reduce { op: BinOp, init: Elem, reset_level: usize },
    /// Tree-combine the SIMD lanes of the operand into one scalar (the
    /// PCU's reduction tree).
    VecReduce(BinOp),
}

impl NodeOp {
    /// Pipeline-stage cost of this node on a PCU (constants, counters and
    /// stream I/O are free; transcendental ops cost extra stages).
    pub fn stage_cost(&self, transcendental_stages: u32) -> u32 {
        match self {
            NodeOp::Const(_)
            | NodeOp::CounterIdx { .. }
            | NodeOp::IsFirst { .. }
            | NodeOp::IsLast { .. }
            | NodeOp::StreamIn { .. }
            | NodeOp::StreamOut { .. } => 0,
            NodeOp::Un(op) if op.is_transcendental() => transcendental_stages,
            NodeOp::Un(_)
            | NodeOp::Bin(_)
            | NodeOp::Mux
            | NodeOp::Reduce { .. }
            | NodeOp::VecReduce(_) => 1,
        }
    }
}

/// One node of a compute unit's inner dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfgNode {
    pub op: NodeOp,
    /// Operand node indices (must be earlier nodes: SSA order).
    pub ins: Vec<usize>,
}

/// Role of a compute unit, for reports and debugging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcuRole {
    /// Main datapath of a hyperblock (one per unrolled lane).
    Main { hb: CtrlId, lane: u32 },
    /// Address/request generation for one access site.
    Request { access: AccessId, lane: u32 },
    /// Completion counting for one access site (token source).
    Response { access: AccessId, lane: u32 },
    /// Retiming buffer inserted to balance path delays.
    Retime,
    /// Crossbar distribute/collect or token fan-in/fan-out helper.
    Merge,
    /// A partition split out of an oversized unit.
    Split { of: CtrlId, index: u32 },
}

/// Token push/pop rule: exchange one token per activation of `level`
/// (pop at activation start, push at activation end). `level == 0` refers
/// to the outermost level; `usize::MAX` means "once for the whole
/// execution" (accesses whose LCA path has no iterative level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenRule {
    /// Index into the unit's inputs (pop) or outputs (push).
    pub port: usize,
    /// Level index in the unit's chain at which the exchange happens; the
    /// token is popped before the first firing of an activation of this
    /// level and pushed after its last firing.
    pub level: usize,
}

/// A virtual compute unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vcu {
    /// Control context, outermost first. Empty = fires exactly once.
    pub levels: Vec<Level>,
    /// Inner dataflow graph in SSA order.
    pub dfg: Vec<DfgNode>,
    /// SIMD width of the innermost (vectorized) level; 1 if unvectorized.
    pub width: u32,
    /// Role.
    pub role: VcuRole,
    /// Token pops (input ports).
    pub token_pops: Vec<TokenRule>,
    /// Token pushes (output ports).
    pub token_pushes: Vec<TokenRule>,
    /// For each input port: a bitmask over this unit's gate levels whose
    /// gating also silences the port's *producer*. During the vacuous sweep
    /// of a skipped gate at level `k`, a bound/cond port is consumed only
    /// if bit `k` is clear (the producer keeps producing when this gate
    /// skips); token pops are always exchanged (their producers push
    /// vacuously too).
    pub producer_gate_mask: Vec<u64>,
    /// When `Some(level)`, the unit emits an epoch-end marker on all its
    /// outputs whenever the activation of that level completes (including
    /// vacuously skipped activations, which emit an empty marker packet).
    /// Multibuffered VMUs switch buffers on these markers.
    pub epoch_emit: Option<usize>,
}

impl Vcu {
    /// Pipeline-stage cost of the unit's datapath.
    pub fn stage_cost(&self, transcendental_stages: u32) -> u32 {
        self.dfg.iter().map(|n| n.op.stage_cost(transcendental_stages)).sum()
    }

    /// Number of innermost-level counters required (one per counter level).
    pub fn counter_count(&self) -> u32 {
        self.levels.iter().filter(|l| matches!(l, Level::Counter { .. })).count() as u32
    }
}

/// A write port of a memory unit: paired address and data input streams
/// (values pair up elementwise in firing order), plus an ack output feeding
/// the response unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmuWritePort {
    pub addr_in: usize,
    pub data_in: usize,
    /// Output port for write acknowledgements (one pulse per committed
    /// vector write).
    pub ack_out: Option<usize>,
}

/// A read port of a memory unit: an address input stream and a response
/// data output stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmuReadPort {
    pub addr_in: usize,
    pub data_out: usize,
}

/// A virtual memory unit: one bank of one logical on-chip memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vmu {
    /// Logical memory this bank belongs to.
    pub mem: MemId,
    /// `(bank index, bank count)` of cyclic banking over flattened
    /// addresses; `(0, 1)` when unbanked.
    pub bank: (u32, u32),
    /// Unroll-lane tag when this is a lane-private copy.
    pub lane: u32,
    /// Words stored in this bank.
    pub words: usize,
    /// Initial contents of this bank (local addresses).
    pub init: Vec<Elem>,
    /// Multibuffer depth (coarse-grain pipelining across accessor stages).
    pub multibuffer: u32,
    pub write_ports: Vec<VmuWritePort>,
    pub read_ports: Vec<VmuReadPort>,
    /// Read latency in cycles (request to response).
    pub read_latency: u32,
}

/// Direction of a DRAM access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgDir {
    Read,
    Write,
}

/// A virtual address-generator unit: the on-chip endpoint of one DRAM
/// access site (per lane). Reads consume an address stream and produce a
/// data stream; writes consume address+data streams and produce an ack
/// stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgUnit {
    /// The DRAM tensor accessed.
    pub mem: MemId,
    pub dir: AgDir,
    /// Address input port.
    pub addr_in: usize,
    /// Data input port (writes only).
    pub data_in: Option<usize>,
    /// Data output (reads) or ack output (writes).
    pub out: usize,
    /// SIMD width of one request (elements per firing).
    pub width: u32,
    /// Byte offset of this tensor in the flat DRAM address space.
    pub base_addr: u64,
}

/// Token fan-in/fan-out synchronization unit: waits for one token on every
/// input, then emits one token on every output. Realizes the lane
/// aggregation of token edges after spatial unrolling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncUnit;

/// Crossbar distributor (paper Fig 8): consumes a `(bank, payload)` pair
/// per firing — bank from `bank_in`, payload from `payload_in` — and routes
/// the payload to output `bank`; also forwards the bank id on `ba_out` so a
/// collector can restore response order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XbarDist {
    pub bank_in: usize,
    pub payload_in: usize,
    /// Per-bank payload outputs, indexed by bank.
    pub bank_outs: Vec<usize>,
    /// Bank-id forwarding output (for the response collector), if any.
    pub ba_out: Option<usize>,
}

/// Crossbar collector: consumes the forwarded bank-id stream and, per bank
/// id, pops one element from that bank's response input and emits it in
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XbarColl {
    pub ba_in: usize,
    /// Per-bank response inputs, indexed by bank.
    pub bank_ins: Vec<usize>,
    pub out: usize,
}

/// The kind (and behaviour) of a virtual unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UnitKind {
    Vcu(Vcu),
    Vmu(Vmu),
    Ag(AgUnit),
    Sync(SyncUnit),
    XbarDist(XbarDist),
    XbarColl(XbarColl),
}

/// An output port: one value source broadcast onto one or more streams.
/// A push replicates the value to every stream; backpressure requires
/// space on all of them. Out-degree accounting counts the port once —
/// "the number of broadcast edges with unique sources" (paper §III-B1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutPort {
    pub streams: Vec<StreamId>,
}

/// A virtual unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Unit {
    pub label: String,
    pub kind: UnitKind,
    /// Input streams, in port order (one stream per input port).
    pub inputs: Vec<StreamId>,
    /// Output ports, each broadcasting to one or more streams.
    pub outputs: Vec<OutPort>,
}

impl Unit {
    /// The compute payload, if this is a VCU.
    pub fn as_vcu(&self) -> Option<&Vcu> {
        match &self.kind {
            UnitKind::Vcu(v) => Some(v),
            _ => None,
        }
    }

    /// Mutable compute payload.
    pub fn as_vcu_mut(&mut self) -> Option<&mut Vcu> {
        match &mut self.kind {
            UnitKind::Vcu(v) => Some(v),
            _ => None,
        }
    }

    /// The memory payload, if this is a VMU.
    pub fn as_vmu(&self) -> Option<&Vmu> {
        match &self.kind {
            UnitKind::Vmu(v) => Some(v),
            _ => None,
        }
    }
}

/// An off-chip tensor and its location in the flat DRAM address space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramTensor {
    pub mem: MemId,
    /// Byte base address.
    pub base: u64,
    /// Size in words (elements).
    pub words: usize,
    /// Initial contents.
    pub init: Vec<Elem>,
}

/// The virtual unit dataflow graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vudfg {
    pub units: Vec<Unit>,
    pub streams: Vec<Stream>,
    /// Off-chip tensors, with assigned DRAM base addresses.
    pub drams: Vec<DramTensor>,
    /// Name of the source program.
    pub name: String,
}

impl Vudfg {
    /// Empty graph for a named program.
    pub fn new(name: impl Into<String>) -> Self {
        Vudfg { units: Vec::new(), streams: Vec::new(), drams: Vec::new(), name: name.into() }
    }

    /// Add a unit and return its id.
    pub fn add_unit(&mut self, label: impl Into<String>, kind: UnitKind) -> UnitId {
        let id = UnitId(self.units.len() as u32);
        self.units.push(Unit {
            label: label.into(),
            kind,
            inputs: Vec::new(),
            outputs: Vec::new(),
        });
        id
    }

    /// Connect `src` to `dst` with a new stream on a *new* source output
    /// port; returns `(stream, src output port index, dst input port
    /// index)`.
    pub fn connect(
        &mut self,
        src: UnitId,
        dst: UnitId,
        kind: StreamKind,
        depth: u32,
        label: impl Into<String>,
    ) -> (StreamId, usize, usize) {
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(Stream { src, dst, kind, depth, latency: 1, label: label.into() });
        self.units[src.index()].outputs.push(OutPort { streams: vec![id] });
        let out_port = self.units[src.index()].outputs.len() - 1;
        self.units[dst.index()].inputs.push(id);
        let in_port = self.units[dst.index()].inputs.len() - 1;
        (id, out_port, in_port)
    }

    /// Attach another destination to an existing source output port
    /// (hardware broadcast); returns `(stream, dst input port index)`.
    pub fn connect_bcast(
        &mut self,
        src: UnitId,
        out_port: usize,
        dst: UnitId,
        kind: StreamKind,
        depth: u32,
        label: impl Into<String>,
    ) -> (StreamId, usize) {
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(Stream { src, dst, kind, depth, latency: 1, label: label.into() });
        self.units[src.index()].outputs[out_port].streams.push(id);
        self.units[dst.index()].inputs.push(id);
        let in_port = self.units[dst.index()].inputs.len() - 1;
        (id, in_port)
    }

    /// Unit lookup.
    pub fn unit(&self, id: UnitId) -> &Unit {
        &self.units[id.index()]
    }

    /// Mutable unit lookup.
    pub fn unit_mut(&mut self, id: UnitId) -> &mut Unit {
        &mut self.units[id.index()]
    }

    /// Stream lookup.
    pub fn stream(&self, id: StreamId) -> &Stream {
        &self.streams[id.index()]
    }

    /// Mutable stream lookup.
    pub fn stream_mut(&mut self, id: StreamId) -> &mut Stream {
        &mut self.streams[id.index()]
    }

    /// Iterate unit ids.
    pub fn unit_ids(&self) -> impl Iterator<Item = UnitId> {
        (0..self.units.len() as u32).map(UnitId)
    }

    /// Count of units matching a predicate.
    pub fn count_units(&self, f: impl Fn(&Unit) -> bool) -> usize {
        self.units.iter().filter(|u| f(u)).count()
    }

    /// Number of token streams (a CMMC cost metric).
    pub fn token_stream_count(&self) -> usize {
        self.streams.iter().filter(|s| s.kind.is_token()).count()
    }

    /// Dump a concise structural summary for debugging.
    pub fn summary(&self) -> String {
        let vcus = self.count_units(|u| matches!(u.kind, UnitKind::Vcu(_)));
        let vmus = self.count_units(|u| matches!(u.kind, UnitKind::Vmu(_)));
        let ags = self.count_units(|u| matches!(u.kind, UnitKind::Ag(_)));
        let syncs = self.count_units(|u| matches!(u.kind, UnitKind::Sync(_)));
        let xbars =
            self.count_units(|u| matches!(u.kind, UnitKind::XbarDist(_) | UnitKind::XbarColl(_)));
        format!(
            "{}: {} vcus, {} vmus, {} ags, {} syncs, {} xbars, {} streams ({} tokens)",
            self.name,
            vcus,
            vmus,
            ags,
            syncs,
            xbars,
            self.streams.len(),
            self.token_stream_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_vcu(role: VcuRole) -> UnitKind {
        UnitKind::Vcu(Vcu {
            levels: vec![],
            dfg: vec![],
            width: 1,
            role,
            token_pops: vec![],
            token_pushes: vec![],
            producer_gate_mask: vec![],
            epoch_emit: None,
        })
    }

    #[test]
    fn connect_assigns_ports_in_order() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", empty_vcu(VcuRole::Retime));
        let b = g.add_unit("b", empty_vcu(VcuRole::Retime));
        let (s0, op0, ip0) = g.connect(a, b, StreamKind::Scalar, 4, "x");
        let (s1, op1, ip1) = g.connect(a, b, StreamKind::Token { init: 1 }, 2, "t");
        assert_eq!((op0, ip0), (0, 0));
        assert_eq!((op1, ip1), (1, 1));
        assert_eq!(g.unit(a).outputs[0].streams, vec![s0]);
        assert_eq!(g.unit(a).outputs[1].streams, vec![s1]);
        assert_eq!(g.unit(b).inputs, vec![s0, s1]);
        assert_eq!(g.token_stream_count(), 1);
    }

    #[test]
    fn broadcast_shares_a_port() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", empty_vcu(VcuRole::Retime));
        let b = g.add_unit("b", empty_vcu(VcuRole::Retime));
        let c = g.add_unit("c", empty_vcu(VcuRole::Retime));
        let (_, op, _) = g.connect(a, b, StreamKind::Scalar, 4, "x");
        let (s2, ip2) = g.connect_bcast(a, op, c, StreamKind::Scalar, 4, "x2");
        assert_eq!(g.unit(a).outputs.len(), 1);
        assert_eq!(g.unit(a).outputs[0].streams.len(), 2);
        assert_eq!(g.unit(c).inputs[ip2], s2);
    }

    #[test]
    fn stage_costs() {
        assert_eq!(NodeOp::Const(Elem::I64(0)).stage_cost(2), 0);
        assert_eq!(NodeOp::Bin(BinOp::Add).stage_cost(2), 1);
        assert_eq!(NodeOp::Un(UnOp::Exp).stage_cost(2), 2);
        assert_eq!(NodeOp::Un(UnOp::Neg).stage_cost(2), 1);
    }

    #[test]
    fn level_static_trip() {
        let l = Level::Counter {
            min: CBound::Const(0),
            max: CBound::Const(10),
            step: 2,
            lane_offset: 0,
            lane_stride: 1,
            ctrl: CtrlId(1),
        };
        assert_eq!(l.static_trip(), Some(5));
        let d = Level::Counter {
            min: CBound::Port(0),
            max: CBound::Const(10),
            step: 1,
            lane_offset: 0,
            lane_stride: 1,
            ctrl: CtrlId(1),
        };
        assert_eq!(d.static_trip(), None);
    }

    #[test]
    fn summary_mentions_counts() {
        let mut g = Vudfg::new("demo");
        g.add_unit("a", empty_vcu(VcuRole::Retime));
        let s = g.summary();
        assert!(s.contains("demo"));
        assert!(s.contains("1 vcus"));
    }
}
