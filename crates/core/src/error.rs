//! Compiler error type.

use sara_ir::{CtrlId, IrError, MemId};
use std::fmt;

/// Error produced by the SARA compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The input program failed validation.
    Ir(IrError),
    /// A scalar register used for control (bound/condition) must have
    /// exactly one writer access site.
    ControlRegWriters { mem: MemId, writers: usize },
    /// Innermost-loop parallelization exceeds the PCU SIMD width.
    VectorTooWide { ctrl: CtrlId, par: u32, lanes: u32 },
    /// The program needs more units of a physical type than the chip has.
    OutOfResources { what: &'static str, needed: usize, available: usize },
    /// An on-chip memory does not fit even when banked across all PMUs.
    MemTooLarge { mem: MemId, words: usize },
    /// Partitioning could not satisfy the constraints (e.g. a single node
    /// exceeds unit capacity).
    Unpartitionable(String),
    /// Internal invariant violation (a compiler bug, kept as an error so
    /// fuzzing surfaces it gracefully).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "invalid input program: {e}"),
            CompileError::ControlRegWriters { mem, writers } => {
                write!(f, "control register {mem} has {writers} writers, expected exactly 1")
            }
            CompileError::VectorTooWide { ctrl, par, lanes } => {
                write!(f, "innermost loop {ctrl} parallelized by {par} exceeds {lanes} SIMD lanes")
            }
            CompileError::OutOfResources { what, needed, available } => {
                write!(f, "out of {what}: need {needed}, chip has {available}")
            }
            CompileError::MemTooLarge { mem, words } => {
                write!(f, "memory {mem} ({words} words) exceeds total on-chip capacity")
            }
            CompileError::Unpartitionable(s) => write!(f, "partitioning failed: {s}"),
            CompileError::Internal(s) => write!(f, "internal compiler error: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_from_ir() {
        let e: CompileError = IrError::UnknownCtrl(CtrlId(1)).into();
        assert!(e.to_string().contains("invalid input program"));
        let o = CompileError::OutOfResources { what: "PCU", needed: 10, available: 4 };
        assert!(o.to_string().contains("PCU"));
    }
}
