//! Per-edge traffic attribution over the lowered VUDFG.
//!
//! Every virtual compute unit fires once per iteration of its control
//! chain, so its firing count is the product of its levels' static trip
//! counts (dynamic bounds and do-while levels fall back to small fixed
//! guesses). Stream-driven units (VMUs, AGs, syncs, crossbars) move at
//! the rate of their producers. A stream's traffic is then its source's
//! firing estimate times its payload width — with single-bit token
//! streams an order of magnitude thinner than data streams.
//!
//! Two consumers share this attribution: the cross-chip sharding pass
//! ([`crate::shard`]) cuts the graph where estimated traffic is
//! thinnest, and `sara-dse`'s analytical cost model derives compute and
//! DRAM bounds from the same firing counts.

use crate::vudfg::{Level, StreamKind, UnitKind, Vudfg};

/// Firing-count guess for a counter level with a dynamic bound.
pub const DYNAMIC_TRIP_GUESS: u64 = 8;
/// Firing-count guess for a do-while level.
pub const WHILE_TRIP_GUESS: u64 = 4;
/// Relative weight of a token packet vs. one data element: tokens are
/// single-bit credits, data elements are 8-byte words.
pub const TOKEN_TRAFFIC_FACTOR: f64 = 0.125;

/// Product of a level chain's trip counts (the unit's firing count).
pub fn firings_of(levels: &[Level]) -> f64 {
    let mut f = 1.0f64;
    for l in levels {
        f *= match l {
            Level::Counter { .. } => l.static_trip().unwrap_or(DYNAMIC_TRIP_GUESS).max(1) as f64,
            Level::Gate { .. } => 1.0,
            Level::While { .. } => WHILE_TRIP_GUESS as f64,
        };
    }
    f
}

/// Estimated firing count per unit (indexed by unit id). Compute units
/// derive theirs from their control chain; stream-driven units inherit
/// the maximum over their producers, propagated in topological order
/// over non-token edges (units on a residual cycle keep whatever their
/// resolved producers gave them, defaulting to 1).
pub fn unit_firings(g: &Vudfg) -> Vec<f64> {
    let n = g.units.len();
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for s in &g.streams {
        if s.kind.is_token() || s.src == s.dst {
            continue;
        }
        adj[s.src.index()].push(s.dst.index());
        in_edges[s.dst.index()].push(s.src.index());
        indeg[s.dst.index()] += 1;
    }
    let mut firings = vec![1.0f64; n];
    let resolve = |g: &Vudfg, firings: &[f64], in_edges: &[Vec<usize>], u: usize| -> f64 {
        match &g.units[u].kind {
            UnitKind::Vcu(v) => firings_of(&v.levels),
            _ => in_edges[u].iter().map(|&p| firings[p]).fold(1.0, f64::max),
        }
    };
    let mut q: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = q.pop() {
        order.push(u);
        for &d in &adj[u] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                q.push(d);
            }
        }
    }
    // Residual cycle members (indeg never hit zero) resolve last, in
    // index order, from whatever their producers hold.
    order.extend((0..n).filter(|&i| indeg[i] > 0));
    for u in order {
        firings[u] = resolve(g, &firings, &in_edges, u);
    }
    firings
}

/// Estimated traffic per stream (indexed by stream id), in data-element
/// equivalents over the whole run: source firings × payload width, with
/// token streams scaled by [`TOKEN_TRAFFIC_FACTOR`].
pub fn stream_traffic(g: &Vudfg) -> Vec<f64> {
    let firings = unit_firings(g);
    g.streams
        .iter()
        .map(|s| {
            let packets = firings[s.src.index()].max(1.0);
            match s.kind {
                StreamKind::Token { .. } => packets * TOKEN_TRAFFIC_FACTOR,
                kind => packets * f64::from(kind.width().max(1)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vudfg::{CBound, DfgNode, NodeOp, StreamKind, UnitKind, Vcu, VcuRole, Vudfg};
    use sara_ir::{BinOp, CtrlId};

    fn vcu_with_trip(trip: i64) -> UnitKind {
        UnitKind::Vcu(Vcu {
            levels: vec![Level::Counter {
                min: CBound::Const(0),
                max: CBound::Const(trip),
                step: 1,
                lane_offset: 0,
                lane_stride: 1,
                ctrl: CtrlId(1),
            }],
            dfg: vec![DfgNode { op: NodeOp::Bin(BinOp::Add), ins: vec![] }],
            width: 1,
            role: VcuRole::Merge,
            token_pops: vec![],
            token_pushes: vec![],
            producer_gate_mask: vec![],
            epoch_emit: None,
        })
    }

    #[test]
    fn stream_driven_units_inherit_producer_rates() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", vcu_with_trip(64));
        let sync = g.add_unit("s", UnitKind::Sync(crate::vudfg::SyncUnit));
        let b = g.add_unit("b", vcu_with_trip(4));
        g.connect(a, sync, StreamKind::Scalar, 4, "as");
        g.connect(b, sync, StreamKind::Scalar, 4, "bs");
        let f = unit_firings(&g);
        assert_eq!(f[a.index()], 64.0);
        assert_eq!(f[sync.index()], 64.0, "sync moves at its fastest producer");
    }

    #[test]
    fn tokens_are_thinner_than_vectors() {
        let mut g = Vudfg::new("t");
        let a = g.add_unit("a", vcu_with_trip(16));
        let b = g.add_unit("b", vcu_with_trip(16));
        let (vec_s, _, _) = g.connect(a, b, StreamKind::Vector(8), 4, "v");
        let (tok_s, _, _) = g.connect(a, b, StreamKind::Token { init: 0 }, 4, "t");
        let w = stream_traffic(&g);
        assert_eq!(w[vec_s.index()], 16.0 * 8.0);
        assert_eq!(w[tok_s.index()], 16.0 * TOKEN_TRAFFIC_FACTOR);
        assert!(w[tok_s.index()] * 10.0 < w[vec_s.index()]);
    }
}
