//! Imperative → dataflow lowering (paper §III-A).
//!
//! Converts a validated [`Program`] into a [`Vudfg`]:
//!
//! * one **main VCU** per hyperblock per unrolled lane, carrying the
//!   hyperblock's datapath and the counter chain of its enclosing loops
//!   (spatially unrolled cyclically; innermost loops vectorize onto SIMD
//!   lanes);
//! * one **request VCU** per memory-access site per lane (the backward
//!   slice of the address and predicate expressions), so that round-trip
//!   latency between compute and memory never stalls the main datapath;
//! * one **response VCU** per access site that sources CMMC tokens,
//!   counting completion events (write acks / read responses);
//! * one **VMU** per bank per private copy of each on-chip memory, with
//!   point-to-point wiring when the bank address statically resolves and
//!   distribute/collect crossbar units otherwise (paper Fig 8);
//! * **AG units** for DRAM access streams;
//! * **token streams** realizing the CMMC plan, with sync units
//!   aggregating lanes after unrolling;
//! * **combine VCUs** implementing cross-lane reduction trees when a
//!   reduction loop is spatially unrolled.

use crate::cmmc::{self, CmmcOptions, CmmcPlan};
use crate::error::CompileError;
use crate::mempart::{self, BankFn, BankRoute, BankingPlan, UnrollInfo};
use crate::vudfg::DramTensor;
use crate::vudfg::{
    AgDir, AgUnit, CBound, DfgNode, Level, NodeOp, StreamKind, SyncUnit, TokenRule, UnitId,
    UnitKind, Vcu, VcuRole, Vmu, VmuReadPort, VmuWritePort, Vudfg, XbarColl, XbarDist,
};
use plasticine_arch::ChipSpec;
use sara_ir::affine::access_affine;
use sara_ir::{
    AccessId, BinOp, Bound, CtrlId, CtrlKind, Elem, Expr, ExprId, MemId, MemKind, Program,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Options for the lowering phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// CMMC synthesis options.
    pub cmmc: CmmcOptions,
    /// Enable the memory partitioner (banking + privatization). The
    /// vanilla Plasticine compiler baseline disables it.
    pub banking: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { cmmc: CmmcOptions::default(), banking: true }
    }
}

/// A lane assignment: for each unrolled ancestor loop (outermost first),
/// which spatial lane this unit instance occupies.
pub type LaneKey = Vec<u32>;

/// The lowering result.
#[derive(Debug, Clone)]
pub struct Lowered {
    pub vudfg: Vudfg,
    pub cmmc: CmmcPlan,
    pub banking: BankingPlan,
    pub unroll: HashMap<CtrlId, UnrollInfo>,
    /// Main VCU of each (hyperblock, lane).
    pub main_units: HashMap<(CtrlId, LaneKey), UnitId>,
}

/// Lower a validated program for a chip.
///
/// # Errors
///
/// Fails when the program violates lowering restrictions: control
/// registers with multiple writers, reductions over unrolled loops that do
/// not match the `store-if-last` pattern, or memories too large for the
/// chip.
pub fn lower(p: &Program, chip: &ChipSpec, opts: &LowerOptions) -> Result<Lowered, CompileError> {
    p.validate()?;
    check_fifo_streams(p)?;
    let unroll = mempart::unroll_info(p, chip.pcu.lanes);
    let plan = cmmc::synthesize(p, &opts.cmmc);
    let banking = mempart::plan_banking(p, chip, &unroll, opts.banking)?;
    let b = Builder::new(p, chip, opts, unroll, plan, banking)?;
    b.run()
}

/// FIFOs lower to a single producer stream wired point-to-point into a
/// single consumer. More than one writer (or reader) hyperblock, or a
/// FIFO access inside a spatially unrolled loop, would need an order
/// arbiter the fabric does not model — found by differential fuzzing,
/// where the second writer silently overwrote the first in
/// `fifo_writers` and starved the consumer into a deadlock.
fn check_fifo_streams(p: &Program) -> Result<(), CompileError> {
    for (mi, m) in p.mems.iter().enumerate() {
        if m.kind != MemKind::Fifo {
            continue;
        }
        let mem = MemId(mi as u32);
        let accs = p.accesses_of(mem);
        let writers: HashSet<CtrlId> =
            accs.iter().filter(|a| a.is_write).map(|a| a.id.hb).collect();
        let readers: HashSet<CtrlId> =
            accs.iter().filter(|a| !a.is_write).map(|a| a.id.hb).collect();
        if writers.len() > 1 {
            return Err(CompileError::Unpartitionable(format!(
                "fifo {mem} has {} writer hyperblocks; spatial lowering supports one producer stream",
                writers.len()
            )));
        }
        if readers.len() > 1 {
            return Err(CompileError::Unpartitionable(format!(
                "fifo {mem} has {} reader hyperblocks; spatial lowering supports one consumer stream",
                readers.len()
            )));
        }
        for a in &accs {
            let unrolled = p
                .ancestors(a.id.hb)
                .into_iter()
                .any(|c| p.ctrl(c).loop_spec().is_some_and(|s| s.par > 1));
            if unrolled {
                return Err(CompileError::Unpartitionable(format!(
                    "fifo {mem} accessed inside a parallelized loop; lane order is undefined"
                )));
            }
        }
    }
    Ok(())
}

/// Per-level spec before port wiring.
#[derive(Debug, Clone)]
enum LSpec {
    Ctr { ctrl: CtrlId, min: Bound, max: Bound, step: i64, unroll: u32, vec: u32 },
    Gate { ctrl: CtrlId, cond: MemId, expect: bool },
    Whl { ctrl: CtrlId, cond: MemId },
}

impl LSpec {
    fn ctrl(&self) -> CtrlId {
        match self {
            LSpec::Ctr { ctrl, .. } | LSpec::Gate { ctrl, .. } | LSpec::Whl { ctrl, .. } => *ctrl,
        }
    }
}

/// A pending control-stream wire: `unit` needs the value of control
/// register `mem` at level `level_idx` in `role`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendRole {
    CtrMin,
    CtrMax,
    GateCond,
    WhlCond,
}

#[derive(Debug, Clone)]
struct Pending {
    unit: UnitId,
    level_idx: usize,
    mem: MemId,
    role: PendRole,
    /// Lane binding of the consuming unit (to project the writer's lane).
    binding: BTreeMap<CtrlId, u32>,
}

#[derive(Debug, Default)]
struct VmuBuild {
    write_ports: Vec<VmuWritePort>,
    read_ports: Vec<VmuReadPort>,
}

#[derive(Debug)]
struct CombineBuild {
    unit: UnitId,
    /// Number of partial-input streams connected so far (ports 0..n are
    /// level control ports first, then partials — we track partial input
    /// port indices explicitly).
    partial_ports: Vec<usize>,
    op: BinOp,
    /// Original store expression (for addr slice translation).
    hb: CtrlId,
    store_expr: ExprId,
    binding: BTreeMap<CtrlId, u32>,
    lane: LaneKey,
    specs: Vec<LSpec>,
}

struct Builder<'a> {
    p: &'a Program,
    chip: &'a ChipSpec,
    unroll: HashMap<CtrlId, UnrollInfo>,
    plan: CmmcPlan,
    banking: BankingPlan,
    g: Vudfg,
    /// Control registers (used as bounds/conditions) -> single writer site.
    ctrl_writers: HashMap<MemId, AccessId>,
    /// Value-node index (+ out-port once created) of control-reg stores:
    /// `(mem, writer lane) -> (writer unit, value node, out port if made)`.
    ctrl_value: HashMap<(MemId, LaneKey), (UnitId, usize, Option<usize>)>,
    main: HashMap<(CtrlId, LaneKey), UnitId>,
    request: HashMap<(AccessId, LaneKey), UnitId>,
    response: HashMap<(AccessId, LaneKey), UnitId>,
    access_lanes: HashMap<AccessId, Vec<LaneKey>>,
    vmu: HashMap<(MemId, LaneKey, u32), UnitId>,
    vmu_build: HashMap<UnitId, VmuBuild>,
    /// Data-producing `(unit, out_port)` of each load access (for
    /// broadcast to main VCUs, address slices and response units).
    data_srcs: HashMap<(AccessId, LaneKey), (UnitId, usize)>,
    fifo_writers: HashMap<MemId, (UnitId, usize, Option<usize>)>,
    /// Broadcast out-port of each fifo writer's value.
    fifo_ports: HashMap<MemId, usize>,
    combines: HashMap<(AccessId, LaneKey), CombineBuild>,
    pendings: Vec<Pending>,
    token_srcs: HashSet<AccessId>,
    dram_base: HashMap<MemId, u64>,
}

impl<'a> Builder<'a> {
    fn new(
        p: &'a Program,
        chip: &'a ChipSpec,
        _opts: &LowerOptions,
        unroll: HashMap<CtrlId, UnrollInfo>,
        plan: CmmcPlan,
        banking: BankingPlan,
    ) -> Result<Self, CompileError> {
        // Control registers must have exactly one writer.
        let mut ctrl_writers = HashMap::new();
        for ci in 0..p.ctrls.len() {
            for m in p.control_inputs(CtrlId(ci as u32)) {
                let writers: Vec<_> = p.accesses_of(m).into_iter().filter(|a| a.is_write).collect();
                if writers.len() != 1 {
                    return Err(CompileError::ControlRegWriters { mem: m, writers: writers.len() });
                }
                ctrl_writers.insert(m, writers[0].id);
            }
        }
        let token_srcs: HashSet<AccessId> = plan.edges.iter().map(|e| e.src).collect();
        let mut g = Vudfg::new(&p.name);
        // Assign DRAM bases, 4 KiB aligned.
        let mut dram_base = HashMap::new();
        let mut base = 0u64;
        for (i, m) in p.mems.iter().enumerate() {
            if m.kind == MemKind::Dram {
                let id = MemId(i as u32);
                dram_base.insert(id, base);
                g.drams.push(DramTensor {
                    mem: id,
                    base,
                    words: m.size(),
                    init: m.init.materialize(m.size(), m.dtype),
                });
                base += (m.size() as u64 * 4).div_ceil(4096) * 4096;
            }
        }
        Ok(Builder {
            p,
            chip,
            unroll,
            plan,
            banking,
            g,
            ctrl_writers,
            ctrl_value: HashMap::new(),
            main: HashMap::new(),
            request: HashMap::new(),
            response: HashMap::new(),
            access_lanes: HashMap::new(),
            vmu: HashMap::new(),
            vmu_build: HashMap::new(),
            data_srcs: HashMap::new(),
            fifo_writers: HashMap::new(),
            fifo_ports: HashMap::new(),
            combines: HashMap::new(),
            pendings: Vec::new(),
            token_srcs,
            dram_base,
        })
    }

    fn run(mut self) -> Result<Lowered, CompileError> {
        for hb in self.p.leaves() {
            for lane in self.lane_combos(hb) {
                self.build_hb(hb, &lane)?;
            }
        }
        self.finalize_combines()?;
        self.resolve_pendings()?;
        self.wire_tokens()?;
        self.finalize_vmus();
        Ok(Lowered {
            vudfg: self.g,
            cmmc: self.plan,
            banking: self.banking,
            unroll: self.unroll,
            main_units: self.main,
        })
    }

    // ---------------------------------------------------------------- lanes

    /// Unrolled iterative ancestors of a controller, outermost first, with
    /// their factors.
    fn unrolled_loops(&self, c: CtrlId) -> Vec<(CtrlId, u32)> {
        let mut v: Vec<(CtrlId, u32)> = self
            .p
            .ancestors(c)
            .into_iter()
            .filter_map(|a| {
                let u = self.unroll.get(&a).copied().unwrap_or(UnrollInfo::ONE);
                (u.unroll > 1).then_some((a, u.unroll))
            })
            .collect();
        v.reverse();
        v
    }

    fn lane_combos(&self, hb: CtrlId) -> Vec<LaneKey> {
        let loops = self.unrolled_loops(hb);
        let mut combos: Vec<LaneKey> = vec![vec![]];
        for (_, f) in &loops {
            let mut next = Vec::with_capacity(combos.len() * *f as usize);
            for c in &combos {
                for u in 0..*f {
                    let mut c2 = c.clone();
                    c2.push(u);
                    next.push(c2);
                }
            }
            combos = next;
        }
        combos
    }

    fn binding_of(&self, hb: CtrlId, lane: &LaneKey) -> BTreeMap<CtrlId, u32> {
        self.unrolled_loops(hb).iter().zip(lane).map(|((c, _), u)| (*c, *u)).collect()
    }

    /// Project a binding onto the unrolled-loop list of another controller.
    fn project_lane(
        &self,
        target: CtrlId,
        binding: &BTreeMap<CtrlId, u32>,
    ) -> Result<LaneKey, CompileError> {
        self.unrolled_loops(target)
            .iter()
            .map(|(c, _)| {
                binding.get(c).copied().ok_or_else(|| {
                    CompileError::Internal(format!(
                        "cannot project lane: {target} unrolled over {c} outside consumer scope"
                    ))
                })
            })
            .collect()
    }

    // --------------------------------------------------------------- levels

    fn level_specs(&self, hb: CtrlId) -> Vec<LSpec> {
        let mut specs = Vec::new();
        let mut path = self.p.ancestors(hb);
        path.reverse(); // root .. hb
        for (i, c) in path.iter().enumerate() {
            match &self.p.ctrl(*c).kind {
                CtrlKind::Loop(spec) => {
                    let u = self.unroll.get(c).copied().unwrap_or(UnrollInfo::ONE);
                    specs.push(LSpec::Ctr {
                        ctrl: *c,
                        min: spec.min,
                        max: spec.max,
                        step: spec.step,
                        unroll: u.unroll,
                        vec: u.vec,
                    });
                }
                CtrlKind::Branch { cond } => {
                    // which arm contains hb?
                    let arm = path[i + 1];
                    let expect = self.p.ctrl(*c).children[0] == arm;
                    specs.push(LSpec::Gate { ctrl: *c, cond: *cond, expect });
                }
                CtrlKind::DoWhile { cond, .. } => {
                    specs.push(LSpec::Whl { ctrl: *c, cond: *cond });
                }
                CtrlKind::Root | CtrlKind::Leaf(_) => {}
            }
        }
        specs
    }

    /// SIMD width of a unit instantiated from these specs.
    fn specs_width(&self, specs: &[LSpec]) -> u32 {
        match specs.last() {
            Some(LSpec::Ctr { vec, .. }) => *vec,
            _ => 1,
        }
    }

    /// Create a VCU unit with instantiated levels. Dynamic bounds and
    /// conditions become pending wires resolved at the end of lowering.
    fn new_vcu(
        &mut self,
        label: String,
        specs: &[LSpec],
        binding: &BTreeMap<CtrlId, u32>,
        role: VcuRole,
    ) -> UnitId {
        let width = self.specs_width(specs);
        let mut levels = Vec::with_capacity(specs.len());
        let unit = self.g.add_unit(
            label,
            UnitKind::Vcu(Vcu {
                levels: Vec::new(),
                dfg: Vec::new(),
                width,
                role,
                token_pops: Vec::new(),
                token_pushes: Vec::new(),
                producer_gate_mask: Vec::new(),
                epoch_emit: None,
            }),
        );
        for (li, s) in specs.iter().enumerate() {
            match s {
                LSpec::Ctr { ctrl, min, max, step, unroll, vec } => {
                    let u = binding.get(ctrl).copied().unwrap_or(0);
                    // Blocked lane distribution when bounds are static and
                    // the step positive (keeps per-lane DRAM streams
                    // contiguous and coalescable); cyclic otherwise.
                    let blocked = *unroll > 1
                        && *step > 0
                        && matches!((min, max), (Bound::Const(_), Bound::Const(_)));
                    if blocked {
                        let (Bound::Const(lo), Bound::Const(hi)) = (*min, *max) else {
                            unreachable!("blocked requires const bounds")
                        };
                        let trip = ((hi - lo).max(0) + step - 1) / step;
                        let chunk = (trip + *unroll as i64 - 1) / *unroll as i64;
                        let min_u = lo + u as i64 * chunk * step;
                        let max_u = hi.min(lo + (u as i64 + 1) * chunk * step);
                        levels.push(Level::Counter {
                            min: CBound::Const(min_u),
                            max: CBound::Const(max_u.max(min_u)),
                            step: *step * (*vec as i64),
                            lane_offset: 0,
                            lane_stride: *step,
                            ctrl: *ctrl,
                        });
                        continue;
                    }
                    let step2 = *step * (*unroll as i64) * (*vec as i64);
                    let lane_offset = u as i64 * (*vec as i64) * *step;
                    let min2 = match min {
                        Bound::Const(v) => CBound::Const(*v),
                        Bound::Reg(m) => {
                            self.pendings.push(Pending {
                                unit,
                                level_idx: li,
                                mem: *m,
                                role: PendRole::CtrMin,
                                binding: binding.clone(),
                            });
                            CBound::Port(usize::MAX)
                        }
                    };
                    let max2 = match max {
                        Bound::Const(v) => CBound::Const(*v),
                        Bound::Reg(m) => {
                            self.pendings.push(Pending {
                                unit,
                                level_idx: li,
                                mem: *m,
                                role: PendRole::CtrMax,
                                binding: binding.clone(),
                            });
                            CBound::Port(usize::MAX)
                        }
                    };
                    levels.push(Level::Counter {
                        min: min2,
                        max: max2,
                        step: step2,
                        lane_offset,
                        lane_stride: *step,
                        ctrl: *ctrl,
                    });
                }
                LSpec::Gate { ctrl, cond, expect } => {
                    self.pendings.push(Pending {
                        unit,
                        level_idx: li,
                        mem: *cond,
                        role: PendRole::GateCond,
                        binding: binding.clone(),
                    });
                    levels.push(Level::Gate { cond_in: usize::MAX, expect: *expect, ctrl: *ctrl });
                }
                LSpec::Whl { ctrl, cond } => {
                    self.pendings.push(Pending {
                        unit,
                        level_idx: li,
                        mem: *cond,
                        role: PendRole::WhlCond,
                        binding: binding.clone(),
                    });
                    levels.push(Level::While { cond_in: usize::MAX, ctrl: *ctrl });
                }
            }
        }
        self.g.unit_mut(unit).as_vcu_mut().expect("vcu").levels = levels;
        unit
    }

    fn vcu_mut(&mut self, u: UnitId) -> &mut Vcu {
        self.g.unit_mut(u).as_vcu_mut().expect("vcu unit")
    }

    fn push_node(&mut self, u: UnitId, op: NodeOp, ins: Vec<usize>) -> usize {
        let v = self.vcu_mut(u);
        v.dfg.push(DfgNode { op, ins });
        v.dfg.len() - 1
    }

    /// Record the producer-gate mask for the most recently added input
    /// port of `unit` given the producer's hyperblock.
    fn note_gate_mask(&mut self, unit: UnitId, in_port: usize, producer_hb: Option<CtrlId>) {
        let gates: Vec<(usize, CtrlId)> = {
            let v = self.vcu_mut(unit);
            v.levels
                .iter()
                .enumerate()
                .filter_map(|(i, l)| match l {
                    Level::Gate { ctrl, .. } => Some((i, *ctrl)),
                    _ => None,
                })
                .collect()
        };
        let mut mask = 0u64;
        if let Some(ph) = producer_hb {
            for (i, g) in gates {
                if self.p.is_ancestor(g, ph) && i < 64 {
                    mask |= 1 << i;
                }
            }
        }
        let v = self.vcu_mut(unit);
        while v.producer_gate_mask.len() <= in_port {
            v.producer_gate_mask.push(0);
        }
        v.producer_gate_mask[in_port] = mask;
    }

    // ----------------------------------------------------------- main build

    fn build_hb(&mut self, hb: CtrlId, lane: &LaneKey) -> Result<(), CompileError> {
        let specs = self.level_specs(hb);
        let binding = self.binding_of(hb, lane);
        let label = format!("{}@{:?}", self.p.ctrl(hb).name, lane);
        let main =
            self.new_vcu(label, &specs, &binding, VcuRole::Main { hb, lane: lane_tag(lane) });
        self.main.insert((hb, lane.clone()), main);

        let h = self
            .p
            .ctrl(hb)
            .hyperblock()
            .ok_or_else(|| CompileError::Internal(format!("build_hb on non-leaf {hb}")))?
            .clone();
        let width = self.specs_width(&specs);

        // Pre-scan: reductions that need cross-lane combining, and their
        // consuming stores.
        let mut combined_stores: HashMap<usize, (usize, CtrlId)> = HashMap::new(); // store slot -> (reduce slot, over)
        for (eid, e) in h.iter() {
            if let Expr::Reduce { over, .. } = e {
                let needs_combine = self
                    .p
                    .ancestors(hb)
                    .into_iter()
                    .take_while(|c| {
                        // loops at-or-below `over`
                        self.p.is_ancestor(*over, *c)
                    })
                    .any(|c| self.unroll.get(&c).map(|u| u.unroll > 1).unwrap_or(false));
                if !needs_combine {
                    continue;
                }
                // find the unique consuming store-if-last
                let mut consumer: Option<usize> = None;
                for (sid, s) in h.iter() {
                    if s.operands().contains(&eid) {
                        match s {
                            Expr::Store { value, cond: Some(c), .. }
                                if *value == eid
                                    && matches!(h.get(*c), Some(Expr::IsLast(l)) if l == over) =>
                            {
                                if consumer.is_some() {
                                    return Err(CompileError::Unpartitionable(format!(
                                        "reduction over unrolled loop {over} has multiple consumers in {hb}"
                                    )));
                                }
                                consumer = Some(sid.index());
                            }
                            _ => {
                                return Err(CompileError::Unpartitionable(format!(
                                    "reduction over unrolled loop {over} in {hb} must only feed a store predicated on is_last"
                                )))
                            }
                        }
                    }
                }
                let store = consumer.ok_or_else(|| {
                    CompileError::Unpartitionable(format!(
                        "reduction over unrolled loop {over} in {hb} has no store-if-last consumer"
                    ))
                })?;
                combined_stores.insert(store, (eid.index(), *over));
            }
        }

        // Translate expressions.
        let mut nodes: Vec<usize> = Vec::with_capacity(h.len());
        for (eid, e) in h.iter() {
            let n = match e {
                Expr::Const(v) => self.push_node(main, NodeOp::Const(*v), vec![]),
                Expr::Idx(c) => {
                    let li = self.level_of(main, *c)?;
                    self.push_node(main, NodeOp::CounterIdx { level: li }, vec![])
                }
                Expr::IsFirst(c) => {
                    let li = self.level_of(main, *c)?;
                    self.push_node(main, NodeOp::IsFirst { level: li }, vec![])
                }
                Expr::IsLast(c) => {
                    let li = self.level_of(main, *c)?;
                    self.push_node(main, NodeOp::IsLast { level: li }, vec![])
                }
                Expr::Un(op, a) => {
                    let ia = nodes[a.index()];
                    self.push_node(main, NodeOp::Un(*op), vec![ia])
                }
                Expr::Bin(op, a, b) => {
                    let (ia, ib) = (nodes[a.index()], nodes[b.index()]);
                    self.push_node(main, NodeOp::Bin(*op), vec![ia, ib])
                }
                Expr::Mux { c, t, f } => {
                    let ins = vec![nodes[c.index()], nodes[t.index()], nodes[f.index()]];
                    self.push_node(main, NodeOp::Mux, ins)
                }
                Expr::Reduce { op, value, init, over } => {
                    let li = self.level_of(main, *over).unwrap_or(usize::MAX);
                    let reset = if li == usize::MAX { 0 } else { li };
                    let acc = self.push_node(
                        main,
                        NodeOp::Reduce { op: *op, init: *init, reset_level: reset },
                        vec![nodes[value.index()]],
                    );
                    // Vectorized units keep per-SIMD-lane accumulators;
                    // the IR-level value is the lane-combined total, so
                    // every consumer sees the reduction-tree output.
                    if width > 1 {
                        self.push_node(main, NodeOp::VecReduce(*op), vec![acc])
                    } else {
                        acc
                    }
                }
                Expr::Load { mem, .. } => {
                    let access = AccessId { hb, expr: eid };
                    let (src_unit, src_port) =
                        self.build_access(access, *mem, lane, &binding, &specs, &h, &nodes, None)?;
                    let (_, in_port) = self.g.connect_bcast(
                        src_unit,
                        src_port,
                        main,
                        if width > 1 { StreamKind::Vector(width) } else { StreamKind::Scalar },
                        self.chip.pcu.fifo_depth,
                        format!("resp:{access}"),
                    );
                    self.note_gate_mask(main, in_port, Some(hb));
                    self.push_node(main, NodeOp::StreamIn { port: in_port }, vec![])
                }
                Expr::Store { mem, value, cond, .. } => {
                    let access = AccessId { hb, expr: eid };
                    if let Some((reduce_slot, over)) = combined_stores.get(&eid.index()) {
                        // Cross-lane reduction: push the SIMD-combined
                        // partial to the combine unit at the end of each
                        // local activation of `over`.
                        // nodes[reduce_slot] is already the lane-combined
                        // total (VecReduce inserted at translation).
                        let scalar = nodes[*reduce_slot];
                        let op = match h.get(ExprId(*reduce_slot as u32)) {
                            Some(Expr::Reduce { op, .. }) => *op,
                            _ => {
                                return Err(CompileError::Internal(
                                    "combined_stores slot is not a reduce".into(),
                                ))
                            }
                        };
                        let pred = self.emission_pred(main, *over)?;
                        let combine = self.get_combine(access, *over, op, hb, eid, &binding)?;
                        let (_, out_port, in_port) = self.g.connect(
                            main,
                            combine,
                            StreamKind::Scalar,
                            self.chip.pcu.fifo_depth,
                            format!("partial:{access}"),
                        );
                        self.note_gate_mask(combine, in_port, Some(hb));
                        let ckey = self.project_combine_lane(hb, *over, &binding)?;
                        self.combines
                            .get_mut(&(access, ckey))
                            .ok_or_else(|| {
                                CompileError::Internal(format!(
                                    "combine for {access} not registered"
                                ))
                            })?
                            .partial_ports
                            .push(in_port);
                        self.push_node(
                            main,
                            NodeOp::StreamOut { port: out_port, pred: true, empty_pred: false },
                            vec![scalar, pred],
                        )
                    } else {
                        let data_node = nodes[value.index()];
                        let cond_node = cond.map(|c| nodes[c.index()]);
                        self.build_store(
                            access, *mem, lane, &binding, &specs, &h, &nodes, main, data_node,
                            cond_node,
                        )?;
                        data_node
                    }
                }
            };
            nodes.push(n);
        }
        Ok(())
    }

    /// Predicate node: conjunction of `IsLast` over all counter levels from
    /// `over` (inclusive) to the innermost, i.e. "local activation of
    /// `over` completes after this firing".
    fn emission_pred(&mut self, unit: UnitId, over: CtrlId) -> Result<usize, CompileError> {
        let li = self.level_of(unit, over)?;
        let n_levels = self.vcu_mut(unit).levels.len();
        let mut acc: Option<usize> = None;
        for l in li..n_levels {
            let is_counter = matches!(self.vcu_mut(unit).levels[l], Level::Counter { .. });
            if !is_counter {
                return Err(CompileError::Unpartitionable(format!(
                    "gate/do-while between reduction loop {over} and its hyperblock is unsupported with unrolling"
                )));
            }
            let n = self.push_node(unit, NodeOp::IsLast { level: l }, vec![]);
            acc = Some(match acc {
                None => n,
                Some(a) => self.push_node(unit, NodeOp::Bin(BinOp::And), vec![a, n]),
            });
        }
        acc.ok_or_else(|| CompileError::Internal("emission_pred on empty level range".into()))
    }

    fn project_combine_lane(
        &self,
        hb: CtrlId,
        over: CtrlId,
        binding: &BTreeMap<CtrlId, u32>,
    ) -> Result<LaneKey, CompileError> {
        // Lane over loops strictly above `over`.
        let loops = self.unrolled_loops(hb);
        Ok(loops
            .iter()
            .filter(|(c, _)| self.p.is_ancestor(*c, over) && *c != over)
            .map(|(c, _)| binding.get(c).copied().unwrap_or(0))
            .collect())
    }

    fn get_combine(
        &mut self,
        access: AccessId,
        over: CtrlId,
        op: BinOp,
        hb: CtrlId,
        store_expr: ExprId,
        binding: &BTreeMap<CtrlId, u32>,
    ) -> Result<UnitId, CompileError> {
        let lane = self.project_combine_lane(hb, over, binding)?;
        if let Some(cb) = self.combines.get(&(access, lane.clone())) {
            return Ok(cb.unit);
        }
        // Levels strictly above `over`.
        let specs_all = self.level_specs(hb);
        let cut = specs_all
            .iter()
            .position(|s| s.ctrl() == over)
            .ok_or_else(|| CompileError::Internal(format!("loop {over} missing in specs")))?;
        let specs: Vec<LSpec> = specs_all[..cut].to_vec();
        let cbind: BTreeMap<CtrlId, u32> = binding
            .iter()
            .filter(|(c, _)| self.p.is_ancestor(**c, over) && **c != over)
            .map(|(c, u)| (*c, *u))
            .collect();
        let unit = self.new_vcu(format!("combine:{access}"), &specs, &cbind, VcuRole::Merge);
        self.combines.insert(
            (access, lane.clone()),
            CombineBuild {
                unit,
                partial_ports: Vec::new(),
                op,
                hb,
                store_expr,
                binding: cbind,
                lane,
                specs,
            },
        );
        Ok(unit)
    }

    fn finalize_combines(&mut self) -> Result<(), CompileError> {
        let keys: Vec<(AccessId, LaneKey)> = self.combines.keys().cloned().collect();
        for key in keys {
            let (unit, ports, op, hb, store_expr, binding, lane, specs) = {
                let cb = self
                    .combines
                    .get(&key)
                    .ok_or_else(|| CompileError::Internal("combine key vanished".into()))?;
                (
                    cb.unit,
                    cb.partial_ports.clone(),
                    cb.op,
                    cb.hb,
                    cb.store_expr,
                    cb.binding.clone(),
                    cb.lane.clone(),
                    cb.specs.clone(),
                )
            };
            // Tree-combine the partials.
            let mut vals: Vec<usize> = ports
                .iter()
                .map(|p| self.push_node(unit, NodeOp::StreamIn { port: *p }, vec![]))
                .collect();
            while vals.len() > 1 {
                let mut next = Vec::with_capacity(vals.len().div_ceil(2));
                for pair in vals.chunks(2) {
                    if pair.len() == 2 {
                        next.push(self.push_node(unit, NodeOp::Bin(op), vec![pair[0], pair[1]]));
                    } else {
                        next.push(pair[0]);
                    }
                }
                vals = next;
            }
            let total = vals[0];
            // Translate the store's address slice in the combine context
            // and perform the store from here.
            let h = self
                .p
                .ctrl(hb)
                .hyperblock()
                .ok_or_else(|| CompileError::Internal(format!("combine hb {hb} is not a leaf")))?
                .clone();
            let (mem, addr_exprs) = match h.get(store_expr) {
                Some(Expr::Store { mem, addr, .. }) => (*mem, addr.clone()),
                _ => return Err(CompileError::Internal("combine store is not a store".into())),
            };
            let access = key.0;
            self.access_lanes.entry(access).or_default().push(lane.clone());
            // Build a request unit for the store in the combine context.
            let needed = closure_of(&h, &addr_exprs);
            let req = self.new_vcu(
                format!("req:{access}@{lane:?}"),
                &specs,
                &binding,
                VcuRole::Request { access, lane: lane_tag(&lane) },
            );
            self.request.insert((access, lane.clone()), req);
            let req_nodes = self.translate_slice(req, hb, &h, &needed, &binding)?;
            self.finish_store_wiring(
                access,
                mem,
                &lane,
                &binding,
                req,
                &req_nodes,
                &addr_exprs,
                None,
                unit,
                total,
                None,
                &specs,
            )?;
        }
        Ok(())
    }

    // -------------------------------------------------------------- accesses

    /// Backward-slice translation of selected expressions into `unit`.
    /// Loads inside the slice consume the broadcast response streams of
    /// accesses already built for this hyperblock lane.
    #[allow(clippy::too_many_arguments)]
    fn translate_slice(
        &mut self,
        unit: UnitId,
        hb: CtrlId,
        h: &sara_ir::Hyperblock,
        needed: &HashSet<usize>,
        binding: &BTreeMap<CtrlId, u32>,
    ) -> Result<HashMap<usize, usize>, CompileError> {
        let mut map: HashMap<usize, usize> = HashMap::new();
        let width = { self.vcu_mut(unit).width };
        for (eid, e) in h.iter() {
            if !needed.contains(&eid.index()) {
                continue;
            }
            let n = match e {
                Expr::Const(v) => self.push_node(unit, NodeOp::Const(*v), vec![]),
                Expr::Idx(c) => {
                    let li = self.level_of(unit, *c)?;
                    self.push_node(unit, NodeOp::CounterIdx { level: li }, vec![])
                }
                Expr::IsFirst(c) => {
                    let li = self.level_of(unit, *c)?;
                    self.push_node(unit, NodeOp::IsFirst { level: li }, vec![])
                }
                Expr::IsLast(c) => {
                    let li = self.level_of(unit, *c)?;
                    self.push_node(unit, NodeOp::IsLast { level: li }, vec![])
                }
                Expr::Un(op, a) => {
                    let ia = map[&a.index()];
                    self.push_node(unit, NodeOp::Un(*op), vec![ia])
                }
                Expr::Bin(op, a, b) => {
                    let ins = vec![map[&a.index()], map[&b.index()]];
                    self.push_node(unit, NodeOp::Bin(*op), ins)
                }
                Expr::Mux { c, t, f } => {
                    let ins = vec![map[&c.index()], map[&t.index()], map[&f.index()]];
                    self.push_node(unit, NodeOp::Mux, ins)
                }
                Expr::Load { .. } => {
                    let access = AccessId { hb, expr: eid };
                    let lane = self.project_lane(hb, binding)?;
                    let (src_unit, src_port) = *self.data_src(&access, &lane).ok_or_else(|| {
                        CompileError::Internal(format!(
                            "slice load {access} has no data source yet"
                        ))
                    })?;
                    let (_, in_port) = self.g.connect_bcast(
                        src_unit,
                        src_port,
                        unit,
                        if width > 1 { StreamKind::Vector(width) } else { StreamKind::Scalar },
                        self.chip.pcu.fifo_depth,
                        format!("resp:{access}->slice"),
                    );
                    self.note_gate_mask(unit, in_port, Some(hb));
                    self.push_node(unit, NodeOp::StreamIn { port: in_port }, vec![])
                }
                Expr::Store { .. } | Expr::Reduce { .. } => {
                    return Err(CompileError::Unpartitionable(format!(
                        "address/predicate slice in {hb} depends on a store or reduction"
                    )))
                }
            };
            map.insert(eid.index(), n);
        }
        Ok(map)
    }

    fn data_src(&self, access: &AccessId, lane: &LaneKey) -> Option<&(UnitId, usize)> {
        self.data_srcs.get(&(*access, lane.clone()))
    }

    /// Build the machinery of a *load* access and return the `(unit,
    /// out_port)` that produces its response data.
    #[allow(clippy::too_many_arguments)]
    fn build_access(
        &mut self,
        access: AccessId,
        mem: MemId,
        lane: &LaneKey,
        binding: &BTreeMap<CtrlId, u32>,
        specs: &[LSpec],
        h: &sara_ir::Hyperblock,
        _main_nodes: &[usize],
        _unused: Option<()>,
    ) -> Result<(UnitId, usize), CompileError> {
        let decl = self.p.mem(mem);
        let hb = access.hb;
        let width = self.specs_width(specs);
        let kind_vec = if width > 1 { StreamKind::Vector(width) } else { StreamKind::Scalar };

        if decl.kind == MemKind::Fifo {
            // Direct stream from the writer unit's broadcast port; the
            // caller attaches the consuming stream.
            let (wu, vnode, cnode) = *self.fifo_writers.get(&mem).ok_or_else(|| {
                CompileError::Unpartitionable(format!("fifo {mem} read before any write"))
            })?;
            let out_port = self.fifo_out_port(mem, wu, vnode, cnode);
            let access = AccessId { hb, expr: access.expr };
            self.data_srcs.insert((access, lane.clone()), (wu, out_port));
            return Ok((wu, out_port));
        }

        let addr_exprs = match h.get(access.expr) {
            Some(Expr::Load { addr, .. }) => addr.clone(),
            _ => return Err(CompileError::Internal("build_access on non-load".into())),
        };
        let needed = closure_of(h, &addr_exprs);
        let req = self.new_vcu(
            format!("req:{access}@{lane:?}"),
            specs,
            binding,
            VcuRole::Request { access, lane: lane_tag(lane) },
        );
        self.request.insert((access, lane.clone()), req);
        self.access_lanes.entry(access).or_default().push(lane.clone());
        let req_nodes = self.translate_slice(req, hb, h, &needed, binding)?;
        let flat = self.flatten_addr(req, mem, &addr_exprs, &req_nodes)?;

        let (src_unit, src_port) = if decl.kind == MemKind::Dram {
            // AG read
            let base = self.dram_base[&mem];
            let ag = self.g.add_unit(
                format!("ag:{access}@{lane:?}"),
                UnitKind::Ag(AgUnit {
                    mem,
                    dir: AgDir::Read,
                    addr_in: 0,
                    data_in: None,
                    out: 0,
                    width,
                    base_addr: base,
                }),
            );
            let (_, addr_out, ag_in) = self.g.connect(
                req,
                ag,
                kind_vec,
                self.chip.pcu.fifo_depth,
                format!("addr:{access}"),
            );
            self.push_node(
                req,
                NodeOp::StreamOut { port: addr_out, pred: false, empty_pred: false },
                vec![flat],
            );
            // AG data out: create a port by connecting to a throwaway? We
            // create the port lazily at first consumer via connect_bcast
            // from port 0 — so make the port now against the response unit
            // or the main unit; simplest: the caller broadcasts from the
            // port we create toward the first consumer. Create the port
            // with the response unit if needed, else leave for caller.
            if let UnitKind::Ag(a) = &mut self.g.unit_mut(ag).kind {
                a.addr_in = ag_in;
            }
            let out_port = self.ensure_out_port(ag, kind_vec, format!("data:{access}"));
            if let UnitKind::Ag(a) = &mut self.g.unit_mut(ag).kind {
                a.out = out_port;
            }
            (ag, out_port)
        } else {
            self.wire_onchip_read(access, mem, lane, binding, req, flat, width)?
        };
        self.data_srcs.insert((access, lane.clone()), (src_unit, src_port));
        // Epoch markers for multibuffered memories.
        self.set_epoch_emit(req, mem, hb)?;
        // Response unit if this access sources tokens.
        if self.token_srcs.contains(&access) {
            self.make_response(access, mem, lane, binding, specs, (src_unit, src_port))?;
        }
        Ok((src_unit, src_port))
    }

    /// Wiring of a *store* access (data computed in `data_unit` at node
    /// `data_node`).
    #[allow(clippy::too_many_arguments)]
    fn build_store(
        &mut self,
        access: AccessId,
        mem: MemId,
        lane: &LaneKey,
        binding: &BTreeMap<CtrlId, u32>,
        specs: &[LSpec],
        h: &sara_ir::Hyperblock,
        main_nodes: &[usize],
        data_unit: UnitId,
        data_node: usize,
        cond_node: Option<usize>,
    ) -> Result<(), CompileError> {
        let decl = self.p.mem(mem);
        let hb = access.hb;

        // Control-register stores feed broadcast value streams instead of
        // (or in addition to) memory.
        if self.ctrl_writers.get(&mem) == Some(&access) {
            if cond_node.is_some() {
                return Err(CompileError::Unpartitionable(format!(
                    "store to control register {mem} must be unconditional"
                )));
            }
            self.ctrl_value.insert((mem, lane.clone()), (data_unit, data_node, None));
            // If nothing reads the register as data, we are done.
            let has_data_reads = self.p.accesses_of(mem).iter().any(|a| !a.is_write);
            if !has_data_reads {
                return Ok(());
            }
        }

        if decl.kind == MemKind::Fifo {
            if let Some(&(prev, _, _)) = self.fifo_writers.get(&mem) {
                if prev != data_unit {
                    return Err(CompileError::Internal(format!(
                        "fifo {mem} has multiple writer units; check_fifo_streams should have rejected this"
                    )));
                }
            }
            self.fifo_writers.insert(mem, (data_unit, data_node, cond_node));
            return Ok(());
        }

        let addr_exprs = match h.get(access.expr) {
            Some(Expr::Store { addr, .. }) => addr.clone(),
            _ => return Err(CompileError::Internal("build_store on non-store".into())),
        };
        let cond_expr = match h.get(access.expr) {
            Some(Expr::Store { cond, .. }) => *cond,
            _ => None,
        };
        let mut roots = addr_exprs.clone();
        if let Some(c) = cond_expr {
            roots.push(c);
        }
        let needed = closure_of(h, &roots);
        let req = self.new_vcu(
            format!("req:{access}@{lane:?}"),
            specs,
            binding,
            VcuRole::Request { access, lane: lane_tag(lane) },
        );
        self.request.insert((access, lane.clone()), req);
        self.access_lanes.entry(access).or_default().push(lane.clone());
        let req_nodes = self.translate_slice(req, hb, h, &needed, binding)?;
        let req_cond = cond_expr.map(|c| req_nodes[&c.index()]);
        let _ = main_nodes;
        self.finish_store_wiring(
            access,
            mem,
            lane,
            binding,
            req,
            &req_nodes,
            &addr_exprs,
            req_cond,
            data_unit,
            data_node,
            cond_node,
            specs,
        )
    }

    /// Shared tail of store wiring: flatten the address in the request
    /// unit, route addr + data to the VMU/AG, wire acks and epochs.
    #[allow(clippy::too_many_arguments)]
    fn finish_store_wiring(
        &mut self,
        access: AccessId,
        mem: MemId,
        lane: &LaneKey,
        binding: &BTreeMap<CtrlId, u32>,
        req: UnitId,
        req_nodes: &HashMap<usize, usize>,
        addr_exprs: &[ExprId],
        req_cond: Option<usize>,
        data_unit: UnitId,
        data_node: usize,
        data_cond: Option<usize>,
        specs: &[LSpec],
    ) -> Result<(), CompileError> {
        let decl = self.p.mem(mem);
        let hb = access.hb;
        let width = self.specs_width(specs);
        let kind_vec = if width > 1 { StreamKind::Vector(width) } else { StreamKind::Scalar };
        let flat = self.flatten_addr(req, mem, addr_exprs, req_nodes)?;

        let completion: (UnitId, usize);
        if decl.kind == MemKind::Dram {
            let base = self.dram_base[&mem];
            let ag = self.g.add_unit(
                format!("ag:{access}@{lane:?}"),
                UnitKind::Ag(AgUnit {
                    mem,
                    dir: AgDir::Write,
                    addr_in: 0,
                    data_in: None,
                    out: 0,
                    width,
                    base_addr: base,
                }),
            );
            let (_, addr_out, ag_addr_in) = self.g.connect(
                req,
                ag,
                kind_vec,
                self.chip.pcu.fifo_depth,
                format!("waddr:{access}"),
            );
            let addr_ins = match req_cond {
                Some(c) => vec![flat, c],
                None => vec![flat],
            };
            self.push_node(
                req,
                NodeOp::StreamOut { port: addr_out, pred: req_cond.is_some(), empty_pred: true },
                addr_ins,
            );
            let (_, data_out, ag_data_in) = self.g.connect(
                data_unit,
                ag,
                kind_vec,
                self.chip.pcu.fifo_depth,
                format!("wdata:{access}"),
            );
            let data_ins = match data_cond {
                Some(c) => vec![data_node, c],
                None => vec![data_node],
            };
            self.push_node(
                data_unit,
                NodeOp::StreamOut { port: data_out, pred: data_cond.is_some(), empty_pred: true },
                data_ins,
            );
            if let UnitKind::Ag(a) = &mut self.g.unit_mut(ag).kind {
                a.addr_in = ag_addr_in;
                a.data_in = Some(ag_data_in);
            }
            let ack_port = self.ensure_out_port(ag, StreamKind::Scalar, format!("ack:{access}"));
            if let UnitKind::Ag(a) = &mut self.g.unit_mut(ag).kind {
                a.out = ack_port;
            }
            completion = (ag, ack_port);
        } else {
            completion = self.wire_onchip_write(
                access, mem, lane, binding, req, flat, req_cond, data_unit, data_node, data_cond,
                width,
            )?;
        }
        self.set_epoch_emit(req, mem, hb)?;
        if self.token_srcs.contains(&access) {
            self.make_response(access, mem, lane, binding, specs, completion)?;
        }
        Ok(())
    }

    // ------------------------------------------------------- on-chip wiring

    fn mem_plan(&self, mem: MemId) -> (BankFn, Vec<(CtrlId, u32)>, HashMap<AccessId, BankRoute>) {
        match self.banking.of(mem) {
            Some(mp) => (mp.bank_fn, mp.private_loops.clone(), mp.routes.clone()),
            None => (BankFn::None, Vec::new(), HashMap::new()),
        }
    }

    /// Private-copy key of a memory for a lane binding.
    fn copy_key(
        &self,
        private_loops: &[(CtrlId, u32)],
        binding: &BTreeMap<CtrlId, u32>,
    ) -> LaneKey {
        private_loops.iter().map(|(c, _)| binding.get(c).copied().unwrap_or(0)).collect()
    }

    fn get_vmu(&mut self, mem: MemId, copy: &LaneKey, bank: u32) -> UnitId {
        if let Some(u) = self.vmu.get(&(mem, copy.clone(), bank)) {
            return *u;
        }
        let u = self.g.add_unit(
            format!("vmu:{}[{bank}]@{copy:?}", self.p.mem(mem).name),
            UnitKind::Vmu(Vmu {
                mem,
                bank: (bank, 1), // bank count fixed in finalize
                lane: lane_tag(copy),
                words: 0,
                init: Vec::new(),
                multibuffer: 1,
                write_ports: Vec::new(),
                read_ports: Vec::new(),
                read_latency: self.chip.pmu.read_latency,
            }),
        );
        self.vmu.insert((mem, copy.clone(), bank), u);
        self.vmu_build.insert(u, VmuBuild::default());
        u
    }

    /// Evaluate the static bank of an access for a lane binding. Lane
    /// index substitution follows the same blocked-vs-cyclic distribution
    /// as counter instantiation.
    fn static_bank(
        &self,
        access: AccessId,
        bank_fn: BankFn,
        binding: &BTreeMap<CtrlId, u32>,
    ) -> Option<u32> {
        let f = access_affine(self.p, access.hb, access.expr)?;
        let mut vals: BTreeMap<CtrlId, i64> = BTreeMap::new();
        for (v, _) in f.terms.iter() {
            let spec = self.p.ctrl(*v).loop_spec()?;
            let min = spec.min.as_const()?;
            let u = self.unroll.get(v).copied().unwrap_or(UnrollInfo::ONE);
            let lane = binding.get(v).copied().unwrap_or(0) as i64;
            let idx = match mempart::chunk_elems(self.p, &self.unroll, *v) {
                Some(chunk) if u.unroll > 1 => min + lane * chunk * spec.step,
                _ => min + lane * (u.vec as i64) * spec.step,
            };
            vals.insert(*v, idx);
        }
        Some(bank_fn.bank_of(f.eval(&vals)))
    }

    /// Emit nodes computing the bank-local address from the flat address.
    fn local_addr_nodes(&mut self, unit: UnitId, flat: usize, bank_fn: BankFn) -> usize {
        match bank_fn {
            BankFn::None => flat,
            BankFn::Cyclic { banks } => {
                let b = self.push_node(unit, NodeOp::Const(Elem::I64(banks as i64)), vec![]);
                self.push_node(unit, NodeOp::Bin(BinOp::Div), vec![flat, b])
            }
            BankFn::Blocked { banks, block } => {
                let blk = self.push_node(unit, NodeOp::Const(Elem::I64(block as i64)), vec![]);
                let b = self.push_node(unit, NodeOp::Const(Elem::I64(banks as i64)), vec![]);
                let grp = self.push_node(unit, NodeOp::Bin(BinOp::Div), vec![flat, blk]);
                let grpb = self.push_node(unit, NodeOp::Bin(BinOp::Div), vec![grp, b]);
                let hi = self.push_node(unit, NodeOp::Bin(BinOp::Mul), vec![grpb, blk]);
                let lo = self.push_node(unit, NodeOp::Bin(BinOp::Mod), vec![flat, blk]);
                self.push_node(unit, NodeOp::Bin(BinOp::Add), vec![hi, lo])
            }
        }
    }

    /// Emit nodes computing the bank index from the flat address.
    fn bank_nodes(&mut self, unit: UnitId, flat: usize, bank_fn: BankFn) -> usize {
        match bank_fn {
            BankFn::None => self.push_node(unit, NodeOp::Const(Elem::I64(0)), vec![]),
            BankFn::Cyclic { banks } => {
                let b = self.push_node(unit, NodeOp::Const(Elem::I64(banks as i64)), vec![]);
                self.push_node(unit, NodeOp::Bin(BinOp::Mod), vec![flat, b])
            }
            BankFn::Blocked { banks, block } => {
                let blk = self.push_node(unit, NodeOp::Const(Elem::I64(block as i64)), vec![]);
                let b = self.push_node(unit, NodeOp::Const(Elem::I64(banks as i64)), vec![]);
                let grp = self.push_node(unit, NodeOp::Bin(BinOp::Div), vec![flat, blk]);
                self.push_node(unit, NodeOp::Bin(BinOp::Mod), vec![grp, b])
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn wire_onchip_read(
        &mut self,
        access: AccessId,
        mem: MemId,
        _lane: &LaneKey,
        binding: &BTreeMap<CtrlId, u32>,
        req: UnitId,
        flat: usize,
        width: u32,
    ) -> Result<(UnitId, usize), CompileError> {
        let kind_vec = if width > 1 { StreamKind::Vector(width) } else { StreamKind::Scalar };
        let (bank_fn, private_loops, routes) = self.mem_plan(mem);
        let copy = self.copy_key(&private_loops, binding);
        let route = routes.get(&access).copied().unwrap_or(BankRoute::Static);
        let static_bank = match route {
            BankRoute::Static => self.static_bank(access, bank_fn, binding).or(Some(0)),
            BankRoute::Dynamic => None,
        };
        if let Some(bank) = static_bank {
            let local = self.local_addr_nodes(req, flat, bank_fn);
            let vmu = self.get_vmu(mem, &copy, bank);
            let (_, addr_out, addr_in) = self.g.connect(
                req,
                vmu,
                kind_vec,
                self.chip.pmu.fifo_depth,
                format!("raddr:{access}"),
            );
            self.push_node(
                req,
                NodeOp::StreamOut { port: addr_out, pred: false, empty_pred: false },
                vec![local],
            );
            let data_port = self.ensure_out_port(vmu, kind_vec, format!("rdata:{access}"));
            self.vmu_build
                .get_mut(&vmu)
                .ok_or_else(|| CompileError::Internal("vmu build state missing".into()))?
                .read_ports
                .push(VmuReadPort { addr_in, data_out: data_port });
            Ok((vmu, data_port))
        } else {
            // Dynamic: request -> dist -> banks -> coll -> consumer.
            let banks = bank_fn.banks();
            let local = self.local_addr_nodes(req, flat, bank_fn);
            let bank = self.bank_nodes(req, flat, bank_fn);
            let dist = self.g.add_unit(
                format!("xdist:{access}"),
                UnitKind::XbarDist(XbarDist {
                    bank_in: 0,
                    payload_in: 0,
                    bank_outs: Vec::new(),
                    ba_out: None,
                }),
            );
            let (_, bank_out, dist_bank_in) = self.g.connect(
                req,
                dist,
                kind_vec,
                self.chip.pcu.fifo_depth,
                format!("ba:{access}"),
            );
            self.push_node(
                req,
                NodeOp::StreamOut { port: bank_out, pred: false, empty_pred: false },
                vec![bank],
            );
            let (_, addr_out, dist_addr_in) = self.g.connect(
                req,
                dist,
                kind_vec,
                self.chip.pcu.fifo_depth,
                format!("la:{access}"),
            );
            self.push_node(
                req,
                NodeOp::StreamOut { port: addr_out, pred: false, empty_pred: false },
                vec![local],
            );
            let coll = self.g.add_unit(
                format!("xcoll:{access}"),
                UnitKind::XbarColl(XbarColl { ba_in: 0, bank_ins: Vec::new(), out: 0 }),
            );
            let (_, ba_fwd_port, coll_ba_in) = self.g.connect(
                dist,
                coll,
                kind_vec,
                self.chip.pcu.fifo_depth,
                format!("bafwd:{access}"),
            );
            let mut bank_outs = Vec::new();
            let mut coll_bank_ins = Vec::new();
            for b in 0..banks {
                let vmu = self.get_vmu(mem, &copy, b);
                let (_, out_p, addr_in) = self.g.connect(
                    dist,
                    vmu,
                    kind_vec,
                    self.chip.pmu.fifo_depth,
                    format!("raddr:{access}#{b}"),
                );
                bank_outs.push(out_p);
                let data_port = self.ensure_out_port(vmu, kind_vec, format!("rdata:{access}#{b}"));
                self.vmu_build
                    .get_mut(&vmu)
                    .ok_or_else(|| CompileError::Internal("vmu build state missing".into()))?
                    .read_ports
                    .push(VmuReadPort { addr_in, data_out: data_port });
                let (_, coll_in) = self.g.connect_bcast(
                    vmu,
                    data_port,
                    coll,
                    kind_vec,
                    self.chip.pmu.fifo_depth,
                    format!("rdata:{access}#{b}->coll"),
                );
                coll_bank_ins.push(coll_in);
            }
            let out_port = self.ensure_out_port(coll, kind_vec, format!("rdata:{access}"));
            if let UnitKind::XbarDist(d) = &mut self.g.unit_mut(dist).kind {
                d.bank_in = dist_bank_in;
                d.payload_in = dist_addr_in;
                d.bank_outs = bank_outs;
                d.ba_out = Some(ba_fwd_port);
            }
            if let UnitKind::XbarColl(c) = &mut self.g.unit_mut(coll).kind {
                c.ba_in = coll_ba_in;
                c.bank_ins = coll_bank_ins;
                c.out = out_port;
            }
            Ok((coll, out_port))
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn wire_onchip_write(
        &mut self,
        access: AccessId,
        mem: MemId,
        _lane: &LaneKey,
        binding: &BTreeMap<CtrlId, u32>,
        req: UnitId,
        flat: usize,
        req_cond: Option<usize>,
        data_unit: UnitId,
        data_node: usize,
        data_cond: Option<usize>,
        width: u32,
    ) -> Result<(UnitId, usize), CompileError> {
        let kind_vec = if width > 1 { StreamKind::Vector(width) } else { StreamKind::Scalar };
        let (bank_fn, private_loops, routes) = self.mem_plan(mem);
        let route = routes.get(&access).copied().unwrap_or(BankRoute::Static);
        // Writes to privatized memories: a writer outside the private
        // scope must broadcast to every copy; common case is writer inside
        // (single copy).
        let copies = self.copies_for(&private_loops, binding);
        if copies.len() > 1 && route == BankRoute::Dynamic {
            return Err(CompileError::Unpartitionable(format!(
                "dynamic-routed write {access} to privatized memory {mem}"
            )));
        }
        let mut completion: Option<(UnitId, usize)> = None;
        match route {
            BankRoute::Static => {
                let bank = self.static_bank(access, bank_fn, binding).unwrap_or(0);
                let local = self.local_addr_nodes(req, flat, bank_fn);
                // Reuse one addr out-port and one data out-port broadcast
                // across all copies.
                let mut addr_port: Option<usize> = None;
                let mut data_port: Option<usize> = None;
                for copy in &copies {
                    let vmu = self.get_vmu(mem, copy, bank);
                    let addr_in = match addr_port {
                        None => {
                            let (_, p, i) = self.g.connect(
                                req,
                                vmu,
                                kind_vec,
                                self.chip.pmu.fifo_depth,
                                format!("waddr:{access}"),
                            );
                            let ins = match req_cond {
                                Some(c) => vec![local, c],
                                None => vec![local],
                            };
                            self.push_node(
                                req,
                                NodeOp::StreamOut {
                                    port: p,
                                    pred: req_cond.is_some(),
                                    empty_pred: true,
                                },
                                ins,
                            );
                            addr_port = Some(p);
                            i
                        }
                        Some(p) => {
                            let (_, i) = self.g.connect_bcast(
                                req,
                                p,
                                vmu,
                                kind_vec,
                                self.chip.pmu.fifo_depth,
                                format!("waddr:{access}"),
                            );
                            i
                        }
                    };
                    let data_in = match data_port {
                        None => {
                            let (_, p, i) = self.g.connect(
                                data_unit,
                                vmu,
                                kind_vec,
                                self.chip.pmu.fifo_depth,
                                format!("wdata:{access}"),
                            );
                            let ins = match data_cond {
                                Some(c) => vec![data_node, c],
                                None => vec![data_node],
                            };
                            self.push_node(
                                data_unit,
                                NodeOp::StreamOut {
                                    port: p,
                                    pred: data_cond.is_some(),
                                    empty_pred: true,
                                },
                                ins,
                            );
                            data_port = Some(p);
                            i
                        }
                        Some(p) => {
                            let (_, i) = self.g.connect_bcast(
                                data_unit,
                                p,
                                vmu,
                                kind_vec,
                                self.chip.pmu.fifo_depth,
                                format!("wdata:{access}"),
                            );
                            i
                        }
                    };
                    let ack_port = if self.token_srcs.contains(&access) && completion.is_none() {
                        let p =
                            self.ensure_out_port(vmu, StreamKind::Scalar, format!("ack:{access}"));
                        completion = Some((vmu, p));
                        Some(p)
                    } else {
                        None
                    };
                    self.vmu_build
                        .get_mut(&vmu)
                        .ok_or_else(|| CompileError::Internal("vmu build state missing".into()))?
                        .write_ports
                        .push(VmuWritePort { addr_in, data_in, ack_out: ack_port });
                }
            }
            BankRoute::Dynamic => {
                let copy = copies[0].clone();
                let banks = bank_fn.banks();
                let local = self.local_addr_nodes(req, flat, bank_fn);
                let bank = self.bank_nodes(req, flat, bank_fn);
                // addr dist
                let dist_a = self.g.add_unit(
                    format!("xdist-a:{access}"),
                    UnitKind::XbarDist(XbarDist {
                        bank_in: 0,
                        payload_in: 0,
                        bank_outs: Vec::new(),
                        ba_out: None,
                    }),
                );
                // data dist
                let dist_d = self.g.add_unit(
                    format!("xdist-d:{access}"),
                    UnitKind::XbarDist(XbarDist {
                        bank_in: 0,
                        payload_in: 0,
                        bank_outs: Vec::new(),
                        ba_out: None,
                    }),
                );
                let (_, ba_port, a_bank_in) = self.g.connect(
                    req,
                    dist_a,
                    kind_vec,
                    self.chip.pcu.fifo_depth,
                    format!("ba:{access}"),
                );
                let ba_ins = match req_cond {
                    Some(c) => vec![bank, c],
                    None => vec![bank],
                };
                self.push_node(
                    req,
                    NodeOp::StreamOut { port: ba_port, pred: req_cond.is_some(), empty_pred: true },
                    ba_ins,
                );
                let (_, d_bank_in) = self.g.connect_bcast(
                    req,
                    ba_port,
                    dist_d,
                    kind_vec,
                    self.chip.pcu.fifo_depth,
                    format!("ba:{access}->d"),
                );
                let (_, la_port, a_payload_in) = self.g.connect(
                    req,
                    dist_a,
                    kind_vec,
                    self.chip.pcu.fifo_depth,
                    format!("la:{access}"),
                );
                let la_ins = match req_cond {
                    Some(c) => vec![local, c],
                    None => vec![local],
                };
                self.push_node(
                    req,
                    NodeOp::StreamOut { port: la_port, pred: req_cond.is_some(), empty_pred: true },
                    la_ins,
                );
                let (_, data_port, d_payload_in) = self.g.connect(
                    data_unit,
                    dist_d,
                    kind_vec,
                    self.chip.pcu.fifo_depth,
                    format!("wdata:{access}"),
                );
                let d_ins = match data_cond {
                    Some(c) => vec![data_node, c],
                    None => vec![data_node],
                };
                self.push_node(
                    data_unit,
                    NodeOp::StreamOut {
                        port: data_port,
                        pred: data_cond.is_some(),
                        empty_pred: true,
                    },
                    d_ins,
                );
                // ack collector
                let need_ack = self.token_srcs.contains(&access);
                let coll = if need_ack {
                    Some(self.g.add_unit(
                        format!("xcoll-ack:{access}"),
                        UnitKind::XbarColl(XbarColl { ba_in: 0, bank_ins: Vec::new(), out: 0 }),
                    ))
                } else {
                    None
                };
                let mut coll_ba_in = 0usize;
                if let Some(c) = coll {
                    let (_, ba_fwd, cin) = self.g.connect(
                        dist_a,
                        c,
                        kind_vec,
                        self.chip.pcu.fifo_depth,
                        format!("bafwd:{access}"),
                    );
                    coll_ba_in = cin;
                    if let UnitKind::XbarDist(d) = &mut self.g.unit_mut(dist_a).kind {
                        d.ba_out = Some(ba_fwd);
                    }
                }
                let mut a_outs = Vec::new();
                let mut d_outs = Vec::new();
                let mut coll_ins = Vec::new();
                for b in 0..banks {
                    let vmu = self.get_vmu(mem, &copy, b);
                    let (_, ap, ai) = self.g.connect(
                        dist_a,
                        vmu,
                        kind_vec,
                        self.chip.pmu.fifo_depth,
                        format!("waddr:{access}#{b}"),
                    );
                    a_outs.push(ap);
                    let (_, dp, di) = self.g.connect(
                        dist_d,
                        vmu,
                        kind_vec,
                        self.chip.pmu.fifo_depth,
                        format!("wdata:{access}#{b}"),
                    );
                    d_outs.push(dp);
                    let ack = if let Some(c) = coll {
                        let p = self.ensure_out_port(
                            vmu,
                            StreamKind::Scalar,
                            format!("ack:{access}#{b}"),
                        );
                        let (_, cin) = self.g.connect_bcast(
                            vmu,
                            p,
                            c,
                            StreamKind::Scalar,
                            self.chip.pmu.fifo_depth,
                            format!("ack:{access}#{b}->coll"),
                        );
                        coll_ins.push(cin);
                        Some(p)
                    } else {
                        None
                    };
                    self.vmu_build
                        .get_mut(&vmu)
                        .ok_or_else(|| CompileError::Internal("vmu build state missing".into()))?
                        .write_ports
                        .push(VmuWritePort { addr_in: ai, data_in: di, ack_out: ack });
                }
                if let UnitKind::XbarDist(d) = &mut self.g.unit_mut(dist_a).kind {
                    d.bank_in = a_bank_in;
                    d.payload_in = a_payload_in;
                    d.bank_outs = a_outs;
                }
                if let UnitKind::XbarDist(d) = &mut self.g.unit_mut(dist_d).kind {
                    d.bank_in = d_bank_in;
                    d.payload_in = d_payload_in;
                    d.bank_outs = d_outs;
                }
                if let Some(c) = coll {
                    let out = self.ensure_out_port(c, StreamKind::Scalar, format!("ack:{access}"));
                    if let UnitKind::XbarColl(cc) = &mut self.g.unit_mut(c).kind {
                        cc.ba_in = coll_ba_in;
                        cc.bank_ins = coll_ins;
                        cc.out = out;
                    }
                    completion = Some((c, out));
                }
            }
        }
        Ok(completion.unwrap_or((req, usize::MAX)))
    }

    /// Copies of a privatized memory a writer must reach given its lane
    /// binding: one per unbound private loop lane.
    fn copies_for(
        &self,
        private_loops: &[(CtrlId, u32)],
        binding: &BTreeMap<CtrlId, u32>,
    ) -> Vec<LaneKey> {
        let mut combos: Vec<LaneKey> = vec![vec![]];
        for (c, f) in private_loops {
            let choices: Vec<u32> = match binding.get(c) {
                Some(u) => vec![*u],
                None => (0..*f).collect(),
            };
            let mut next = Vec::new();
            for base in &combos {
                for ch in &choices {
                    let mut b2 = base.clone();
                    b2.push(*ch);
                    next.push(b2);
                }
            }
            combos = next;
        }
        combos
    }

    // ---------------------------------------------------------- token layer

    fn make_response(
        &mut self,
        access: AccessId,
        _mem: MemId,
        lane: &LaneKey,
        binding: &BTreeMap<CtrlId, u32>,
        specs: &[LSpec],
        completion: (UnitId, usize),
    ) -> Result<(), CompileError> {
        if completion.1 == usize::MAX {
            return Err(CompileError::Internal(format!(
                "access {access} sources tokens but has no completion stream"
            )));
        }
        let resp = self.new_vcu(
            format!("resp:{access}@{lane:?}"),
            specs,
            binding,
            VcuRole::Response { access, lane: lane_tag(lane) },
        );
        let width = self.specs_width(specs);
        let (_, in_port) = self.g.connect_bcast(
            completion.0,
            completion.1,
            resp,
            if width > 1 { StreamKind::Vector(width) } else { StreamKind::Scalar },
            self.chip.pcu.fifo_depth,
            format!("done:{access}"),
        );
        self.note_gate_mask(resp, in_port, Some(access.hb));
        self.push_node(resp, NodeOp::StreamIn { port: in_port }, vec![]);
        self.response.insert((access, lane.clone()), resp);
        Ok(())
    }

    fn wire_tokens(&mut self) -> Result<(), CompileError> {
        let edges = self.plan.edges.clone();
        for e in &edges {
            let Some(src_lanes) = self.access_lanes.get(&e.src).cloned() else { continue };
            let Some(dst_lanes) = self.access_lanes.get(&e.dst).cloned() else { continue };
            let srcs: Vec<UnitId> = src_lanes
                .iter()
                .filter_map(|l| self.response.get(&(e.src, l.clone())).copied())
                .collect();
            let dsts: Vec<UnitId> = dst_lanes
                .iter()
                .filter_map(|l| self.request.get(&(e.dst, l.clone())).copied())
                .collect();
            if srcs.is_empty() || dsts.is_empty() {
                continue;
            }
            let depth = (e.init + 4).max(8);
            // Same-hyperblock exchanges are per-firing; lanes fire
            // independently (and possibly unequally — an over-parallelized
            // lane can be empty), so each lane pairs with itself instead
            // of aggregating through a sync barrier.
            if e.src.hb == e.dst.hb && src_lanes == dst_lanes {
                for (sl, l) in src_lanes.iter().enumerate() {
                    let (Some(&s), Some(&d)) = (
                        self.response.get(&(e.src, l.clone())),
                        self.request.get(&(e.dst, l.clone())),
                    ) else {
                        continue;
                    };
                    let _ = sl;
                    let (_, out_p, in_p) = self.g.connect(
                        s,
                        d,
                        StreamKind::Token { init: e.init },
                        depth,
                        format!("tok:{}->{}@lane", e.src, e.dst),
                    );
                    let slv = self.token_level(s, e.src_level, e.src.hb)?;
                    let dlv = self.token_level(d, e.dst_level, e.dst.hb)?;
                    self.vcu_mut(s).token_pushes.push(TokenRule { port: out_p, level: slv });
                    self.vcu_mut(d).token_pops.push(TokenRule { port: in_p, level: dlv });
                }
                continue;
            }
            if srcs.len() == 1 && dsts.len() == 1 {
                let (_, out_p, in_p) = self.g.connect(
                    srcs[0],
                    dsts[0],
                    StreamKind::Token { init: e.init },
                    depth,
                    format!("tok:{}->{}", e.src, e.dst),
                );
                let sl = self.token_level(srcs[0], e.src_level, e.src.hb)?;
                let dl = self.token_level(dsts[0], e.dst_level, e.dst.hb)?;
                self.vcu_mut(srcs[0]).token_pushes.push(TokenRule { port: out_p, level: sl });
                self.vcu_mut(dsts[0]).token_pops.push(TokenRule { port: in_p, level: dl });
            } else {
                let sync =
                    self.g.add_unit(format!("sync:{}->{}", e.src, e.dst), UnitKind::Sync(SyncUnit));
                for s in &srcs {
                    let (_, out_p, _) = self.g.connect(
                        *s,
                        sync,
                        StreamKind::Token { init: 0 },
                        depth,
                        format!("tok:{}->sync", e.src),
                    );
                    let sl = self.token_level(*s, e.src_level, e.src.hb)?;
                    self.vcu_mut(*s).token_pushes.push(TokenRule { port: out_p, level: sl });
                }
                for d in &dsts {
                    let (_, _, in_p) = self.g.connect(
                        sync,
                        *d,
                        StreamKind::Token { init: e.init },
                        depth,
                        format!("tok:sync->{}", e.dst),
                    );
                    let dl = self.token_level(*d, e.dst_level, e.dst.hb)?;
                    self.vcu_mut(*d).token_pops.push(TokenRule { port: in_p, level: dl });
                }
            }
        }
        Ok(())
    }

    /// Map a token-exchange controller to a level index within a unit:
    /// the unit's own hyperblock means per-firing (sentinel = levels.len()).
    ///
    /// Combine-context units (cross-lane reduction stores) have chains
    /// ending *above* the reduction loop; an exchange controller that lies
    /// below the whole chain maps to per-firing — the combine fires
    /// exactly once per activation of that controller's parent context.
    fn token_level(
        &mut self,
        unit: UnitId,
        ctrl: CtrlId,
        hb: CtrlId,
    ) -> Result<usize, CompileError> {
        let chain: Vec<CtrlId> = self.level_specs_of_unit(unit);
        if ctrl == hb {
            return Ok(chain.len());
        }
        if let Some(pos) = chain.iter().position(|c| *c == ctrl) {
            return Ok(pos);
        }
        if chain.iter().all(|c| self.p.is_ancestor(*c, ctrl)) {
            return Ok(chain.len());
        }
        Err(CompileError::Unpartitionable(format!(
            "token level {ctrl} not present in unit level chain"
        )))
    }

    // -------------------------------------------------------------- helpers

    /// Controller chain of a unit's instantiated levels.
    fn level_specs_of_unit(&mut self, unit: UnitId) -> Vec<CtrlId> {
        self.vcu_mut(unit).levels.iter().map(|l| l.ctrl()).collect()
    }

    fn level_of(&mut self, unit: UnitId, ctrl: CtrlId) -> Result<usize, CompileError> {
        let v = self.vcu_mut(unit);
        v.levels
            .iter()
            .position(|l| l.ctrl() == ctrl)
            .ok_or_else(|| CompileError::Internal(format!("controller {ctrl} not in level chain")))
    }

    /// Flatten a multi-dimensional address into a single flat word address
    /// inside `unit`.
    fn flatten_addr(
        &mut self,
        unit: UnitId,
        mem: MemId,
        addr_exprs: &[ExprId],
        nodes: &HashMap<usize, usize>,
    ) -> Result<usize, CompileError> {
        let strides = self.p.mem(mem).strides();
        let mut acc: Option<usize> = None;
        for (a, s) in addr_exprs.iter().zip(strides) {
            let an = nodes[&a.index()];
            let term = if s == 1 {
                an
            } else {
                let c = self.push_node(unit, NodeOp::Const(Elem::I64(s as i64)), vec![]);
                self.push_node(unit, NodeOp::Bin(BinOp::Mul), vec![an, c])
            };
            acc = Some(match acc {
                None => term,
                Some(p) => self.push_node(unit, NodeOp::Bin(BinOp::Add), vec![p, term]),
            });
        }
        acc.ok_or_else(|| CompileError::Internal("empty address".into()))
    }

    /// Create a fresh output port on a unit with no stream yet; streams are
    /// attached by consumers via `connect_bcast`.
    fn ensure_out_port(&mut self, unit: UnitId, _kind: StreamKind, _label: String) -> usize {
        self.g.unit_mut(unit).outputs.push(crate::vudfg::OutPort { streams: Vec::new() });
        self.g.unit(unit).outputs.len() - 1
    }

    /// Get or create the broadcast out-port of a fifo writer's value.
    fn fifo_out_port(
        &mut self,
        mem: MemId,
        wu: UnitId,
        vnode: usize,
        cnode: Option<usize>,
    ) -> usize {
        if let Some(port) = self.fifo_ports.get(&mem) {
            return *port;
        }
        let port = self.ensure_out_port(wu, StreamKind::Scalar, format!("fifo:{mem}"));
        let ins = match cnode {
            Some(c) => vec![vnode, c],
            None => vec![vnode],
        };
        self.push_node(
            wu,
            NodeOp::StreamOut { port, pred: cnode.is_some(), empty_pred: false },
            ins,
        );
        self.fifo_ports.insert(mem, port);
        port
    }

    fn set_epoch_emit(&mut self, req: UnitId, mem: MemId, hb: CtrlId) -> Result<(), CompileError> {
        if let Some((epoch_loop, _)) = self.plan.multibuffer_of(mem) {
            let lvl_ctrl = self.p.child_toward(epoch_loop, hb);
            if lvl_ctrl == hb {
                // per-firing epochs are meaningless; skip
                return Ok(());
            }
            let li = self.level_of(req, lvl_ctrl)?;
            self.vcu_mut(req).epoch_emit = Some(li);
        }
        Ok(())
    }

    // -------------------------------------------------------- control wires

    fn resolve_pendings(&mut self) -> Result<(), CompileError> {
        let pendings = std::mem::take(&mut self.pendings);
        for pend in pendings {
            let writer = *self.ctrl_writers.get(&pend.mem).ok_or_else(|| {
                CompileError::Internal(format!("control reg {} has no writer", pend.mem))
            })?;
            let wlane = self.project_lane(writer.hb, &pend.binding).map_err(|_| {
                CompileError::Unpartitionable(format!(
                    "control register {} written under unrolled loops outside the consumer scope",
                    pend.mem
                ))
            })?;
            // Rate check: the writer must fire exactly once per
            // activation of the consuming level, i.e. the writer's level
            // chain must equal the consumer's chain *above* the level
            // (conditions of while-levels include the level itself, since
            // they are consumed once per iteration).
            {
                // Gate levels don't multiply activation rates: a branch
                // activates exactly once per parent iteration (taken or
                // vacuously), so only counters and do-whiles count.
                let iterative = |c: CtrlId| self.p.ctrl(c).is_iterative();
                let consumer_specs: Vec<CtrlId> =
                    self.level_specs_of_unit(pend.unit).into_iter().collect();
                let writer_specs: Vec<CtrlId> = self
                    .level_specs(writer.hb)
                    .iter()
                    .map(|s| s.ctrl())
                    .filter(|c| iterative(*c))
                    .collect();
                let cut = match pend.role {
                    PendRole::WhlCond => pend.level_idx + 1,
                    _ => pend.level_idx,
                };
                let consumer_prefix: Vec<CtrlId> = consumer_specs[..cut.min(consumer_specs.len())]
                    .iter()
                    .copied()
                    .filter(|c| iterative(*c))
                    .collect();
                if writer_specs != consumer_prefix {
                    return Err(CompileError::Unpartitionable(format!(
                        "control register {} is written at a different rate than its consumer level",
                        pend.mem
                    )));
                }
            }
            let (wunit, vnode, port) =
                *self.ctrl_value.get(&(pend.mem, wlane.clone())).ok_or_else(|| {
                    CompileError::Internal(format!(
                        "control value for {} lane {wlane:?} not recorded",
                        pend.mem
                    ))
                })?;
            // Ensure the writer has a broadcast out-port for this value.
            let out_port = match port {
                Some(p) => p,
                None => {
                    let p = self.ensure_out_port(
                        wunit,
                        StreamKind::Scalar,
                        format!("ctrl:{}", pend.mem),
                    );
                    self.push_node(
                        wunit,
                        NodeOp::StreamOut { port: p, pred: false, empty_pred: false },
                        vec![vnode],
                    );
                    self.ctrl_value.insert((pend.mem, wlane.clone()), (wunit, vnode, Some(p)));
                    p
                }
            };
            let (_, in_port) = self.g.connect_bcast(
                wunit,
                out_port,
                pend.unit,
                StreamKind::Scalar,
                8,
                format!("ctrl:{}", pend.mem),
            );
            self.note_gate_mask(pend.unit, in_port, Some(writer.hb));
            let v = self.vcu_mut(pend.unit);
            match (&mut v.levels[pend.level_idx], pend.role) {
                (Level::Counter { min, .. }, PendRole::CtrMin) => *min = CBound::Port(in_port),
                (Level::Counter { max, .. }, PendRole::CtrMax) => *max = CBound::Port(in_port),
                (Level::Gate { cond_in, .. }, PendRole::GateCond) => *cond_in = in_port,
                (Level::While { cond_in, .. }, PendRole::WhlCond) => *cond_in = in_port,
                _ => {
                    return Err(CompileError::Internal(
                        "pending control wire role/level mismatch".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------- finalize

    fn finalize_vmus(&mut self) {
        let keys: Vec<((MemId, LaneKey, u32), UnitId)> =
            self.vmu.iter().map(|(k, v)| (k.clone(), *v)).collect();
        for ((mem, _copy, bank), unit) in keys {
            let decl = self.p.mem(mem);
            let (bank_fn, _, _) = self.mem_plan(mem);
            let words = bank_fn.bank_words(decl.size());
            let full = decl.init.materialize(decl.size(), decl.dtype);
            let mut init = vec![decl.dtype.zero(); words];
            for (flat, v) in full.iter().enumerate() {
                if bank_fn.bank_of(flat as i64) == bank {
                    let local = bank_fn.local_of(flat as i64) as usize;
                    if local < words {
                        init[local] = *v;
                    }
                }
            }
            let multibuffer = self.plan.multibuffer_of(mem).map(|(_, d)| d).unwrap_or(1);
            let build = self.vmu_build.remove(&unit).unwrap_or_default();
            if let UnitKind::Vmu(v) = &mut self.g.unit_mut(unit).kind {
                v.bank = (bank, bank_fn.banks());
                v.words = words;
                v.init = init;
                v.multibuffer = multibuffer;
                v.write_ports = build.write_ports;
                v.read_ports = build.read_ports;
            }
        }
    }
}

/// Backward closure of a set of root expressions within a hyperblock.
fn closure_of(h: &sara_ir::Hyperblock, roots: &[ExprId]) -> HashSet<usize> {
    let mut needed: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = roots.iter().map(|r| r.index()).collect();
    while let Some(i) = stack.pop() {
        if !needed.insert(i) {
            continue;
        }
        if let Some(e) = h.get(ExprId(i as u32)) {
            for op in e.operands() {
                stack.push(op.index());
            }
        }
    }
    needed
}

/// Compact numeric tag of a lane key (for labels/roles).
fn lane_tag(lane: &LaneKey) -> u32 {
    let mut tag = 0u32;
    for u in lane {
        tag = tag.wrapping_mul(64).wrapping_add(*u);
    }
    tag
}
