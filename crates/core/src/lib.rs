//! # sara-core
//!
//! The SARA compiler (Zhang et al., *SARA: Scaling a Reconfigurable
//! Dataflow Accelerator*, ISCA 2021), reproduced in Rust.
//!
//! SARA converts a nested control-flow program ([`sara_ir::Program`]) into a
//! **virtual unit dataflow graph** ([`vudfg::Vudfg`]) that spatially
//! pipelines the entire control-flow graph across the distributed units of
//! a Plasticine RDA:
//!
//! 1. [`lower`] — imperative → dataflow lowering (§III-A): a virtual
//!    compute unit per hyperblock (per unrolled lane), a virtual memory
//!    unit per on-chip data structure (per bank), request/response
//!    splitting of every memory access, and value streams for dynamic
//!    bounds and branch conditions.
//! 2. [`cmmc`] — compiler-managed memory consistency (§III-A1/A3): a
//!    per-memory accessor dependency graph, transitive reduction and
//!    loop-carried-dependency pruning, then token/credit streams that
//!    enforce exactly the reduced order.
//! 3. [`mempart`] — memory partitioning (§III-B2): banked VMUs with either
//!    statically resolved point-to-point wiring or hierarchical
//!    merge/distribute trees.
//! 4. [`opt`] — resource/performance optimizations (§III-C): `msr`,
//!    `rtelm`, `retime`, `retime-m`, `xbar-elm`.
//! 5. [`partition`] — compute partitioning (§III-B1) with traversal-based
//!    and solver-based algorithms; [`merge`] — global merging.
//! 6. [`assign`] — virtual-to-physical unit-type assignment and resource
//!    reporting.
//!
//! The one-call driver is [`compile::compile`]:
//!
//! ```
//! use sara_core::compile::{compile, CompilerOptions};
//! use plasticine_arch::ChipSpec;
//! # use sara_ir::{Program, LoopSpec, DType, MemInit, BinOp};
//! # fn build() -> Program {
//! #   let mut p = Program::new("demo");
//! #   let root = p.root();
//! #   let a = p.dram("a", &[16], DType::F64, MemInit::Zero);
//! #   let l = p.add_loop(root, "i", LoopSpec::new(0, 16, 1)).unwrap();
//! #   let hb = p.add_leaf(l, "b").unwrap();
//! #   let i = p.idx(hb, l).unwrap();
//! #   let x = p.load(hb, a, &[i]).unwrap();
//! #   let y = p.bin(hb, BinOp::Add, x, x).unwrap();
//! #   p.store(hb, a, &[i], y).unwrap();
//! #   p
//! # }
//! # fn main() -> Result<(), sara_core::CompileError> {
//! let program = build();
//! let chip = ChipSpec::tiny_4x4();
//! let compiled = compile(&program, &chip, &CompilerOptions::default())?;
//! assert!(compiled.report.pcus >= 1);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod assign;
pub mod cmmc;
pub mod compile;
pub mod depgraph;
pub mod error;
pub mod lower;
pub mod mempart;
pub mod merge;
pub mod opt;
pub mod opt_ir;
pub mod partition;
pub mod profile;
pub mod report;
pub mod robust;
pub mod shard;
pub mod traffic;
pub mod vudfg;
pub mod vudfg_validate;

pub use compile::{compile, Compiled, CompilerOptions};
pub use error::CompileError;
pub use profile::SimProfile;
pub use report::ResourceReport;
pub use vudfg::Vudfg;
