//! Memory partitioning (paper §III-B2): sharding logical tensors across
//! distributed virtual memory units to scale on-chip bandwidth with
//! parallelization (and to satisfy PMU capacity).
//!
//! Two banking functions are supported: **cyclic** (`bank = flat % B`) and
//! **block-cyclic** (`bank = (flat / block) % B`). For every access the
//! planner decides whether the bank index is *statically resolvable* per
//! unrolled lane — in which case the lowering wires the request unit
//! point-to-point to its bank, eliminating the crossbar (the paper's
//! `retime-m`/`xbar` optimization for statically resolved bank addresses) —
//! or must be routed at run time through distribute/collect crossbar units
//! (Fig 8b/c).

use crate::error::CompileError;
use plasticine_arch::ChipSpec;
use sara_ir::affine::{access_affine, Affine};
use sara_ir::{AccessId, Bound, CtrlId, CtrlKind, MemId, MemKind, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Spatial mapping factors of one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnrollInfo {
    /// Spatial duplication factor (virtual units instantiated per lane).
    pub unroll: u32,
    /// SIMD vectorization width (innermost loops only).
    pub vec: u32,
}

impl UnrollInfo {
    /// No parallelization.
    pub const ONE: UnrollInfo = UnrollInfo { unroll: 1, vec: 1 };
}

/// Compute unroll/vectorization factors for every loop: an innermost loop
/// (no iterative descendants) with `par = P` vectorizes to
/// `min(P, lanes)` SIMD lanes and spatially unrolls by the remainder;
/// outer loops spatially unroll by `P` (paper §II-A(b)).
pub fn unroll_info(p: &Program, lanes: u32) -> HashMap<CtrlId, UnrollInfo> {
    let mut out = HashMap::new();
    for (i, c) in p.ctrls.iter().enumerate() {
        let id = CtrlId(i as u32);
        let CtrlKind::Loop(spec) = &c.kind else { continue };
        let innermost = !c.children.iter().any(|ch| subtree_has_iterative(p, *ch));
        let info = if innermost {
            let vec = spec.par.min(lanes).max(1);
            UnrollInfo { vec, unroll: spec.par.div_ceil(vec).max(1) }
        } else {
            UnrollInfo { vec: 1, unroll: spec.par.max(1) }
        };
        out.insert(id, info);
    }
    out
}

fn subtree_has_iterative(p: &Program, c: CtrlId) -> bool {
    if p.ctrl(c).is_iterative() {
        return true;
    }
    p.ctrl(c).children.iter().any(|ch| subtree_has_iterative(p, *ch))
}

/// Banking function of one logical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankFn {
    /// Single bank (no partitioning).
    None,
    /// `bank = flat % banks`, `local = flat / banks`.
    Cyclic { banks: u32 },
    /// `bank = (flat / block) % banks`,
    /// `local = (flat / block / banks) * block + flat % block`.
    Blocked { banks: u32, block: u64 },
}

impl BankFn {
    /// Number of banks.
    pub fn banks(&self) -> u32 {
        match self {
            BankFn::None => 1,
            BankFn::Cyclic { banks } | BankFn::Blocked { banks, .. } => *banks,
        }
    }

    /// Bank index of a flat address.
    pub fn bank_of(&self, flat: i64) -> u32 {
        match self {
            BankFn::None => 0,
            BankFn::Cyclic { banks } => (flat.rem_euclid(*banks as i64)) as u32,
            BankFn::Blocked { banks, block } => {
                ((flat / *block as i64).rem_euclid(*banks as i64)) as u32
            }
        }
    }

    /// Bank-local address of a flat address.
    pub fn local_of(&self, flat: i64) -> i64 {
        match self {
            BankFn::None => flat,
            BankFn::Cyclic { banks } => flat / *banks as i64,
            BankFn::Blocked { banks, block } => {
                let b = *block as i64;
                (flat / b / *banks as i64) * b + flat % b
            }
        }
    }

    /// Words one bank must hold for a memory of `words` total.
    pub fn bank_words(&self, words: usize) -> usize {
        match self {
            BankFn::None => words,
            BankFn::Cyclic { banks } => words.div_ceil(*banks as usize),
            BankFn::Blocked { banks, block } => {
                let groups = (words as u64).div_ceil(*block);
                let per_bank_groups = groups.div_ceil(*banks as u64);
                (per_bank_groups * *block) as usize
            }
        }
    }
}

/// Routing decision for one access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankRoute {
    /// The bank is a per-lane constant; the lowering wires the request
    /// stream point-to-point (no crossbar).
    Static,
    /// The bank varies at run time; requests go through distribute/collect
    /// crossbar units.
    Dynamic,
}

/// Partitioning plan of one memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemPlan {
    pub mem: MemId,
    /// Unrolled loops over which the memory is privatized (each lane
    /// combination gets its own copy), outermost first: `(loop, factor)`.
    pub private_loops: Vec<(CtrlId, u32)>,
    /// Banking of the shared dimension.
    pub bank_fn: BankFn,
    /// Per-access routing.
    pub routes: HashMap<AccessId, BankRoute>,
}

impl MemPlan {
    /// Number of private copies (product of privatization factors).
    pub fn copies(&self) -> u32 {
        self.private_loops.iter().map(|(_, f)| *f).product::<u32>().max(1)
    }
}

/// The whole-program banking plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BankingPlan {
    pub mems: HashMap<MemId, MemPlan>,
}

impl BankingPlan {
    /// Plan for a memory (every on-chip memory gets one).
    pub fn of(&self, mem: MemId) -> Option<&MemPlan> {
        self.mems.get(&mem)
    }
}

/// Compute the banking plan. With `enable = false` (the vanilla-Plasticine
/// baseline), no banking or privatization is performed and every memory
/// must fit a single PMU — the planner then reports capacity errors.
pub fn plan_banking(
    p: &Program,
    chip: &ChipSpec,
    unroll: &HashMap<CtrlId, UnrollInfo>,
    enable: bool,
) -> Result<BankingPlan, CompileError> {
    let mut plan = BankingPlan::default();
    let cap_words = chip.pmu.capacity_words() as usize;
    for (mi, decl) in p.mems.iter().enumerate() {
        let mem = MemId(mi as u32);
        if decl.kind == MemKind::Dram {
            continue;
        }
        let accs = p.accesses_of(mem);
        if accs.is_empty() {
            continue;
        }
        if !enable {
            if decl.size() > cap_words {
                return Err(CompileError::MemTooLarge { mem, words: decl.size() });
            }
            let routes = accs.iter().map(|a| (a.id, BankRoute::Static)).collect();
            plan.mems.insert(
                mem,
                MemPlan { mem, private_loops: Vec::new(), bank_fn: BankFn::None, routes },
            );
            continue;
        }

        // ---- privatization scope ----
        let lca = accs
            .iter()
            .map(|a| a.id.hb)
            .reduce(|a, b| p.lca(a, b))
            .ok_or_else(|| CompileError::Internal(format!("mem {mem} has no accesses")))?;
        let private_loops: Vec<(CtrlId, u32)> = {
            let mut v: Vec<(CtrlId, u32)> = p
                .ancestors(lca)
                .into_iter()
                .filter_map(|c| {
                    let u = unroll.get(&c).copied().unwrap_or(UnrollInfo::ONE);
                    (u.unroll > 1).then_some((c, u.unroll))
                })
                .collect();
            v.reverse(); // outermost first
            v
        };

        // ---- bank count ----
        // Bandwidth-driven: the max spatial access parallelism below the
        // memory's scope across accessors.
        let bw_banks = accs
            .iter()
            .map(|a| {
                p.ancestors(a.id.hb)
                    .into_iter()
                    .take_while(|c| *c != lca)
                    .map(|c| unroll.get(&c).map(|u| u.unroll).unwrap_or(1))
                    .product::<u32>()
            })
            .max()
            .unwrap_or(1);
        let cap_banks = decl.size().div_ceil(cap_words) as u32;
        let banks = bw_banks.max(cap_banks).max(1);

        if banks == 1 {
            let routes = accs.iter().map(|a| (a.id, BankRoute::Static)).collect();
            plan.mems.insert(mem, MemPlan { mem, private_loops, bank_fn: BankFn::None, routes });
            continue;
        }

        // ---- banking-function selection ----
        // Try cyclic first, then block-cyclic with candidate block sizes
        // from the affine coefficients; pick the first under which every
        // accessor statically resolves. Otherwise keep cyclic with
        // dynamic (crossbar) routing for unresolved accessors.
        let affines: Vec<Option<Affine>> =
            accs.iter().map(|a| access_affine(p, a.id.hb, a.id.expr)).collect();
        let mut candidates: Vec<BankFn> = vec![BankFn::Cyclic { banks }];
        let mut blocks: Vec<u64> = affines
            .iter()
            .flatten()
            .flat_map(|f| f.terms.values().map(|c| c.unsigned_abs()))
            .filter(|c| *c > 1)
            .collect();
        blocks.push((decl.size() as u64).div_ceil(banks as u64));
        blocks.sort_unstable();
        blocks.dedup();
        for b in blocks {
            candidates.push(BankFn::Blocked { banks, block: b });
        }

        let mut best: Option<(BankFn, HashMap<AccessId, BankRoute>, usize)> = None;
        for cand in candidates {
            let mut routes = HashMap::new();
            let mut static_count = 0usize;
            for (a, f) in accs.iter().zip(&affines) {
                let is_static = f
                    .as_ref()
                    .map(|f| bank_is_static(p, unroll, a.id.hb, f, cand))
                    .unwrap_or(false);
                routes.insert(a.id, if is_static { BankRoute::Static } else { BankRoute::Dynamic });
                static_count += is_static as usize;
            }
            let better = match &best {
                None => true,
                Some((_, _, c)) => static_count > *c,
            };
            if better {
                let all = static_count == accs.len();
                best = Some((cand, routes, static_count));
                if all {
                    break;
                }
            }
        }
        let (bank_fn, routes, _) = best
            .ok_or_else(|| CompileError::Internal(format!("no banking candidate for mem {mem}")))?;
        plan.mems.insert(mem, MemPlan { mem, private_loops, bank_fn, routes });
    }
    Ok(plan)
}

/// Iterations a spatially unrolled loop assigns to one lane under
/// **blocked** distribution: `ceil(trip / unroll)`. Loops with dynamic
/// bounds (or negative steps) fall back to cyclic distribution and return
/// `None`.
pub fn chunk_elems(p: &Program, unroll: &HashMap<CtrlId, UnrollInfo>, v: CtrlId) -> Option<i64> {
    let spec = p.ctrl(v).loop_spec()?;
    if spec.step <= 0 {
        return None;
    }
    let trip = spec.trip_count()? as i64;
    let u = unroll.get(&v).map(|x| x.unroll).unwrap_or(1) as i64;
    Some((trip + u - 1) / u)
}

/// Exact static-bank check for an affine flat address under a banking
/// function and **blocked** lane distribution (static-bound loops; dynamic
/// bounds force dynamic routing).
///
/// The lane-0 flat-address interval is computed by interval arithmetic
/// over each variable's per-lane local range; other lanes shift the
/// interval by `c_v · step_v · chunk_v` per lane step. The bank is a
/// per-lane constant iff:
///
/// * **block-cyclic**: every lane shift is a multiple of `block` (lanes
///   land on block boundaries) and the per-lane interval fits inside one
///   block;
/// * **cyclic**: every within-lane increment (`c·step` per index step) is
///   ≡ 0 (mod banks).
fn bank_is_static(
    p: &Program,
    unroll: &HashMap<CtrlId, UnrollInfo>,
    hb: CtrlId,
    f: &Affine,
    bank_fn: BankFn,
) -> bool {
    match bank_fn {
        BankFn::None => true,
        BankFn::Cyclic { banks } => {
            let b = banks as i64;
            f.terms.iter().all(|(v, c)| {
                let Some((step, _, _)) = loop_static_spec(p, *v) else {
                    return c % b == 0;
                };
                (c * step) % b == 0 && in_scope(p, hb, *v)
            })
        }
        BankFn::Blocked { banks: _, block } => {
            let blk = block as i64;
            let mut extent = 0i64; // inclusive width of the lane-0 interval
            let mut lane0_lo = f.offset;
            for (v, c) in &f.terms {
                let Some((step, min, _max)) = loop_static_spec(p, *v) else {
                    return false;
                };
                if !in_scope(p, hb, *v) {
                    return false;
                }
                let u = unroll.get(v).copied().unwrap_or(UnrollInfo::ONE);
                let local_trip = if u.unroll > 1 {
                    match chunk_elems(p, unroll, *v) {
                        Some(ch) => ch,
                        None => return false,
                    }
                } else {
                    match p.ctrl(*v).loop_spec().and_then(|s| s.trip_count()) {
                        Some(t) => t as i64,
                        None => return false,
                    }
                };
                if u.unroll > 1 {
                    // lane shift must move whole blocks
                    let Some(ch) = chunk_elems(p, unroll, *v) else { return false };
                    let shift = c * step * ch;
                    if shift % blk != 0 {
                        return false;
                    }
                }
                let span = (c * step).abs() * (local_trip - 1).max(0);
                extent += span;
                let v_lo = min;
                let v_hi = min + step * (local_trip - 1).max(0);
                lane0_lo += (c * v_lo).min(c * v_hi);
            }
            lane0_lo >= 0 && (lane0_lo % blk) + extent < blk
        }
    }
}

/// `(step, min_value, max_value_inclusive)` of a loop with constant bounds.
fn loop_static_spec(p: &Program, c: CtrlId) -> Option<(i64, i64, i64)> {
    let spec = p.ctrl(c).loop_spec()?;
    let (min, max) = (spec.min, spec.max);
    let (Bound::Const(min), Bound::Const(_max)) = (min, max) else { return None };
    if spec.step == 0 {
        return None;
    }
    let trip = spec.trip_count()?;
    if trip == 0 {
        return Some((spec.step, min, min));
    }
    let last = min + (trip as i64 - 1) * spec.step;
    Some((spec.step, min.min(last), min.max(last)))
}

fn in_scope(p: &Program, hb: CtrlId, v: CtrlId) -> bool {
    p.is_ancestor(v, hb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_arch::ChipSpec;
    use sara_ir::{BinOp, DType, LoopSpec};

    #[test]
    fn bank_fn_roundtrip_cyclic() {
        let f = BankFn::Cyclic { banks: 4 };
        for flat in 0..64 {
            let (b, l) = (f.bank_of(flat), f.local_of(flat));
            assert_eq!(l * 4 + b as i64, flat);
        }
        assert_eq!(f.bank_words(64), 16);
        assert_eq!(f.bank_words(65), 17);
    }

    #[test]
    fn bank_fn_roundtrip_blocked() {
        let f = BankFn::Blocked { banks: 4, block: 8 };
        for flat in 0..256 {
            let b = f.bank_of(flat) as i64;
            let l = f.local_of(flat);
            // reconstruct: group index g = l / 8 within the bank
            let g = l / 8 * 4 + b;
            let rec = g * 8 + l % 8;
            assert_eq!(rec, flat, "flat {flat}");
        }
        assert_eq!(f.bank_words(256), 64);
    }

    #[test]
    fn unroll_info_vectorizes_innermost_only() {
        let mut p = Program::new("t");
        let root = p.root();
        let outer = p.add_loop(root, "o", LoopSpec::new(0, 64, 1).par(4)).unwrap();
        let inner = p.add_loop(outer, "i", LoopSpec::new(0, 64, 1).par(32)).unwrap();
        p.add_leaf(inner, "b").unwrap();
        let u = unroll_info(&p, 16);
        assert_eq!(u[&outer], UnrollInfo { unroll: 4, vec: 1 });
        // par 32 on a 16-lane machine: vectorize 16, unroll 2
        assert_eq!(u[&inner], UnrollInfo { unroll: 2, vec: 16 });
    }

    /// tile[i][j], i-loop unrolled by 2: block-cyclic banking over the row
    /// dimension statically resolves both accessors.
    #[test]
    fn blocked_banking_statically_resolves_row_sharding() {
        let mut p = Program::new("t");
        let root = p.root();
        let m = p.sram("tile", &[4, 8], DType::F64);
        // writer: for i in 0..4 par 2 { for j in 0..8 { tile[i][j] = 1 } }
        let wi = p.add_loop(root, "wi", LoopSpec::new(0, 4, 1).par(2)).unwrap();
        let wj = p.add_loop(wi, "wj", LoopSpec::new(0, 8, 1)).unwrap();
        let whb = p.add_leaf(wj, "w").unwrap();
        let i1 = p.idx(whb, wi).unwrap();
        let j1 = p.idx(whb, wj).unwrap();
        let v = p.c_f64(whb, 1.0).unwrap();
        p.store(whb, m, &[i1, j1], v).unwrap();
        // reader: same shape
        let ri = p.add_loop(root, "ri", LoopSpec::new(0, 4, 1).par(2)).unwrap();
        let rj = p.add_loop(ri, "rj", LoopSpec::new(0, 8, 1)).unwrap();
        let rhb = p.add_leaf(rj, "r").unwrap();
        let i2 = p.idx(rhb, ri).unwrap();
        let j2 = p.idx(rhb, rj).unwrap();
        p.load(rhb, m, &[i2, j2]).unwrap();
        p.validate().unwrap();

        let chip = ChipSpec::tiny_4x4();
        let unroll = unroll_info(&p, chip.pcu.lanes);
        let plan = plan_banking(&p, &chip, &unroll, true).unwrap();
        let mp = plan.of(m).unwrap();
        assert_eq!(mp.bank_fn.banks(), 2);
        assert!(mp.routes.values().all(|r| *r == BankRoute::Static), "{:?}", mp.bank_fn);
        // Blocked lane distribution: lane 0 owns rows 0-1, lane 1 owns
        // rows 2-3; banks split accordingly.
        assert_eq!(mp.bank_fn.bank_of(0), mp.bank_fn.bank_of(8)); // rows 0,1
        assert_ne!(mp.bank_fn.bank_of(0), mp.bank_fn.bank_of(16)); // row 2
    }

    /// A data-dependent (gather) access cannot be statically resolved.
    #[test]
    fn gather_routes_dynamically() {
        let mut p = Program::new("t");
        let root = p.root();
        let idxm = p.sram("idx", &[16], DType::I64);
        let m = p.sram("data", &[16], DType::F64);
        // writer with par to force banking
        let wl = p.add_loop(root, "w", LoopSpec::new(0, 16, 1)).unwrap();
        // parallelize an *outer* wrapper so data gets banked
        let whb = p.add_leaf(wl, "wb").unwrap();
        let i = p.idx(whb, wl).unwrap();
        let v = p.c_f64(whb, 1.0).unwrap();
        p.store(whb, m, &[i], v).unwrap();
        p.store(whb, idxm, &[i], i).unwrap();
        let rl = p.add_loop(root, "r", LoopSpec::new(0, 16, 1).par(2)).unwrap();
        let rin = p.add_loop(rl, "ri", LoopSpec::new(0, 1, 1)).unwrap();
        let rhb = p.add_leaf(rin, "rb").unwrap();
        let j = p.idx(rhb, rl).unwrap();
        let ix = p.load(rhb, idxm, &[j]).unwrap();
        p.load(rhb, m, &[ix]).unwrap();
        p.validate().unwrap();

        let chip = ChipSpec::tiny_4x4();
        let unroll = unroll_info(&p, chip.pcu.lanes);
        let plan = plan_banking(&p, &chip, &unroll, true).unwrap();
        let mp = plan.of(m).unwrap();
        assert!(mp.bank_fn.banks() >= 2);
        // the gather read is dynamic
        let gather = p.accesses_of(m).into_iter().find(|a| !a.is_write && a.id.hb == rhb).unwrap();
        assert_eq!(mp.routes[&gather.id], BankRoute::Dynamic);
    }

    #[test]
    fn capacity_forces_banking() {
        let mut p = Program::new("t");
        let root = p.root();
        let words = ChipSpec::tiny_4x4().pmu.capacity_words() as usize;
        let m = p.sram("big", &[words * 3], DType::F64);
        let l = p.add_loop(root, "l", LoopSpec::new(0, 64, 1)).unwrap();
        let hb = p.add_leaf(l, "b").unwrap();
        let i = p.idx(hb, l).unwrap();
        let v = p.c_f64(hb, 0.5).unwrap();
        p.store(hb, m, &[i], v).unwrap();
        p.validate().unwrap();
        let chip = ChipSpec::tiny_4x4();
        let unroll = unroll_info(&p, chip.pcu.lanes);
        let plan = plan_banking(&p, &chip, &unroll, true).unwrap();
        assert!(plan.of(m).unwrap().bank_fn.banks() >= 3);
        // with banking disabled (PC baseline) the memory is too large
        assert!(matches!(
            plan_banking(&p, &chip, &unroll, false),
            Err(CompileError::MemTooLarge { .. })
        ));
    }

    #[test]
    fn privatization_scope_detected() {
        let mut p = Program::new("t");
        let root = p.root();
        let m = p.sram("buf", &[8], DType::F64);
        let o = p.add_loop(root, "o", LoopSpec::new(0, 8, 1).par(2)).unwrap();
        let a = p.add_loop(o, "a", LoopSpec::new(0, 8, 1)).unwrap();
        let ahb = p.add_leaf(a, "w").unwrap();
        let ai = p.idx(ahb, a).unwrap();
        let av = p.c_f64(ahb, 1.0).unwrap();
        p.store(ahb, m, &[ai], av).unwrap();
        let b = p.add_loop(o, "b", LoopSpec::new(0, 8, 1)).unwrap();
        let bhb = p.add_leaf(b, "r").unwrap();
        let bi = p.idx(bhb, b).unwrap();
        let x = p.load(bhb, m, &[bi]).unwrap();
        let _ = p.bin(bhb, BinOp::Add, x, x).unwrap();
        p.validate().unwrap();
        let chip = ChipSpec::tiny_4x4();
        let unroll = unroll_info(&p, chip.pcu.lanes);
        let plan = plan_banking(&p, &chip, &unroll, true).unwrap();
        let mp = plan.of(m).unwrap();
        // both accessors live under loop o, which is unrolled by 2
        assert_eq!(mp.private_loops, vec![(o, 2)]);
        assert_eq!(mp.copies(), 2);
        assert_eq!(mp.bank_fn.banks(), 1);
    }
}
