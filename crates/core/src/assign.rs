//! Virtual-to-physical assignment: internal compute partitioning, global
//! merging, retiming-buffer insertion and resource accounting (paper
//! §III-B and the retiming part of §III-C).

use crate::error::CompileError;
use crate::merge::{self, MergePlan};
use crate::opt::OptConfig;
use crate::partition::{partition, Algo, Problem};
use crate::report::ResourceReport;
use crate::vudfg::{StreamKind, UnitId, UnitKind, Vudfg};
use plasticine_arch::{ChipSpec, PartitionConstraints, PuType};
use std::collections::HashMap;

/// Options for the assignment phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignOptions {
    /// Algorithm for per-unit compute partitioning.
    pub partition_algo: Algo,
    /// Algorithm for global merging.
    pub merge_algo: Algo,
    /// Optimization switches (retiming behaviour).
    pub opt: OptConfig,
    /// Logical DRAM streams one physical AG can serve.
    pub streams_per_ag: u32,
}

impl Default for AssignOptions {
    fn default() -> Self {
        AssignOptions {
            partition_algo: Algo::BestTraversal,
            merge_algo: Algo::BestTraversal,
            opt: OptConfig::default(),
            streams_per_ag: 4,
        }
    }
}

/// The assignment result.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Resource usage.
    pub report: ResourceReport,
    /// Internal partition count per compute unit (1 = fits one PCU).
    pub unit_parts: HashMap<UnitId, u32>,
    /// Extra pipeline latency per unit from internal partitioning
    /// (crossing PCUs adds network hops inside the logical unit).
    pub extra_latency: HashMap<UnitId, u32>,
    /// Global merge plan (PCU packing).
    pub merge: MergePlan,
    /// Physical class of every unit.
    pub pu_type: HashMap<UnitId, PuType>,
}

/// Run assignment. Mutates stream depths when retiming is enabled
/// (buffers absorb pipeline-delay imbalance so joins do not stall).
///
/// # Errors
///
/// Fails when a single dataflow node exceeds PCU capacity or the design
/// exceeds the chip's unit counts.
pub fn assign(
    g: &mut Vudfg,
    chip: &ChipSpec,
    opts: &AssignOptions,
) -> Result<Assignment, CompileError> {
    let cons = PartitionConstraints::of_pcu(&chip.pcu);
    let ts = chip.pcu.transcendental_stages;

    // ---- per-unit compute partitioning (§III-B1) ----
    let mut unit_parts: HashMap<UnitId, u32> = HashMap::new();
    let mut extra_latency: HashMap<UnitId, u32> = HashMap::new();
    let mut pcu_from_splits = 0usize;
    for u in g.unit_ids() {
        let Some(v) = g.unit(u).as_vcu() else { continue };
        let costs: Vec<u32> = v.dfg.iter().map(|n| n.op.stage_cost(ts)).collect();
        let total: u32 = costs.iter().sum();
        if total <= cons.max_ops {
            unit_parts.insert(u, 1);
            continue;
        }
        let mut edges = Vec::new();
        for (i, n) in v.dfg.iter().enumerate() {
            for &src in &n.ins {
                edges.push((src, i));
            }
        }
        let problem = Problem::new(costs, edges, cons);
        let sol =
            partition(&problem, opts.partition_algo).map_err(CompileError::Unpartitionable)?;
        let k = sol.num_groups.max(1) as u32;
        unit_parts.insert(u, k);
        extra_latency.insert(u, (k - 1) * chip.hop_latency);
        pcu_from_splits += k as usize;
    }

    // ---- global merging (§III-B(b)) ----
    let plan = merge::merge(g, cons, ts, opts.merge_algo, &unit_parts)
        .map_err(CompileError::Unpartitionable)?;
    let mut pcus = plan.merged_count() + pcu_from_splits;

    // ---- memory accounting ----
    let mut pmus = 0usize;
    let mut ag_units = 0usize;
    let mut pu_type: HashMap<UnitId, PuType> = HashMap::new();
    for u in g.unit_ids() {
        match &g.unit(u).kind {
            UnitKind::Vmu(v) => {
                let words_needed = v.words as u64 * v.multibuffer as u64;
                pmus += (words_needed.div_ceil(chip.pmu.capacity_words().max(1))).max(1) as usize;
                pu_type.insert(u, PuType::Pmu);
            }
            UnitKind::Ag(_) => {
                ag_units += 1;
                pu_type.insert(u, PuType::Ag);
            }
            UnitKind::Vcu(v) => {
                // Response units ride in the PMU that produces their
                // completion events (paper: mapped to the same memory
                // unit); everything else is PCU-class.
                if matches!(v.role, crate::vudfg::VcuRole::Response { .. }) {
                    pu_type.insert(u, PuType::Pmu);
                } else {
                    pu_type.insert(u, PuType::Pcu);
                }
            }
            _ => {
                pu_type.insert(u, PuType::Pcu);
            }
        }
    }
    let ags = ag_units.div_ceil(opts.streams_per_ag.max(1) as usize);

    // ---- retiming (§III-C retime / retime-m) ----
    let mut retime_units = 0usize;
    if opts.opt.retime {
        retime_units = insert_retiming(g, chip, opts.opt.retime_m);
        if opts.opt.retime_m {
            pmus += retime_units;
        } else {
            pcus += retime_units;
        }
    }

    let report = ResourceReport {
        pcus,
        pmus,
        ags,
        streams: g.streams.len(),
        token_streams: g.token_stream_count(),
        retime_units,
    };
    Ok(Assignment { report, unit_parts, extra_latency, merge: plan, pu_type })
}

/// Longest-path depth per unit over zero-credit streams, then widen the
/// receive FIFO of delay-imbalanced join inputs. Returns the number of
/// dedicated retiming units required (imbalance beyond what input FIFOs
/// absorb).
fn insert_retiming(g: &mut Vudfg, chip: &ChipSpec, retime_m: bool) -> usize {
    let n = g.units.len();
    // Build forward graph over zero-credit streams.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for s in &g.streams {
        if matches!(s.kind, StreamKind::Token { init } if init > 0) {
            continue;
        }
        if s.src == s.dst {
            continue;
        }
        adj[s.src.index()].push(s.dst.index());
        indeg[s.dst.index()] += 1;
    }
    // Kahn longest path; cycles (possible through forward token loops in
    // rare shapes) are left at depth 0 and skipped.
    let mut depth = vec![0u32; n];
    let mut q: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(x) = q.pop() {
        seen += 1;
        for &sdx in &adj[x] {
            depth[sdx] = depth[sdx].max(depth[x] + 1);
            indeg[sdx] -= 1;
            if indeg[sdx] == 0 {
                q.push(sdx);
            }
        }
    }
    let _ = seen;

    let fifo = chip.pcu.fifo_depth;
    // Units of buffering one retiming hop provides.
    let retime_cap = if retime_m {
        chip.pmu.capacity_words().min(4096) as u32
    } else {
        chip.pcu.fifo_depth * chip.pcu.stages
    };
    let mut extra_units = 0usize;
    // For each unit, compare its input producers' depths.
    for u in 0..n {
        let ins: Vec<crate::vudfg::StreamId> = g.units[u].inputs.clone();
        if ins.len() < 2 {
            continue;
        }
        let max_d = ins.iter().map(|s| depth[g.stream(*s).src.index()]).max().unwrap_or(0);
        for sid in ins {
            let src_depth = depth[g.stream(sid).src.index()];
            let imb = max_d.saturating_sub(src_depth);
            if imb == 0 {
                continue;
            }
            // One element per cycle at full rate: every extra unit level
            // on the deep path adds its pipeline depth plus a network hop
            // of latency, all of which the shallow input must buffer.
            let need = imb * (chip.hop_latency + chip.pcu.stages);
            let s = g.stream_mut(sid);
            if need > s.depth {
                let deficit = need - s.depth.min(fifo);
                s.depth = need.max(s.depth);
                extra_units += deficit.div_ceil(retime_cap.max(1)).max(1) as usize - 1;
                extra_units += 1;
            }
        }
    }
    extra_units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vudfg::{DfgNode, NodeOp, Vcu, VcuRole};
    use sara_ir::BinOp;

    fn add_vcu(g: &mut Vudfg, ops: usize) -> UnitId {
        let dfg = (0..ops).map(|_| DfgNode { op: NodeOp::Bin(BinOp::Add), ins: vec![] }).collect();
        g.add_unit(
            "u",
            UnitKind::Vcu(Vcu {
                levels: vec![],
                dfg,
                width: 1,
                role: VcuRole::Merge,
                token_pops: vec![],
                token_pushes: vec![],
                producer_gate_mask: vec![],
                epoch_emit: None,
            }),
        )
    }

    #[test]
    fn oversized_unit_gets_split_and_counted() {
        let mut g = Vudfg::new("t");
        // 14 ops on a 6-stage PCU => 3 partitions
        let u = add_vcu(&mut g, 14);
        let chip = ChipSpec::tiny_4x4();
        let a = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        assert_eq!(a.unit_parts[&u], 3);
        assert!(a.report.pcus >= 3);
        assert!(a.extra_latency[&u] > 0);
    }

    #[test]
    fn small_units_merge_into_one_pcu() {
        let mut g = Vudfg::new("t");
        let a = add_vcu(&mut g, 2);
        let b = add_vcu(&mut g, 2);
        g.connect(a, b, StreamKind::Scalar, 4, "s");
        let chip = ChipSpec::tiny_4x4();
        let r = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        assert_eq!(r.report.pcus, 1);
    }

    #[test]
    fn retiming_widens_imbalanced_join() {
        let mut g = Vudfg::new("t");
        // a -> b -> c -> d  and  a -> d  (short path joins a deep one)
        let a = add_vcu(&mut g, 1);
        let b = add_vcu(&mut g, 1);
        let c = add_vcu(&mut g, 1);
        let d = add_vcu(&mut g, 1);
        g.connect(a, b, StreamKind::Scalar, 4, "ab");
        g.connect(b, c, StreamKind::Scalar, 4, "bc");
        let (long, _, _) = g.connect(c, d, StreamKind::Scalar, 4, "cd");
        let (short, _, _) = g.connect(a, d, StreamKind::Scalar, 4, "ad");
        let chip = ChipSpec::tiny_4x4();
        let before = g.stream(short).depth;
        let _ = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        assert!(g.stream(short).depth > before, "short path must gain buffering");
        assert_eq!(g.stream(long).depth, 4, "deep path unchanged");
    }

    #[test]
    fn retime_disabled_leaves_depths() {
        let mut g = Vudfg::new("t");
        let a = add_vcu(&mut g, 1);
        let b = add_vcu(&mut g, 1);
        let c = add_vcu(&mut g, 1);
        g.connect(a, b, StreamKind::Scalar, 4, "ab");
        g.connect(b, c, StreamKind::Scalar, 4, "bc");
        let (s, _, _) = g.connect(a, c, StreamKind::Scalar, 4, "ac");
        let chip = ChipSpec::tiny_4x4();
        let mut opts = AssignOptions::default();
        opts.opt.retime = false;
        let r = assign(&mut g, &chip, &opts).unwrap();
        assert_eq!(g.stream(s).depth, 4);
        assert_eq!(r.report.retime_units, 0);
    }
}
