//! End-to-end compilation driver (paper Fig 3): lowering → CMMC →
//! memory partitioning → optimizations → compute partitioning → global
//! merging → assignment.

use crate::assign::{self, AssignOptions, Assignment};
use crate::cmmc::CmmcStats;
use crate::error::CompileError;
use crate::lower::{self, LowerOptions, Lowered};
use crate::opt::{self, OptConfig, OptStats};
use crate::partition::Algo;
use crate::report::ResourceReport;
use crate::vudfg::Vudfg;
use plasticine_arch::ChipSpec;
use sara_ir::Program;

/// Options for a full compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerOptions {
    pub lower: LowerOptions,
    pub opt: OptConfig,
    pub partition_algo: Algo,
    pub merge_algo: Algo,
    /// Logical DRAM streams per physical AG.
    pub streams_per_ag: u32,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            lower: LowerOptions::default(),
            opt: OptConfig::default(),
            partition_algo: Algo::BestTraversal,
            merge_algo: Algo::BestTraversal,
            streams_per_ag: 4,
        }
    }
}

/// A fully compiled program, ready for place-and-route and simulation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The virtual unit dataflow graph (stream depths already adjusted by
    /// retiming).
    pub vudfg: Vudfg,
    /// Resource usage.
    pub report: ResourceReport,
    /// CMMC reduction statistics.
    pub cmmc_stats: CmmcStats,
    /// Optimization statistics.
    pub opt_stats: OptStats,
    /// Assignment detail (per-unit partitioning, merge plan, unit types).
    pub assignment: Assignment,
}

/// Compile a program for a chip.
///
/// # Errors
///
/// Propagates validation, lowering, partitioning and capacity errors.
pub fn compile(
    p: &Program,
    chip: &ChipSpec,
    opts: &CompilerOptions,
) -> Result<Compiled, CompileError> {
    // IR-level rewrites first (route-through elimination, §III-C).
    let rewritten;
    let (p, rtelm_removed) = if opts.opt.rtelm {
        let (q, s) = crate::opt_ir::rtelm(p);
        rewritten = q;
        (&rewritten, s.rtelm_removed)
    } else {
        (p, 0)
    };
    let lowered: Lowered = lower::lower(p, chip, &opts.lower)?;
    let mut g = lowered.vudfg;
    crate::vudfg_validate::validate(&g).map_err(CompileError::Internal)?;
    let mut opt_stats = opt::optimize(&mut g, &opts.opt);
    opt_stats.rtelm_removed += rtelm_removed;
    let assignment = assign::assign(
        &mut g,
        chip,
        &AssignOptions {
            partition_algo: opts.partition_algo,
            merge_algo: opts.merge_algo,
            opt: opts.opt,
            streams_per_ag: opts.streams_per_ag,
        },
    )?;
    Ok(Compiled {
        vudfg: g,
        report: assignment.report,
        cmmc_stats: lowered.cmmc.stats,
        opt_stats,
        assignment,
    })
}
