//! Cross-chip sharding (multi-chip scale-out): cut the lowered VUDFG
//! into per-chip shards where CMMC token/credit traffic is thinnest.
//!
//! The pass runs *after* assignment, so it can respect the merge plan
//! (a merge group shares one physical PCU and can never straddle a chip
//! boundary) and the placer's PMU-riding rule (a response unit rides in
//! the PMU it listens to). Those constraints define *atomic clusters*;
//! clusters are ordered topologically and a contiguous-segment dynamic
//! program picks chip boundaries minimizing the estimated traffic
//! ([`crate::traffic`]) that crosses them, subject to per-chip grid
//! capacity. Chips are a *capacity* resource: a design that fits one
//! chip stays whole (the 1-segment plan has zero cut cost and always
//! wins when feasible), because every cut stream pays link latency and
//! shared link bandwidth — pure overhead unless the extra chip's slots
//! are actually needed.
//!
//! Chip-boundary crossings stay *explicit*: [`extract_shards`] clones
//! each chip's units (preserving unit order and port order, so a 1-chip
//! plan extracts the identity graph) and materializes every crossing as
//! a link-egress (`link.out:<label>`) or link-ingress (`link.in:<label>`)
//! stream endpoint. Each shard is therefore a closed VUDFG: every stream
//! has both endpoints on chip, token/credit conservation holds per
//! shard, and the PnR and sanitizer invariants apply unchanged. The
//! linked simulation runs the *original* graph (crossing streams become
//! rate-limited link FIFOs); the shards exist so PnR can place each chip
//! independently.

use crate::assign::Assignment;
use crate::merge::MergePlan;
use crate::partition::Solution;
use crate::report::ResourceReport;
use crate::traffic;
use crate::vudfg::{OutPort, Stream, StreamId, SyncUnit, Unit, UnitId, UnitKind, Vudfg};
use plasticine_arch::{PuType, SystemSpec};
use std::collections::HashMap;

/// Where every unit of a lowered VUDFG lives in a multi-chip system.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Number of chips in the system (shards beyond the last used
    /// segment are empty).
    pub count: u32,
    /// Chip index of every unit (indexed by unit id).
    pub chip_of: Vec<u32>,
    /// Streams whose endpoints sit on different chips, in id order.
    pub crossings: Vec<StreamId>,
    /// Estimated traffic crossing chip boundaries (element-equivalents;
    /// see [`traffic::stream_traffic`]).
    pub cut_traffic: f64,
}

impl ShardPlan {
    /// The trivial plan: everything on chip 0.
    pub fn single(g: &Vudfg) -> ShardPlan {
        ShardPlan {
            count: 1,
            chip_of: vec![0; g.units.len()],
            crossings: Vec::new(),
            cut_traffic: 0.0,
        }
    }

    /// Whether a stream crosses a chip boundary under this plan.
    pub fn is_crossing(&self, s: &Stream) -> bool {
        self.chip_of[s.src.index()] != self.chip_of[s.dst.index()]
    }
}

/// One chip's closed sub-graph, ready for per-chip PnR.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Chip index this shard maps to.
    pub chip: u32,
    /// The shard graph: this chip's units in original relative order,
    /// then one link-endpoint unit per crossing incident to the chip.
    pub vudfg: Vudfg,
    /// Assignment restricted to the shard (link endpoints are typed AG:
    /// they live at the chip edge and never compete for PCU/PMU slots).
    pub assignment: Assignment,
    /// Local unit index → original unit (`None` for link endpoints).
    pub unit_map: Vec<Option<UnitId>>,
    /// Local stream index → `(original stream, fully on-chip?)`.
    pub stream_map: Vec<(StreamId, bool)>,
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

fn find(parent: &mut [usize], x: usize) -> usize {
    let mut r = x;
    while parent[r] != r {
        r = parent[r];
    }
    let mut c = x;
    while parent[c] != r {
        let next = parent[c];
        parent[c] = r;
        c = next;
    }
    r
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        // Deterministic: smaller root wins.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        parent[hi] = lo;
    }
}

/// Decide a chip for every unit. A design that fits one chip stays
/// whole; otherwise the cut minimizes estimated crossing traffic over
/// the fewest-crossing capacity-feasible contiguous split. Infallible:
/// when the DP finds no feasible split the pass degrades to a
/// capacity-driven greedy split, and in the worst case to
/// everything-on-chip-0 (per-chip PnR then reports the capacity
/// overflow with exact numbers).
pub fn plan_shards(g: &Vudfg, asg: &Assignment, system: &SystemSpec) -> ShardPlan {
    let n = g.units.len();
    if system.count <= 1 || n == 0 {
        return ShardPlan { count: system.count.max(1), ..ShardPlan::single(g) };
    }

    // ---- atomic clusters: merge groups + the placer's PMU-riding rule ----
    let mut parent: Vec<usize> = (0..n).collect();
    let mut group_rep: HashMap<usize, usize> = HashMap::new();
    for (i, u) in asg.merge.units.iter().enumerate() {
        let grp = asg.merge.solution.group[i];
        match group_rep.get(&grp) {
            Some(&rep) => union(&mut parent, rep, u.index()),
            None => {
                group_rep.insert(grp, u.index());
            }
        }
    }
    for u in g.unit_ids() {
        // Mirror of sara-pnr: a PMU-class unit whose first input comes
        // from another PMU-class unit shares that unit's grid slot.
        if asg.pu_type.get(&u) == Some(&PuType::Pmu) {
            if let Some(first_in) = g.unit(u).inputs.first() {
                let src = g.stream(*first_in).src;
                if matches!(asg.pu_type.get(&src), Some(PuType::Pmu)) {
                    union(&mut parent, u.index(), src.index());
                }
            }
        }
    }

    // Dense cluster ids, ordered by smallest member unit.
    let mut cluster_of = vec![usize::MAX; n];
    let mut n_clusters = 0usize;
    for u in 0..n {
        let r = find(&mut parent, u);
        if cluster_of[r] == usize::MAX {
            cluster_of[r] = n_clusters;
            n_clusters += 1;
        }
        cluster_of[u] = cluster_of[r];
    }
    let k = n_clusters;

    // ---- per-cluster grid-slot demand and compute work ----
    // Slot accounting mirrors the placer: one slot per merge group or
    // solo unit, riders excluded, typed by the first member seen.
    let mut placeable_host = vec![usize::MAX; n]; // unit -> slot-owning unit
    let mut group_slot: HashMap<usize, usize> = HashMap::new();
    for u in g.unit_ids() {
        let owner = match asg.merge.group_of(u) {
            Some(grp) => *group_slot.entry(grp).or_insert(u.index()),
            None => u.index(),
        };
        placeable_host[u.index()] = owner;
    }
    for u in g.unit_ids() {
        if asg.pu_type.get(&u) == Some(&PuType::Pmu) {
            if let Some(first_in) = g.unit(u).inputs.first() {
                let src = g.stream(*first_in).src;
                if matches!(asg.pu_type.get(&src), Some(PuType::Pmu)) {
                    placeable_host[u.index()] = placeable_host[src.index()];
                }
            }
        }
    }
    let mut pcu_need = vec![0usize; k];
    let mut pmu_need = vec![0usize; k];
    for u in 0..n {
        let c = cluster_of[u];
        if placeable_host[u] == u {
            match asg.pu_type.get(&UnitId(u as u32)).copied().unwrap_or(PuType::Pcu) {
                PuType::Pcu => pcu_need[c] += 1,
                PuType::Pmu => pmu_need[c] += 1,
                PuType::Ag => {}
            }
        }
    }

    // ---- topological cluster order (Kahn over non-token inter-cluster
    // edges; residual cycles forced in min-unit order) ----
    let mut indeg = vec![0usize; k];
    let mut cadj: Vec<Vec<usize>> = vec![Vec::new(); k];
    for s in &g.streams {
        if s.kind.is_token() {
            continue;
        }
        let (a, b) = (cluster_of[s.src.index()], cluster_of[s.dst.index()]);
        if a != b {
            cadj[a].push(b);
            indeg[b] += 1;
        }
    }
    let mut pos = vec![usize::MAX; k];
    let mut placed = 0usize;
    let mut done = vec![false; k];
    while placed < k {
        // Smallest-id ready cluster; if none is ready (cycle), force the
        // smallest unprocessed one.
        let next = (0..k)
            .filter(|&c| !done[c] && indeg[c] == 0)
            .chain((0..k).filter(|&c| !done[c]))
            .next()
            .expect("unprocessed cluster exists");
        done[next] = true;
        pos[next] = placed;
        placed += 1;
        for &d in &cadj[next] {
            if !done[d] {
                indeg[d] = indeg[d].saturating_sub(1);
            }
        }
    }
    let mut ord = vec![0usize; k]; // position -> cluster
    for c in 0..k {
        ord[pos[c]] = c;
    }

    // ---- boundary traffic: b[j] = traffic crossing the cut between
    // positions j-1 and j (difference-array sweep over all edges) ----
    let weight = traffic::stream_traffic(g);
    let mut diff = vec![0f64; k + 1];
    for (i, s) in g.streams.iter().enumerate() {
        let (a, b) = (cluster_of[s.src.index()], cluster_of[s.dst.index()]);
        if a == b {
            continue;
        }
        let (lo, hi) = (pos[a].min(pos[b]), pos[a].max(pos[b]));
        diff[lo + 1] += weight[i];
        diff[hi + 1] -= weight[i];
    }
    let mut boundary = vec![0f64; k + 1];
    for j in 1..=k {
        boundary[j] = boundary[j - 1] + diff[j];
    }

    // ---- prefix sums in position order ----
    let mut pcu_pre = vec![0usize; k + 1];
    let mut pmu_pre = vec![0usize; k + 1];
    for p in 0..k {
        pcu_pre[p + 1] = pcu_pre[p] + pcu_need[ord[p]];
        pmu_pre[p + 1] = pmu_pre[p] + pmu_need[ord[p]];
    }
    let chip_pcus = system.chip.pcus() as usize;
    let chip_pmus = system.chip.pmus() as usize;
    let m = (system.count as usize).min(k);

    // ---- contiguous-segment DP: minimize total boundary traffic over
    // at most m segments, each within chip grid capacity. Fewer
    // segments never cost more (dropping a cut only removes boundary
    // traffic), so a design that fits one chip yields the whole-graph
    // plan with zero crossings. ----
    let try_dp = || -> Option<Vec<usize>> {
        let inf = f64::INFINITY;
        let mut f = vec![vec![inf; m + 1]; k + 1];
        let mut arg = vec![vec![usize::MAX; m + 1]; k + 1];
        f[0][0] = 0.0;
        for p in 1..=k {
            for c in 1..=m.min(p) {
                for q in (c - 1)..p {
                    if f[q][c - 1].is_infinite() {
                        continue;
                    }
                    if pcu_pre[p] - pcu_pre[q] > chip_pcus || pmu_pre[p] - pmu_pre[q] > chip_pmus {
                        continue;
                    }
                    let cost = f[q][c - 1] + if q > 0 { boundary[q] } else { 0.0 };
                    if cost < f[p][c] {
                        f[p][c] = cost;
                        arg[p][c] = q;
                    }
                }
            }
        }
        let best = (1..=m)
            .filter(|&c| f[k][c].is_finite())
            .min_by(|&a, &b| f[k][a].partial_cmp(&f[k][b]).unwrap_or(std::cmp::Ordering::Equal))?;
        let mut cuts = Vec::new(); // segment start positions, reversed
        let (mut p, mut c) = (k, best);
        while p > 0 {
            let q = arg[p][c];
            cuts.push(q);
            p = q;
            c -= 1;
        }
        cuts.reverse();
        Some(cuts)
    };

    let seg_starts = try_dp().unwrap_or_else(|| {
        // Greedy capacity-driven fallback: open a new segment whenever
        // the next cluster would overflow the chip (while chips remain).
        let mut starts = vec![0usize];
        let (mut pc, mut pm) = (0usize, 0usize);
        for (p, &c) in ord.iter().enumerate().take(k) {
            if starts.len() < system.count as usize
                && p > 0
                && (pc + pcu_need[c] > chip_pcus || pm + pmu_need[c] > chip_pmus)
            {
                starts.push(p);
                pc = 0;
                pm = 0;
            }
            pc += pcu_need[c];
            pm += pmu_need[c];
        }
        starts
    });

    // ---- materialize the plan ----
    let mut seg_of_pos = vec![0u32; k];
    for (seg, &start) in seg_starts.iter().enumerate() {
        let end = seg_starts.get(seg + 1).copied().unwrap_or(k);
        for p in seg_of_pos.iter_mut().take(end).skip(start) {
            *p = seg as u32;
        }
    }
    let chip_of: Vec<u32> = (0..n).map(|u| seg_of_pos[pos[cluster_of[u]]]).collect();
    let mut crossings = Vec::new();
    let mut cut_traffic = 0.0;
    for (i, s) in g.streams.iter().enumerate() {
        if chip_of[s.src.index()] != chip_of[s.dst.index()] {
            crossings.push(StreamId(i as u32));
            cut_traffic += weight[i];
        }
    }
    ShardPlan { count: system.count, chip_of, crossings, cut_traffic }
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

/// Cut the graph into per-chip closed shards following a plan. Shard
/// `c` holds chip `c`'s units in their original relative order (so a
/// 1-chip plan extracts a graph identical to the input, modulo name),
/// with one link-endpoint unit appended per incident crossing.
pub fn extract_shards(g: &Vudfg, asg: &Assignment, plan: &ShardPlan) -> Vec<Shard> {
    (0..plan.count).map(|chip| extract_one(g, asg, plan, chip)).collect()
}

fn extract_one(g: &Vudfg, asg: &Assignment, plan: &ShardPlan, chip: u32) -> Shard {
    let mut local_of_unit: HashMap<UnitId, UnitId> = HashMap::new();
    let mut units: Vec<Unit> = Vec::new();
    let mut unit_map: Vec<Option<UnitId>> = Vec::new();
    for u in g.unit_ids() {
        if plan.chip_of[u.index()] == chip {
            local_of_unit.insert(u, UnitId(units.len() as u32));
            units.push(g.unit(u).clone());
            unit_map.push(Some(u));
        }
    }
    let n_orig = units.len();

    // Streams in global id order; crossings grow an endpoint unit.
    let mut local_of_stream: HashMap<StreamId, StreamId> = HashMap::new();
    let mut streams: Vec<Stream> = Vec::new();
    let mut stream_map: Vec<(StreamId, bool)> = Vec::new();
    for (i, s) in g.streams.iter().enumerate() {
        let gsid = StreamId(i as u32);
        let src_on = plan.chip_of[s.src.index()] == chip;
        let dst_on = plan.chip_of[s.dst.index()] == chip;
        if !src_on && !dst_on {
            continue;
        }
        let lsid = StreamId(streams.len() as u32);
        local_of_stream.insert(gsid, lsid);
        stream_map.push((gsid, src_on && dst_on));
        let mut ns = s.clone();
        if src_on && dst_on {
            ns.src = local_of_unit[&s.src];
            ns.dst = local_of_unit[&s.dst];
        } else if src_on {
            let eid = UnitId(units.len() as u32);
            units.push(Unit {
                label: format!("link.out:{}", s.label),
                kind: UnitKind::Sync(SyncUnit),
                inputs: vec![lsid],
                outputs: Vec::new(),
            });
            unit_map.push(None);
            ns.src = local_of_unit[&s.src];
            ns.dst = eid;
        } else {
            let eid = UnitId(units.len() as u32);
            units.push(Unit {
                label: format!("link.in:{}", s.label),
                kind: UnitKind::Sync(SyncUnit),
                inputs: Vec::new(),
                outputs: vec![OutPort { streams: vec![lsid] }],
            });
            unit_map.push(None);
            ns.src = eid;
            ns.dst = local_of_unit[&s.dst];
        }
        streams.push(ns);
    }

    // Rebuild the original units' ports from the global port lists, so
    // port order (and therefore unit semantics) is preserved exactly.
    for li in 0..n_orig {
        let gu = g.unit(unit_map[li].expect("original unit"));
        units[li].inputs = gu.inputs.iter().map(|s| local_of_stream[s]).collect();
        units[li].outputs = gu
            .outputs
            .iter()
            .map(|p| OutPort { streams: p.streams.iter().map(|s| local_of_stream[s]).collect() })
            .collect();
    }

    // Restrict the assignment. Link endpoints are AG-class: they sit at
    // the chip edge next to the SerDes, and AG slots pack round-robin so
    // placement can never fail on them.
    let mut unit_parts = HashMap::new();
    let mut extra_latency = HashMap::new();
    let mut pu_type = HashMap::new();
    for (li, gopt) in unit_map.iter().enumerate() {
        let lu = UnitId(li as u32);
        match gopt {
            Some(gu) => {
                if let Some(&v) = asg.unit_parts.get(gu) {
                    unit_parts.insert(lu, v);
                }
                if let Some(&v) = asg.extra_latency.get(gu) {
                    extra_latency.insert(lu, v);
                }
                if let Some(&t) = asg.pu_type.get(gu) {
                    pu_type.insert(lu, t);
                }
            }
            None => {
                unit_parts.insert(lu, 1);
                pu_type.insert(lu, PuType::Ag);
            }
        }
    }
    let mut merge_units = Vec::new();
    let mut merge_groups = Vec::new();
    for (i, u) in asg.merge.units.iter().enumerate() {
        if let Some(&lu) = local_of_unit.get(u) {
            merge_units.push(lu);
            merge_groups.push(asg.merge.solution.group[i]);
        }
    }
    let merge = MergePlan {
        units: merge_units,
        // Group ids keep their global numbering: the placer only tests
        // them for equality.
        solution: Solution { group: merge_groups, num_groups: asg.merge.solution.num_groups },
    };
    let report = ResourceReport {
        pcus: pu_type.values().filter(|t| **t == PuType::Pcu).count(),
        pmus: pu_type.values().filter(|t| **t == PuType::Pmu).count(),
        ags: pu_type.values().filter(|t| **t == PuType::Ag).count(),
        streams: streams.len(),
        token_streams: streams.iter().filter(|s| s.kind.is_token()).count(),
        retime_units: 0,
    };
    let vudfg =
        Vudfg { units, streams, drams: g.drams.clone(), name: format!("{}:chip{}", g.name, chip) };
    Shard {
        chip,
        vudfg,
        assignment: Assignment { report, unit_parts, extra_latency, merge, pu_type },
        unit_map,
        stream_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{assign, AssignOptions};
    use crate::vudfg::{CBound, DfgNode, Level, NodeOp, StreamKind, Vcu, VcuRole};
    use plasticine_arch::ChipSpec;
    use sara_ir::{BinOp, CtrlId};

    fn vcu(ctrl: u32, trip: i64) -> UnitKind {
        UnitKind::Vcu(Vcu {
            levels: vec![Level::Counter {
                min: CBound::Const(0),
                max: CBound::Const(trip),
                step: 1,
                lane_offset: 0,
                lane_stride: 1,
                ctrl: CtrlId(ctrl),
            }],
            dfg: vec![DfgNode { op: NodeOp::Bin(BinOp::Add), ins: vec![] }],
            width: 1,
            role: VcuRole::Merge,
            token_pops: vec![],
            token_pushes: vec![],
            producer_gate_mask: vec![],
            epoch_emit: None,
        })
    }

    /// Two heavily connected chains of `side` units each, joined only
    /// by a thin token stream. Sized so `2 * side` slots create real
    /// capacity pressure on a small chip.
    fn dumbbell(side: usize) -> Vudfg {
        let mut g = Vudfg::new("dumbbell");
        let mut units = Vec::new();
        for i in 0..2 * side {
            units.push(g.add_unit(format!("u{i}"), vcu(i as u32 + 1, 16)));
        }
        for half in 0..2 {
            for i in 1..side {
                let (p, q) = (units[half * side + i - 1], units[half * side + i]);
                g.connect(p, q, StreamKind::Vector(8), 4, format!("v{half}.{i}"));
            }
        }
        g.connect(units[side - 1], units[side], StreamKind::Token { init: 0 }, 4, "bridge");
        g
    }

    #[test]
    fn single_chip_plan_is_trivial() {
        let mut g = dumbbell(2);
        let chip = ChipSpec::small_8x8();
        let asg = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        let plan = plan_shards(&g, &asg, &SystemSpec::single(chip));
        assert_eq!(plan.count, 1);
        assert!(plan.crossings.is_empty());
        assert_eq!(plan.cut_traffic, 0.0);
        assert!(plan.chip_of.iter().all(|&c| c == 0));
    }

    #[test]
    fn fitting_designs_stay_on_one_chip() {
        // Chips are a capacity resource: a graph that fits one chip
        // must not be spread (every cut would trade nothing for link
        // latency), even when more chips are available.
        let mut g = dumbbell(2);
        let chip = ChipSpec::small_8x8();
        let asg = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        let plan = plan_shards(&g, &asg, &SystemSpec::grid(chip, 4));
        assert_eq!(plan.count, 4);
        assert!(plan.crossings.is_empty(), "no forced spreading: {plan:?}");
        assert_eq!(plan.cut_traffic, 0.0);
        assert!(plan.chip_of.iter().all(|&c| c == 0));
    }

    #[test]
    fn two_chip_plan_cuts_the_thin_token_edge() {
        // Each half needs more grid slots than one tiny chip has, so
        // the planner must split — and the cheapest cut is the token
        // bridge, not a fat vector edge inside a half.
        let chip = ChipSpec::tiny_4x4();
        let side = chip.pcus() as usize; // 2*side slots on a side-slot chip
        let mut g = dumbbell(side);
        let asg = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        let plan = plan_shards(&g, &asg, &SystemSpec::grid(chip, 2));
        assert_eq!(plan.crossings.len(), 1, "exactly one crossing: {plan:?}");
        let s = g.stream(plan.crossings[0]);
        assert!(s.kind.is_token(), "the token edge is the thinnest cut: {plan:?}");
        for i in 1..side {
            assert_eq!(plan.chip_of[i - 1], plan.chip_of[i], "left half together");
            assert_eq!(plan.chip_of[side + i - 1], plan.chip_of[side + i], "right half together");
        }
        assert_ne!(plan.chip_of[0], plan.chip_of[side]);
    }

    #[test]
    fn one_chip_extraction_is_the_identity() {
        let mut g = dumbbell(2);
        let chip = ChipSpec::small_8x8();
        let asg = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        let plan = ShardPlan::single(&g);
        let shards = extract_shards(&g, &asg, &plan);
        assert_eq!(shards.len(), 1);
        let sh = &shards[0];
        assert_eq!(sh.vudfg.units, g.units, "unit order and ports preserved");
        assert_eq!(sh.vudfg.streams, g.streams);
        assert_eq!(sh.vudfg.drams, g.drams);
        assert_eq!(sh.assignment.pu_type.len(), asg.pu_type.len());
        for (li, gu) in sh.unit_map.iter().enumerate() {
            assert_eq!(gu.unwrap().index(), li);
        }
        assert!(sh.stream_map.iter().all(|&(_, internal)| internal));
    }

    #[test]
    fn crossings_become_link_endpoints_and_shards_are_closed() {
        let chip = ChipSpec::tiny_4x4();
        let mut g = dumbbell(chip.pcus() as usize);
        let asg = assign(&mut g, &chip, &AssignOptions::default()).unwrap();
        let plan = plan_shards(&g, &asg, &SystemSpec::grid(chip, 2));
        let shards = extract_shards(&g, &asg, &plan);
        assert_eq!(shards.len(), 2);
        let egress_chip = plan.chip_of[g.stream(plan.crossings[0]).src.index()];
        for sh in &shards {
            // Closed: every stream's endpoints are local units.
            for s in &sh.vudfg.streams {
                assert!(s.src.index() < sh.vudfg.units.len());
                assert!(s.dst.index() < sh.vudfg.units.len());
            }
            let eps: Vec<&Unit> =
                sh.vudfg.units.iter().filter(|u| u.label.starts_with("link.")).collect();
            assert_eq!(eps.len(), 1, "one crossing endpoint per shard");
            let want = if sh.chip == egress_chip { "link.out:" } else { "link.in:" };
            assert!(eps[0].label.starts_with(want), "{}", eps[0].label);
            // Endpoints are AG-class so placement cannot fail on them.
            let ep_id =
                UnitId(sh.vudfg.units.iter().position(|u| u.label.starts_with("link.")).unwrap()
                    as u32);
            assert_eq!(sh.assignment.pu_type[&ep_id], PuType::Ag);
            assert!(sh.unit_map[ep_id.index()].is_none());
        }
    }
}
