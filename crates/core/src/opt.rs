//! Performance and resource optimizations (paper §III-C): placeholder
//! module shell; the individual passes live in submodules added during
//! compilation-flow construction.

use crate::vudfg::Vudfg;
use serde::{Deserialize, Serialize};

/// Which optimizations are enabled (the Fig 10 ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptConfig {
    /// Memory strength reduction: scratchpads with constant-address
    /// accessors become FIFOs (input buffers).
    pub msr: bool,
    /// Route-through elimination: forwarding memories between lock-step
    /// producer/consumer pairs are removed.
    pub rtelm: bool,
    /// Retiming: insert buffer units on delay-imbalanced paths to keep
    /// full pipeline throughput.
    pub retime: bool,
    /// Use scratchpads (PMUs) as retiming buffers instead of chained
    /// compute-unit FIFOs.
    pub retime_m: bool,
    /// Duplicate cheap bank-address computation instead of forwarding it
    /// across the crossbar datapath.
    pub xbar_elm: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig { msr: true, rtelm: true, retime: true, retime_m: true, xbar_elm: true }
    }
}

impl OptConfig {
    /// Everything off (the ablation baseline).
    pub fn none() -> Self {
        OptConfig { msr: false, rtelm: false, retime: false, retime_m: false, xbar_elm: false }
    }
}

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    pub msr_converted: usize,
    pub rtelm_removed: usize,
    pub retime_inserted: usize,
    pub xbar_dup: usize,
}

/// Apply the enabled VUDFG-level optimizations in place and return
/// statistics.
///
/// The §III-C passes are distributed across the pipeline where each is
/// naturally expressed:
/// * `rtelm` rewrites the IR before lowering ([`crate::opt_ir::rtelm`]);
/// * `msr` is structural — constant/affine addresses statically resolve
///   to point-to-point streams at banking time (see [`crate::opt_ir`]
///   module docs);
/// * `xbar_elm` is a lowering wiring decision (bank-address computation is
///   duplicated into each lane's request unit rather than forwarded);
/// * `retime`/`retime_m` run during assignment, where post-partitioning
///   path delays are known ([`crate::assign`]).
pub fn optimize(_g: &mut Vudfg, _cfg: &OptConfig) -> OptStats {
    OptStats::default()
}
