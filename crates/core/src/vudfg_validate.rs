//! Structural validation of a lowered VUDFG: every port index in every
//! unit refers to a real stream wired to that unit, token rules reference
//! existing ports and levels, and memory/crossbar port descriptors are
//! complete. Run by the compiler after lowering (and usable by tests that
//! hand-build graphs).

use crate::vudfg::{CBound, Level, NodeOp, UnitKind, Vudfg};

/// Validate the graph; returns the first inconsistency found.
pub fn validate(g: &Vudfg) -> Result<(), String> {
    for (ui, u) in g.units.iter().enumerate() {
        let nin = u.inputs.len();
        let nout = u.outputs.len();
        let err = |msg: String| Err(format!("unit {ui} ({}): {msg}", u.label));
        for (pi, sid) in u.inputs.iter().enumerate() {
            let s =
                g.streams.get(sid.index()).ok_or_else(|| format!("unit {ui}: bad stream id"))?;
            if s.dst.index() != ui {
                return err(format!("input port {pi} stream does not target this unit"));
            }
        }
        for (pi, port) in u.outputs.iter().enumerate() {
            for sid in &port.streams {
                let s = g
                    .streams
                    .get(sid.index())
                    .ok_or_else(|| format!("unit {ui}: bad stream id"))?;
                if s.src.index() != ui {
                    return err(format!("output port {pi} stream does not originate here"));
                }
            }
        }
        match &u.kind {
            UnitKind::Vcu(v) => {
                let nlevels = v.levels.len();
                for (li, l) in v.levels.iter().enumerate() {
                    match l {
                        Level::Counter { min, max, .. } => {
                            for b in [min, max] {
                                if let CBound::Port(p) = b {
                                    if *p >= nin {
                                        return err(format!(
                                            "level {li} bound port {p} out of range"
                                        ));
                                    }
                                }
                            }
                        }
                        Level::Gate { cond_in, .. } | Level::While { cond_in, .. } => {
                            if *cond_in >= nin {
                                return err(format!("level {li} cond port {cond_in} out of range"));
                            }
                        }
                    }
                }
                for r in &v.token_pops {
                    if r.port >= nin || r.level > nlevels {
                        return err(format!("token pop rule {r:?} out of range"));
                    }
                }
                for r in &v.token_pushes {
                    if r.port >= nout || r.level > nlevels {
                        return err(format!("token push rule {r:?} out of range"));
                    }
                }
                if let Some(l) = v.epoch_emit {
                    if l >= nlevels {
                        return err(format!("epoch_emit level {l} out of range"));
                    }
                }
                for (ni, node) in v.dfg.iter().enumerate() {
                    for op in &node.ins {
                        if *op >= ni {
                            return err(format!("dfg node {ni} references later node {op}"));
                        }
                    }
                    match &node.op {
                        NodeOp::StreamIn { port } if *port >= nin => {
                            return err(format!("dfg node {ni} reads missing port {port}"));
                        }
                        NodeOp::StreamOut { port, .. } if *port >= nout => {
                            return err(format!("dfg node {ni} writes missing port {port}"));
                        }
                        NodeOp::CounterIdx { level }
                        | NodeOp::IsFirst { level }
                        | NodeOp::IsLast { level }
                            if *level >= nlevels =>
                        {
                            return err(format!("dfg node {ni} references missing level {level}"));
                        }
                        NodeOp::Reduce { reset_level, .. } if *reset_level >= nlevels.max(1) => {
                            return err(format!("dfg node {ni} reduce level out of range"));
                        }
                        _ => {}
                    }
                }
            }
            UnitKind::Vmu(v) => {
                if v.words == 0 || v.init.len() != v.words {
                    return err("VMU init/words mismatch".into());
                }
                for p in &v.write_ports {
                    if p.addr_in >= nin || p.data_in >= nin {
                        return err("VMU write port out of range".into());
                    }
                    if let Some(a) = p.ack_out {
                        if a >= nout {
                            return err("VMU ack port out of range".into());
                        }
                    }
                }
                for p in &v.read_ports {
                    if p.addr_in >= nin || p.data_out >= nout {
                        return err("VMU read port out of range".into());
                    }
                }
            }
            UnitKind::Ag(a) => {
                if a.addr_in >= nin || a.out >= nout {
                    return err("AG ports out of range".into());
                }
                if let Some(d) = a.data_in {
                    if d >= nin {
                        return err("AG data port out of range".into());
                    }
                }
            }
            UnitKind::XbarDist(d) => {
                if d.bank_in >= nin || d.payload_in >= nin {
                    return err("xbar-dist inputs out of range".into());
                }
                for p in d.bank_outs.iter().chain(d.ba_out.iter()) {
                    if *p >= nout {
                        return err("xbar-dist output out of range".into());
                    }
                }
            }
            UnitKind::XbarColl(c) => {
                if c.ba_in >= nin || c.out >= nout {
                    return err("xbar-coll ports out of range".into());
                }
                for p in &c.bank_ins {
                    if *p >= nin {
                        return err("xbar-coll bank input out of range".into());
                    }
                }
            }
            UnitKind::Sync(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompilerOptions};
    use plasticine_arch::ChipSpec;
    use sara_ir::{DType, LoopSpec, MemInit, Program};

    #[test]
    fn lowered_graphs_validate() {
        let mut p = Program::new("v");
        let root = p.root();
        let a = p.dram("a", &[16], DType::F64, MemInit::Zero);
        let l = p.add_loop(root, "i", LoopSpec::new(0, 16, 1).par(4)).unwrap();
        let hb = p.add_leaf(l, "b").unwrap();
        let i = p.idx(hb, l).unwrap();
        let x = p.load(hb, a, &[i]).unwrap();
        p.store(hb, a, &[i], x).unwrap();
        let c = compile(&p, &ChipSpec::tiny_4x4(), &CompilerOptions::default()).unwrap();
        validate(&c.vudfg).unwrap();
    }

    #[test]
    fn catches_bad_port() {
        use crate::vudfg::{DfgNode, Vcu, VcuRole, Vudfg};
        let mut g = Vudfg::new("bad");
        g.add_unit(
            "u",
            crate::vudfg::UnitKind::Vcu(Vcu {
                levels: vec![],
                dfg: vec![DfgNode { op: NodeOp::StreamIn { port: 3 }, ins: vec![] }],
                width: 1,
                role: VcuRole::Retime,
                token_pops: vec![],
                token_pushes: vec![],
                producer_gate_mask: vec![],
                epoch_emit: None,
            }),
        );
        assert!(validate(&g).is_err());
    }
}
