//! Small directed-graph utilities used by CMMC (transitive reduction,
//! reachability) and by partitioning/merging (topological order, cycle
//! checks). Nodes are dense `usize` indices.

use std::collections::VecDeque;

/// A directed graph over nodes `0..n` with adjacency lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    /// Successors of each node.
    pub succ: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph { succ: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Add edge `a -> b` (duplicates ignored).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if !self.succ[a].contains(&b) {
            self.succ[a].push(b);
        }
    }

    /// Whether edge `a -> b` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.succ[a].contains(&b)
    }

    /// All edges as `(src, dst)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.succ.iter().enumerate().flat_map(|(a, ss)| ss.iter().map(move |b| (a, *b))).collect()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(|s| s.len()).sum()
    }

    /// Nodes reachable from `from` (not including `from` unless on a
    /// cycle back to itself).
    pub fn reachable_from(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut q = VecDeque::new();
        for &s in &self.succ[from] {
            if !seen[s] {
                seen[s] = true;
                q.push_back(s);
            }
        }
        while let Some(x) = q.pop_front() {
            for &s in &self.succ[x] {
                if !seen[s] {
                    seen[s] = true;
                    q.push_back(s);
                }
            }
        }
        seen
    }

    /// Whether `b` is reachable from `a` by a nonempty path.
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        self.reachable_from(a)[b]
    }

    /// Whether `b` is reachable from `a` by a path that avoids the direct
    /// edge `a -> b`.
    pub fn reaches_avoiding_edge(&self, a: usize, b: usize) -> bool {
        let mut seen = vec![false; self.len()];
        let mut q = VecDeque::new();
        for &s in &self.succ[a] {
            if s == b {
                continue; // skip the direct edge
            }
            if !seen[s] {
                seen[s] = true;
                q.push_back(s);
            }
        }
        while let Some(x) = q.pop_front() {
            if x == b {
                return true;
            }
            for &s in &self.succ[x] {
                if !seen[s] {
                    seen[s] = true;
                    q.push_back(s);
                }
            }
        }
        seen[b]
    }

    /// Whether `b` is reachable from `a` by a nonempty path whose
    /// *intermediate* nodes (everything except the endpoints) all satisfy
    /// `relay`.
    pub fn reaches_via(&self, a: usize, b: usize, relay: &[bool]) -> bool {
        let mut seen = vec![false; self.len()];
        let mut q = VecDeque::new();
        for &s in &self.succ[a] {
            if !seen[s] {
                seen[s] = true;
                q.push_back(s);
            }
        }
        while let Some(x) = q.pop_front() {
            if x == b {
                return true;
            }
            if !relay[x] {
                continue;
            }
            for &s in &self.succ[x] {
                if !seen[s] {
                    seen[s] = true;
                    q.push_back(s);
                }
            }
        }
        false
    }

    /// Like [`Self::reaches_via`], but ignoring the direct edge `a -> b`.
    pub fn reaches_avoiding_edge_via(&self, a: usize, b: usize, relay: &[bool]) -> bool {
        let mut seen = vec![false; self.len()];
        let mut q = VecDeque::new();
        for &s in &self.succ[a] {
            if s == b {
                continue; // skip the direct edge
            }
            if !seen[s] {
                seen[s] = true;
                q.push_back(s);
            }
        }
        while let Some(x) = q.pop_front() {
            if x == b {
                return true;
            }
            if !relay[x] {
                continue;
            }
            for &s in &self.succ[x] {
                if !seen[s] {
                    seen[s] = true;
                    q.push_back(s);
                }
            }
        }
        false
    }

    /// Transitive reduction of a DAG (paper §III-A3b): removes every edge
    /// `a -> b` for which an alternative path `a ->* b` exists. The result
    /// preserves reachability exactly (for DAGs the transitive reduction is
    /// unique).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the graph is acyclic.
    pub fn transitive_reduction(&self) -> DiGraph {
        debug_assert!(self.topo_order().is_some(), "transitive reduction requires a DAG");
        let mut out = DiGraph::new(self.len());
        for a in 0..self.len() {
            for &b in &self.succ[a] {
                if !self.reaches_avoiding_edge(a, b) {
                    out.add_edge(a, b);
                }
            }
        }
        out
    }

    /// Transitive reduction that only trusts `relay` nodes to transport
    /// ordering: edge `a -> b` is removed only when an alternative path
    /// exists whose intermediate nodes all satisfy `relay`. Used by CMMC,
    /// where a token chain through a node that can be *skipped* (a branch
    /// arm releasing its tokens vacuously) does not enforce the order the
    /// removed edge did.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the graph is acyclic.
    pub fn transitive_reduction_relaying(&self, relay: &[bool]) -> DiGraph {
        debug_assert!(self.topo_order().is_some(), "transitive reduction requires a DAG");
        let mut out = DiGraph::new(self.len());
        for a in 0..self.len() {
            for &b in &self.succ[a] {
                if !self.reaches_avoiding_edge_via(a, b, relay) {
                    out.add_edge(a, b);
                }
            }
        }
        out
    }

    /// Kahn topological order; `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.len()];
        for (_, b) in self.edges() {
            indeg[b] += 1;
        }
        let mut q: VecDeque<usize> = (0..self.len()).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(self.len());
        while let Some(x) = q.pop_front() {
            out.push(x);
            for &s in &self.succ[x] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    q.push_back(s);
                }
            }
        }
        if out.len() == self.len() {
            Some(out)
        } else {
            None
        }
    }

    /// Whether the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Condensed graph after merging nodes into groups: nodes are group
    /// ids, edges between distinct groups. `group[i]` assigns node `i` to
    /// a group in `0..num_groups`.
    pub fn quotient(&self, group: &[usize], num_groups: usize) -> DiGraph {
        let mut out = DiGraph::new(num_groups);
        for (a, b) in self.edges() {
            let (ga, gb) = (group[a], group[b]);
            if ga != gb {
                out.add_edge(ga, gb);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, plus shortcut 0 -> 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(0, 3);
        g
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.reaches(0, 3));
        assert!(!g.reaches(3, 0));
        assert!(g.reaches_avoiding_edge(0, 3));
        assert!(!g.reaches_avoiding_edge(1, 3));
    }

    #[test]
    fn transitive_reduction_removes_shortcut() {
        let g = diamond();
        let tr = g.transitive_reduction();
        assert!(!tr.has_edge(0, 3));
        assert!(tr.has_edge(0, 1));
        assert!(tr.has_edge(1, 3));
        assert_eq!(tr.edge_count(), 4);
        // Reachability preserved
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(g.reaches(a, b), tr.reaches(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn chain_reduction() {
        // 0->1->2 with extra 0->2: reduce to the chain
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let tr = g.transitive_reduction();
        assert_eq!(tr.edge_count(), 2);
    }

    #[test]
    fn topo_and_cycles() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &n) in order.iter().enumerate() {
                p[n] = i;
            }
            p
        };
        for (a, b) in g.edges() {
            assert!(pos[a] < pos[b]);
        }
        let mut c = DiGraph::new(2);
        c.add_edge(0, 1);
        c.add_edge(1, 0);
        assert!(!c.is_dag());
        assert!(g.is_dag());
    }

    #[test]
    fn quotient_collapses_groups() {
        let g = diamond();
        // group {0,1} and {2,3}
        let q = g.quotient(&[0, 0, 1, 1], 2);
        assert!(q.has_edge(0, 1));
        assert!(!q.has_edge(1, 0));
        // merging 1 and 2 across the diamond keeps it acyclic
        let q2 = g.quotient(&[0, 1, 1, 2], 3);
        assert!(q2.is_dag());
    }

    #[test]
    fn quotient_can_create_cycle() {
        // 0 -> 1 -> 2, grouping {0,2} creates a cycle with {1}
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let q = g.quotient(&[0, 1, 0], 2);
        assert!(!q.is_dag());
    }
}
