//! IR-level resource optimizations (paper §III-C).
//!
//! * **Route-through elimination (`rtelm`)**: when a hyperblock does
//!   nothing but copy one on-chip memory into another elementwise
//!   (`m2[i] = m1[i]` over the full extent), the intermediate memory and
//!   the copy stage are eliminated by rewiring every reader of `m2` to
//!   read `m1` directly. The legality conditions are checked
//!   conservatively: identity addressing over the whole (equal) extent,
//!   `m2` written nowhere else, every writer of `m1` preceding the copy
//!   and every reader of `m2` following it in program order.
//!
//! * **Memory strength reduction (`msr`)** — replacing scratchpads whose
//!   accessors all have constant addresses with FIFOs — arises in the
//!   paper from *full* loop unrolling, which materializes one access site
//!   per iteration. This reproduction unrolls spatially (lane counters,
//!   not expression cloning), so addresses stay affine and the same
//!   hardware saving is obtained structurally: constant-address accessors
//!   bank trivially and statically resolve to point-to-point streams at
//!   lowering time (see [`crate::mempart`]). `msr` therefore has no
//!   separate rewrite here; the flag is kept for interface parity.

use sara_ir::{CtrlKind, Expr, MemId, MemKind, Program};

/// Statistics of the IR-level optimization pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrOptStats {
    /// Route-through memories eliminated.
    pub rtelm_removed: usize,
}

/// Apply route-through elimination until a fixed point. Returns the
/// rewritten program (the input is not modified) and statistics.
pub fn rtelm(p: &Program) -> (Program, IrOptStats) {
    let mut q = p.clone();
    let mut stats = IrOptStats::default();
    while let Some((copy_hb, m1, m2)) = find_route_through(&q) {
        apply_elimination(&mut q, copy_hb, m1, m2);
        stats.rtelm_removed += 1;
    }
    (q, stats)
}

/// A candidate: hyperblock `hb` whose only effect is `m2[i] = m1[i]`.
fn find_route_through(p: &Program) -> Option<(sara_ir::CtrlId, MemId, MemId)> {
    let accesses = p.accesses();
    for hb in p.leaves() {
        let Some(h) = p.ctrl(hb).hyperblock() else { continue };
        // shape: idx, load m1[idx], store m2[idx] = load — exactly one
        // load and one unconditional store, addresses the parent loop's
        // index directly.
        let parent = p.ctrl(hb).parent?;
        if !matches!(p.ctrl(parent).kind, CtrlKind::Loop(_)) {
            continue;
        }
        // The copy must execute unconditionally: under a branch (or a
        // do-while) the readers of `m2` must see *stale* data on
        // iterations where the copy is skipped, but after rewiring they
        // would read `m1`'s fresh values. Found by differential fuzzing.
        let conditional = p
            .ancestors(hb)
            .into_iter()
            .any(|c| matches!(p.ctrl(c).kind, CtrlKind::Branch { .. } | CtrlKind::DoWhile { .. }));
        if conditional {
            continue;
        }
        let mut load: Option<(usize, MemId, Vec<sara_ir::ExprId>)> = None;
        let mut store: Option<(MemId, Vec<sara_ir::ExprId>, sara_ir::ExprId)> = None;
        let mut other_effects = false;
        for (eid, e) in h.iter() {
            match e {
                Expr::Load { mem, addr } => {
                    if load.is_some() {
                        other_effects = true;
                    }
                    load = Some((eid.index(), *mem, addr.clone()));
                }
                Expr::Store { mem, addr, value, cond } => {
                    if store.is_some() || cond.is_some() {
                        other_effects = true;
                    }
                    store = Some((*mem, addr.clone(), *value));
                }
                _ => {}
            }
        }
        if other_effects {
            continue;
        }
        let (Some((lslot, m1, laddr)), Some((m2, saddr, sval))) = (load, store) else { continue };
        if sval.index() != lslot || m1 == m2 {
            continue;
        }
        // both on-chip SRAMs of equal size
        let (d1, d2) = (p.mem(m1), p.mem(m2));
        if d1.kind != MemKind::Sram || d2.kind != MemKind::Sram || d1.size() != d2.size() {
            continue;
        }
        // identity addressing over the full extent
        let spec = p.ctrl(parent).loop_spec().expect("checked loop");
        let full = spec.trip_count() == Some(d2.size() as u64)
            && spec.min.as_const() == Some(0)
            && spec.step == 1;
        let idx_direct = |addr: &[sara_ir::ExprId]| {
            addr.len() == 1 && matches!(h.get(addr[0]), Some(Expr::Idx(c)) if *c == parent)
        };
        if !full || !idx_direct(&laddr) || !idx_direct(&saddr) {
            continue;
        }
        // m2 written only here; program order: writers(m1) < copy <
        // readers(m2); no reader of m2 inside the copy's own loop nest.
        let copy_pos = accesses
            .iter()
            .position(|a| a.id.hb == hb && a.mem == m2 && a.is_write)
            .expect("store enumerated");
        let m2_ok = accesses.iter().enumerate().all(|(i, a)| {
            if a.mem != m2 {
                return true;
            }
            if a.is_write {
                a.id.hb == hb
            } else {
                i > copy_pos && a.id.hb != hb
            }
        });
        let m1_ok = accesses.iter().enumerate().all(|(i, a)| {
            if a.mem != m1 || !a.is_write {
                return true;
            }
            i < copy_pos
        });
        if m2_ok && m1_ok {
            return Some((hb, m1, m2));
        }
    }
    None
}

fn apply_elimination(p: &mut Program, copy_hb: sara_ir::CtrlId, m1: MemId, m2: MemId) {
    // rewire readers of m2 to m1
    for ctrl in p.ctrls.iter_mut() {
        let CtrlKind::Leaf(h) = &mut ctrl.kind else { continue };
        for e in h.exprs.iter_mut() {
            if let Expr::Load { mem, .. } = e {
                if *mem == m2 {
                    *mem = m1;
                }
            }
        }
    }
    // empty the copy hyperblock (its loop becomes a no-op spinner that
    // lowering drops entirely: leaves without effects produce no units)
    if let CtrlKind::Leaf(h) = &mut p.ctrl_mut(copy_hb).kind {
        h.exprs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;
    use sara_ir::{BinOp, DType, LoopSpec, MemInit};

    /// src(DRAM) → a(SRAM) → [copy] → b(SRAM) → dst(DRAM): the copy stage
    /// and memory `b` disappear; results are unchanged.
    fn route_through_program() -> (Program, MemId) {
        let mut p = Program::new("rt");
        let root = p.root();
        let n = 8usize;
        let src = p.dram("src", &[n], DType::F64, MemInit::LinSpace { start: 1.0, step: 1.0 });
        let dst = p.dram("dst", &[n], DType::F64, MemInit::Zero);
        let a = p.sram("a", &[n], DType::F64);
        let b = p.sram("b", &[n], DType::F64);
        let l1 = p.add_loop(root, "fill", LoopSpec::new(0, n as i64, 1)).unwrap();
        let h1 = p.add_leaf(l1, "f").unwrap();
        let i1 = p.idx(h1, l1).unwrap();
        let v1 = p.load(h1, src, &[i1]).unwrap();
        let two = p.c_f64(h1, 2.0).unwrap();
        let v2 = p.bin(h1, BinOp::Mul, v1, two).unwrap();
        p.store(h1, a, &[i1], v2).unwrap();
        // pure copy a -> b
        let l2 = p.add_loop(root, "copy", LoopSpec::new(0, n as i64, 1)).unwrap();
        let h2 = p.add_leaf(l2, "c").unwrap();
        let i2 = p.idx(h2, l2).unwrap();
        let v = p.load(h2, a, &[i2]).unwrap();
        p.store(h2, b, &[i2], v).unwrap();
        // drain b -> dst
        let l3 = p.add_loop(root, "drain", LoopSpec::new(0, n as i64, 1)).unwrap();
        let h3 = p.add_leaf(l3, "d").unwrap();
        let i3 = p.idx(h3, l3).unwrap();
        let v3 = p.load(h3, b, &[i3]).unwrap();
        p.store(h3, dst, &[i3], v3).unwrap();
        p.validate().unwrap();
        (p, dst)
    }

    #[test]
    fn eliminates_pure_copy_and_preserves_semantics() {
        let (p, dst) = route_through_program();
        let (q, stats) = rtelm(&p);
        assert_eq!(stats.rtelm_removed, 1);
        q.validate().unwrap();
        let want = Interp::new(&p).run().unwrap().mem_f64(dst);
        let got = Interp::new(&q).run().unwrap().mem_f64(dst);
        assert_eq!(want, got);
        // memory `b` (MemId 3) lost all its accessors
        assert!(q.accesses_of(MemId(3)).is_empty());
    }

    #[test]
    fn keeps_copies_with_computation() {
        // the fill stage multiplies, so it is not a route-through
        let (p, _) = route_through_program();
        let (q, _) = rtelm(&p);
        // only the pure copy was removed; fill and drain remain effective
        assert_eq!(q.accesses_of(MemId(2)).len(), 2); // a: write + rewired read
    }

    #[test]
    fn refuses_partial_extent_copies() {
        let mut p = Program::new("rt2");
        let root = p.root();
        let n = 8usize;
        let a = p.sram("a", &[n], DType::F64);
        let b = p.sram("b", &[n], DType::F64);
        let out = p.dram("out", &[n], DType::F64, MemInit::Zero);
        // copy only half of a into b
        let l = p.add_loop(root, "copy", LoopSpec::new(0, (n / 2) as i64, 1)).unwrap();
        let h = p.add_leaf(l, "c").unwrap();
        let i = p.idx(h, l).unwrap();
        let v = p.load(h, a, &[i]).unwrap();
        p.store(h, b, &[i], v).unwrap();
        let l2 = p.add_loop(root, "drain", LoopSpec::new(0, n as i64, 1)).unwrap();
        let h2 = p.add_leaf(l2, "d").unwrap();
        let i2 = p.idx(h2, l2).unwrap();
        let v2 = p.load(h2, b, &[i2]).unwrap();
        p.store(h2, out, &[i2], v2).unwrap();
        p.validate().unwrap();
        let (_, stats) = rtelm(&p);
        assert_eq!(stats.rtelm_removed, 0);
    }

    #[test]
    fn refuses_conditional_copies() {
        // A pure copy under a branch arm must NOT be eliminated: readers
        // of the destination depend on the copy being *skipped* some
        // iterations (fuzz-found bug; see crates/fuzz/tests/regressions.rs).
        let mut p = Program::new("rtc");
        let root = p.root();
        let n = 4usize;
        let a = p.sram("a", &[n], DType::F64);
        let b = p.sram("b", &[n], DType::F64);
        let out = p.dram("out", &[n], DType::F64, MemInit::Zero);
        let cond = p.reg("cond", DType::I64);
        let head = p.add_leaf(root, "head").unwrap();
        let z = p.c_i64(head, 0).unwrap();
        let one = p.c_i64(head, 1).unwrap();
        p.store(head, cond, &[z], one).unwrap();
        let br = p.add_branch(root, "br", cond).unwrap();
        let l = p.add_loop(br, "copy", LoopSpec::new(0, n as i64, 1)).unwrap();
        let h = p.add_leaf(l, "c").unwrap();
        let i = p.idx(h, l).unwrap();
        let v = p.load(h, a, &[i]).unwrap();
        p.store(h, b, &[i], v).unwrap();
        let l2 = p.add_loop(root, "drain", LoopSpec::new(0, n as i64, 1)).unwrap();
        let h2 = p.add_leaf(l2, "d").unwrap();
        let i2 = p.idx(h2, l2).unwrap();
        let v2 = p.load(h2, b, &[i2]).unwrap();
        p.store(h2, out, &[i2], v2).unwrap();
        p.validate().unwrap();
        let (_, stats) = rtelm(&p);
        assert_eq!(stats.rtelm_removed, 0);
    }

    #[test]
    fn refuses_when_m2_has_other_writers() {
        let (mut p, _) = route_through_program();
        // add a second writer to b
        let root = p.root();
        let b = MemId(3);
        let l = p.add_loop(root, "extra", LoopSpec::new(0, 8, 1)).unwrap();
        let h = p.add_leaf(l, "e").unwrap();
        let i = p.idx(h, l).unwrap();
        let c = p.c_f64(h, 9.0).unwrap();
        p.store(h, b, &[i], c).unwrap();
        p.validate().unwrap();
        let (_, stats) = rtelm(&p);
        assert_eq!(stats.rtelm_removed, 0);
    }
}
