//! Resource usage reports produced by assignment.

use serde::{Deserialize, Serialize};

/// Physical resource usage of a compiled program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Pattern compute units consumed (main/request/merge/retime VCUs
    /// after partitioning and merging).
    pub pcus: usize,
    /// Pattern memory units consumed (VMU banks × multibuffering fits in
    /// one PMU; response/sync logic rides along with its PMU).
    pub pmus: usize,
    /// Address generators consumed.
    pub ags: usize,
    /// Total streams.
    pub streams: usize,
    /// Token (control) streams.
    pub token_streams: usize,
    /// Retiming units inserted to balance pipeline paths.
    pub retime_units: usize,
}

impl ResourceReport {
    /// Total physical units.
    pub fn total_pus(&self) -> usize {
        self.pcus + self.pmus + self.ags
    }

    /// Whether the design fits a chip with the given unit counts.
    pub fn fits(&self, pcus: usize, pmus: usize, ags: usize) -> bool {
        self.pcus <= pcus && self.pmus <= pmus && self.ags <= ags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fits() {
        let r = ResourceReport { pcus: 10, pmus: 5, ags: 2, ..Default::default() };
        assert_eq!(r.total_pus(), 17);
        assert!(r.fits(10, 5, 2));
        assert!(!r.fits(9, 5, 2));
    }
}
