//! Resource usage reports produced by assignment, and the human-readable
//! bottleneck summary rendered from a simulation profile.

use crate::profile::{DramEpoch, SimProfile};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Physical resource usage of a compiled program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Pattern compute units consumed (main/request/merge/retime VCUs
    /// after partitioning and merging).
    pub pcus: usize,
    /// Pattern memory units consumed (VMU banks × multibuffering fits in
    /// one PMU; response/sync logic rides along with its PMU).
    pub pmus: usize,
    /// Address generators consumed.
    pub ags: usize,
    /// Total streams.
    pub streams: usize,
    /// Token (control) streams.
    pub token_streams: usize,
    /// Retiming units inserted to balance pipeline paths.
    pub retime_units: usize,
}

impl ResourceReport {
    /// Total physical units.
    pub fn total_pus(&self) -> usize {
        self.pcus + self.pmus + self.ags
    }

    /// Whether the design fits a chip with the given unit counts.
    pub fn fits(&self, pcus: usize, pmus: usize, ags: usize) -> bool {
        self.pcus <= pcus && self.pmus <= pmus && self.ags <= ags
    }
}

/// Render a top-N bottleneck summary of a simulation profile: the
/// worst-stalled VCUs with their per-reason breakdown, the
/// most-backpressured streams, and the DRAM picture. Percentages are
/// relative to total simulated cycles.
pub fn bottleneck_summary(p: &SimProfile, top_n: usize) -> String {
    let mut out = String::new();
    let pct = |c: u64| 100.0 * c as f64 / p.cycles.max(1) as f64;

    let _ = writeln!(out, "bottlenecks over {} cycles:", p.cycles);
    let worst = p.worst_stalled_vcus();
    if worst.is_empty() {
        let _ = writeln!(out, "  no VCU stalls recorded");
    } else {
        let _ = writeln!(out, "  worst-stalled VCUs (top {}):", top_n.min(worst.len()));
        for v in worst.iter().take(top_n) {
            let mut reasons = String::new();
            for r in crate::profile::StallReason::ALL {
                let c = v.stalled(r);
                if c > 0 {
                    let _ = write!(reasons, " {}={:.1}%", r.label(), pct(c));
                }
            }
            let _ = writeln!(
                out,
                "    {:<24} stalled {:>5.1}% active {:>5.1}% ({} firings){reasons}",
                v.label,
                pct(v.stalled_total()),
                pct(v.active_cycles),
                v.firings
            );
        }
    }

    let backed = p.most_backpressured_streams();
    if backed.is_empty() {
        let _ = writeln!(out, "  no stream backpressure recorded");
    } else {
        let _ = writeln!(out, "  most-backpressured streams (top {}):", top_n.min(backed.len()));
        for s in backed.iter().take(top_n) {
            let _ = writeln!(
                out,
                "    {:<40} full {:>5.1}% hwm {}/{} ({} pushes)",
                s.label,
                pct(s.backpressure_cycles),
                s.occupancy_hwm,
                s.slots,
                s.pushes
            );
        }
    }

    let (bytes, hits, misses) = p.dram_epochs.iter().fold((0u64, 0u64, 0u64), |acc, e| {
        (acc.0 + e.total_bytes(), acc.1 + e.row_hits, acc.2 + e.row_misses)
    });
    if bytes > 0 {
        let peak_epoch_bytes = p.dram_epochs.iter().map(DramEpoch::total_bytes).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "  dram: {:.1} B/cycle avg, {:.1} B/cycle peak epoch, {:.0}% row hits",
            bytes as f64 / p.cycles.max(1) as f64,
            peak_epoch_bytes as f64 / p.epoch_cycles.max(1) as f64,
            100.0 * hits as f64 / (hits + misses).max(1) as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{StallReason, StreamProfile, VcuProfile};

    #[test]
    fn totals_and_fits() {
        let r = ResourceReport { pcus: 10, pmus: 5, ags: 2, ..Default::default() };
        assert_eq!(r.total_pus(), 17);
        assert!(r.fits(10, 5, 2));
        assert!(!r.fits(9, 5, 2));
    }

    #[test]
    fn summary_names_worst_vcus_streams_and_dram() {
        let mut stalled = [0u64; 4];
        stalled[StallReason::DramBlocked.index()] = 60;
        let p = SimProfile {
            cycles: 100,
            epoch_cycles: 10,
            vcus: vec![
                VcuProfile {
                    label: "vcu_hot".into(),
                    firings: 40,
                    active_cycles: 40,
                    idle_cycles: 0,
                    stalled_cycles: stalled,
                    segments: Vec::new(),
                    segments_truncated: false,
                },
                VcuProfile {
                    label: "vcu_cold".into(),
                    firings: 100,
                    active_cycles: 100,
                    idle_cycles: 0,
                    stalled_cycles: [0; 4],
                    segments: Vec::new(),
                    segments_truncated: false,
                },
            ],
            streams: vec![StreamProfile {
                label: "a -> b [data]".into(),
                slots: 8,
                occupancy_hwm: 8,
                backpressure_cycles: 30,
                pushes: 50,
                pops: 50,
            }],
            dram_epochs: vec![DramEpoch {
                start_cycle: 0,
                read_bytes: 400,
                write_bytes: 100,
                row_hits: 9,
                row_misses: 1,
            }],
        };
        let s = bottleneck_summary(&p, 3);
        assert!(s.contains("vcu_hot"), "{s}");
        assert!(!s.contains("vcu_cold"), "{s}");
        assert!(s.contains("dram-blocked=60.0%"), "{s}");
        assert!(s.contains("a -> b [data]"), "{s}");
        assert!(s.contains("full  30.0%"), "{s}");
        assert!(s.contains("90% row hits"), "{s}");
    }

    #[test]
    fn summary_handles_quiet_profiles() {
        let p = SimProfile {
            cycles: 10,
            epoch_cycles: 10,
            vcus: Vec::new(),
            streams: Vec::new(),
            dram_epochs: Vec::new(),
        };
        let s = bottleneck_summary(&p, 5);
        assert!(s.contains("no VCU stalls"), "{s}");
        assert!(s.contains("no stream backpressure"), "{s}");
        assert!(!s.contains("dram:"), "{s}");
    }
}
