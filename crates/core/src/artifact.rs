//! Stage-boundary artifacts: stable content hashing and a bit-exact
//! JSON serialization of the [`Vudfg`].
//!
//! The `sarad` compile-and-simulate service treats each pipeline stage's
//! output as a cacheable, verifiable artifact. That needs two things
//! from the compiler crate:
//!
//! * **Stable hashing** — [`StableHasher`] derives a deterministic
//!   128-bit content key from a stage's inputs (program text, compiler
//!   options, chip, PnR seed). The hash is *not* `std::hash::Hasher`
//!   (whose output is explicitly unstable across releases); it is a
//!   fixed FNV-1a construction whose values may be persisted in on-disk
//!   cache indexes. Domain separation comes from length-prefixing every
//!   field, so `("ab", "c")` and `("a", "bc")` never collide.
//! * **A bit-exact VUDFG wire form** — [`vudfg_json`] /
//!   [`vudfg_from_json`] round-trip the full graph, including every
//!   float of initial tensor data (encoded by IEEE-754 bit pattern, not
//!   decimal text), so a cached lowered or placed graph deserializes to
//!   a `Vudfg` that compares equal to the freshly compiled one and
//!   simulates to bit-identical cycle counts.
//!
//! Canonical-text helpers ([`program_canon`], [`options_canon`]) define
//! what "the same program, the same flags" means for cache keys: any
//! semantic difference must change the text (and therefore the hash);
//! spurious differences only cost a recompute, never a wrong hit.

use crate::compile::CompilerOptions;
use crate::shard::ShardPlan;
use crate::vudfg::{
    AgDir, AgUnit, CBound, DfgNode, DramTensor, Level, NodeOp, OutPort, Stream, StreamId,
    StreamKind, SyncUnit, TokenRule, Unit, UnitId, UnitKind, Vcu, VcuRole, Vmu, VmuReadPort,
    VmuWritePort, Vudfg, XbarColl, XbarDist,
};
use plasticine_arch::SystemSpec;
use sara_ir::{AccessId, BinOp, CtrlId, Elem, ExprId, MemId, Program, UnOp};
use sara_util::Json;

// ---------------------------------------------------------------------------
// Stable hashing
// ---------------------------------------------------------------------------

/// Deterministic 128-bit content hasher (two independent FNV-1a 64-bit
/// lanes) with length-prefixed field framing. Stable across processes,
/// platforms, and releases — safe to persist in cache indexes.
#[derive(Debug, Clone)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET_LO: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_HI: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> StableHasher {
        StableHasher { lo: FNV_OFFSET_LO, hi: FNV_OFFSET_HI }
    }

    /// Absorb raw bytes (no framing; see [`StableHasher::field`]).
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b ^ 0x5a)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb one length-prefixed field: concatenation-ambiguity-proof.
    pub fn field(&mut self, bytes: &[u8]) -> &mut Self {
        self.bytes(&(bytes.len() as u64).to_le_bytes());
        self.bytes(bytes)
    }

    /// Absorb a string field.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.field(s.as_bytes())
    }

    /// Absorb an integer field.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.field(&v.to_le_bytes())
    }

    /// The 32-hex-character digest.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// One-shot digest of a byte string.
pub fn stable_hash_hex(bytes: &[u8]) -> String {
    let mut h = StableHasher::new();
    h.field(bytes);
    h.hex()
}

// ---------------------------------------------------------------------------
// Canonical key texts
// ---------------------------------------------------------------------------

/// Canonical text of a program for content addressing: the pretty-printed
/// control tree plus every memory's initial-contents spec (which the
/// pretty printer omits but which changes simulation results).
pub fn program_canon(p: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = p.pretty();
    for (i, m) in p.mems.iter().enumerate() {
        let _ = writeln!(out, "init m{i} {:?}", m.init);
    }
    out
}

/// Canonical text of the full compiler-option set. Derived `Debug`
/// rendering: deterministic, and total over every field — renaming a
/// field invalidates old cache entries (a safe miss), while two distinct
/// option sets always render differently.
pub fn options_canon(opts: &CompilerOptions) -> String {
    format!("{opts:?}")
}

/// Content key of a compile stage: program, options, and the *full*
/// system/topology description ([`SystemSpec::canon`] covers every chip
/// and link field), so cached artifacts can never alias across two
/// topologies that happen to share a display name.
pub fn compile_key(p: &Program, opts: &CompilerOptions, system: &SystemSpec) -> String {
    let mut h = StableHasher::new();
    h.str("sarad-compile-v2").str(&program_canon(p)).str(&options_canon(opts)).str(&system.canon());
    h.hex()
}

// ---------------------------------------------------------------------------
// Shard-plan wire form
// ---------------------------------------------------------------------------

/// Serialize a [`ShardPlan`] so a multi-chip placement artifact carries
/// the unit→chip mapping and crossing set the linked simulation needs
/// (`cut_traffic` is encoded by IEEE-754 bit pattern, like tensor data).
pub fn shard_plan_json(p: &ShardPlan) -> Json {
    Json::object()
        .set("count", p.count)
        .set("chip_of", Json::Array(p.chip_of.iter().map(|&c| Json::from(c)).collect()))
        .set("crossings", Json::Array(p.crossings.iter().map(|s| Json::from(s.0)).collect()))
        .set("cut_traffic", Json::Str(format!("f{:016x}", p.cut_traffic.to_bits())))
}

/// Deserialize a [`ShardPlan`] from its JSON wire form.
///
/// # Errors
///
/// A one-line description of the first missing or ill-typed field.
pub fn shard_plan_from_json(v: &Json) -> Result<ShardPlan, String> {
    let u32_of = |e: &Json, what: &str| {
        e.as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("shard plan: bad {what}"))
    };
    let chip_of = get_arr(v, "chip_of")?
        .iter()
        .map(|e| u32_of(e, "chip index"))
        .collect::<Result<Vec<u32>, String>>()?;
    let crossings = get_arr(v, "crossings")?
        .iter()
        .map(|e| u32_of(e, "crossing stream id").map(StreamId))
        .collect::<Result<Vec<StreamId>, String>>()?;
    let cut = get_str(v, "cut_traffic")?;
    let cut_traffic = cut
        .strip_prefix('f')
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| format!("shard plan: bad cut_traffic {cut:?}"))?;
    Ok(ShardPlan { count: get_u32(v, "count")?, chip_of, crossings, cut_traffic })
}

// ---------------------------------------------------------------------------
// Elem / operator encoding
// ---------------------------------------------------------------------------

/// Bit-exact element encoding: integers as `"i<decimal>"`, floats as
/// `"f<16-hex IEEE-754 bits>"` (round-trips NaN payloads and -0.0).
fn elem_str(e: Elem) -> String {
    match e {
        Elem::I64(v) => format!("i{v}"),
        Elem::F64(v) => format!("f{:016x}", v.to_bits()),
    }
}

fn elem_from(s: &str) -> Result<Elem, String> {
    if let Some(rest) = s.strip_prefix('i') {
        rest.parse::<i64>().map(Elem::I64).map_err(|_| format!("bad int element {s:?}"))
    } else if let Some(rest) = s.strip_prefix('f') {
        u64::from_str_radix(rest, 16)
            .map(|bits| Elem::F64(f64::from_bits(bits)))
            .map_err(|_| format!("bad float element {s:?}"))
    } else {
        Err(format!("bad element {s:?}"))
    }
}

fn elems_json(v: &[Elem]) -> Json {
    Json::Array(v.iter().map(|&e| Json::Str(elem_str(e))).collect())
}

fn elems_from(v: &Json, what: &str) -> Result<Vec<Elem>, String> {
    v.as_array()
        .ok_or_else(|| format!("{what}: expected element array"))?
        .iter()
        .map(|e| elem_from(e.as_str().ok_or_else(|| format!("{what}: non-string element"))?))
        .collect()
}

fn binop_from(s: &str) -> Result<BinOp, String> {
    use BinOp::*;
    Ok(match s {
        "Add" => Add,
        "Sub" => Sub,
        "Mul" => Mul,
        "Div" => Div,
        "Mod" => Mod,
        "Min" => Min,
        "Max" => Max,
        "And" => And,
        "Or" => Or,
        "Xor" => Xor,
        "Shl" => Shl,
        "Shr" => Shr,
        "Lt" => Lt,
        "Le" => Le,
        "Gt" => Gt,
        "Ge" => Ge,
        "Eq" => Eq,
        "Ne" => Ne,
        other => return Err(format!("unknown binop {other:?}")),
    })
}

fn unop_from(s: &str) -> Result<UnOp, String> {
    use UnOp::*;
    Ok(match s {
        "Neg" => Neg,
        "Not" => Not,
        "Abs" => Abs,
        "Exp" => Exp,
        "Log" => Log,
        "Sqrt" => Sqrt,
        "Sigmoid" => Sigmoid,
        "Tanh" => Tanh,
        "Relu" => Relu,
        "Floor" => Floor,
        "ToF" => ToF,
        "ToI" => ToI,
        other => return Err(format!("unknown unop {other:?}")),
    })
}

// ---------------------------------------------------------------------------
// Field-access helpers for decoding
// ---------------------------------------------------------------------------

fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    get(v, key)?.as_u64().ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn get_u32(v: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(v, key)?).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, key)?).map_err(|_| format!("field {key:?} exceeds usize"))
}

fn get_i64(v: &Json, key: &str) -> Result<i64, String> {
    get(v, key)?.as_i64().ok_or_else(|| format!("field {key:?} must be an integer"))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    get(v, key)?.as_str().ok_or_else(|| format!("field {key:?} must be a string"))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    get(v, key)?.as_bool().ok_or_else(|| format!("field {key:?} must be a boolean"))
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    get(v, key)?.as_array().ok_or_else(|| format!("field {key:?} must be an array"))
}

fn opt_usize(v: &Json, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be null or a non-negative integer")),
    }
}

fn usize_arr(v: &Json, key: &str) -> Result<Vec<usize>, String> {
    get_arr(v, key)?
        .iter()
        .map(|e| {
            e.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("field {key:?}: non-integer entry"))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// VUDFG -> JSON
// ---------------------------------------------------------------------------

fn kind_json(k: StreamKind) -> Json {
    match k {
        StreamKind::Vector(w) => Json::object().set("t", "vec").set("w", w),
        StreamKind::Scalar => Json::object().set("t", "scalar"),
        StreamKind::Token { init } => Json::object().set("t", "tok").set("init", init),
    }
}

fn cbound_json(b: CBound) -> Json {
    match b {
        CBound::Const(v) => Json::object().set("c", v),
        CBound::Port(p) => Json::object().set("port", p),
    }
}

fn level_json(l: &Level) -> Json {
    match l {
        Level::Counter { min, max, step, lane_offset, lane_stride, ctrl } => Json::object()
            .set("t", "ctr")
            .set("min", cbound_json(*min))
            .set("max", cbound_json(*max))
            .set("step", *step)
            .set("off", *lane_offset)
            .set("stride", *lane_stride)
            .set("ctrl", ctrl.0),
        Level::Gate { cond_in, expect, ctrl } => Json::object()
            .set("t", "gate")
            .set("cond", *cond_in)
            .set("expect", *expect)
            .set("ctrl", ctrl.0),
        Level::While { cond_in, ctrl } => {
            Json::object().set("t", "while").set("cond", *cond_in).set("ctrl", ctrl.0)
        }
    }
}

fn node_json(n: &DfgNode) -> Json {
    let op = match &n.op {
        NodeOp::Const(e) => Json::object().set("t", "const").set("v", elem_str(*e)),
        NodeOp::CounterIdx { level } => Json::object().set("t", "cidx").set("level", *level),
        NodeOp::IsFirst { level } => Json::object().set("t", "isfirst").set("level", *level),
        NodeOp::IsLast { level } => Json::object().set("t", "islast").set("level", *level),
        NodeOp::Un(op) => Json::object().set("t", "un").set("op", format!("{op:?}")),
        NodeOp::Bin(op) => Json::object().set("t", "bin").set("op", format!("{op:?}")),
        NodeOp::Mux => Json::object().set("t", "mux"),
        NodeOp::StreamIn { port } => Json::object().set("t", "in").set("port", *port),
        NodeOp::StreamOut { port, pred, empty_pred } => Json::object()
            .set("t", "out")
            .set("port", *port)
            .set("pred", *pred)
            .set("empty", *empty_pred),
        NodeOp::Reduce { op, init, reset_level } => Json::object()
            .set("t", "red")
            .set("op", format!("{op:?}"))
            .set("init", elem_str(*init))
            .set("reset", *reset_level),
        NodeOp::VecReduce(op) => Json::object().set("t", "vred").set("op", format!("{op:?}")),
    };
    Json::object().set("op", op).set("ins", Json::from(n.ins.clone()))
}

fn access_json(a: AccessId) -> Json {
    Json::object().set("hb", a.hb.0).set("expr", a.expr.0)
}

fn role_json(r: &VcuRole) -> Json {
    match r {
        VcuRole::Main { hb, lane } => {
            Json::object().set("t", "main").set("hb", hb.0).set("lane", *lane)
        }
        VcuRole::Request { access, lane } => {
            Json::object().set("t", "req").set("access", access_json(*access)).set("lane", *lane)
        }
        VcuRole::Response { access, lane } => {
            Json::object().set("t", "resp").set("access", access_json(*access)).set("lane", *lane)
        }
        VcuRole::Retime => Json::object().set("t", "retime"),
        VcuRole::Merge => Json::object().set("t", "merge"),
        VcuRole::Split { of, index } => {
            Json::object().set("t", "split").set("of", of.0).set("index", *index)
        }
    }
}

/// `usize::MAX` (the "once for the whole execution" token level) encodes
/// as `-1`; everything else as itself.
fn token_level_json(level: usize) -> Json {
    if level == usize::MAX {
        Json::Int(-1)
    } else {
        Json::from(level)
    }
}

fn token_rule_json(r: &TokenRule) -> Json {
    Json::object().set("port", r.port).set("level", token_level_json(r.level))
}

fn token_rules_from(v: &Json, key: &str) -> Result<Vec<TokenRule>, String> {
    get_arr(v, key)?
        .iter()
        .map(|r| {
            let level = match get_i64(r, "level")? {
                -1 => usize::MAX,
                n if n >= 0 => usize::try_from(n).map_err(|_| "token level overflow")?,
                n => return Err(format!("bad token level {n}")),
            };
            Ok(TokenRule { port: get_usize(r, "port")?, level })
        })
        .collect()
}

fn vcu_json(v: &Vcu) -> Json {
    // Gate masks are u64 bit sets; hex strings sidestep the i64 ceiling
    // of the JSON integer type.
    let masks: Vec<Json> =
        v.producer_gate_mask.iter().map(|m| Json::Str(format!("{m:x}"))).collect();
    Json::object()
        .set("t", "vcu")
        .set("levels", Json::Array(v.levels.iter().map(level_json).collect()))
        .set("dfg", Json::Array(v.dfg.iter().map(node_json).collect()))
        .set("width", v.width)
        .set("role", role_json(&v.role))
        .set("pops", Json::Array(v.token_pops.iter().map(token_rule_json).collect()))
        .set("pushes", Json::Array(v.token_pushes.iter().map(token_rule_json).collect()))
        .set("gate_masks", Json::Array(masks))
        .set("epoch", v.epoch_emit)
}

fn unit_kind_json(k: &UnitKind) -> Json {
    match k {
        UnitKind::Vcu(v) => vcu_json(v),
        UnitKind::Vmu(m) => Json::object()
            .set("t", "vmu")
            .set("mem", m.mem.0)
            .set("bank", Json::Array(vec![Json::from(m.bank.0), Json::from(m.bank.1)]))
            .set("lane", m.lane)
            .set("words", m.words)
            .set("init", elems_json(&m.init))
            .set("multibuffer", m.multibuffer)
            .set(
                "wports",
                Json::Array(
                    m.write_ports
                        .iter()
                        .map(|p| {
                            Json::object()
                                .set("addr", p.addr_in)
                                .set("data", p.data_in)
                                .set("ack", p.ack_out)
                        })
                        .collect(),
                ),
            )
            .set(
                "rports",
                Json::Array(
                    m.read_ports
                        .iter()
                        .map(|p| Json::object().set("addr", p.addr_in).set("data", p.data_out))
                        .collect(),
                ),
            )
            .set("read_latency", m.read_latency),
        UnitKind::Ag(a) => Json::object()
            .set("t", "ag")
            .set("mem", a.mem.0)
            .set("dir", if a.dir == AgDir::Read { "r" } else { "w" })
            .set("addr", a.addr_in)
            .set("data", a.data_in)
            .set("out", a.out)
            .set("width", a.width)
            .set("base", i64::try_from(a.base_addr).unwrap_or(i64::MAX)),
        UnitKind::Sync(SyncUnit) => Json::object().set("t", "sync"),
        UnitKind::XbarDist(x) => Json::object()
            .set("t", "xd")
            .set("bank_in", x.bank_in)
            .set("payload_in", x.payload_in)
            .set("outs", Json::from(x.bank_outs.clone()))
            .set("ba", x.ba_out),
        UnitKind::XbarColl(x) => Json::object()
            .set("t", "xc")
            .set("ba_in", x.ba_in)
            .set("ins", Json::from(x.bank_ins.clone()))
            .set("out", x.out),
    }
}

/// Serialize a VUDFG (lowered or placed — stream latencies are included)
/// to its bit-exact JSON wire form.
pub fn vudfg_json(g: &Vudfg) -> Json {
    let streams: Vec<Json> = g
        .streams
        .iter()
        .map(|s| {
            Json::object()
                .set("src", s.src.0)
                .set("dst", s.dst.0)
                .set("kind", kind_json(s.kind))
                .set("depth", s.depth)
                .set("latency", s.latency)
                .set("label", s.label.as_str())
        })
        .collect();
    let units: Vec<Json> = g
        .units
        .iter()
        .map(|u| {
            let outputs: Vec<Json> = u
                .outputs
                .iter()
                .map(|p| Json::Array(p.streams.iter().map(|s| Json::from(s.0)).collect()))
                .collect();
            Json::object()
                .set("label", u.label.as_str())
                .set("kind", unit_kind_json(&u.kind))
                .set("inputs", Json::Array(u.inputs.iter().map(|s| Json::from(s.0)).collect()))
                .set("outputs", Json::Array(outputs))
        })
        .collect();
    let drams: Vec<Json> = g
        .drams
        .iter()
        .map(|d| {
            Json::object()
                .set("mem", d.mem.0)
                .set("base", i64::try_from(d.base).unwrap_or(i64::MAX))
                .set("words", d.words)
                .set("init", elems_json(&d.init))
        })
        .collect();
    Json::object()
        .set("format", "sara-vudfg-v1")
        .set("name", g.name.as_str())
        .set("units", Json::Array(units))
        .set("streams", Json::Array(streams))
        .set("drams", Json::Array(drams))
}

// ---------------------------------------------------------------------------
// JSON -> VUDFG
// ---------------------------------------------------------------------------

fn kind_from(v: &Json) -> Result<StreamKind, String> {
    match get_str(v, "t")? {
        "vec" => Ok(StreamKind::Vector(get_u32(v, "w")?)),
        "scalar" => Ok(StreamKind::Scalar),
        "tok" => Ok(StreamKind::Token { init: get_u32(v, "init")? }),
        other => Err(format!("unknown stream kind {other:?}")),
    }
}

fn cbound_from(v: &Json) -> Result<CBound, String> {
    if let Some(c) = v.get("c") {
        c.as_i64().map(CBound::Const).ok_or_else(|| "bad const bound".to_string())
    } else {
        Ok(CBound::Port(get_usize(v, "port")?))
    }
}

fn level_from(v: &Json) -> Result<Level, String> {
    match get_str(v, "t")? {
        "ctr" => Ok(Level::Counter {
            min: cbound_from(get(v, "min")?)?,
            max: cbound_from(get(v, "max")?)?,
            step: get_i64(v, "step")?,
            lane_offset: get_i64(v, "off")?,
            lane_stride: get_i64(v, "stride")?,
            ctrl: CtrlId(get_u32(v, "ctrl")?),
        }),
        "gate" => Ok(Level::Gate {
            cond_in: get_usize(v, "cond")?,
            expect: get_bool(v, "expect")?,
            ctrl: CtrlId(get_u32(v, "ctrl")?),
        }),
        "while" => {
            Ok(Level::While { cond_in: get_usize(v, "cond")?, ctrl: CtrlId(get_u32(v, "ctrl")?) })
        }
        other => Err(format!("unknown level kind {other:?}")),
    }
}

fn node_from(v: &Json) -> Result<DfgNode, String> {
    let op = get(v, "op")?;
    let parsed = match get_str(op, "t")? {
        "const" => NodeOp::Const(elem_from(get_str(op, "v")?)?),
        "cidx" => NodeOp::CounterIdx { level: get_usize(op, "level")? },
        "isfirst" => NodeOp::IsFirst { level: get_usize(op, "level")? },
        "islast" => NodeOp::IsLast { level: get_usize(op, "level")? },
        "un" => NodeOp::Un(unop_from(get_str(op, "op")?)?),
        "bin" => NodeOp::Bin(binop_from(get_str(op, "op")?)?),
        "mux" => NodeOp::Mux,
        "in" => NodeOp::StreamIn { port: get_usize(op, "port")? },
        "out" => NodeOp::StreamOut {
            port: get_usize(op, "port")?,
            pred: get_bool(op, "pred")?,
            empty_pred: get_bool(op, "empty")?,
        },
        "red" => NodeOp::Reduce {
            op: binop_from(get_str(op, "op")?)?,
            init: elem_from(get_str(op, "init")?)?,
            reset_level: get_usize(op, "reset")?,
        },
        "vred" => NodeOp::VecReduce(binop_from(get_str(op, "op")?)?),
        other => return Err(format!("unknown node op {other:?}")),
    };
    Ok(DfgNode { op: parsed, ins: usize_arr(v, "ins")? })
}

fn access_from(v: &Json) -> Result<AccessId, String> {
    Ok(AccessId { hb: CtrlId(get_u32(v, "hb")?), expr: ExprId(get_u32(v, "expr")?) })
}

fn role_from(v: &Json) -> Result<VcuRole, String> {
    match get_str(v, "t")? {
        "main" => Ok(VcuRole::Main { hb: CtrlId(get_u32(v, "hb")?), lane: get_u32(v, "lane")? }),
        "req" => Ok(VcuRole::Request {
            access: access_from(get(v, "access")?)?,
            lane: get_u32(v, "lane")?,
        }),
        "resp" => Ok(VcuRole::Response {
            access: access_from(get(v, "access")?)?,
            lane: get_u32(v, "lane")?,
        }),
        "retime" => Ok(VcuRole::Retime),
        "merge" => Ok(VcuRole::Merge),
        "split" => {
            Ok(VcuRole::Split { of: CtrlId(get_u32(v, "of")?), index: get_u32(v, "index")? })
        }
        other => Err(format!("unknown vcu role {other:?}")),
    }
}

fn vcu_from(v: &Json) -> Result<Vcu, String> {
    let masks = get_arr(v, "gate_masks")?
        .iter()
        .map(|m| {
            m.as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| "bad gate mask".to_string())
        })
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(Vcu {
        levels: get_arr(v, "levels")?.iter().map(level_from).collect::<Result<_, _>>()?,
        dfg: get_arr(v, "dfg")?.iter().map(node_from).collect::<Result<_, _>>()?,
        width: get_u32(v, "width")?,
        role: role_from(get(v, "role")?)?,
        token_pops: token_rules_from(v, "pops")?,
        token_pushes: token_rules_from(v, "pushes")?,
        producer_gate_mask: masks,
        epoch_emit: opt_usize(v, "epoch")?,
    })
}

fn unit_kind_from(v: &Json) -> Result<UnitKind, String> {
    match get_str(v, "t")? {
        "vcu" => Ok(UnitKind::Vcu(vcu_from(v)?)),
        "vmu" => {
            let bank = get_arr(v, "bank")?;
            let bank_of = |i: usize| {
                bank.get(i)
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "bad bank pair".to_string())
            };
            Ok(UnitKind::Vmu(Vmu {
                mem: MemId(get_u32(v, "mem")?),
                bank: (bank_of(0)?, bank_of(1)?),
                lane: get_u32(v, "lane")?,
                words: get_usize(v, "words")?,
                init: elems_from(get(v, "init")?, "vmu init")?,
                multibuffer: get_u32(v, "multibuffer")?,
                write_ports: get_arr(v, "wports")?
                    .iter()
                    .map(|p| {
                        Ok(VmuWritePort {
                            addr_in: get_usize(p, "addr")?,
                            data_in: get_usize(p, "data")?,
                            ack_out: opt_usize(p, "ack")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
                read_ports: get_arr(v, "rports")?
                    .iter()
                    .map(|p| {
                        Ok(VmuReadPort {
                            addr_in: get_usize(p, "addr")?,
                            data_out: get_usize(p, "data")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
                read_latency: get_u32(v, "read_latency")?,
            }))
        }
        "ag" => Ok(UnitKind::Ag(AgUnit {
            mem: MemId(get_u32(v, "mem")?),
            dir: match get_str(v, "dir")? {
                "r" => AgDir::Read,
                "w" => AgDir::Write,
                other => return Err(format!("unknown ag dir {other:?}")),
            },
            addr_in: get_usize(v, "addr")?,
            data_in: opt_usize(v, "data")?,
            out: get_usize(v, "out")?,
            width: get_u32(v, "width")?,
            base_addr: get_u64(v, "base")?,
        })),
        "sync" => Ok(UnitKind::Sync(SyncUnit)),
        "xd" => Ok(UnitKind::XbarDist(XbarDist {
            bank_in: get_usize(v, "bank_in")?,
            payload_in: get_usize(v, "payload_in")?,
            bank_outs: usize_arr(v, "outs")?,
            ba_out: opt_usize(v, "ba")?,
        })),
        "xc" => Ok(UnitKind::XbarColl(XbarColl {
            ba_in: get_usize(v, "ba_in")?,
            bank_ins: usize_arr(v, "ins")?,
            out: get_usize(v, "out")?,
        })),
        other => Err(format!("unknown unit kind {other:?}")),
    }
}

/// Deserialize a VUDFG from its JSON wire form.
///
/// # Errors
///
/// A one-line description of the first missing, ill-typed, or
/// unrecognized field.
pub fn vudfg_from_json(v: &Json) -> Result<Vudfg, String> {
    let format = get_str(v, "format")?;
    if format != "sara-vudfg-v1" {
        return Err(format!("unsupported vudfg format {format:?}"));
    }
    let stream_ids = |u: &Json, key: &str| -> Result<Vec<StreamId>, String> {
        get_arr(u, key)?
            .iter()
            .map(|s| {
                s.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(StreamId)
                    .ok_or_else(|| format!("bad stream id in {key:?}"))
            })
            .collect()
    };
    let units = get_arr(v, "units")?
        .iter()
        .map(|u| {
            let outputs = get_arr(u, "outputs")?
                .iter()
                .enumerate()
                .map(|(i, port)| {
                    let ids = port
                        .as_array()
                        .ok_or_else(|| format!("output port {i} must be an array"))?
                        .iter()
                        .map(|s| {
                            s.as_u64()
                                .and_then(|n| u32::try_from(n).ok())
                                .map(StreamId)
                                .ok_or_else(|| "bad output stream id".to_string())
                        })
                        .collect::<Result<Vec<StreamId>, String>>()?;
                    Ok(OutPort { streams: ids })
                })
                .collect::<Result<Vec<OutPort>, String>>()?;
            Ok(Unit {
                label: get_str(u, "label")?.to_string(),
                kind: unit_kind_from(get(u, "kind")?)?,
                inputs: stream_ids(u, "inputs")?,
                outputs,
            })
        })
        .collect::<Result<Vec<Unit>, String>>()?;
    let streams = get_arr(v, "streams")?
        .iter()
        .map(|s| {
            Ok(Stream {
                src: UnitId(get_u32(s, "src")?),
                dst: UnitId(get_u32(s, "dst")?),
                kind: kind_from(get(s, "kind")?)?,
                depth: get_u32(s, "depth")?,
                latency: get_u32(s, "latency")?,
                label: get_str(s, "label")?.to_string(),
            })
        })
        .collect::<Result<Vec<Stream>, String>>()?;
    let drams = get_arr(v, "drams")?
        .iter()
        .map(|d| {
            Ok(DramTensor {
                mem: MemId(get_u32(d, "mem")?),
                base: get_u64(d, "base")?,
                words: get_usize(d, "words")?,
                init: elems_from(get(d, "init")?, "dram init")?,
            })
        })
        .collect::<Result<Vec<DramTensor>, String>>()?;
    Ok(Vudfg { units, streams, drams, name: get_str(v, "name")?.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use plasticine_arch::ChipSpec;

    #[test]
    fn hashes_are_stable_and_framed() {
        // Pinned value: a change here silently invalidates every on-disk
        // cache in the wild, so it must be deliberate.
        assert_eq!(stable_hash_hex(b"sara"), "024aed4baab923ffe9dbf3d9d387586c");
        assert_eq!(stable_hash_hex(b"sara"), stable_hash_hex(b"sara"));
        assert_ne!(stable_hash_hex(b"sara"), stable_hash_hex(b"saraa"));
        // Length prefixing: shifting bytes between fields changes the hash.
        let ab_c = StableHasher::new().str("ab").str("c").hex();
        let a_bc = StableHasher::new().str("a").str("bc").hex();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn canon_texts_cover_options_and_init_data() {
        let mut opts = CompilerOptions::default();
        let base = options_canon(&opts);
        opts.opt.retime = false;
        assert_ne!(base, options_canon(&opts), "flag flip must change the canon text");
        opts.streams_per_ag = 8;
        assert_ne!(base, options_canon(&opts));

        let w = sara_workloads::by_name("dotprod").unwrap();
        let mut p = w.program.clone();
        let canon = program_canon(&p);
        assert!(canon.contains("program"));
        // Mutate initial data only: pretty() alone would not see it.
        p.mems[0].init = sara_ir::MemInit::LinSpace { start: 99.0, step: 0.5 };
        assert_ne!(canon, program_canon(&p), "init change must change the canon text");
    }

    #[test]
    fn elems_round_trip_bit_exactly() {
        for e in [
            Elem::I64(-7),
            Elem::I64(i64::MAX),
            Elem::F64(0.1),
            Elem::F64(-0.0),
            Elem::F64(f64::INFINITY),
            Elem::F64(f64::from_bits(0x7ff8_0000_0000_1234)), // NaN payload
        ] {
            let back = elem_from(&elem_str(e)).unwrap();
            match (e, back) {
                (Elem::F64(a), Elem::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
        assert!(elem_from("x1").is_err());
        assert!(elem_from("fzz").is_err());
    }

    // Full round-trip + bit-identical-simulation coverage lives in
    // `tests/artifact_roundtrip.rs`: PnR and the simulator link the lib
    // build of this crate, whose types differ from the `cfg(test)` build.

    #[test]
    fn vudfg_round_trips_lowered_graph() {
        let chip = ChipSpec::small_8x8();
        let w = sara_workloads::by_name("dotprod").unwrap();
        let compiled =
            compile(&w.program, &chip, &crate::compile::CompilerOptions::default()).unwrap();
        let doc = vudfg_json(&compiled.vudfg);
        let back = vudfg_from_json(&doc).unwrap();
        assert_eq!(back, compiled.vudfg, "lowered round trip");
        // The serialized text is canonical: same bytes again.
        assert_eq!(doc.pretty(), vudfg_json(&back).pretty(), "canonical text");
    }

    #[test]
    fn shard_plan_round_trips_bit_exactly() {
        let plan = ShardPlan {
            count: 4,
            chip_of: vec![0, 0, 1, 3, 2],
            crossings: vec![StreamId(1), StreamId(7)],
            cut_traffic: 405.5,
        };
        let back = shard_plan_from_json(&shard_plan_json(&plan)).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.cut_traffic.to_bits(), plan.cut_traffic.to_bits());
        assert!(shard_plan_from_json(&Json::object()).is_err());
    }

    #[test]
    fn vudfg_decode_rejects_malformed_documents() {
        assert!(vudfg_from_json(&Json::object()).is_err());
        let wrong = Json::object().set("format", "sara-vudfg-v99");
        assert!(vudfg_from_json(&wrong).unwrap_err().contains("unsupported"));
        let w = sara_workloads::by_name("dotprod").unwrap();
        let chip = ChipSpec::small_8x8();
        let compiled =
            compile(&w.program, &chip, &crate::compile::CompilerOptions::default()).unwrap();
        let doc = vudfg_json(&compiled.vudfg);
        // Corrupt one field: decoding must fail loudly, not mis-parse.
        let text = doc.pretty().replace("\"t\": \"vcu\"", "\"t\": \"vXu\"");
        let reparsed = Json::parse(&text).unwrap();
        assert!(vudfg_from_json(&reparsed).is_err());
    }
}
