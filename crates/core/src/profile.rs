//! Simulation profile data model: per-VCU cycle attribution, per-stream
//! occupancy/backpressure counters and a binned DRAM timeline.
//!
//! The types live in `sara-core` (not `plasticine-sim`) so downstream
//! reporting — [`crate::report::bottleneck_summary`] and the bench
//! harness's JSON/Chrome-trace serializers — can consume profiles without
//! depending on the simulator. The simulator fills them in when
//! `SimConfig::profile` is set.
//!
//! # Counter semantics
//!
//! A simulation of `cycles` total cycles attributes **every** cycle of
//! every VCU to exactly one of three states, so per unit
//! `active + idle + stalled == cycles` always holds:
//!
//! * **active** — the unit made progress that cycle: it fired, popped a
//!   control token, resolved a dynamic bound, or advanced its counter
//!   chain;
//! * **stalled** — the unit wanted to make progress but could not; the
//!   blocking site is attributed to one [`StallReason`];
//! * **idle** — the unit has completed its program.
//!
//! Stream counters record the occupancy high-water mark (queued plus
//! in-flight packets, bounded by `depth + latency` slots) and the number
//! of cycles the stream was full — i.e. exerting backpressure on its
//! producer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a VCU could not make progress on a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallReason {
    /// A data input, dynamic loop bound, or branch/while condition has
    /// not arrived, and the producing unit is on-fabric.
    InputStarved,
    /// An output stream (data, credit return, or epoch marker) has no
    /// space: the consumer side is backpressuring this unit.
    OutputBackpressured,
    /// Waiting to pop a CMMC credit token — the consistency protocol, not
    /// a dataflow operand, is what's withholding progress.
    CreditBlocked,
    /// The starving input stream is fed directly by an address generator:
    /// the unit is waiting on DRAM.
    DramBlocked,
}

impl StallReason {
    /// All reasons, in [`StallReason::index`] order.
    pub const ALL: [StallReason; 4] = [
        StallReason::InputStarved,
        StallReason::OutputBackpressured,
        StallReason::CreditBlocked,
        StallReason::DramBlocked,
    ];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            StallReason::InputStarved => 0,
            StallReason::OutputBackpressured => 1,
            StallReason::CreditBlocked => 2,
            StallReason::DramBlocked => 3,
        }
    }

    /// Stable human/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::InputStarved => "input-starved",
            StallReason::OutputBackpressured => "output-backpressured",
            StallReason::CreditBlocked => "credit-blocked",
            StallReason::DramBlocked => "dram-blocked",
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Instantaneous activity classification of a unit on one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitState {
    /// Made progress this cycle.
    Active,
    /// Program complete.
    Idle,
    /// Wanted to make progress but was blocked.
    Stalled(StallReason),
}

impl UnitState {
    /// Stable human/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            UnitState::Active => "active",
            UnitState::Idle => "idle",
            UnitState::Stalled(r) => r.label(),
        }
    }
}

/// A maximal run of cycles a unit spent in one state: `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub state: UnitState,
    /// First cycle of the run.
    pub start: u64,
    /// One past the last cycle of the run.
    pub end: u64,
}

/// Per-VCU cycle attribution and firing counts.
#[derive(Debug, Clone)]
pub struct VcuProfile {
    /// Unit label from the VUDFG.
    pub label: String,
    /// Total firings.
    pub firings: u64,
    /// Cycles the unit made progress.
    pub active_cycles: u64,
    /// Cycles after program completion.
    pub idle_cycles: u64,
    /// Stall cycles, indexed by [`StallReason::index`].
    pub stalled_cycles: [u64; 4],
    /// Merged state timeline (trace export). Adjacent same-state cycles
    /// collapse into one segment, so length is bounded by the number of
    /// state *changes*, capped at the collector's segment limit.
    pub segments: Vec<Segment>,
    /// True when the segment cap was hit; counters stay exact, only the
    /// timeline tail is missing.
    pub segments_truncated: bool,
}

impl VcuProfile {
    /// Total stalled cycles across all reasons.
    pub fn stalled_total(&self) -> u64 {
        self.stalled_cycles.iter().sum()
    }

    /// Stalled cycles for one reason.
    pub fn stalled(&self, r: StallReason) -> u64 {
        self.stalled_cycles[r.index()]
    }

    /// Sum of all attributed cycles; equals the simulated cycle count.
    pub fn total_cycles(&self) -> u64 {
        self.active_cycles + self.idle_cycles + self.stalled_total()
    }

    /// The dominant stall reason, if the unit stalled at all.
    pub fn worst_stall(&self) -> Option<(StallReason, u64)> {
        StallReason::ALL
            .into_iter()
            .map(|r| (r, self.stalled(r)))
            .filter(|&(_, c)| c > 0)
            .max_by_key(|&(_, c)| c)
    }
}

/// Per-stream occupancy and backpressure counters.
#[derive(Debug, Clone)]
pub struct StreamProfile {
    /// `"src -> dst [stream label]"`.
    pub label: String,
    /// Total packet slots: receive FIFO depth plus in-flight latency
    /// registers.
    pub slots: usize,
    /// Maximum observed occupancy (queued + in-flight packets).
    pub occupancy_hwm: usize,
    /// Cycles the stream was full, i.e. refusing pushes from its
    /// producer.
    pub backpressure_cycles: u64,
    /// Total packets pushed.
    pub pushes: u64,
    /// Total packets popped.
    pub pops: u64,
}

/// One bin of the DRAM bandwidth/row-locality timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramEpoch {
    /// First cycle covered by this bin.
    pub start_cycle: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
}

impl DramEpoch {
    /// Total bytes scheduled in this bin.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Row-buffer hit rate within the bin, if any access happened.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let total = self.row_hits + self.row_misses;
        (total > 0).then(|| self.row_hits as f64 / total as f64)
    }
}

/// Full observability record of one simulation, returned alongside the
/// functional outcome when profiling is enabled.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// Simulated cycles (same value as the outcome's cycle count).
    pub cycles: u64,
    /// DRAM timeline bin width in cycles.
    pub epoch_cycles: u64,
    /// Per-VCU attribution, in unit-index order.
    pub vcus: Vec<VcuProfile>,
    /// Per-stream counters, in stream-index order.
    pub streams: Vec<StreamProfile>,
    /// DRAM timeline, bin `i` covering cycles
    /// `[i * epoch_cycles, (i+1) * epoch_cycles)`.
    pub dram_epochs: Vec<DramEpoch>,
}

impl SimProfile {
    /// VCUs sorted worst-stalled first (ties broken by label for
    /// deterministic reports).
    pub fn worst_stalled_vcus(&self) -> Vec<&VcuProfile> {
        let mut v: Vec<&VcuProfile> = self.vcus.iter().filter(|u| u.stalled_total() > 0).collect();
        v.sort_by(|a, b| b.stalled_total().cmp(&a.stalled_total()).then(a.label.cmp(&b.label)));
        v
    }

    /// Streams sorted most-backpressured first (ties broken by label).
    pub fn most_backpressured_streams(&self) -> Vec<&StreamProfile> {
        let mut v: Vec<&StreamProfile> =
            self.streams.iter().filter(|s| s.backpressure_cycles > 0).collect();
        v.sort_by(|a, b| {
            b.backpressure_cycles.cmp(&a.backpressure_cycles).then(a.label.cmp(&b.label))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vcu(label: &str, active: u64, idle: u64, stalled: [u64; 4]) -> VcuProfile {
        VcuProfile {
            label: label.to_string(),
            firings: active,
            active_cycles: active,
            idle_cycles: idle,
            stalled_cycles: stalled,
            segments: Vec::new(),
            segments_truncated: false,
        }
    }

    #[test]
    fn breakdown_totals() {
        let v = vcu("u", 10, 5, [1, 2, 3, 4]);
        assert_eq!(v.stalled_total(), 10);
        assert_eq!(v.total_cycles(), 25);
        assert_eq!(v.worst_stall(), Some((StallReason::DramBlocked, 4)));
        assert_eq!(vcu("u", 1, 0, [0; 4]).worst_stall(), None);
    }

    #[test]
    fn sorting_is_deterministic() {
        let p = SimProfile {
            cycles: 100,
            epoch_cycles: 10,
            vcus: vec![vcu("b", 0, 0, [5, 0, 0, 0]), vcu("a", 0, 0, [0, 5, 0, 0])],
            streams: Vec::new(),
            dram_epochs: Vec::new(),
        };
        let worst: Vec<&str> = p.worst_stalled_vcus().iter().map(|v| v.label.as_str()).collect();
        assert_eq!(worst, ["a", "b"]);
    }

    #[test]
    fn reason_indices_are_dense_and_labelled() {
        for (i, r) in StallReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(!r.label().is_empty());
        }
        assert_eq!(UnitState::Stalled(StallReason::CreditBlocked).label(), "credit-blocked");
    }

    #[test]
    fn dram_epoch_rates() {
        let e = DramEpoch {
            start_cycle: 0,
            read_bytes: 64,
            write_bytes: 32,
            row_hits: 3,
            row_misses: 1,
        };
        assert_eq!(e.total_bytes(), 96);
        assert_eq!(e.row_hit_rate(), Some(0.75));
        assert_eq!(DramEpoch::default().row_hit_rate(), None);
    }
}
