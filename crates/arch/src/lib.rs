//! # plasticine-arch
//!
//! Parametric architecture specification for the Plasticine Reconfigurable
//! Dataflow Accelerator (Prabhakar et al., ISCA 2017), as targeted by the
//! SARA compiler (Zhang et al., ISCA 2021).
//!
//! Plasticine is a checkerboard grid of **pattern compute units** (PCUs:
//! a multi-stage SIMD pipeline with chained counters), **pattern memory
//! units** (PMUs: banked scratchpads with address datapaths), and edge
//! **address generators** (AGs) attached to DRAM channels, connected by a
//! statically configured network-on-chip.
//!
//! This crate only describes *capabilities and costs*; the compiler
//! (`sara-core`) consumes [`PartitionConstraints`] during partitioning and
//! merging, the placer (`sara-pnr`) consumes the [`ChipSpec`] grid, and the
//! simulator (`plasticine-sim`) consumes latencies and bandwidths.
//!
//! ```
//! use plasticine_arch::ChipSpec;
//! let chip = ChipSpec::sara_20x20();
//! assert_eq!(chip.total_pus(), 420);
//! assert!(chip.pcu.lanes >= 16);
//! ```

pub mod chip;
pub mod system;
pub mod units;

pub use chip::{ChipSpec, DramKind, GridSlot};
pub use system::{LinkSpec, SystemSpec};
pub use units::{AgSpec, PartitionConstraints, PcuSpec, PmuSpec, PuType};
