//! Chip-level configuration: the PU grid, the network, DRAM technology and
//! the area model used for area-normalized comparisons.

use crate::units::{AgSpec, PcuSpec, PmuSpec, PuType};
use serde::{Deserialize, Serialize};

/// DRAM technology attached to the chip's address generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramKind {
    /// HBM2 at 1 TB/s aggregate (the paper's GPU-comparable configuration).
    Hbm2,
    /// DDR3 at 49 GB/s aggregate (the configuration of the original
    /// Plasticine paper, used for the vanilla-compiler comparison).
    Ddr3,
}

impl DramKind {
    /// Aggregate peak bandwidth in bytes per accelerator cycle (1 GHz
    /// clock: 1 TB/s = 1000 B/cycle).
    pub fn bytes_per_cycle(self) -> u64 {
        match self {
            DramKind::Hbm2 => 1000,
            DramKind::Ddr3 => 49,
        }
    }

    /// Number of independent channels.
    pub fn channels(self) -> u32 {
        match self {
            DramKind::Hbm2 => 8,
            DramKind::Ddr3 => 4,
        }
    }

    /// Idle (unloaded) access latency in accelerator cycles.
    pub fn idle_latency(self) -> u32 {
        match self {
            DramKind::Hbm2 => 100,
            DramKind::Ddr3 => 150,
        }
    }

    /// Extra latency of a row-buffer miss.
    pub fn row_miss_penalty(self) -> u32 {
        match self {
            DramKind::Hbm2 => 40,
            DramKind::Ddr3 => 60,
        }
    }
}

/// What occupies one grid coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GridSlot {
    Pu(PuType),
    /// Empty coordinate (no unit; switches are implicit at every junction).
    Empty,
}

/// A full chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Grid rows (PU coordinates, not counting edge AG columns).
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Number of address generators (placed along the left/right edges).
    pub ags: u32,
    /// PCU capability spec.
    pub pcu: PcuSpec,
    /// PMU capability spec.
    pub pmu: PmuSpec,
    /// AG capability spec.
    pub ag: AgSpec,
    /// DRAM technology.
    pub dram: DramKind,
    /// Network latency per hop in cycles (switch traversal + wire).
    pub hop_latency: u32,
    /// Clock frequency in GHz (used only for wall-clock conversions in
    /// reports; the simulator works in cycles).
    pub clock_ghz: f64,
    /// Die area in mm² (for area-normalized throughput comparisons; the
    /// paper's 20×20 configuration is ~12% of a V100's area after
    /// technology normalization).
    pub area_mm2: f64,
}

impl ChipSpec {
    /// The paper's evaluation configuration: a 20×20 checkerboard of PCUs
    /// and PMUs (400 units) plus 20 edge AGs — 420 PUs total — with HBM2.
    pub fn sara_20x20() -> Self {
        ChipSpec {
            rows: 20,
            cols: 20,
            ags: 20,
            pcu: PcuSpec::default(),
            pmu: PmuSpec::default(),
            ag: AgSpec::default(),
            dram: DramKind::Hbm2,
            hop_latency: 2,
            clock_ghz: 1.0,
            area_mm2: 98.0,
        }
    }

    /// The original Plasticine paper's configuration: 16×8 grid (64 PCUs +
    /// 64 PMUs) with DDR3, used for the vanilla-compiler comparison
    /// (Table V).
    pub fn vanilla_16x8() -> Self {
        ChipSpec {
            rows: 8,
            cols: 16,
            ags: 12,
            pcu: PcuSpec::default(),
            pmu: PmuSpec::default(),
            ag: AgSpec::default(),
            dram: DramKind::Ddr3,
            hop_latency: 2,
            clock_ghz: 1.0,
            area_mm2: 113.0,
        }
    }

    /// A small 8×8 configuration (32 PCUs + 32 PMUs + 8 AGs) for tests of
    /// unrolled designs.
    pub fn small_8x8() -> Self {
        ChipSpec {
            rows: 8,
            cols: 8,
            ags: 8,
            pcu: PcuSpec::default(),
            pmu: PmuSpec::default(),
            ag: AgSpec::default(),
            dram: DramKind::Ddr3,
            hop_latency: 2,
            clock_ghz: 1.0,
            area_mm2: 30.0,
        }
    }

    /// A tiny 4×4 configuration for tests.
    pub fn tiny_4x4() -> Self {
        ChipSpec {
            rows: 4,
            cols: 4,
            ags: 4,
            pcu: PcuSpec::default(),
            pmu: PmuSpec::default(),
            ag: AgSpec::default(),
            dram: DramKind::Ddr3,
            hop_latency: 2,
            clock_ghz: 1.0,
            area_mm2: 10.0,
        }
    }

    /// The canonical short name of this configuration (`"20x20"`,
    /// `"16x8"`, `"8x8"`, `"4x4"`), used in CLI flags and replayable
    /// artifacts. Falls back to `"<cols>x<rows>"` for custom grids.
    pub fn name(&self) -> String {
        format!("{}x{}", self.cols, self.rows)
    }

    /// Look a configuration up by its short name (the inverse of
    /// [`ChipSpec::name`]). Shared by the CLI `--chip` parsers and the
    /// DSE artifact reader so every tool accepts the same spellings.
    pub fn by_name(name: &str) -> Option<ChipSpec> {
        match name {
            "20x20" => Some(ChipSpec::sara_20x20()),
            "16x8" => Some(ChipSpec::vanilla_16x8()),
            "8x8" => Some(ChipSpec::small_8x8()),
            "4x4" => Some(ChipSpec::tiny_4x4()),
            _ => None,
        }
    }

    /// Names accepted by [`ChipSpec::by_name`], for usage strings.
    pub const NAMES: &'static [&'static str] = &["20x20", "16x8", "8x8", "4x4"];

    /// Whether a design needing the given unit counts fits on this chip.
    /// This is the capability-model feasibility query the DSE search uses
    /// to prune candidates before place-and-route.
    pub fn can_fit(&self, pcus: u32, pmus: u32, ags: u32) -> bool {
        pcus <= self.pcus() && pmus <= self.pmus() && ags <= self.ags
    }

    /// Checkerboard slot assignment: PCU on even parity, PMU on odd.
    pub fn slot(&self, row: u32, col: u32) -> GridSlot {
        if row >= self.rows || col >= self.cols {
            GridSlot::Empty
        } else if (row + col).is_multiple_of(2) {
            GridSlot::Pu(PuType::Pcu)
        } else {
            GridSlot::Pu(PuType::Pmu)
        }
    }

    /// Number of PCUs on the grid.
    pub fn pcus(&self) -> u32 {
        let total = self.rows * self.cols;
        total.div_ceil(2)
    }

    /// Number of PMUs on the grid.
    pub fn pmus(&self) -> u32 {
        self.rows * self.cols - self.pcus()
    }

    /// Count of a given PU type.
    pub fn count(&self, t: PuType) -> u32 {
        match t {
            PuType::Pcu => self.pcus(),
            PuType::Pmu => self.pmus(),
            PuType::Ag => self.ags,
        }
    }

    /// Total PUs (PCUs + PMUs + AGs).
    pub fn total_pus(&self) -> u32 {
        self.rows * self.cols + self.ags
    }

    /// Peak compute throughput in FLOP/cycle (all PCU lanes × stages busy).
    pub fn peak_flops_per_cycle(&self) -> u64 {
        self.pcus() as u64 * self.pcu.lanes as u64 * self.pcu.stages as u64
    }

    /// Aggregate on-chip scratchpad capacity in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.pmus() as u64 * self.pmu.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sara_config_has_420_pus() {
        let c = ChipSpec::sara_20x20();
        assert_eq!(c.total_pus(), 420);
        assert_eq!(c.pcus(), 200);
        assert_eq!(c.pmus(), 200);
        assert_eq!(c.count(PuType::Ag), 20);
        assert_eq!(c.dram, DramKind::Hbm2);
    }

    #[test]
    fn vanilla_config_matches_plasticine_paper() {
        let c = ChipSpec::vanilla_16x8();
        assert_eq!(c.pcus(), 64);
        assert_eq!(c.pmus(), 64);
        assert_eq!(c.dram, DramKind::Ddr3);
    }

    #[test]
    fn checkerboard_alternates() {
        let c = ChipSpec::tiny_4x4();
        assert_eq!(c.slot(0, 0), GridSlot::Pu(PuType::Pcu));
        assert_eq!(c.slot(0, 1), GridSlot::Pu(PuType::Pmu));
        assert_eq!(c.slot(1, 0), GridSlot::Pu(PuType::Pmu));
        assert_eq!(c.slot(9, 9), GridSlot::Empty);
    }

    #[test]
    fn name_round_trips_through_by_name() {
        for &n in ChipSpec::NAMES {
            let c = ChipSpec::by_name(n).unwrap();
            assert_eq!(c.name(), n);
        }
        assert!(ChipSpec::by_name("9x9").is_none());
    }

    #[test]
    fn can_fit_checks_every_resource() {
        let c = ChipSpec::tiny_4x4(); // 8 PCUs, 8 PMUs, 4 AGs
        assert!(c.can_fit(8, 8, 4));
        assert!(!c.can_fit(9, 0, 0));
        assert!(!c.can_fit(0, 9, 0));
        assert!(!c.can_fit(0, 0, 5));
    }

    #[test]
    fn bandwidth_constants() {
        assert_eq!(DramKind::Hbm2.bytes_per_cycle(), 1000);
        assert_eq!(DramKind::Ddr3.bytes_per_cycle(), 49);
        assert!(DramKind::Ddr3.idle_latency() > DramKind::Hbm2.idle_latency());
    }

    #[test]
    fn peak_flops() {
        let c = ChipSpec::sara_20x20();
        // 200 PCUs x 16 lanes x 6 stages
        assert_eq!(c.peak_flops_per_cycle(), 19_200);
    }
}
