//! Per-unit capability specifications and the constraint view consumed by
//! the compiler's partitioner and merger.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical unit types on the Plasticine fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PuType {
    /// Pattern compute unit: chained counters + multi-stage SIMD pipeline.
    Pcu,
    /// Pattern memory unit: banked scratchpad + address datapath.
    Pmu,
    /// Address generator / DRAM interface at the chip edge.
    Ag,
}

impl fmt::Display for PuType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PuType::Pcu => "PCU",
            PuType::Pmu => "PMU",
            PuType::Ag => "AG",
        };
        f.write_str(s)
    }
}

/// Pattern compute unit capabilities.
///
/// Defaults follow the Plasticine paper: a 6-stage, 16-lane SIMD pipeline
/// fed by vector/scalar/control input FIFOs, with a chain of hardware
/// counters driving the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcuSpec {
    /// SIMD lanes (vectorization width of innermost loops).
    pub lanes: u32,
    /// Pipeline stages; each stage holds one functional unit per lane.
    pub stages: u32,
    /// Vector input ports.
    pub vec_in: u32,
    /// Vector output ports (a broadcast to many consumers uses one port).
    pub vec_out: u32,
    /// Scalar input ports.
    pub scalar_in: u32,
    /// Scalar output ports.
    pub scalar_out: u32,
    /// Control (single-bit token) input ports.
    pub ctrl_in: u32,
    /// Control output ports.
    pub ctrl_out: u32,
    /// Depth of each input FIFO in elements; bounds how much pipeline-delay
    /// imbalance can be absorbed without a dedicated retiming unit.
    pub fifo_depth: u32,
    /// Maximum chained counters (bounds the loop-nest depth one unit can
    /// track).
    pub counters: u32,
    /// Extra pipeline stages consumed by a transcendental op (exp/log/...).
    pub transcendental_stages: u32,
}

impl Default for PcuSpec {
    fn default() -> Self {
        PcuSpec {
            lanes: 16,
            stages: 6,
            vec_in: 4,
            vec_out: 2,
            scalar_in: 6,
            scalar_out: 2,
            ctrl_in: 16,
            ctrl_out: 16,
            fifo_depth: 16,
            counters: 8,
            transcendental_stages: 2,
        }
    }
}

impl PcuSpec {
    /// Maximum operations one PCU can hold: one op per stage per lane is
    /// the physical limit, but lane-parallel vectorized ops occupy one
    /// *stage*, so the partitioner budget is expressed in stages.
    pub fn max_ops(&self) -> u32 {
        self.stages
    }
}

/// Pattern memory unit capabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmuSpec {
    /// Scratchpad capacity in bytes.
    pub capacity_bytes: u64,
    /// SRAM banks (peak on-chip words per cycle for vectorized access).
    pub banks: u32,
    /// Vector input ports.
    pub vec_in: u32,
    /// Vector output ports.
    pub vec_out: u32,
    /// Scalar ports.
    pub scalar_in: u32,
    pub scalar_out: u32,
    /// Control ports.
    pub ctrl_in: u32,
    pub ctrl_out: u32,
    /// Read latency in cycles (request arrival to response departure).
    pub read_latency: u32,
    /// Address-datapath stages available for request address computation.
    pub addr_stages: u32,
    /// Maximum concurrent read request streams the PMU can serve. The
    /// Plasticine PMU serves one; CMMC therefore orders read-after-read
    /// (paper §III-A3a).
    pub read_streams: u32,
    /// Maximum multibuffer depth (for coarse-grained pipelining across
    /// producer/consumer stages).
    pub max_multibuffer: u32,
    /// Input FIFO depth in elements.
    pub fifo_depth: u32,
}

impl Default for PmuSpec {
    fn default() -> Self {
        PmuSpec {
            capacity_bytes: 256 * 1024,
            banks: 16,
            vec_in: 4,
            vec_out: 2,
            scalar_in: 4,
            scalar_out: 2,
            ctrl_in: 16,
            ctrl_out: 16,
            read_latency: 3,
            addr_stages: 4,
            read_streams: 1,
            max_multibuffer: 8,
            fifo_depth: 16,
        }
    }
}

impl PmuSpec {
    /// Capacity in 4-byte words.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_bytes / 4
    }
}

/// Address generator / DRAM interface capabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgSpec {
    /// Outstanding requests the AG can keep in flight.
    pub outstanding: u32,
    /// Burst size in bytes of one DRAM command.
    pub burst_bytes: u32,
    /// Scalar/vector ports (AGs are simple; one stream each way).
    pub vec_in: u32,
    pub vec_out: u32,
}

impl Default for AgSpec {
    fn default() -> Self {
        AgSpec { outstanding: 64, burst_bytes: 64, vec_in: 2, vec_out: 2 }
    }
}

/// The constraint view of one PU type consumed by compute partitioning and
/// global merging (paper Table I / Table III: input/output arity, op
/// capacity, buffer depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionConstraints {
    /// Maximum operations (pipeline stages) per partition.
    pub max_ops: u32,
    /// Maximum input arity `cI` (unique external value sources).
    pub max_in: u32,
    /// Maximum output arity `cO` (unique broadcast outputs).
    pub max_out: u32,
    /// Input buffer depth `bd`: delay imbalance tolerated before a
    /// retiming partition must be inserted.
    pub buffer_depth: u32,
    /// Maximum chained counters.
    pub max_counters: u32,
}

impl PartitionConstraints {
    /// Constraint view of a PCU.
    pub fn of_pcu(p: &PcuSpec) -> Self {
        PartitionConstraints {
            max_ops: p.max_ops(),
            max_in: p.vec_in + p.scalar_in,
            max_out: p.vec_out + p.scalar_out,
            buffer_depth: p.fifo_depth,
            max_counters: p.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_plasticine() {
        let pcu = PcuSpec::default();
        assert_eq!(pcu.lanes, 16);
        assert_eq!(pcu.stages, 6);
        assert_eq!(pcu.max_ops(), 6);
        let pmu = PmuSpec::default();
        assert_eq!(pmu.capacity_bytes, 262_144);
        assert_eq!(pmu.capacity_words(), 65_536);
        assert_eq!(pmu.read_streams, 1);
    }

    #[test]
    fn constraints_derived_from_pcu() {
        let c = PartitionConstraints::of_pcu(&PcuSpec::default());
        assert_eq!(c.max_ops, 6);
        assert_eq!(c.max_in, 10);
        assert_eq!(c.max_out, 4);
        assert_eq!(c.buffer_depth, 16);
    }

    #[test]
    fn pu_type_display() {
        assert_eq!(PuType::Pcu.to_string(), "PCU");
        assert_eq!(PuType::Pmu.to_string(), "PMU");
        assert_eq!(PuType::Ag.to_string(), "AG");
    }
}
