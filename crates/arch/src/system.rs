//! System-level configuration: N chips in a grid, joined by inter-chip
//! links with their own latency, bandwidth and buffering, each chip with
//! its own DRAM.
//!
//! A [`SystemSpec`] is the multi-chip analog of [`ChipSpec`]: the
//! partitioner (`sara-core`) consumes the chip count and per-chip
//! capacities when sharding a VUDFG, the placer (`sara-pnr`) runs per
//! chip, and the simulator (`plasticine-sim`) consumes the [`LinkSpec`]
//! to model chip-boundary crossings as bounded, rate-limited FIFOs under
//! one global clock. A 1-chip system is *definitionally* equivalent to
//! its chip — the tools fall back to the single-chip paths, which stay
//! bit-identical.

use crate::chip::ChipSpec;
use serde::{Deserialize, Serialize};

/// One directed inter-chip link's capabilities. Links connect grid
/// neighbors; a crossing between non-adjacent chips is routed X-then-Y
/// over intermediate chips and pays each hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Traversal latency of one link hop in cycles (SerDes + wire; far
    /// above the on-chip `hop_latency`).
    pub latency: u32,
    /// Peak packets per cycle per directed link (all streams crossing
    /// the same physical link share this).
    pub bandwidth: u32,
    /// Link FIFO depth in packets: the credit window a sender may have
    /// in flight before the receiver frees slots.
    pub fifo_depth: u32,
}

impl Default for LinkSpec {
    /// A conservative board-level link: tens of cycles latency, a few
    /// packets per cycle, a modest credit window.
    fn default() -> Self {
        LinkSpec { latency: 40, bandwidth: 4, fifo_depth: 32 }
    }
}

/// A full system configuration: `count` identical chips arranged in a
/// `grid_cols`-wide grid (row-major chip indices), nearest-neighbor
/// links between grid neighbors, one DRAM stack per chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// The per-chip configuration (all chips are identical).
    pub chip: ChipSpec,
    /// Number of chips.
    pub count: u32,
    /// Chips per grid row (chip `i` sits at column `i % grid_cols`,
    /// row `i / grid_cols`).
    pub grid_cols: u32,
    /// Inter-chip link capabilities.
    pub link: LinkSpec,
}

impl SystemSpec {
    /// The trivial 1-chip system for a chip — the degenerate case every
    /// single-chip tool path maps onto.
    pub fn single(chip: ChipSpec) -> Self {
        SystemSpec { chip, count: 1, grid_cols: 1, link: LinkSpec::default() }
    }

    /// A `count`-chip system on the given chip, arranged in the most
    /// square grid (row-major).
    pub fn grid(chip: ChipSpec, count: u32) -> Self {
        let count = count.max(1);
        let mut cols = 1;
        while cols * cols < count {
            cols += 1;
        }
        SystemSpec { chip, count, grid_cols: cols, link: LinkSpec::default() }
    }

    /// The canonical short name: the chip name for one chip, otherwise
    /// `"<count>x<chip>"` (`"2x8x8"`, `"4x20x20"`), used by CLI flags
    /// and replayable artifacts.
    pub fn name(&self) -> String {
        if self.count == 1 {
            self.chip.name()
        } else {
            format!("{}x{}", self.count, self.chip.name())
        }
    }

    /// Look a system up by its short name (the inverse of
    /// [`SystemSpec::name`]). Plain chip names resolve to their 1-chip
    /// system, so every `--chip` spelling is also a valid system.
    pub fn by_name(name: &str) -> Option<SystemSpec> {
        if let Some(chip) = ChipSpec::by_name(name) {
            return Some(SystemSpec::single(chip));
        }
        let (count, chip_name) = name.split_once('x')?;
        let count: u32 = count.parse().ok()?;
        if !(2..=16).contains(&count) {
            return None;
        }
        ChipSpec::by_name(chip_name).map(|chip| SystemSpec::grid(chip, count))
    }

    /// Multi-chip names advertised in usage strings, alongside
    /// [`ChipSpec::NAMES`]. `by_name` also accepts other
    /// `<count>x<chip>` spellings (2–16 chips).
    pub const NAMES: &'static [&'static str] = &["2x8x8", "4x8x8", "2x20x20", "4x20x20"];

    /// Grid rows the chips occupy (the last row may be partial).
    pub fn grid_rows(&self) -> u32 {
        self.count.div_ceil(self.grid_cols)
    }

    /// Grid coordinate of chip `i` as `(col, row)`.
    pub fn chip_coord(&self, i: u32) -> (u32, u32) {
        (i % self.grid_cols, i / self.grid_cols)
    }

    /// Whether a design needing the given *aggregate* unit counts fits
    /// on the system. Per-chip balance is the sharding pass's job; this
    /// is the capability-model feasibility query the DSE search uses.
    pub fn can_fit(&self, pcus: u32, pmus: u32, ags: u32) -> bool {
        pcus <= self.count * self.chip.pcus()
            && pmus <= self.count * self.chip.pmus()
            && ags <= self.count * self.chip.ags
    }

    /// Link hops between two chips (Manhattan distance on the chip grid).
    pub fn route_hops(&self, from: u32, to: u32) -> u32 {
        let (fc, fr) = self.chip_coord(from);
        let (tc, tr) = self.chip_coord(to);
        fc.abs_diff(tc) + fr.abs_diff(tr)
    }

    /// The directed physical links a `from → to` crossing traverses,
    /// routed X-then-Y, as `(chip, chip)` pairs. Empty when `from == to`.
    pub fn route_links(&self, from: u32, to: u32) -> Vec<(u32, u32)> {
        let (fc, fr) = self.chip_coord(from);
        let (tc, tr) = self.chip_coord(to);
        let mut links = Vec::new();
        let (mut c, mut r) = (fc, fr);
        while c != tc {
            let next = if tc > c { c + 1 } else { c - 1 };
            links.push((r * self.grid_cols + c, r * self.grid_cols + next));
            c = next;
        }
        while r != tr {
            let next = if tr > r { r + 1 } else { r - 1 };
            links.push((r * self.grid_cols + c, next * self.grid_cols + c));
            r = next;
        }
        links
    }

    /// A canonical, field-complete description of the topology. This is
    /// what content-addressed caches hash: *every* field that can change
    /// compiled or simulated results appears, so two systems differing
    /// in any knob — chip geometry, unit capabilities, DRAM technology,
    /// chip count, grid shape or link parameters — can never alias.
    pub fn canon(&self) -> String {
        let c = &self.chip;
        format!(
            "system{{count={} grid_cols={} link={{lat={} bw={} depth={}}} \
             chip{{rows={} cols={} ags={} dram={:?} hop={} clock={} area={} \
             pcu={{lanes={} stages={} vi={} vo={} si={} so={} ci={} co={} fifo={} ctrs={} trans={}}} \
             pmu={{cap={} banks={} vi={} vo={} si={} so={} ci={} co={} rlat={} astages={} rstreams={} mbuf={} fifo={}}} \
             ag={{out={} burst={} vi={} vo={}}}}}}}",
            self.count,
            self.grid_cols,
            self.link.latency,
            self.link.bandwidth,
            self.link.fifo_depth,
            c.rows,
            c.cols,
            c.ags,
            c.dram,
            c.hop_latency,
            c.clock_ghz,
            c.area_mm2,
            c.pcu.lanes,
            c.pcu.stages,
            c.pcu.vec_in,
            c.pcu.vec_out,
            c.pcu.scalar_in,
            c.pcu.scalar_out,
            c.pcu.ctrl_in,
            c.pcu.ctrl_out,
            c.pcu.fifo_depth,
            c.pcu.counters,
            c.pcu.transcendental_stages,
            c.pmu.capacity_bytes,
            c.pmu.banks,
            c.pmu.vec_in,
            c.pmu.vec_out,
            c.pmu.scalar_in,
            c.pmu.scalar_out,
            c.pmu.ctrl_in,
            c.pmu.ctrl_out,
            c.pmu.read_latency,
            c.pmu.addr_stages,
            c.pmu.read_streams,
            c.pmu.max_multibuffer,
            c.pmu.fifo_depth,
            c.ag.outstanding,
            c.ag.burst_bytes,
            c.ag.vec_in,
            c.ag.vec_out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chip_names_round_trip() {
        for &n in ChipSpec::NAMES {
            let s = SystemSpec::by_name(n).unwrap();
            assert_eq!(s.count, 1);
            assert_eq!(s.name(), n);
        }
    }

    #[test]
    fn multi_chip_names_round_trip() {
        for &n in SystemSpec::NAMES {
            let s = SystemSpec::by_name(n).unwrap();
            assert!(s.count > 1, "{n}");
            assert_eq!(s.name(), n);
        }
        assert_eq!(SystemSpec::by_name("2x8x8").unwrap().count, 2);
        assert_eq!(SystemSpec::by_name("4x20x20").unwrap().chip.name(), "20x20");
        assert!(SystemSpec::by_name("9x9").is_none());
        assert!(SystemSpec::by_name("3x9x9").is_none());
        assert!(SystemSpec::by_name("99x8x8").is_none());
    }

    #[test]
    fn grid_is_near_square() {
        let s = SystemSpec::grid(ChipSpec::small_8x8(), 4);
        assert_eq!(s.grid_cols, 2);
        assert_eq!(s.grid_rows(), 2);
        assert_eq!(s.chip_coord(3), (1, 1));
        let two = SystemSpec::grid(ChipSpec::small_8x8(), 2);
        assert_eq!(two.grid_cols, 2);
        assert_eq!(two.grid_rows(), 1);
    }

    #[test]
    fn routes_are_manhattan_x_then_y() {
        let s = SystemSpec::grid(ChipSpec::small_8x8(), 4); // 2x2 grid
        assert_eq!(s.route_hops(0, 3), 2);
        assert_eq!(s.route_links(0, 3), vec![(0, 1), (1, 3)]);
        assert_eq!(s.route_links(3, 0), vec![(3, 2), (2, 0)]);
        assert!(s.route_links(2, 2).is_empty());
        assert_eq!(s.route_links(0, 1), vec![(0, 1)]);
    }

    #[test]
    fn aggregate_fit_scales_with_count() {
        let one = SystemSpec::single(ChipSpec::tiny_4x4()); // 8 PCUs per chip
        assert!(!one.can_fit(9, 0, 0));
        let four = SystemSpec::grid(ChipSpec::tiny_4x4(), 4);
        assert!(four.can_fit(32, 32, 16));
        assert!(!four.can_fit(33, 0, 0));
    }

    #[test]
    fn canon_distinguishes_every_topology_field() {
        let base = SystemSpec::grid(ChipSpec::small_8x8(), 2);
        let mut link_lat = base.clone();
        link_lat.link.latency += 1;
        let mut link_bw = base.clone();
        link_bw.link.bandwidth += 1;
        let mut link_depth = base.clone();
        link_depth.link.fifo_depth += 1;
        let mut count = base.clone();
        count.count += 1;
        let mut grid = base.clone();
        grid.grid_cols = 1;
        let mut chip = base.clone();
        chip.chip.hop_latency += 1;
        let mut dram = base.clone();
        dram.chip.dram = crate::chip::DramKind::Hbm2;
        for (what, s) in [
            ("link.latency", &link_lat),
            ("link.bandwidth", &link_bw),
            ("link.fifo_depth", &link_depth),
            ("count", &count),
            ("grid_cols", &grid),
            ("chip.hop_latency", &chip),
            ("chip.dram", &dram),
        ] {
            assert_ne!(s.canon(), base.canon(), "{what} must change the canon");
        }
    }
}
