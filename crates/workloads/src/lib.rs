//! # sara-workloads
//!
//! The benchmark kernels of the SARA paper's evaluation (Table IV and
//! §IV-C/D), expressed in the [`sara_ir`] nested-loop DSL:
//!
//! | name | domain | character |
//! |------|--------|-----------|
//! | `dotprod`, `outerprod`, `gemm` | linear algebra | dense compute |
//! | `mlp` | deep learning | single-batch GEMV chain (the Fig 9 scalability subject) |
//! | `lstm` | deep learning | recurrent gates, deep fp pipeline |
//! | `snet` | deep learning | small conv net, compute-bound |
//! | `kmeans`, `gda`, `logreg`, `sgd` | analytics/ML | the Table V comparison set |
//! | `tpchq6` | analytics | selective streaming aggregation |
//! | `bs` | finance | Black-Scholes, transcendental-heavy streaming |
//! | `sort` | sorting | bitonic network over scratchpads |
//! | `ms` | sorting | data-dependent streaming two-way merge |
//! | `pr` | graphs | PageRank iteration, dynamic (CSR) inner bounds |
//! | `rf` | ML inference | random-forest traversal, gather-heavy |
//!
//! Each builder takes a parameter struct with a `Default` sized for fast
//! functional testing; benches scale the sizes and parallelization factors
//! up. Every kernel writes its observable result to DRAM so differential
//! testing against the reference interpreter is meaningful.

pub mod cnn;
pub mod graph;
pub mod linalg;
pub mod ml;
pub mod registry;
pub mod sort;
pub mod streamk;

pub use registry::{all_small, by_name, Workload};
