//! Dense linear-algebra kernels: dot product, outer product, tiled GEMM,
//! and the single-batch MLP used in the paper's scalability study.

use sara_ir::{BinOp, DType, Elem, LoopSpec, MemInit, Program, UnOp};

/// Parameters of the dot-product kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotParams {
    pub n: usize,
    /// Parallelization of the single loop (vectorize + unroll).
    pub par: u32,
}

impl Default for DotParams {
    fn default() -> Self {
        DotParams { n: 64, par: 1 }
    }
}

/// `out = Σ a[i]·b[i]`.
pub fn dotprod(p: &DotParams) -> Program {
    let mut g = Program::new("dotprod");
    let root = g.root();
    let a = g.dram("a", &[p.n], DType::F64, MemInit::RandomF { seed: 11 });
    let b = g.dram("b", &[p.n], DType::F64, MemInit::RandomF { seed: 12 });
    let o = g.dram("o", &[1], DType::F64, MemInit::Zero);
    let l = g.add_loop(root, "i", LoopSpec::new(0, p.n as i64, 1).par(p.par)).unwrap();
    let hb = g.add_leaf(l, "mac").unwrap();
    let i = g.idx(hb, l).unwrap();
    let x = g.load(hb, a, &[i]).unwrap();
    let y = g.load(hb, b, &[i]).unwrap();
    let xy = g.bin(hb, BinOp::Mul, x, y).unwrap();
    let acc = g.reduce(hb, BinOp::Add, xy, Elem::F64(0.0), l).unwrap();
    let last = g.is_last(hb, l).unwrap();
    let z = g.c_i64(hb, 0).unwrap();
    g.store_if(hb, o, &[z], acc, last).unwrap();
    g
}

/// Parameters of the outer-product kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuterParams {
    pub n: usize,
    pub m: usize,
    /// Parallelization of the inner (column) loop.
    pub par: u32,
}

impl Default for OuterParams {
    fn default() -> Self {
        OuterParams { n: 8, m: 16, par: 1 }
    }
}

/// `o[i][j] = a[i]·b[j]`.
pub fn outerprod(p: &OuterParams) -> Program {
    let mut g = Program::new("outerprod");
    let root = g.root();
    let a = g.dram("a", &[p.n], DType::F64, MemInit::RandomF { seed: 21 });
    let b = g.dram("b", &[p.m], DType::F64, MemInit::RandomF { seed: 22 });
    let o = g.dram("o", &[p.n * p.m], DType::F64, MemInit::Zero);
    let li = g.add_loop(root, "i", LoopSpec::new(0, p.n as i64, 1)).unwrap();
    let lj = g.add_loop(li, "j", LoopSpec::new(0, p.m as i64, 1).par(p.par)).unwrap();
    let hb = g.add_leaf(lj, "mul").unwrap();
    let i = g.idx(hb, li).unwrap();
    let j = g.idx(hb, lj).unwrap();
    let x = g.load(hb, a, &[i]).unwrap();
    let y = g.load(hb, b, &[j]).unwrap();
    let v = g.bin(hb, BinOp::Mul, x, y).unwrap();
    let m = g.c_i64(hb, p.m as i64).unwrap();
    let base = g.bin(hb, BinOp::Mul, i, m).unwrap();
    let addr = g.bin(hb, BinOp::Add, base, j).unwrap();
    g.store(hb, o, &[addr], v).unwrap();
    g
}

/// Parameters of the tiled GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmParams {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Parallelization of the output-row loop (spatial unrolling).
    pub par_m: u32,
    /// Parallelization of the reduction loop (vectorization).
    pub par_k: u32,
}

impl Default for GemmParams {
    fn default() -> Self {
        GemmParams { m: 4, n: 4, k: 16, par_m: 1, par_k: 1 }
    }
}

/// `C[i][j] = Σ_k A[i][k]·B[k][j]` with A row-streamed from DRAM and a
/// B tile staged in scratchpad.
pub fn gemm(p: &GemmParams) -> Program {
    let mut g = Program::new("gemm");
    let root = g.root();
    let a = g.dram("a", &[p.m * p.k], DType::F64, MemInit::RandomF { seed: 31 });
    let b = g.dram("b", &[p.k * p.n], DType::F64, MemInit::RandomF { seed: 32 });
    let c = g.dram("c", &[p.m * p.n], DType::F64, MemInit::Zero);
    let bt = g.sram("btile", &[p.k * p.n], DType::F64);
    // stage B
    let ls = g.add_loop(root, "stage", LoopSpec::new(0, (p.k * p.n) as i64, 1)).unwrap();
    let hs = g.add_leaf(ls, "sb").unwrap();
    let si = g.idx(hs, ls).unwrap();
    let sv = g.load(hs, b, &[si]).unwrap();
    g.store(hs, bt, &[si], sv).unwrap();
    // compute
    let li = g.add_loop(root, "i", LoopSpec::new(0, p.m as i64, 1).par(p.par_m)).unwrap();
    let lj = g.add_loop(li, "j", LoopSpec::new(0, p.n as i64, 1)).unwrap();
    let lk = g.add_loop(lj, "k", LoopSpec::new(0, p.k as i64, 1).par(p.par_k)).unwrap();
    let hb = g.add_leaf(lk, "mac").unwrap();
    let i = g.idx(hb, li).unwrap();
    let j = g.idx(hb, lj).unwrap();
    let k = g.idx(hb, lk).unwrap();
    let kk = g.c_i64(hb, p.k as i64).unwrap();
    let abase = g.bin(hb, BinOp::Mul, i, kk).unwrap();
    let aaddr = g.bin(hb, BinOp::Add, abase, k).unwrap();
    let av = g.load(hb, a, &[aaddr]).unwrap();
    let nn = g.c_i64(hb, p.n as i64).unwrap();
    let bbase = g.bin(hb, BinOp::Mul, k, nn).unwrap();
    let baddr = g.bin(hb, BinOp::Add, bbase, j).unwrap();
    let bv = g.load(hb, bt, &[baddr]).unwrap();
    let prod = g.bin(hb, BinOp::Mul, av, bv).unwrap();
    let acc = g.reduce(hb, BinOp::Add, prod, Elem::F64(0.0), lk).unwrap();
    let last = g.is_last(hb, lk).unwrap();
    let cbase = g.bin(hb, BinOp::Mul, i, nn).unwrap();
    let caddr = g.bin(hb, BinOp::Add, cbase, j).unwrap();
    g.store_if(hb, c, &[caddr], acc, last).unwrap();
    g
}

/// Parameters of the single-batch MLP (the paper's Fig 9 subject).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpParams {
    /// Input features.
    pub d_in: usize,
    /// Hidden width (two hidden layers).
    pub d_hidden: usize,
    /// Output classes.
    pub d_out: usize,
    /// Parallelization of the per-layer reduction loops (vectorize).
    pub par_inner: u32,
    /// Parallelization of the per-layer neuron loops (spatial unroll).
    pub par_neuron: u32,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams { d_in: 16, d_hidden: 16, d_out: 4, par_inner: 1, par_neuron: 1 }
    }
}

/// Single-batch 3-layer MLP: `out = W3·relu(W2·relu(W1·x))`.
///
/// No batch dimension exists, so all parallelism must come from intra-layer
/// loop parallelization and inter-layer pipelining — exactly why the paper
/// uses it to demonstrate scaling "without trivial data-level parallelism".
pub fn mlp(p: &MlpParams) -> Program {
    let mut g = Program::new("mlp");
    let root = g.root();
    let x = g.dram("x", &[p.d_in], DType::F64, MemInit::RandomF { seed: 41 });
    let w1 = g.dram("w1", &[p.d_hidden * p.d_in], DType::F64, MemInit::RandomF { seed: 42 });
    let w2 = g.dram("w2", &[p.d_hidden * p.d_hidden], DType::F64, MemInit::RandomF { seed: 43 });
    let w3 = g.dram("w3", &[p.d_out * p.d_hidden], DType::F64, MemInit::RandomF { seed: 44 });
    let out = g.dram("out", &[p.d_out], DType::F64, MemInit::Zero);
    let h0 = g.sram("h0", &[p.d_in], DType::F64);
    let h1 = g.sram("h1", &[p.d_hidden], DType::F64);
    let h2 = g.sram("h2", &[p.d_hidden], DType::F64);

    // stage input
    let ls = g.add_loop(root, "stage", LoopSpec::new(0, p.d_in as i64, 1)).unwrap();
    let hs = g.add_leaf(ls, "sx").unwrap();
    let si = g.idx(hs, ls).unwrap();
    let sv = g.load(hs, x, &[si]).unwrap();
    g.store(hs, h0, &[si], sv).unwrap();

    // layer helper: dst[i] = relu(Σ_j w[i*cols+j] * src[j]) (relu opt)
    let layer = |g: &mut Program,
                 name: &str,
                 w: sara_ir::MemId,
                 src: sara_ir::MemId,
                 dst: sara_ir::MemId,
                 rows: usize,
                 cols: usize,
                 relu: bool,
                 dst_is_dram: bool| {
        let li = g
            .add_loop(
                root,
                &format!("{name}_i"),
                LoopSpec::new(0, rows as i64, 1).par(p.par_neuron),
            )
            .unwrap();
        let lj = g
            .add_loop(li, &format!("{name}_j"), LoopSpec::new(0, cols as i64, 1).par(p.par_inner))
            .unwrap();
        let hb = g.add_leaf(lj, &format!("{name}_mac")).unwrap();
        let i = g.idx(hb, li).unwrap();
        let j = g.idx(hb, lj).unwrap();
        let cc = g.c_i64(hb, cols as i64).unwrap();
        let base = g.bin(hb, BinOp::Mul, i, cc).unwrap();
        let waddr = g.bin(hb, BinOp::Add, base, j).unwrap();
        let wv = g.load(hb, w, &[waddr]).unwrap();
        let sv = g.load(hb, src, &[j]).unwrap();
        let prod = g.bin(hb, BinOp::Mul, wv, sv).unwrap();
        let acc = g.reduce(hb, BinOp::Add, prod, Elem::F64(0.0), lj).unwrap();
        let act = if relu { g.un(hb, UnOp::Relu, acc).unwrap() } else { acc };
        let last = g.is_last(hb, lj).unwrap();
        let _ = dst_is_dram;
        g.store_if(hb, dst, &[i], act, last).unwrap();
    };
    layer(&mut g, "l1", w1, h0, h1, p.d_hidden, p.d_in, true, false);
    layer(&mut g, "l2", w2, h1, h2, p.d_hidden, p.d_hidden, true, false);
    layer(&mut g, "l3", w3, h2, out, p.d_out, p.d_hidden, false, true);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn dotprod_matches_closed_form() {
        let p = dotprod(&DotParams { n: 32, par: 1 });
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        // cross-check against manual recompute of the same random data
        let a = sara_ir::MemInit::RandomF { seed: 11 }.materialize(32, DType::F64);
        let b = sara_ir::MemInit::RandomF { seed: 12 }.materialize(32, DType::F64);
        let want: f64 = a.iter().zip(&b).map(|(x, y)| x.as_f64() * y.as_f64()).sum();
        let got = o.mem_f64(sara_ir::MemId(2))[0];
        assert!((want - got).abs() < 1e-9);
    }

    #[test]
    fn gemm_validates_and_runs() {
        let p = gemm(&GemmParams::default());
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert!(o.stats.flops > 0);
    }

    #[test]
    fn mlp_output_is_finite_and_nonzero() {
        let p = mlp(&MlpParams::default());
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        let out = o.mem_f64(sara_ir::MemId(4));
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(out.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn outerprod_shape() {
        let p = outerprod(&OuterParams::default());
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.mem_f64(sara_ir::MemId(2)).len(), 8 * 16);
    }
}
