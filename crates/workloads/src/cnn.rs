//! `snet`: a small squeeze-style convolutional network — the paper's
//! compute-bound CNN representative.

use sara_ir::{BinOp, DType, Elem, LoopSpec, MemInit, Program, UnOp};

/// Parameters of the conv net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnetParams {
    /// Input feature-map width/height (square).
    pub img: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels of the 3×3 conv.
    pub c_out: usize,
    /// Parallelization of the output-channel loop (spatial unrolling).
    pub par_oc: u32,
    /// Parallelization of the kernel-reduction loop (vectorization).
    pub par_k: u32,
}

impl Default for SnetParams {
    fn default() -> Self {
        SnetParams { img: 6, c_in: 2, c_out: 4, par_oc: 1, par_k: 1 }
    }
}

/// One 3×3 same-channel conv + ReLU + 2×2 max-pool stage.
///
/// Layout: input `[c_in][img][img]`, weights `[c_out][c_in][3][3]`,
/// conv output `[c_out][img-2][img-2]`, pooled `[c_out][h/2][w/2]`.
pub fn snet(p: &SnetParams) -> Program {
    let img = p.img;
    let oh = img - 2;
    let ph = oh / 2;
    let mut g = Program::new("snet");
    let root = g.root();
    let input = g.dram("input", &[p.c_in * img * img], DType::F64, MemInit::RandomF { seed: 101 });
    let w = g.dram("w", &[p.c_out * p.c_in * 9], DType::F64, MemInit::RandomF { seed: 102 });
    let pooled = g.dram("pooled", &[p.c_out * ph * ph], DType::F64, MemInit::Zero);
    let in_s = g.sram("in_s", &[p.c_in * img * img], DType::F64);
    let conv_s = g.sram("conv_s", &[p.c_out * oh * oh], DType::F64);

    // stage the input
    let ls = g.add_loop(root, "stage", LoopSpec::new(0, (p.c_in * img * img) as i64, 1)).unwrap();
    let hs = g.add_leaf(ls, "si").unwrap();
    let si = g.idx(hs, ls).unwrap();
    let sv = g.load(hs, input, &[si]).unwrap();
    g.store(hs, in_s, &[si], sv).unwrap();

    // conv: for oc, oy, ox: acc over (ic, ky, kx)
    let loc = g.add_loop(root, "oc", LoopSpec::new(0, p.c_out as i64, 1).par(p.par_oc)).unwrap();
    let loy = g.add_loop(loc, "oy", LoopSpec::new(0, oh as i64, 1)).unwrap();
    let lox = g.add_loop(loy, "ox", LoopSpec::new(0, oh as i64, 1)).unwrap();
    // fuse (ic, ky, kx) into a single reduction loop of length c_in*9 so
    // the whole MAC is one vectorizable innermost loop
    let klen = p.c_in * 9;
    let lk = g.add_loop(lox, "k", LoopSpec::new(0, klen as i64, 1).par(p.par_k)).unwrap();
    let hb = g.add_leaf(lk, "mac").unwrap();
    let oc = g.idx(hb, loc).unwrap();
    let oy = g.idx(hb, loy).unwrap();
    let ox = g.idx(hb, lox).unwrap();
    let k = g.idx(hb, lk).unwrap();
    let nine = g.c_i64(hb, 9).unwrap();
    let ic = g.bin(hb, BinOp::Div, k, nine).unwrap();
    let krem = g.bin(hb, BinOp::Mod, k, nine).unwrap();
    let three = g.c_i64(hb, 3).unwrap();
    let ky = g.bin(hb, BinOp::Div, krem, three).unwrap();
    let kx = g.bin(hb, BinOp::Mod, krem, three).unwrap();
    // weight address: ((oc*c_in + ic)*9 + krem)
    let cin = g.c_i64(hb, p.c_in as i64).unwrap();
    let wb0 = g.bin(hb, BinOp::Mul, oc, cin).unwrap();
    let wb1 = g.bin(hb, BinOp::Add, wb0, ic).unwrap();
    let wb2 = g.bin(hb, BinOp::Mul, wb1, nine).unwrap();
    let wa = g.bin(hb, BinOp::Add, wb2, krem).unwrap();
    let wv = g.load(hb, w, &[wa]).unwrap();
    // input address: (ic*img + oy+ky)*img + ox+kx
    let imgc = g.c_i64(hb, img as i64).unwrap();
    let iy = g.bin(hb, BinOp::Add, oy, ky).unwrap();
    let ix = g.bin(hb, BinOp::Add, ox, kx).unwrap();
    let ib0 = g.bin(hb, BinOp::Mul, ic, imgc).unwrap();
    let ib1 = g.bin(hb, BinOp::Add, ib0, iy).unwrap();
    let ib2 = g.bin(hb, BinOp::Mul, ib1, imgc).unwrap();
    let ia = g.bin(hb, BinOp::Add, ib2, ix).unwrap();
    let iv = g.load(hb, in_s, &[ia]).unwrap();
    let prod = g.bin(hb, BinOp::Mul, wv, iv).unwrap();
    let acc = g.reduce(hb, BinOp::Add, prod, Elem::F64(0.0), lk).unwrap();
    let relu = g.un(hb, UnOp::Relu, acc).unwrap();
    let last = g.is_last(hb, lk).unwrap();
    // conv_s address: (oc*oh + oy)*oh + ox
    let ohc = g.c_i64(hb, oh as i64).unwrap();
    let cb0 = g.bin(hb, BinOp::Mul, oc, ohc).unwrap();
    let cb1 = g.bin(hb, BinOp::Add, cb0, oy).unwrap();
    let cb2 = g.bin(hb, BinOp::Mul, cb1, ohc).unwrap();
    let ca = g.bin(hb, BinOp::Add, cb2, ox).unwrap();
    g.store_if(hb, conv_s, &[ca], relu, last).unwrap();

    // 2x2 max pool: for oc, py, px: max over the 4-window
    let lpc = g.add_loop(root, "poc", LoopSpec::new(0, p.c_out as i64, 1).par(p.par_oc)).unwrap();
    let lpy = g.add_loop(lpc, "py", LoopSpec::new(0, ph as i64, 1)).unwrap();
    let lpx = g.add_loop(lpy, "px", LoopSpec::new(0, ph as i64, 1)).unwrap();
    let lw = g.add_loop(lpx, "win", LoopSpec::new(0, 4, 1)).unwrap();
    let hp = g.add_leaf(lw, "pool").unwrap();
    let pc = g.idx(hp, lpc).unwrap();
    let py = g.idx(hp, lpy).unwrap();
    let px = g.idx(hp, lpx).unwrap();
    let wi = g.idx(hp, lw).unwrap();
    let two = g.c_i64(hp, 2).unwrap();
    let dy = g.bin(hp, BinOp::Div, wi, two).unwrap();
    let dx = g.bin(hp, BinOp::Mod, wi, two).unwrap();
    let sy0 = g.bin(hp, BinOp::Mul, py, two).unwrap();
    let sy = g.bin(hp, BinOp::Add, sy0, dy).unwrap();
    let sx0 = g.bin(hp, BinOp::Mul, px, two).unwrap();
    let sx = g.bin(hp, BinOp::Add, sx0, dx).unwrap();
    let ohc2 = g.c_i64(hp, oh as i64).unwrap();
    let pb0 = g.bin(hp, BinOp::Mul, pc, ohc2).unwrap();
    let pb1 = g.bin(hp, BinOp::Add, pb0, sy).unwrap();
    let pb2 = g.bin(hp, BinOp::Mul, pb1, ohc2).unwrap();
    let pa = g.bin(hp, BinOp::Add, pb2, sx).unwrap();
    let cv = g.load(hp, conv_s, &[pa]).unwrap();
    let mx = g.reduce(hp, BinOp::Max, cv, Elem::F64(f64::NEG_INFINITY), lw).unwrap();
    let lastw = g.is_last(hp, lw).unwrap();
    let phc = g.c_i64(hp, ph as i64).unwrap();
    let ob0 = g.bin(hp, BinOp::Mul, pc, phc).unwrap();
    let ob1 = g.bin(hp, BinOp::Add, ob0, py).unwrap();
    let ob2 = g.bin(hp, BinOp::Mul, ob1, phc).unwrap();
    let oa = g.bin(hp, BinOp::Add, ob2, px).unwrap();
    g.store_if(hp, pooled, &[oa], mx, lastw).unwrap();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn snet_runs_and_pooled_nonnegative() {
        let p = snet(&SnetParams::default());
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        let pooled = o.mem_f64(sara_ir::MemId(2));
        // relu then max-pool: everything >= 0, and something > 0
        assert!(pooled.iter().all(|v| *v >= 0.0));
        assert!(pooled.iter().any(|v| *v > 0.0));
    }

    #[test]
    fn snet_flop_count_scales_with_channels() {
        let small = snet(&SnetParams::default());
        let big = snet(&SnetParams { c_out: 8, ..SnetParams::default() });
        let fs = Interp::new(&small).run().unwrap().stats.flops;
        let fb = Interp::new(&big).run().unwrap().stats.flops;
        assert!(fb > fs * 3 / 2);
    }
}
