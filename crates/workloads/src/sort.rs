//! `sort`: an in-scratchpad bitonic sorting network.

use sara_ir::{BinOp, DType, LoopSpec, MemInit, Program, UnOp};

/// Parameters of the bitonic sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortParams {
    /// Elements; must be a power of two.
    pub n: usize,
}

impl Default for SortParams {
    fn default() -> Self {
        SortParams { n: 16 }
    }
}

/// Bitonic sort of `n` elements staged in a scratchpad. Every stage is a
/// full pass of compare-exchanges; stage ordering is enforced purely by
/// CMMC's loop-carried dependencies on the scratchpad.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn sort(p: &SortParams) -> Program {
    assert!(p.n.is_power_of_two(), "bitonic sort needs a power-of-two size");
    let n = p.n as i64;
    let log_n = p.n.trailing_zeros() as i64;
    let mut g = Program::new("sort");
    let root = g.root();
    let input = g.dram("input", &[p.n], DType::F64, MemInit::RandomF { seed: 111 });
    let output = g.dram("output", &[p.n], DType::F64, MemInit::Zero);
    // Ping-pong halves: each pass reads one half and writes the other, so
    // every compare-exchange sees the *previous* pass's values even under
    // sequential semantics.
    let buf = g.sram("buf", &[2 * p.n], DType::F64);

    // stage in (half 0)
    let ls = g.add_loop(root, "stage_in", LoopSpec::new(0, n, 1)).unwrap();
    let hs = g.add_leaf(ls, "si").unwrap();
    let si = g.idx(hs, ls).unwrap();
    let sv = g.load(hs, input, &[si]).unwrap();
    g.store(hs, buf, &[si], sv).unwrap();

    // network: for s in 0..log_n, for sub in 0..=s, compare-exchange pass
    let lst = g.add_loop(root, "s", LoopSpec::new(0, log_n, 1)).unwrap();
    let lsub = g.add_loop(lst, "sub", LoopSpec::new(0, log_n, 1)).unwrap();
    let li = g.add_loop(lsub, "i", LoopSpec::new(0, n, 1)).unwrap();
    let hb = g.add_leaf(li, "ce").unwrap();
    let s = g.idx(hb, lst).unwrap();
    let sub = g.idx(hb, lsub).unwrap();
    let i = g.idx(hb, li).unwrap();
    // only substages sub <= s act; k = 1 << (s - sub)
    let active = g.bin(hb, BinOp::Le, sub, s).unwrap();
    let sdiff0 = g.bin(hb, BinOp::Sub, s, sub).unwrap();
    let zero0 = g.c_i64(hb, 0).unwrap();
    // clamp for inactive substages (their loads must stay in bounds)
    let sdiff = g.bin(hb, BinOp::Max, sdiff0, zero0).unwrap();
    let one = g.c_i64(hb, 1).unwrap();
    let k = g.bin(hb, BinOp::Shl, one, sdiff).unwrap();
    let partner = g.bin(hb, BinOp::Xor, i, k).unwrap();
    let is_low = g.bin(hb, BinOp::Lt, i, partner).unwrap();
    // ascending block? dir = ((i >> (s+1)) & 1) == 0
    let s1 = g.bin(hb, BinOp::Add, s, one).unwrap();
    let blk = g.bin(hb, BinOp::Shr, i, s1).unwrap();
    let bit = g.bin(hb, BinOp::And, blk, one).unwrap();
    let zero = g.c_i64(hb, 0).unwrap();
    let asc = g.bin(hb, BinOp::Eq, bit, zero).unwrap();
    // pass parity selects the read half; the write half is its complement
    let lnc = g.c_i64(hb, log_n).unwrap();
    let pass0 = g.bin(hb, BinOp::Mul, s, lnc).unwrap();
    let pass = g.bin(hb, BinOp::Add, pass0, sub).unwrap();
    let two = g.c_i64(hb, 2).unwrap();
    let parity = g.bin(hb, BinOp::Mod, pass, two).unwrap();
    let nn = g.c_i64(hb, n).unwrap();
    let rbase = g.bin(hb, BinOp::Mul, parity, nn).unwrap();
    let onec = g.c_i64(hb, 1).unwrap();
    let wpar = g.bin(hb, BinOp::Sub, onec, parity).unwrap();
    let wbase = g.bin(hb, BinOp::Mul, wpar, nn).unwrap();
    let ra = g.bin(hb, BinOp::Add, rbase, i).unwrap();
    let rp = g.bin(hb, BinOp::Add, rbase, partner).unwrap();
    let a = g.load(hb, buf, &[ra]).unwrap();
    let b = g.load(hb, buf, &[rp]).unwrap();
    let lo = g.bin(hb, BinOp::Min, a, b).unwrap();
    let hi = g.bin(hb, BinOp::Max, a, b).unwrap();
    // value this slot keeps: ascending blocks keep lo at the low index
    let keep_lo = g.bin(hb, BinOp::Eq, is_low, asc).unwrap();
    let kept = g.mux(hb, keep_lo, lo, hi).unwrap();
    let unchanged = g.un(hb, UnOp::Not, active).unwrap();
    let val = g.mux(hb, unchanged, a, kept).unwrap();
    let wa = g.bin(hb, BinOp::Add, wbase, i).unwrap();
    g.store(hb, buf, &[wa], val).unwrap();

    // stage out: the final pass wrote half (total_passes % 2 == 0 ? ... )
    // total passes = log_n², so the data ends in half (log_n² % 2)
    let final_half = ((log_n * log_n) % 2) * n;
    let lo2 = g.add_loop(root, "stage_out", LoopSpec::new(0, n, 1)).unwrap();
    let ho = g.add_leaf(lo2, "so").unwrap();
    let oi = g.idx(ho, lo2).unwrap();
    let fh = g.c_i64(ho, final_half).unwrap();
    let oa = g.bin(ho, BinOp::Add, oi, fh).unwrap();
    let ov = g.load(ho, buf, &[oa]).unwrap();
    g.store(ho, output, &[oi], ov).unwrap();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn sorts_random_data() {
        let p = sort(&SortParams { n: 16 });
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        let out = o.mem_f64(sara_ir::MemId(1));
        for w in out.windows(2) {
            assert!(w[0] <= w[1], "{out:?}");
        }
        // it's a permutation of the input
        let mut input: Vec<f64> = sara_ir::MemInit::RandomF { seed: 111 }
            .materialize(16, DType::F64)
            .iter()
            .map(|e| e.as_f64())
            .collect();
        input.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in input.iter().zip(&out) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        sort(&SortParams { n: 12 });
    }
}
