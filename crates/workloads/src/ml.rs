//! Machine-learning training/analytics kernels: logistic regression, SGD
//! linear regression, k-means, GDA and an LSTM cell — the Table V
//! comparison set plus the paper's recurrent workload.

use sara_ir::{BinOp, DType, Elem, LoopSpec, MemInit, Program, UnOp};

/// Parameters shared by logreg/sgd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegressionParams {
    /// Samples.
    pub n: usize,
    /// Features.
    pub d: usize,
    /// Parallelization of the feature loops.
    pub par_d: u32,
}

impl Default for RegressionParams {
    fn default() -> Self {
        RegressionParams { n: 8, d: 16, par_d: 1 }
    }
}

fn regression(p: &RegressionParams, logistic: bool) -> Program {
    let name = if logistic { "logreg" } else { "sgd" };
    let mut g = Program::new(name);
    let root = g.root();
    let x = g.dram("x", &[p.n * p.d], DType::F64, MemInit::RandomF { seed: 51 });
    let y = g.dram("y", &[p.n], DType::F64, MemInit::RandomF { seed: 52 });
    let wout = g.dram("wout", &[p.d], DType::F64, MemInit::Zero);
    let w = g.sram("w", &[p.d], DType::F64);
    let err = g.reg("err", DType::F64);

    let ln = g.add_loop(root, "n", LoopSpec::new(0, p.n as i64, 1)).unwrap();
    // dot: acc = w · x[n]
    let ld = g.add_loop(ln, "dot_d", LoopSpec::new(0, p.d as i64, 1).par(p.par_d)).unwrap();
    let h1 = g.add_leaf(ld, "dot").unwrap();
    let n1 = g.idx(h1, ln).unwrap();
    let d1 = g.idx(h1, ld).unwrap();
    let dd = g.c_i64(h1, p.d as i64).unwrap();
    let base = g.bin(h1, BinOp::Mul, n1, dd).unwrap();
    let xaddr = g.bin(h1, BinOp::Add, base, d1).unwrap();
    let xv = g.load(h1, x, &[xaddr]).unwrap();
    let wv = g.load(h1, w, &[d1]).unwrap();
    let prod = g.bin(h1, BinOp::Mul, xv, wv).unwrap();
    let acc = g.reduce(h1, BinOp::Add, prod, Elem::F64(0.0), ld).unwrap();
    // err = y[n] - act(acc), once per sample
    let he = g.add_leaf(ln, "err").unwrap();
    let ne = g.idx(he, ln).unwrap();
    let yv = g.load(he, y, &[ne]).unwrap();
    // read back the dot product via a register carrying the reduce result
    let dotr = g.reg("dot", DType::F64);
    // store the reduce into dotr at the end of the dot loop
    {
        let last = g.is_last(h1, ld).unwrap();
        let z = g.c_i64(h1, 0).unwrap();
        g.store_if(h1, dotr, &[z], acc, last).unwrap();
    }
    let z2 = g.c_i64(he, 0).unwrap();
    let dv = g.load(he, dotr, &[z2]).unwrap();
    let pred = if logistic { g.un(he, UnOp::Sigmoid, dv).unwrap() } else { dv };
    let e = g.bin(he, BinOp::Sub, yv, pred).unwrap();
    g.store(he, err, &[z2], e).unwrap();
    // update: w[d] += lr * err * x[n,d]
    let lu = g.add_loop(ln, "upd_d", LoopSpec::new(0, p.d as i64, 1).par(p.par_d)).unwrap();
    let h2 = g.add_leaf(lu, "upd").unwrap();
    let n2 = g.idx(h2, ln).unwrap();
    let d2 = g.idx(h2, lu).unwrap();
    let dd2 = g.c_i64(h2, p.d as i64).unwrap();
    let b2 = g.bin(h2, BinOp::Mul, n2, dd2).unwrap();
    let xaddr2 = g.bin(h2, BinOp::Add, b2, d2).unwrap();
    let xv2 = g.load(h2, x, &[xaddr2]).unwrap();
    let z3 = g.c_i64(h2, 0).unwrap();
    let ev = g.load(h2, err, &[z3]).unwrap();
    let lr = g.c_f64(h2, 0.1).unwrap();
    let step1 = g.bin(h2, BinOp::Mul, ev, lr).unwrap();
    let step = g.bin(h2, BinOp::Mul, step1, xv2).unwrap();
    let wv2 = g.load(h2, w, &[d2]).unwrap();
    let wn = g.bin(h2, BinOp::Add, wv2, step).unwrap();
    g.store(h2, w, &[d2], wn).unwrap();
    // publish weights
    let lo = g.add_loop(root, "out_d", LoopSpec::new(0, p.d as i64, 1)).unwrap();
    let h3 = g.add_leaf(lo, "pub").unwrap();
    let d3 = g.idx(h3, lo).unwrap();
    let wv3 = g.load(h3, w, &[d3]).unwrap();
    g.store(h3, wout, &[d3], wv3).unwrap();
    g
}

/// One epoch of logistic regression with in-fabric weight updates.
pub fn logreg(p: &RegressionParams) -> Program {
    regression(p, true)
}

/// One epoch of linear-regression SGD.
pub fn sgd(p: &RegressionParams) -> Program {
    regression(p, false)
}

/// Parameters of k-means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansParams {
    pub n: usize,
    pub d: usize,
    pub k: usize,
    /// Parallelization of the per-dimension loops.
    pub par_d: u32,
}

impl Default for KmeansParams {
    fn default() -> Self {
        KmeansParams { n: 8, d: 8, k: 3, par_d: 1 }
    }
}

/// One k-means iteration: assign each point to the nearest centroid and
/// emit per-cluster sums and counts (the host would finish the division).
pub fn kmeans(p: &KmeansParams) -> Program {
    let mut g = Program::new("kmeans");
    let root = g.root();
    let x = g.dram("x", &[p.n * p.d], DType::F64, MemInit::RandomF { seed: 61 });
    let cent = g.dram("cent", &[p.k * p.d], DType::F64, MemInit::RandomF { seed: 62 });
    let sums_out = g.dram("sums", &[p.k * p.d], DType::F64, MemInit::Zero);
    let counts_out = g.dram("counts", &[p.k], DType::F64, MemInit::Zero);
    let c_s = g.sram("c_s", &[p.k * p.d], DType::F64);
    let acc_s = g.sram("acc_s", &[p.k * p.d], DType::F64);
    let cnt_s = g.sram("cnt_s", &[p.k], DType::F64);
    let best_d = g.reg("best_d", DType::F64);
    let best_k = g.reg("best_k", DType::I64);
    let dist_r = g.reg("dist", DType::F64);

    // stage centroids
    let ls = g.add_loop(root, "stage", LoopSpec::new(0, (p.k * p.d) as i64, 1)).unwrap();
    let hs = g.add_leaf(ls, "sc").unwrap();
    let si = g.idx(hs, ls).unwrap();
    let sv = g.load(hs, cent, &[si]).unwrap();
    g.store(hs, c_s, &[si], sv).unwrap();

    let ln = g.add_loop(root, "n", LoopSpec::new(0, p.n as i64, 1)).unwrap();
    let lk = g.add_loop(ln, "k", LoopSpec::new(0, p.k as i64, 1)).unwrap();
    // dist(n,k) = Σ_d (x - c)^2
    let ldd = g.add_loop(lk, "dist_d", LoopSpec::new(0, p.d as i64, 1).par(p.par_d)).unwrap();
    let h1 = g.add_leaf(ldd, "dist").unwrap();
    let n1 = g.idx(h1, ln).unwrap();
    let k1 = g.idx(h1, lk).unwrap();
    let d1 = g.idx(h1, ldd).unwrap();
    let dd = g.c_i64(h1, p.d as i64).unwrap();
    let xb = g.bin(h1, BinOp::Mul, n1, dd).unwrap();
    let xa = g.bin(h1, BinOp::Add, xb, d1).unwrap();
    let xv = g.load(h1, x, &[xa]).unwrap();
    let cb = g.bin(h1, BinOp::Mul, k1, dd).unwrap();
    let ca = g.bin(h1, BinOp::Add, cb, d1).unwrap();
    let cv = g.load(h1, c_s, &[ca]).unwrap();
    let diff = g.bin(h1, BinOp::Sub, xv, cv).unwrap();
    let sq = g.bin(h1, BinOp::Mul, diff, diff).unwrap();
    let acc = g.reduce(h1, BinOp::Add, sq, Elem::F64(0.0), ldd).unwrap();
    let last = g.is_last(h1, ldd).unwrap();
    let z = g.c_i64(h1, 0).unwrap();
    g.store_if(h1, dist_r, &[z], acc, last).unwrap();
    // best update, once per (n,k)
    let hb = g.add_leaf(lk, "best").unwrap();
    let k2 = g.idx(hb, lk).unwrap();
    let zf = g.c_i64(hb, 0).unwrap();
    let dv = g.load(hb, dist_r, &[zf]).unwrap();
    let bv = g.load(hb, best_d, &[zf]).unwrap();
    let first = g.is_first(hb, lk).unwrap();
    let less = g.bin(hb, BinOp::Lt, dv, bv).unwrap();
    let take = g.bin(hb, BinOp::Or, less, first).unwrap();
    let nd = g.mux(hb, take, dv, bv).unwrap();
    g.store(hb, best_d, &[zf], nd).unwrap();
    let bk = g.load(hb, best_k, &[zf]).unwrap();
    let nk = g.mux(hb, take, k2, bk).unwrap();
    g.store(hb, best_k, &[zf], nk).unwrap();
    // accumulate, once per n (after the k loop)
    let la = g.add_loop(ln, "acc_d", LoopSpec::new(0, p.d as i64, 1)).unwrap();
    let h2 = g.add_leaf(la, "accum").unwrap();
    let n2 = g.idx(h2, ln).unwrap();
    let d2 = g.idx(h2, la).unwrap();
    let z4 = g.c_i64(h2, 0).unwrap();
    let bk2 = g.load(h2, best_k, &[z4]).unwrap();
    let dd2 = g.c_i64(h2, p.d as i64).unwrap();
    let ab = g.bin(h2, BinOp::Mul, bk2, dd2).unwrap();
    let aa = g.bin(h2, BinOp::Add, ab, d2).unwrap();
    let xb2 = g.bin(h2, BinOp::Mul, n2, dd2).unwrap();
    let xa2 = g.bin(h2, BinOp::Add, xb2, d2).unwrap();
    let xv2 = g.load(h2, x, &[xa2]).unwrap();
    let cur = g.load(h2, acc_s, &[aa]).unwrap();
    let nv = g.bin(h2, BinOp::Add, cur, xv2).unwrap();
    g.store(h2, acc_s, &[aa], nv).unwrap();
    // count, once per n (d == 0 position reuses the same loop)
    let zero2 = g.c_i64(h2, 0).unwrap();
    let isd0 = g.bin(h2, BinOp::Eq, d2, zero2).unwrap();
    let cc = g.load(h2, cnt_s, &[bk2]).unwrap();
    let one = g.c_f64(h2, 1.0).unwrap();
    let cc1 = g.bin(h2, BinOp::Add, cc, one).unwrap();
    g.store_if(h2, cnt_s, &[bk2], cc1, isd0).unwrap();
    // publish
    let lp = g.add_loop(root, "pub", LoopSpec::new(0, (p.k * p.d) as i64, 1)).unwrap();
    let h3 = g.add_leaf(lp, "pubs").unwrap();
    let i3 = g.idx(h3, lp).unwrap();
    let v3 = g.load(h3, acc_s, &[i3]).unwrap();
    g.store(h3, sums_out, &[i3], v3).unwrap();
    let lp2 = g.add_loop(root, "pub2", LoopSpec::new(0, p.k as i64, 1)).unwrap();
    let h4 = g.add_leaf(lp2, "pubc").unwrap();
    let i4 = g.idx(h4, lp2).unwrap();
    let v4 = g.load(h4, cnt_s, &[i4]).unwrap();
    g.store(h4, counts_out, &[i4], v4).unwrap();
    g
}

/// Parameters of GDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GdaParams {
    pub n: usize,
    pub d: usize,
    /// Parallelization of the covariance column loop.
    pub par_d: u32,
}

impl Default for GdaParams {
    fn default() -> Self {
        GdaParams { n: 8, d: 6, par_d: 1 }
    }
}

/// Gaussian discriminant analysis core: `sigma += (x_n - mu)(x_n - mu)^T`.
pub fn gda(p: &GdaParams) -> Program {
    let mut g = Program::new("gda");
    let root = g.root();
    let x = g.dram("x", &[p.n * p.d], DType::F64, MemInit::RandomF { seed: 71 });
    let mu = g.dram("mu", &[p.d], DType::F64, MemInit::RandomF { seed: 72 });
    let sigma_out = g.dram("sigma", &[p.d * p.d], DType::F64, MemInit::Zero);
    let mu_s = g.sram("mu_s", &[p.d], DType::F64);
    let sig_s = g.sram("sig_s", &[p.d * p.d], DType::F64);
    // stage mu
    let ls = g.add_loop(root, "stage", LoopSpec::new(0, p.d as i64, 1)).unwrap();
    let hs = g.add_leaf(ls, "sm").unwrap();
    let si = g.idx(hs, ls).unwrap();
    let sv = g.load(hs, mu, &[si]).unwrap();
    g.store(hs, mu_s, &[si], sv).unwrap();
    // accumulate outer products
    let ln = g.add_loop(root, "n", LoopSpec::new(0, p.n as i64, 1)).unwrap();
    let la = g.add_loop(ln, "a", LoopSpec::new(0, p.d as i64, 1)).unwrap();
    let lb = g.add_loop(la, "b", LoopSpec::new(0, p.d as i64, 1).par(p.par_d)).unwrap();
    let hb = g.add_leaf(lb, "op").unwrap();
    let n1 = g.idx(hb, ln).unwrap();
    let a1 = g.idx(hb, la).unwrap();
    let b1 = g.idx(hb, lb).unwrap();
    let dd = g.c_i64(hb, p.d as i64).unwrap();
    let xb = g.bin(hb, BinOp::Mul, n1, dd).unwrap();
    let xaa = g.bin(hb, BinOp::Add, xb, a1).unwrap();
    let xab = g.bin(hb, BinOp::Add, xb, b1).unwrap();
    let xa = g.load(hb, x, &[xaa]).unwrap();
    let xbv = g.load(hb, x, &[xab]).unwrap();
    let mua = g.load(hb, mu_s, &[a1]).unwrap();
    let mub = g.load(hb, mu_s, &[b1]).unwrap();
    let da = g.bin(hb, BinOp::Sub, xa, mua).unwrap();
    let db = g.bin(hb, BinOp::Sub, xbv, mub).unwrap();
    let prod = g.bin(hb, BinOp::Mul, da, db).unwrap();
    let sb = g.bin(hb, BinOp::Mul, a1, dd).unwrap();
    let sa = g.bin(hb, BinOp::Add, sb, b1).unwrap();
    let cur = g.load(hb, sig_s, &[sa]).unwrap();
    let nv = g.bin(hb, BinOp::Add, cur, prod).unwrap();
    g.store(hb, sig_s, &[sa], nv).unwrap();
    // publish
    let lp = g.add_loop(root, "pub", LoopSpec::new(0, (p.d * p.d) as i64, 1)).unwrap();
    let hp = g.add_leaf(lp, "pubs").unwrap();
    let ip = g.idx(hp, lp).unwrap();
    let vp = g.load(hp, sig_s, &[ip]).unwrap();
    g.store(hp, sigma_out, &[ip], vp).unwrap();
    g
}

/// Parameters of the LSTM cell sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmParams {
    /// Timesteps.
    pub t: usize,
    /// Hidden size (= input size for simplicity).
    pub h: usize,
    /// Parallelization of the per-gate reduction loops.
    pub par_h: u32,
}

impl Default for LstmParams {
    fn default() -> Self {
        LstmParams { t: 3, h: 8, par_h: 1 }
    }
}

/// An LSTM layer over `t` timesteps with recurrent state in scratchpads.
pub fn lstm(p: &LstmParams) -> Program {
    let mut g = Program::new("lstm");
    let root = g.root();
    let h = p.h;
    let x = g.dram("x", &[p.t * h], DType::F64, MemInit::RandomF { seed: 81 });
    // one fused weight tensor per gate: [W | U] of shape h x 2h
    let seeds = [82u64, 83, 84, 85];
    let gates = ["gi", "gf", "go", "gg"];
    let w: Vec<_> = gates
        .iter()
        .zip(seeds)
        .map(|(n, s)| {
            g.dram(&format!("w_{n}"), &[h * 2 * h], DType::F64, MemInit::RandomF { seed: s })
        })
        .collect();
    let hout = g.dram("hout", &[h], DType::F64, MemInit::Zero);
    let h_s = g.sram("h_s", &[h], DType::F64);
    let c_s = g.sram("c_s", &[h], DType::F64);
    let gate_s: Vec<_> =
        gates.iter().map(|n| g.sram(&format!("{n}_s"), &[h], DType::F64)).collect();

    let lt = g.add_loop(root, "t", LoopSpec::new(0, p.t as i64, 1)).unwrap();
    for (gi, (gname, gmem)) in gates.iter().zip(&w).enumerate() {
        let li = g.add_loop(lt, &format!("{gname}_i"), LoopSpec::new(0, h as i64, 1)).unwrap();
        let lj = g
            .add_loop(li, &format!("{gname}_j"), LoopSpec::new(0, 2 * h as i64, 1).par(p.par_h))
            .unwrap();
        let hb = g.add_leaf(lj, &format!("{gname}_mac")).unwrap();
        let t1 = g.idx(hb, lt).unwrap();
        let i1 = g.idx(hb, li).unwrap();
        let j1 = g.idx(hb, lj).unwrap();
        let two_h = g.c_i64(hb, 2 * h as i64).unwrap();
        let wb = g.bin(hb, BinOp::Mul, i1, two_h).unwrap();
        let wa = g.bin(hb, BinOp::Add, wb, j1).unwrap();
        let wv = g.load(hb, *gmem, &[wa]).unwrap();
        // operand: x[t, j] for j < h else h_s[j - h]
        let hh = g.c_i64(hb, h as i64).unwrap();
        let in_x = g.bin(hb, BinOp::Lt, j1, hh).unwrap();
        let xb = g.bin(hb, BinOp::Mul, t1, hh).unwrap();
        let jx = g.bin(hb, BinOp::Mod, j1, hh).unwrap();
        let xaddr = g.bin(hb, BinOp::Add, xb, jx).unwrap();
        let xv = g.load(hb, x, &[xaddr]).unwrap();
        let hv = g.load(hb, h_s, &[jx]).unwrap();
        let op = g.mux(hb, in_x, xv, hv).unwrap();
        let prod = g.bin(hb, BinOp::Mul, wv, op).unwrap();
        let acc = g.reduce(hb, BinOp::Add, prod, Elem::F64(0.0), lj).unwrap();
        let act = if gi == 3 {
            g.un(hb, UnOp::Tanh, acc).unwrap()
        } else {
            g.un(hb, UnOp::Sigmoid, acc).unwrap()
        };
        let last = g.is_last(hb, lj).unwrap();
        g.store_if(hb, gate_s[gi], &[i1], act, last).unwrap();
    }
    // state update: c = f*c + i*g; h = o*tanh(c)
    let lu = g.add_loop(lt, "upd", LoopSpec::new(0, h as i64, 1)).unwrap();
    let hu = g.add_leaf(lu, "update").unwrap();
    let iu = g.idx(hu, lu).unwrap();
    let gi_v = g.load(hu, gate_s[0], &[iu]).unwrap();
    let gf_v = g.load(hu, gate_s[1], &[iu]).unwrap();
    let go_v = g.load(hu, gate_s[2], &[iu]).unwrap();
    let gg_v = g.load(hu, gate_s[3], &[iu]).unwrap();
    let cv = g.load(hu, c_s, &[iu]).unwrap();
    let fc = g.bin(hu, BinOp::Mul, gf_v, cv).unwrap();
    let ig = g.bin(hu, BinOp::Mul, gi_v, gg_v).unwrap();
    let cn = g.bin(hu, BinOp::Add, fc, ig).unwrap();
    g.store(hu, c_s, &[iu], cn).unwrap();
    let th = g.un(hu, UnOp::Tanh, cn).unwrap();
    let hn = g.bin(hu, BinOp::Mul, go_v, th).unwrap();
    g.store(hu, h_s, &[iu], hn).unwrap();
    // publish h
    let lp = g.add_loop(root, "pub", LoopSpec::new(0, h as i64, 1)).unwrap();
    let hp = g.add_leaf(lp, "pubh").unwrap();
    let ip = g.idx(hp, lp).unwrap();
    let vp = g.load(hp, h_s, &[ip]).unwrap();
    g.store(hp, hout, &[ip], vp).unwrap();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn all_validate_and_run() {
        for p in [
            logreg(&RegressionParams::default()),
            sgd(&RegressionParams::default()),
            kmeans(&KmeansParams::default()),
            gda(&GdaParams::default()),
            lstm(&LstmParams::default()),
        ] {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            let o = Interp::new(&p).run().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(o.stats.flops > 0, "{}", p.name);
        }
    }

    #[test]
    fn logreg_weights_move() {
        let p = logreg(&RegressionParams::default());
        let o = Interp::new(&p).run().unwrap();
        let w = o.mem_f64(sara_ir::MemId(2));
        assert!(w.iter().any(|v| v.abs() > 1e-9));
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn kmeans_counts_sum_to_n() {
        let p = kmeans(&KmeansParams::default());
        let o = Interp::new(&p).run().unwrap();
        let counts = o.mem_f64(sara_ir::MemId(3));
        let total: f64 = counts.iter().sum();
        assert_eq!(total as usize, 8);
    }

    #[test]
    fn gda_sigma_is_symmetric() {
        let params = GdaParams::default();
        let p = gda(&params);
        let o = Interp::new(&p).run().unwrap();
        let s = o.mem_f64(sara_ir::MemId(2));
        let d = params.d;
        for a in 0..d {
            for b in 0..d {
                assert!((s[a * d + b] - s[b * d + a]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lstm_state_bounded() {
        let p = lstm(&LstmParams::default());
        let o = Interp::new(&p).run().unwrap();
        let h = o.mem_f64(sara_ir::MemId(5));
        // h = o * tanh(c) is bounded by (0,1)*(-1,1)
        assert!(h.iter().all(|v| v.abs() <= 1.0));
        assert!(h.iter().any(|v| v.abs() > 0.0));
    }
}
