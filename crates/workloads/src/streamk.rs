//! Streaming kernels: Black-Scholes, TPC-H Q6 and the data-dependent
//! streaming merge (`ms`).

use sara_ir::{BinOp, Bound, DType, Elem, LoopSpec, MemInit, Program, UnOp};

/// Parameters of Black-Scholes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsParams {
    /// Options priced.
    pub n: usize,
    /// Parallelization of the option loop.
    pub par: u32,
}

impl Default for BsParams {
    fn default() -> Self {
        BsParams { n: 16, par: 1 }
    }
}

/// Black-Scholes call pricing: a long transcendental-heavy streaming map.
/// The normal CDF uses the logistic approximation `N(x) ≈ σ(1.702·x)`,
/// matching the fixed-function accuracy class of accelerator math units.
pub fn bs(p: &BsParams) -> Program {
    let mut g = Program::new("bs");
    let root = g.root();
    let s0 = g.dram("s0", &[p.n], DType::F64, MemInit::LinSpace { start: 80.0, step: 1.5 });
    let k = g.dram("k", &[p.n], DType::F64, MemInit::LinSpace { start: 100.0, step: 0.0 });
    let t = g.dram("t", &[p.n], DType::F64, MemInit::LinSpace { start: 0.5, step: 0.03 });
    let price = g.dram("price", &[p.n], DType::F64, MemInit::Zero);
    let l = g.add_loop(root, "i", LoopSpec::new(0, p.n as i64, 1).par(p.par)).unwrap();
    let hb = g.add_leaf(l, "bs").unwrap();
    let i = g.idx(hb, l).unwrap();
    let s = g.load(hb, s0, &[i]).unwrap();
    let kk = g.load(hb, k, &[i]).unwrap();
    let tt = g.load(hb, t, &[i]).unwrap();
    let r = g.c_f64(hb, 0.05).unwrap();
    let v = g.c_f64(hb, 0.2).unwrap();
    // d1 = (ln(S/K) + (r + v^2/2) t) / (v sqrt(t))
    let sk = g.bin(hb, BinOp::Div, s, kk).unwrap();
    let lnsk = g.un(hb, UnOp::Log, sk).unwrap();
    let v2 = g.bin(hb, BinOp::Mul, v, v).unwrap();
    let half = g.c_f64(hb, 0.5).unwrap();
    let v22 = g.bin(hb, BinOp::Mul, v2, half).unwrap();
    let rv = g.bin(hb, BinOp::Add, r, v22).unwrap();
    let rvt = g.bin(hb, BinOp::Mul, rv, tt).unwrap();
    let num = g.bin(hb, BinOp::Add, lnsk, rvt).unwrap();
    let sqt = g.un(hb, UnOp::Sqrt, tt).unwrap();
    let vst = g.bin(hb, BinOp::Mul, v, sqt).unwrap();
    let d1 = g.bin(hb, BinOp::Div, num, vst).unwrap();
    let d2 = g.bin(hb, BinOp::Sub, d1, vst).unwrap();
    // N(x) ~ sigmoid(1.702 x)
    let c = g.c_f64(hb, 1.702).unwrap();
    let d1c = g.bin(hb, BinOp::Mul, d1, c).unwrap();
    let nd1 = g.un(hb, UnOp::Sigmoid, d1c).unwrap();
    let d2c = g.bin(hb, BinOp::Mul, d2, c).unwrap();
    let nd2 = g.un(hb, UnOp::Sigmoid, d2c).unwrap();
    // C = S N(d1) - K e^{-rt} N(d2)
    let rt = g.bin(hb, BinOp::Mul, r, tt).unwrap();
    let nrt = g.un(hb, UnOp::Neg, rt).unwrap();
    let disc = g.un(hb, UnOp::Exp, nrt).unwrap();
    let sn = g.bin(hb, BinOp::Mul, s, nd1).unwrap();
    let kd = g.bin(hb, BinOp::Mul, kk, disc).unwrap();
    let kdn = g.bin(hb, BinOp::Mul, kd, nd2).unwrap();
    let call = g.bin(hb, BinOp::Sub, sn, kdn).unwrap();
    g.store(hb, price, &[i], call).unwrap();
    g
}

/// Parameters of TPC-H Q6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q6Params {
    pub n: usize,
    pub par: u32,
}

impl Default for Q6Params {
    fn default() -> Self {
        Q6Params { n: 64, par: 1 }
    }
}

/// TPC-H Q6: `sum(price*discount) where 0.05<=discount<=0.07 and qty<24`
/// — a selective streaming aggregation (the branch is predicated into the
/// datapath, paper §III-A2b "branches within a hyperblock").
pub fn tpchq6(p: &Q6Params) -> Program {
    let mut g = Program::new("tpchq6");
    let root = g.root();
    let price = g.dram("price", &[p.n], DType::F64, MemInit::RandomF { seed: 91 });
    let disc = g.dram("disc", &[p.n], DType::F64, MemInit::RandomF { seed: 92 });
    let qty = g.dram("qty", &[p.n], DType::I64, MemInit::RandomI { seed: 93, lo: 0, hi: 50 });
    let out = g.dram("rev", &[1], DType::F64, MemInit::Zero);
    let l = g.add_loop(root, "i", LoopSpec::new(0, p.n as i64, 1).par(p.par)).unwrap();
    let hb = g.add_leaf(l, "agg").unwrap();
    let i = g.idx(hb, l).unwrap();
    let pv = g.load(hb, price, &[i]).unwrap();
    let dv = g.load(hb, disc, &[i]).unwrap();
    let qv = g.load(hb, qty, &[i]).unwrap();
    // discount in [0.3, 0.7) of the uniform draw (keeps selectivity high
    // enough to be interesting at small n)
    let lo = g.c_f64(hb, 0.3).unwrap();
    let hi = g.c_f64(hb, 0.7).unwrap();
    let c1 = g.bin(hb, BinOp::Ge, dv, lo).unwrap();
    let c2 = g.bin(hb, BinOp::Le, dv, hi).unwrap();
    let q24 = g.c_i64(hb, 24).unwrap();
    let c3 = g.bin(hb, BinOp::Lt, qv, q24).unwrap();
    let c12 = g.bin(hb, BinOp::And, c1, c2).unwrap();
    let sel = g.bin(hb, BinOp::And, c12, c3).unwrap();
    let pd = g.bin(hb, BinOp::Mul, pv, dv).unwrap();
    let zero = g.c_f64(hb, 0.0).unwrap();
    let contrib = g.mux(hb, sel, pd, zero).unwrap();
    let acc = g.reduce(hb, BinOp::Add, contrib, Elem::F64(0.0), l).unwrap();
    let last = g.is_last(hb, l).unwrap();
    let z = g.c_i64(hb, 0).unwrap();
    g.store_if(hb, out, &[z], acc, last).unwrap();
    g
}

/// Parameters of the streaming merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsParams {
    /// Length of each sorted input run.
    pub n: usize,
}

impl Default for MsParams {
    fn default() -> Self {
        MsParams { n: 12 }
    }
}

/// Streaming two-way merge of two sorted runs, driven by a do-while loop
/// with data-dependent pointer registers — the paper's `ms` dataflow
/// pattern (§III-A2c).
pub fn ms(p: &MsParams) -> Program {
    let n = p.n as i64;
    let mut g = Program::new("ms");
    let root = g.root();
    let a = g.dram("a", &[p.n], DType::F64, MemInit::LinSpace { start: 0.0, step: 2.0 });
    let b = g.dram("b", &[p.n], DType::F64, MemInit::LinSpace { start: 1.0, step: 1.7 });
    let out = g.dram("out", &[2 * p.n], DType::F64, MemInit::Zero);
    let ia = g.reg("ia", DType::I64);
    let ib = g.reg("ib", DType::I64);
    let kr = g.reg("kcnt", DType::I64);
    let cond = g.reg("go", DType::I64);
    let dw = g.add_do_while(root, "merge", cond, (2 * p.n + 2) as u64).unwrap();
    let hb = g.add_leaf(dw, "step").unwrap();
    let z = g.c_i64(hb, 0).unwrap();
    let iav = g.load(hb, ia, &[z]).unwrap();
    let ibv = g.load(hb, ib, &[z]).unwrap();
    let kv = g.load(hb, kr, &[z]).unwrap();
    let nn = g.c_i64(hb, n).unwrap();
    let a_ok = g.bin(hb, BinOp::Lt, iav, nn).unwrap();
    let b_ok = g.bin(hb, BinOp::Lt, ibv, nn).unwrap();
    // clamp indices for safe speculative loads
    let n1 = g.c_i64(hb, n - 1).unwrap();
    let ia_c = g.bin(hb, BinOp::Min, iav, n1).unwrap();
    let ib_c = g.bin(hb, BinOp::Min, ibv, n1).unwrap();
    let av = g.load(hb, a, &[ia_c]).unwrap();
    let bv = g.load(hb, b, &[ib_c]).unwrap();
    let a_le = g.bin(hb, BinOp::Le, av, bv).unwrap();
    let b_dead = g.un(hb, UnOp::Not, b_ok).unwrap();
    let pick_a0 = g.bin(hb, BinOp::And, a_ok, a_le).unwrap();
    let pick_a1 = g.bin(hb, BinOp::And, a_ok, b_dead).unwrap();
    let pick_a = g.bin(hb, BinOp::Or, pick_a0, pick_a1).unwrap();
    let val = g.mux(hb, pick_a, av, bv).unwrap();
    g.store(hb, out, &[kv], val).unwrap();
    let one = g.c_i64(hb, 1).unwrap();
    let ia_n0 = g.bin(hb, BinOp::Add, iav, one).unwrap();
    let ia_n = g.mux(hb, pick_a, ia_n0, iav).unwrap();
    let ib_n0 = g.bin(hb, BinOp::Add, ibv, one).unwrap();
    let ib_n = g.mux(hb, pick_a, ibv, ib_n0).unwrap();
    g.store(hb, ia, &[z], ia_n).unwrap();
    g.store(hb, ib, &[z], ib_n).unwrap();
    let k_n = g.bin(hb, BinOp::Add, kv, one).unwrap();
    g.store(hb, kr, &[z], k_n).unwrap();
    let total = g.c_i64(hb, 2 * n).unwrap();
    let more = g.bin(hb, BinOp::Lt, k_n, total).unwrap();
    g.store(hb, cond, &[z], more).unwrap();
    g
}

/// A dynamically bounded streaming sum (used by tests of dynamic bounds
/// at workload scale): sums the first `reg` elements.
pub fn dynsum(n: usize, take: i64) -> Program {
    let mut g = Program::new("dynsum");
    let root = g.root();
    let a = g.dram("a", &[n], DType::F64, MemInit::LinSpace { start: 1.0, step: 1.0 });
    let o = g.dram("o", &[1], DType::F64, MemInit::Zero);
    let t = g.reg("take", DType::I64);
    let hs = g.add_leaf(root, "setup").unwrap();
    let z = g.c_i64(hs, 0).unwrap();
    let tv = g.c_i64(hs, take).unwrap();
    g.store(hs, t, &[z], tv).unwrap();
    let l = g.add_loop(root, "i", LoopSpec::new(0, Bound::Reg(t), 1)).unwrap();
    let hb = g.add_leaf(l, "sum").unwrap();
    let i = g.idx(hb, l).unwrap();
    let v = g.load(hb, a, &[i]).unwrap();
    let acc = g.reduce(hb, BinOp::Add, v, Elem::F64(0.0), l).unwrap();
    let last = g.is_last(hb, l).unwrap();
    let z2 = g.c_i64(hb, 0).unwrap();
    g.store_if(hb, o, &[z2], acc, last).unwrap();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn bs_prices_positive_and_bounded() {
        let p = bs(&BsParams::default());
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        let prices = o.mem_f64(sara_ir::MemId(3));
        assert!(prices.iter().all(|c| *c >= -1.0 && *c < 200.0));
        assert!(prices.iter().any(|c| *c > 0.0));
    }

    #[test]
    fn q6_revenue_matches_manual() {
        let params = Q6Params { n: 64, par: 1 };
        let p = tpchq6(&params);
        let o = Interp::new(&p).run().unwrap();
        let price = sara_ir::MemInit::RandomF { seed: 91 }.materialize(64, DType::F64);
        let disc = sara_ir::MemInit::RandomF { seed: 92 }.materialize(64, DType::F64);
        let qty = sara_ir::MemInit::RandomI { seed: 93, lo: 0, hi: 50 }.materialize(64, DType::I64);
        let mut want = 0.0;
        for i in 0..64 {
            let d = disc[i].as_f64();
            if (0.3..=0.7).contains(&d) && qty[i].as_i64() < 24 {
                want += price[i].as_f64() * d;
            }
        }
        assert!((o.mem_f64(sara_ir::MemId(3))[0] - want).abs() < 1e-9);
    }

    #[test]
    fn ms_output_sorted() {
        let p = ms(&MsParams::default());
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        let out = o.mem_f64(sara_ir::MemId(2));
        for w in out.windows(2) {
            assert!(w[0] <= w[1], "{out:?}");
        }
    }

    #[test]
    fn dynsum_takes_prefix() {
        let p = dynsum(16, 5);
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.mem_f64(sara_ir::MemId(1))[0], 15.0);
    }
}
