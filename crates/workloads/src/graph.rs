//! Graph and tree workloads: PageRank over CSR (dynamic inner bounds) and
//! random-forest inference (gather-heavy tree traversal).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sara_ir::{BinOp, Bound, DType, Elem, LoopSpec, MemInit, Program};

/// Parameters of PageRank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrParams {
    /// Vertices.
    pub v: usize,
    /// Average out-degree of the random graph.
    pub avg_deg: usize,
    /// RNG seed for the graph.
    pub seed: u64,
    /// Parallelization of the vertex loop (spatial unrolling of both the
    /// bound generator and the edge gather).
    pub par_v: u32,
}

impl Default for PrParams {
    fn default() -> Self {
        PrParams { v: 12, avg_deg: 3, seed: 7, par_v: 1 }
    }
}

/// Deterministic random CSR graph: returns `(row_ptr, col_idx, out_deg)`.
pub fn random_csr(v: usize, avg_deg: usize, seed: u64) -> (Vec<i64>, Vec<i64>, Vec<i64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(v + 1);
    let mut col = Vec::new();
    row_ptr.push(0i64);
    for _ in 0..v {
        let deg = rng.gen_range(0..=(2 * avg_deg));
        for _ in 0..deg {
            col.push(rng.gen_range(0..v) as i64);
        }
        row_ptr.push(col.len() as i64);
    }
    // out-degree of each vertex as a *source* (for the rank contribution)
    let mut out_deg = vec![0i64; v];
    for c in &col {
        out_deg[*c as usize] += 1;
    }
    // avoid division by zero: sinks get degree 1
    for d in &mut out_deg {
        if *d == 0 {
            *d = 1;
        }
    }
    (row_ptr, col, out_deg)
}

/// One PageRank iteration: `rank'[v] = 0.15/V + 0.85 Σ_{u→v} rank[u]/deg[u]`
/// over a CSR in-edge list, with **dynamic inner loop bounds** read from
/// `row_ptr` (paper §III-A2a).
pub fn pr(p: &PrParams) -> Program {
    let (row_ptr, col, out_deg) = random_csr(p.v, p.avg_deg, p.seed);
    let e = col.len().max(1);
    let mut g = Program::new("pr");
    let root = g.root();
    let rp = g.dram(
        "row_ptr",
        &[p.v + 1],
        DType::I64,
        MemInit::Data(row_ptr.iter().map(|x| Elem::I64(*x)).collect()),
    );
    let ci = g.dram(
        "col_idx",
        &[e],
        DType::I64,
        MemInit::Data(
            col.iter()
                .map(|x| Elem::I64(*x))
                .chain(std::iter::once(Elem::I64(0)))
                .take(e)
                .collect(),
        ),
    );
    let deg = g.dram(
        "deg",
        &[p.v],
        DType::I64,
        MemInit::Data(out_deg.iter().map(|x| Elem::I64(*x)).collect()),
    );
    let rank = g.dram("rank", &[p.v], DType::F64, MemInit::LinSpace { start: 1.0, step: 0.0 });
    let rank_new = g.dram("rank_new", &[p.v], DType::F64, MemInit::Zero);
    let lo_r = g.reg("lo", DType::I64);
    let hi_r = g.reg("hi", DType::I64);

    let lv = g.add_loop(root, "v", LoopSpec::new(0, p.v as i64, 1).par(p.par_v)).unwrap();
    // bounds generator
    let hb0 = g.add_leaf(lv, "bounds").unwrap();
    let v0 = g.idx(hb0, lv).unwrap();
    let one = g.c_i64(hb0, 1).unwrap();
    let v1 = g.bin(hb0, BinOp::Add, v0, one).unwrap();
    let lov = g.load(hb0, rp, &[v0]).unwrap();
    let hiv = g.load(hb0, rp, &[v1]).unwrap();
    let z = g.c_i64(hb0, 0).unwrap();
    g.store(hb0, lo_r, &[z], lov).unwrap();
    g.store(hb0, hi_r, &[z], hiv).unwrap();
    // base rank (written unconditionally, covers zero-edge vertices)
    let vb = g.idx(hb0, lv).unwrap();
    let base = g.c_f64(hb0, 0.15 / p.v as f64).unwrap();
    g.store(hb0, rank_new, &[vb], base).unwrap();
    // edge gather with dynamic bounds
    let le = g
        .add_loop(
            lv,
            "e",
            LoopSpec { min: Bound::Reg(lo_r), max: Bound::Reg(hi_r), step: 1, par: 1 },
        )
        .unwrap();
    let hb1 = g.add_leaf(le, "gather").unwrap();
    let ei = g.idx(hb1, le).unwrap();
    let src = g.load(hb1, ci, &[ei]).unwrap();
    let rv = g.load(hb1, rank, &[src]).unwrap();
    let dv = g.load(hb1, deg, &[src]).unwrap();
    let contrib = g.bin(hb1, BinOp::Div, rv, dv).unwrap();
    let acc = g.reduce(hb1, BinOp::Add, contrib, Elem::F64(0.0), le).unwrap();
    let last = g.is_last(hb1, le).unwrap();
    let damp = g.c_f64(hb1, 0.85).unwrap();
    let scaled = g.bin(hb1, BinOp::Mul, acc, damp).unwrap();
    let basec = g.c_f64(hb1, 0.15 / p.v as f64).unwrap();
    let total = g.bin(hb1, BinOp::Add, scaled, basec).unwrap();
    let v2 = g.idx(hb1, lv).unwrap();
    g.store_if(hb1, rank_new, &[v2], total, last).unwrap();
    g
}

/// Parameters of random-forest inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfParams {
    /// Samples.
    pub n: usize,
    /// Features per sample.
    pub d: usize,
    /// Trees.
    pub trees: usize,
    /// Tree depth (complete binary trees).
    pub depth: usize,
    /// RNG seed for the forest.
    pub seed: u64,
    /// Parallelization of the sample loop.
    pub par_n: u32,
}

impl Default for RfParams {
    fn default() -> Self {
        RfParams { n: 6, d: 8, trees: 3, depth: 3, seed: 9, par_n: 1 }
    }
}

/// Random-forest inference as a **dataflow pipeline**: the forest (feature
/// ids, thresholds, leaf values) is staged into scratchpads once, and the
/// tree traversal is *depth-unrolled inside one hyperblock* — a chain of
/// data-dependent scratchpad gathers (`node = 2·node + 1 + (x[feat] >
/// thr)`), each request unit consuming the previous gather's response.
/// Throughput is one (sample, tree) per cycle regardless of depth; this is
/// exactly the dataflow execution a GPU cannot exploit (paper §IV-D: the
/// tree structures cause sparse memory accesses on GPUs).
pub fn rf(p: &RfParams) -> Program {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let nodes = (1usize << (p.depth + 1)) - 1;
    let feat: Vec<Elem> =
        (0..p.trees * nodes).map(|_| Elem::I64(rng.gen_range(0..p.d) as i64)).collect();
    let thr: Vec<Elem> = (0..p.trees * nodes).map(|_| Elem::F64(rng.gen::<f64>())).collect();
    let leaf: Vec<Elem> = (0..p.trees * nodes).map(|_| Elem::F64(rng.gen::<f64>())).collect();

    let mut g = Program::new("rf");
    let root = g.root();
    let x = g.dram("x", &[p.n * p.d], DType::F64, MemInit::RandomF { seed: p.seed + 1 });
    let featm = g.dram("feat", &[p.trees * nodes], DType::I64, MemInit::Data(feat));
    let thrm = g.dram("thr", &[p.trees * nodes], DType::F64, MemInit::Data(thr));
    let leafm = g.dram("leaf", &[p.trees * nodes], DType::F64, MemInit::Data(leaf));
    let votes = g.dram("votes", &[p.n], DType::F64, MemInit::Zero);
    // On-chip copies of the forest and the samples.
    let feat_s = g.sram("feat_s", &[p.trees * nodes], DType::I64);
    let thr_s = g.sram("thr_s", &[p.trees * nodes], DType::F64);
    let leaf_s = g.sram("leaf_s", &[p.trees * nodes], DType::F64);
    let x_s = g.sram("x_s", &[p.n * p.d], DType::F64);

    // stage the forest and samples
    let ls = g.add_loop(root, "stage_f", LoopSpec::new(0, (p.trees * nodes) as i64, 1)).unwrap();
    let hs = g.add_leaf(ls, "sf").unwrap();
    let si = g.idx(hs, ls).unwrap();
    let fv = g.load(hs, featm, &[si]).unwrap();
    g.store(hs, feat_s, &[si], fv).unwrap();
    let tv = g.load(hs, thrm, &[si]).unwrap();
    g.store(hs, thr_s, &[si], tv).unwrap();
    let lv = g.load(hs, leafm, &[si]).unwrap();
    g.store(hs, leaf_s, &[si], lv).unwrap();
    let lsx = g.add_loop(root, "stage_x", LoopSpec::new(0, (p.n * p.d) as i64, 1)).unwrap();
    let hx = g.add_leaf(lsx, "sx").unwrap();
    let xi = g.idx(hx, lsx).unwrap();
    let xv = g.load(hx, x, &[xi]).unwrap();
    g.store(hx, x_s, &[xi], xv).unwrap();

    // fully pipelined traversal: one (sample, tree) per firing
    let ln = g.add_loop(root, "n", LoopSpec::new(0, p.n as i64, 1).par(p.par_n)).unwrap();
    let lt = g.add_loop(ln, "t", LoopSpec::new(0, p.trees as i64, 1)).unwrap();
    let hb = g.add_leaf(lt, "walk").unwrap();
    let n1 = g.idx(hb, ln).unwrap();
    let t1 = g.idx(hb, lt).unwrap();
    let nn = g.c_i64(hb, nodes as i64).unwrap();
    let tb = g.bin(hb, BinOp::Mul, t1, nn).unwrap();
    let dd = g.c_i64(hb, p.d as i64).unwrap();
    let xb = g.bin(hb, BinOp::Mul, n1, dd).unwrap();
    let two = g.c_i64(hb, 2).unwrap();
    let one = g.c_i64(hb, 1).unwrap();
    let mut cur = g.c_i64(hb, 0).unwrap();
    for _lvl in 0..p.depth {
        let na = g.bin(hb, BinOp::Add, tb, cur).unwrap();
        let fv = g.load(hb, feat_s, &[na]).unwrap();
        let tv = g.load(hb, thr_s, &[na]).unwrap();
        let xa = g.bin(hb, BinOp::Add, xb, fv).unwrap();
        let xv = g.load(hb, x_s, &[xa]).unwrap();
        let right = g.bin(hb, BinOp::Gt, xv, tv).unwrap();
        let nxt0 = g.bin(hb, BinOp::Mul, cur, two).unwrap();
        let nxt1 = g.bin(hb, BinOp::Add, nxt0, one).unwrap();
        let ri = g.un(hb, sara_ir::UnOp::ToI, right).unwrap();
        cur = g.bin(hb, BinOp::Add, nxt1, ri).unwrap();
    }
    let la = g.bin(hb, BinOp::Add, tb, cur).unwrap();
    let leafv = g.load(hb, leaf_s, &[la]).unwrap();
    let acc = g.reduce(hb, BinOp::Add, leafv, Elem::F64(0.0), lt).unwrap();
    let lastt = g.is_last(hb, lt).unwrap();
    g.store_if(hb, votes, &[n1], acc, lastt).unwrap();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn csr_is_well_formed() {
        let (rp, col, deg) = random_csr(10, 3, 1);
        assert_eq!(rp.len(), 11);
        assert_eq!(*rp.last().unwrap() as usize, col.len());
        assert!(col.iter().all(|c| (0..10).contains(&(*c as usize))));
        assert!(deg.iter().all(|d| *d >= 1));
    }

    #[test]
    fn pr_ranks_form_distribution() {
        let params = PrParams::default();
        let p = pr(&params);
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        let r = o.mem_f64(sara_ir::MemId(4));
        assert!(r.iter().all(|v| *v >= 0.15 / params.v as f64 - 1e-12));
        assert!(r.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rf_votes_bounded_by_tree_count() {
        let params = RfParams::default();
        let p = rf(&params);
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        let v = o.mem_f64(sara_ir::MemId(4));
        assert!(v.iter().all(|x| *x >= 0.0 && *x <= params.trees as f64));
        assert!(v.iter().any(|x| *x > 0.0));
    }
}
