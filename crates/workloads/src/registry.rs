//! Name-indexed access to every workload at test-friendly sizes, plus the
//! Table IV characterization helpers.

use crate::{cnn, graph, linalg, ml, sort, streamk};
use sara_ir::Program;

/// A named workload with its domain tag (Table IV columns).
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub domain: &'static str,
    /// Whether the kernel contains data-dependent control flow (dynamic
    /// bounds, branches, do-while).
    pub data_dependent: bool,
    pub program: Program,
}

/// All workloads at small (fast differential-testing) sizes.
pub fn all_small() -> Vec<Workload> {
    vec![
        Workload {
            name: "dotprod",
            domain: "linear algebra",
            data_dependent: false,
            program: linalg::dotprod(&linalg::DotParams::default()),
        },
        Workload {
            name: "outerprod",
            domain: "linear algebra",
            data_dependent: false,
            program: linalg::outerprod(&linalg::OuterParams::default()),
        },
        Workload {
            name: "gemm",
            domain: "linear algebra",
            data_dependent: false,
            program: linalg::gemm(&linalg::GemmParams::default()),
        },
        Workload {
            name: "mlp",
            domain: "deep learning",
            data_dependent: false,
            program: linalg::mlp(&linalg::MlpParams::default()),
        },
        Workload {
            name: "lstm",
            domain: "deep learning",
            data_dependent: false,
            program: ml::lstm(&ml::LstmParams::default()),
        },
        Workload {
            name: "snet",
            domain: "deep learning",
            data_dependent: false,
            program: cnn::snet(&cnn::SnetParams::default()),
        },
        Workload {
            name: "logreg",
            domain: "analytics/ML",
            data_dependent: false,
            program: ml::logreg(&ml::RegressionParams::default()),
        },
        Workload {
            name: "sgd",
            domain: "analytics/ML",
            data_dependent: false,
            program: ml::sgd(&ml::RegressionParams::default()),
        },
        Workload {
            name: "kmeans",
            domain: "analytics/ML",
            data_dependent: false,
            program: ml::kmeans(&ml::KmeansParams::default()),
        },
        Workload {
            name: "gda",
            domain: "analytics/ML",
            data_dependent: false,
            program: ml::gda(&ml::GdaParams::default()),
        },
        Workload {
            name: "tpchq6",
            domain: "analytics",
            data_dependent: false,
            program: streamk::tpchq6(&streamk::Q6Params::default()),
        },
        Workload {
            name: "bs",
            domain: "finance",
            data_dependent: false,
            program: streamk::bs(&streamk::BsParams::default()),
        },
        Workload {
            name: "sort",
            domain: "sorting",
            data_dependent: false,
            program: sort::sort(&sort::SortParams::default()),
        },
        Workload {
            name: "ms",
            domain: "sorting",
            data_dependent: true,
            program: streamk::ms(&streamk::MsParams::default()),
        },
        Workload {
            name: "pr",
            domain: "graphs",
            data_dependent: true,
            program: graph::pr(&graph::PrParams::default()),
        },
        Workload {
            name: "rf",
            domain: "ML inference",
            data_dependent: false,
            program: graph::rf(&graph::RfParams::default()),
        },
    ]
}

/// Look up one small-size workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all_small().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn registry_has_all_paper_kernels() {
        let names: Vec<&str> = all_small().iter().map(|w| w.name).collect();
        for n in [
            "dotprod",
            "outerprod",
            "gemm",
            "mlp",
            "lstm",
            "snet",
            "logreg",
            "sgd",
            "kmeans",
            "gda",
            "tpchq6",
            "bs",
            "sort",
            "ms",
            "pr",
            "rf",
        ] {
            assert!(names.contains(&n), "{n} missing");
        }
    }

    #[test]
    fn every_workload_validates_and_interprets() {
        for w in all_small() {
            w.program.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            Interp::new(&w.program).run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(by_name("mlp").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
