//! Name-indexed access to every workload at test-friendly sizes, plus the
//! Table IV characterization helpers.

use crate::{cnn, graph, linalg, ml, sort, streamk};
use sara_ir::Program;

/// A named workload with its domain tag (Table IV columns).
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub domain: &'static str,
    /// Whether the kernel contains data-dependent control flow (dynamic
    /// bounds, branches, do-while).
    pub data_dependent: bool,
    /// Names of the loops whose `par` factor the workload's parameter
    /// struct exposes as a tuning knob, at their default (par = 1)
    /// settings. This is the default-knob metadata the DSE engine uses
    /// to span its search space without guessing from the control tree.
    pub tunable_loops: &'static [&'static str],
    pub program: Program,
}

/// All workloads at small (fast differential-testing) sizes.
pub fn all_small() -> Vec<Workload> {
    vec![
        Workload {
            name: "dotprod",
            domain: "linear algebra",
            data_dependent: false,
            tunable_loops: &["i"],
            program: linalg::dotprod(&linalg::DotParams::default()),
        },
        Workload {
            name: "outerprod",
            domain: "linear algebra",
            data_dependent: false,
            tunable_loops: &["j"],
            program: linalg::outerprod(&linalg::OuterParams::default()),
        },
        Workload {
            name: "gemm",
            domain: "linear algebra",
            data_dependent: false,
            tunable_loops: &["i", "k"],
            program: linalg::gemm(&linalg::GemmParams::default()),
        },
        Workload {
            name: "mlp",
            domain: "deep learning",
            data_dependent: false,
            tunable_loops: &["l1_i", "l1_j", "l2_i", "l2_j", "l3_i", "l3_j"],
            program: linalg::mlp(&linalg::MlpParams::default()),
        },
        Workload {
            name: "lstm",
            domain: "deep learning",
            data_dependent: false,
            tunable_loops: &["gi_j", "gf_j", "go_j", "gg_j"],
            program: ml::lstm(&ml::LstmParams::default()),
        },
        Workload {
            name: "snet",
            domain: "deep learning",
            data_dependent: false,
            tunable_loops: &["oc", "k", "poc"],
            program: cnn::snet(&cnn::SnetParams::default()),
        },
        Workload {
            name: "logreg",
            domain: "analytics/ML",
            data_dependent: false,
            tunable_loops: &["dot_d", "upd_d"],
            program: ml::logreg(&ml::RegressionParams::default()),
        },
        Workload {
            name: "sgd",
            domain: "analytics/ML",
            data_dependent: false,
            tunable_loops: &["dot_d", "upd_d"],
            program: ml::sgd(&ml::RegressionParams::default()),
        },
        Workload {
            name: "kmeans",
            domain: "analytics/ML",
            data_dependent: false,
            tunable_loops: &["dist_d"],
            program: ml::kmeans(&ml::KmeansParams::default()),
        },
        Workload {
            name: "gda",
            domain: "analytics/ML",
            data_dependent: false,
            tunable_loops: &["b"],
            program: ml::gda(&ml::GdaParams::default()),
        },
        Workload {
            name: "tpchq6",
            domain: "analytics",
            data_dependent: false,
            tunable_loops: &["i"],
            program: streamk::tpchq6(&streamk::Q6Params::default()),
        },
        Workload {
            name: "bs",
            domain: "finance",
            data_dependent: false,
            tunable_loops: &["i"],
            program: streamk::bs(&streamk::BsParams::default()),
        },
        Workload {
            name: "sort",
            domain: "sorting",
            data_dependent: false,
            tunable_loops: &[],
            program: sort::sort(&sort::SortParams::default()),
        },
        Workload {
            name: "ms",
            domain: "sorting",
            data_dependent: true,
            tunable_loops: &[],
            program: streamk::ms(&streamk::MsParams::default()),
        },
        Workload {
            name: "pr",
            domain: "graphs",
            data_dependent: true,
            tunable_loops: &["v"],
            program: graph::pr(&graph::PrParams::default()),
        },
        Workload {
            name: "rf",
            domain: "ML inference",
            data_dependent: false,
            tunable_loops: &["n"],
            program: graph::rf(&graph::RfParams::default()),
        },
    ]
}

/// Look up one small-size workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all_small().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_ir::interp::Interp;

    #[test]
    fn registry_has_all_paper_kernels() {
        let names: Vec<&str> = all_small().iter().map(|w| w.name).collect();
        for n in [
            "dotprod",
            "outerprod",
            "gemm",
            "mlp",
            "lstm",
            "snet",
            "logreg",
            "sgd",
            "kmeans",
            "gda",
            "tpchq6",
            "bs",
            "sort",
            "ms",
            "pr",
            "rf",
        ] {
            assert!(names.contains(&n), "{n} missing");
        }
    }

    #[test]
    fn every_workload_validates_and_interprets() {
        for w in all_small() {
            w.program.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            Interp::new(&w.program).run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn tunable_loops_name_real_static_loops() {
        for w in all_small() {
            for &loop_name in w.tunable_loops {
                let id = w
                    .program
                    .loops()
                    .into_iter()
                    .find(|&l| w.program.ctrl(l).name == loop_name)
                    .unwrap_or_else(|| panic!("{}: no loop named {loop_name}", w.name));
                let spec = w.program.ctrl(id).loop_spec().unwrap();
                assert!(
                    spec.trip_count().is_some(),
                    "{}: tunable loop {loop_name} has a dynamic bound",
                    w.name
                );
                assert_eq!(spec.par, 1, "{}: default knobs must be par = 1", w.name);
            }
        }
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(by_name("mlp").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
