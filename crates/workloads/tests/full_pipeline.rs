//! End-to-end differential tests for every workload: the compiled,
//! placed-and-routed, cycle-simulated result must equal the sequential
//! interpreter's bit-for-bit on every DRAM tensor.

use plasticine_arch::ChipSpec;
use plasticine_sim::{simulate, SimConfig};
use sara_core::compile::{compile, CompilerOptions};
use sara_ir::interp::Interp;
use sara_ir::{MemId, MemKind, Program};

fn check(p: &Program, chip: &ChipSpec, opts: &CompilerOptions) -> u64 {
    p.validate().expect("valid");
    let reference = Interp::new(p).run().expect("interp");
    let mut compiled = compile(p, chip, opts).unwrap_or_else(|e| panic!("compile {}: {e}", p.name));
    sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, chip, 5)
        .unwrap_or_else(|e| panic!("pnr {}: {e}", p.name));
    let outcome = simulate(&compiled.vudfg, chip, &SimConfig::default())
        .unwrap_or_else(|e| panic!("sim {}: {e}", p.name));
    for (mi, m) in p.mems.iter().enumerate() {
        if m.kind != MemKind::Dram {
            continue;
        }
        let mem = MemId(mi as u32);
        let expect = &reference.mem[mem.index()];
        let got = &outcome.dram_final[&mem];
        for (i, (e, g)) in expect.iter().zip(got).enumerate() {
            // Reductions are tree-reassociated on the fabric, so float
            // results may differ in the last bits; integers stay exact.
            let ok = match (e, g) {
                (sara_ir::Elem::F64(a), sara_ir::Elem::F64(b)) => {
                    let scale = a.abs().max(b.abs()).max(1.0);
                    (a - b).abs() <= 1e-9 * scale
                }
                _ => e.bit_eq(*g),
            };
            assert!(ok, "{}: {}[{i}]: interp {e:?} vs sim {g:?}", p.name, m.name);
        }
    }
    outcome.cycles
}

fn chip() -> ChipSpec {
    ChipSpec::small_8x8()
}

macro_rules! pipeline_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            let w = sara_workloads::by_name(stringify!($name)).expect("registered");
            check(&w.program, &chip(), &CompilerOptions::default());
        }
    };
}

pipeline_test!(dotprod);
pipeline_test!(outerprod);
pipeline_test!(gemm);
pipeline_test!(mlp);
pipeline_test!(lstm);
pipeline_test!(snet);
pipeline_test!(logreg);
pipeline_test!(sgd);
pipeline_test!(kmeans);
pipeline_test!(gda);
pipeline_test!(tpchq6);
pipeline_test!(bs);
pipeline_test!(sort);
pipeline_test!(ms);
pipeline_test!(pr);
pipeline_test!(rf);

/// Parallelized variants stress unrolling, banking and combine trees.
#[test]
fn parallel_variants() {
    use sara_workloads::{graph, linalg, ml, streamk};
    let cases: Vec<Program> = vec![
        linalg::dotprod(&linalg::DotParams { n: 64, par: 16 }),
        linalg::gemm(&linalg::GemmParams { par_k: 8, ..Default::default() }),
        linalg::mlp(&linalg::MlpParams { par_inner: 8, ..Default::default() }),
        ml::logreg(&ml::RegressionParams { par_d: 8, ..Default::default() }),
        streamk::bs(&streamk::BsParams { n: 32, par: 8 }),
        graph::pr(&graph::PrParams { par_v: 2, ..Default::default() }),
        graph::rf(&graph::RfParams { depth: 2, trees: 2, par_n: 2, ..Default::default() }),
    ];
    for p in cases {
        check(&p, &chip(), &CompilerOptions::default());
    }
}

/// The ablation configurations must stay correct (only performance may
/// change): no reduction, no credit relaxation, no retiming.
#[test]
fn ablations_stay_correct() {
    let w = sara_workloads::by_name("mlp").unwrap();
    let mut o1 = CompilerOptions::default();
    o1.lower.cmmc.reduce = false;
    check(&w.program, &chip(), &o1);
    let mut o2 = CompilerOptions::default();
    o2.lower.cmmc.relax_credits = false;
    check(&w.program, &chip(), &o2);
    let mut o3 = CompilerOptions::default();
    o3.opt.retime = false;
    check(&w.program, &chip(), &o3);
}
