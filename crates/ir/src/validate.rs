//! Whole-program structural validation.
//!
//! Builder methods check local properties at construction time; `validate`
//! re-checks everything globally so that hand-constructed or deserialized
//! programs are also safe to compile and interpret.

use crate::error::IrError;
use crate::expr::Expr;
use crate::mem::{MemInit, MemKind};
use crate::program::{Bound, CtrlId, CtrlKind, Program};

impl Program {
    /// Validate the whole program.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found: dangling ids, malformed
    /// branches, non-register conditions, bad loop specs, address-arity or
    /// init-length mismatches, non-ancestor `Idx`/`Reduce` references, or
    /// non-associative reduction operators.
    pub fn validate(&self) -> Result<(), IrError> {
        self.validate_tree()?;
        self.validate_ctrls()?;
        self.validate_mems()?;
        self.validate_exprs()?;
        Ok(())
    }

    fn validate_tree(&self) -> Result<(), IrError> {
        if self.ctrls.is_empty() || !matches!(self.ctrls[0].kind, CtrlKind::Root) {
            return Err(IrError::Invalid("controller 0 must be the root".into()));
        }
        for (i, c) in self.ctrls.iter().enumerate() {
            let id = CtrlId(i as u32);
            match c.parent {
                None if i != 0 => {
                    return Err(IrError::Invalid(format!("non-root {id} has no parent")))
                }
                Some(p) => {
                    let pc = self.ctrls.get(p.index()).ok_or(IrError::UnknownCtrl(p))?;
                    if !pc.children.contains(&id) {
                        return Err(IrError::Invalid(format!(
                            "{id} not registered as child of its parent {p}"
                        )));
                    }
                }
                None => {}
            }
            for ch in &c.children {
                let cc = self.ctrls.get(ch.index()).ok_or(IrError::UnknownCtrl(*ch))?;
                if cc.parent != Some(id) {
                    return Err(IrError::Invalid(format!(
                        "child {ch} of {id} disagrees on parent"
                    )));
                }
            }
            if matches!(c.kind, CtrlKind::Leaf(_)) && !c.children.is_empty() {
                return Err(IrError::LeafHasChildren(id));
            }
        }
        Ok(())
    }

    fn validate_ctrls(&self) -> Result<(), IrError> {
        for (i, c) in self.ctrls.iter().enumerate() {
            let id = CtrlId(i as u32);
            match &c.kind {
                CtrlKind::Loop(spec) => {
                    if spec.par == 0 {
                        return Err(IrError::BadPar(id));
                    }
                    if spec.step == 0 {
                        return Err(IrError::ZeroStep(id));
                    }
                    if spec.trip_count() == Some(0) {
                        return Err(IrError::EmptyStaticLoop(id));
                    }
                    for b in [spec.min, spec.max] {
                        if let Bound::Reg(m) = b {
                            let decl = self.mems.get(m.index()).ok_or(IrError::UnknownMem(m))?;
                            if !decl.is_scalar_reg() {
                                return Err(IrError::CondNotScalarReg(m));
                            }
                        }
                    }
                }
                CtrlKind::Branch { cond } => {
                    let n = c.children.len();
                    if n == 0 || n > 2 {
                        return Err(IrError::BadBranchArity(id, n));
                    }
                    let decl = self.mems.get(cond.index()).ok_or(IrError::UnknownMem(*cond))?;
                    if !decl.is_scalar_reg() {
                        return Err(IrError::CondNotScalarReg(*cond));
                    }
                }
                CtrlKind::DoWhile { cond, max_iter } => {
                    let decl = self.mems.get(cond.index()).ok_or(IrError::UnknownMem(*cond))?;
                    if !decl.is_scalar_reg() {
                        return Err(IrError::CondNotScalarReg(*cond));
                    }
                    if *max_iter == 0 {
                        return Err(IrError::Invalid(format!("do-while {id} has max_iter 0")));
                    }
                }
                CtrlKind::Root | CtrlKind::Leaf(_) => {}
            }
        }
        Ok(())
    }

    fn validate_mems(&self) -> Result<(), IrError> {
        for (i, m) in self.mems.iter().enumerate() {
            let id = crate::mem::MemId(i as u32);
            if m.dims.is_empty() || m.size() == 0 {
                return Err(IrError::Invalid(format!("memory {id} has empty shape")));
            }
            if let MemInit::Data(d) = &m.init {
                if d.len() != m.size() {
                    return Err(IrError::InitLenMismatch {
                        mem: id,
                        expected: m.size(),
                        got: d.len(),
                    });
                }
            }
        }
        Ok(())
    }

    fn validate_exprs(&self) -> Result<(), IrError> {
        for hb in self.leaves() {
            let h = self.ctrl(hb).hyperblock().expect("leaves() returns leaves");
            for (eid, e) in h.iter() {
                for op in e.operands() {
                    if op.index() >= eid.index() {
                        return Err(IrError::UnknownExpr(hb, op));
                    }
                }
                match e {
                    Expr::Idx(c) | Expr::IsFirst(c) => {
                        self.check_iterative_ancestor(hb, *c)?;
                    }
                    Expr::IsLast(c) => {
                        self.check_iterative_ancestor(hb, *c)?;
                        if matches!(self.ctrl(*c).kind, CtrlKind::DoWhile { .. }) {
                            return Err(IrError::Invalid(format!(
                                "IsLast over do-while {c} is undecidable at iteration start"
                            )));
                        }
                    }
                    Expr::Reduce { op, over, .. } => {
                        self.check_iterative_ancestor(hb, *over)?;
                        if !op.is_associative() {
                            return Err(IrError::Invalid(format!(
                                "reduction in {hb} uses non-associative operator {op:?}"
                            )));
                        }
                    }
                    Expr::Load { mem, addr } | Expr::Store { mem, addr, .. } => {
                        let decl = self.mems.get(mem.index()).ok_or(IrError::UnknownMem(*mem))?;
                        let expected = if decl.kind == MemKind::Fifo { 1 } else { decl.dims.len() };
                        if addr.len() != expected {
                            return Err(IrError::AddrArity {
                                mem: *mem,
                                expected,
                                got: addr.len(),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn check_iterative_ancestor(&self, hb: CtrlId, c: CtrlId) -> Result<(), IrError> {
        if self.ctrls.get(c.index()).is_none() {
            return Err(IrError::UnknownCtrl(c));
        }
        if !self.is_ancestor(c, hb) || !self.ctrl(c).is_iterative() {
            return Err(IrError::NotAnAncestorLoop { hb, ctrl: c });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::program::LoopSpec;
    use crate::value::{DType, Elem};

    #[test]
    fn valid_program_passes() {
        let mut p = Program::new("ok");
        let root = p.root();
        let l = p.add_loop(root, "L", LoopSpec::new(0, 4, 1)).unwrap();
        let hb = p.add_leaf(l, "body").unwrap();
        let m = p.sram("m", &[4], DType::F64);
        let i = p.idx(hb, l).unwrap();
        let v = p.c_f64(hb, 1.0).unwrap();
        p.store(hb, m, &[i], v).unwrap();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn rejects_idx_of_non_ancestor() {
        let mut p = Program::new("bad");
        let root = p.root();
        let l1 = p.add_loop(root, "L1", LoopSpec::new(0, 4, 1)).unwrap();
        let l2 = p.add_loop(root, "L2", LoopSpec::new(0, 4, 1)).unwrap();
        let hb = p.add_leaf(l2, "body").unwrap();
        p.idx(hb, l1).unwrap();
        assert!(matches!(p.validate(), Err(IrError::NotAnAncestorLoop { .. })));
    }

    #[test]
    fn rejects_non_associative_reduce() {
        let mut p = Program::new("bad");
        let root = p.root();
        let l = p.add_loop(root, "L", LoopSpec::new(0, 4, 1)).unwrap();
        let hb = p.add_leaf(l, "body").unwrap();
        let v = p.c_f64(hb, 1.0).unwrap();
        p.reduce(hb, BinOp::Sub, v, Elem::F64(0.0), l).unwrap();
        assert!(matches!(p.validate(), Err(IrError::Invalid(_))));
    }

    #[test]
    fn rejects_empty_static_loop_and_zero_step() {
        let mut p = Program::new("bad");
        let root = p.root();
        p.add_loop(root, "L", LoopSpec::new(5, 5, 1)).unwrap();
        assert!(matches!(p.validate(), Err(IrError::EmptyStaticLoop(_))));

        let mut q = Program::new("bad2");
        let root = q.root();
        q.add_loop(root, "L", LoopSpec::new(0, 5, 0)).unwrap();
        assert!(matches!(q.validate(), Err(IrError::ZeroStep(_))));
    }

    #[test]
    fn rejects_init_len_mismatch() {
        let mut p = Program::new("bad");
        p.dram("d", &[4], DType::F64, crate::mem::MemInit::Data(vec![Elem::F64(1.0)]));
        assert!(matches!(p.validate(), Err(IrError::InitLenMismatch { .. })));
    }

    #[test]
    fn rejects_branch_without_arms() {
        let mut p = Program::new("bad");
        let root = p.root();
        let c = p.reg("c", DType::I64);
        p.add_branch(root, "br", c).unwrap();
        assert!(matches!(p.validate(), Err(IrError::BadBranchArity(_, 0))));
    }

    #[test]
    fn rejects_is_last_over_do_while() {
        let mut p = Program::new("bad");
        let root = p.root();
        let c = p.reg("c", DType::I64);
        let dw = p.add_do_while(root, "dw", c, 8).unwrap();
        let hb = p.add_leaf(dw, "body").unwrap();
        p.is_last(hb, dw).unwrap();
        assert!(matches!(p.validate(), Err(IrError::Invalid(_))));
    }
}
