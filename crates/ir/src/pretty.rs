//! Human-readable rendering of programs for debugging and reports.

use crate::expr::Expr;
use crate::program::{Bound, CtrlId, CtrlKind, Program};
use std::fmt::Write as _;

impl Program {
    /// Render the program as an indented control tree with hyperblock
    /// bodies, e.g. for compiler-debug dumps.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "program {} ({} mems, {} ctrls)",
            self.name,
            self.mems.len(),
            self.ctrls.len()
        );
        for (i, m) in self.mems.iter().enumerate() {
            let _ = writeln!(out, "  m{i}: {} {} {:?} {}", m.kind, m.name, m.dims, m.dtype);
        }
        self.pretty_ctrl(self.root(), 1, &mut out);
        out
    }

    fn bound_str(&self, b: Bound) -> String {
        match b {
            Bound::Const(v) => v.to_string(),
            Bound::Reg(m) => format!("reg({})", self.mem(m).name),
        }
    }

    fn pretty_ctrl(&self, id: CtrlId, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let c = self.ctrl(id);
        match &c.kind {
            CtrlKind::Root => {
                let _ = writeln!(out, "{pad}{id} root");
            }
            CtrlKind::Loop(s) => {
                let _ = writeln!(
                    out,
                    "{pad}{id} for {} in {}..{} step {} par {} [{:?}]",
                    c.name,
                    self.bound_str(s.min),
                    self.bound_str(s.max),
                    s.step,
                    s.par,
                    c.schedule
                );
            }
            CtrlKind::Branch { cond } => {
                let _ = writeln!(out, "{pad}{id} if reg({})", self.mem(*cond).name);
            }
            CtrlKind::DoWhile { cond, .. } => {
                let _ = writeln!(out, "{pad}{id} do-while reg({})", self.mem(*cond).name);
            }
            CtrlKind::Leaf(h) => {
                let _ = writeln!(out, "{pad}{id} hb {} {{", c.name);
                for (eid, e) in h.iter() {
                    let _ = writeln!(out, "{pad}  {eid} = {}", self.pretty_expr(e));
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        for ch in &c.children {
            self.pretty_ctrl(*ch, depth + 1, out);
        }
    }

    fn pretty_expr(&self, e: &Expr) -> String {
        match e {
            Expr::Const(v) => format!("const {v}"),
            Expr::Idx(c) => format!("idx({c})"),
            Expr::IsFirst(c) => format!("is_first({c})"),
            Expr::IsLast(c) => format!("is_last({c})"),
            Expr::Un(op, a) => format!("{op:?} {a}"),
            Expr::Bin(op, a, b) => format!("{op:?} {a} {b}"),
            Expr::Mux { c, t, f } => format!("mux {c} ? {t} : {f}"),
            Expr::Load { mem, addr } => {
                format!("load {}[{}]", self.mem(*mem).name, fmt_ids(addr))
            }
            Expr::Store { mem, addr, value, cond } => {
                let c = cond.map(|c| format!(" if {c}")).unwrap_or_default();
                format!("store {}[{}] = {value}{c}", self.mem(*mem).name, fmt_ids(addr))
            }
            Expr::Reduce { op, value, init, over } => {
                format!("reduce {op:?} {value} init {init} over {over}")
            }
        }
    }
}

fn fmt_ids(ids: &[crate::expr::ExprId]) -> String {
    ids.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LoopSpec;
    use crate::value::DType;

    #[test]
    fn pretty_contains_structure() {
        let mut p = Program::new("demo");
        let root = p.root();
        let m = p.sram("buf", &[4], DType::F64);
        let l = p.add_loop(root, "i", LoopSpec::new(0, 4, 1).par(2)).unwrap();
        let hb = p.add_leaf(l, "body").unwrap();
        let i = p.idx(hb, l).unwrap();
        let v = p.c_f64(hb, 2.0).unwrap();
        p.store(hb, m, &[i], v).unwrap();
        let s = p.pretty();
        assert!(s.contains("program demo"));
        assert!(s.contains("for i in 0..4 step 1 par 2"));
        assert!(s.contains("store buf"));
        assert!(s.contains("sram buf"));
    }
}
