//! Affine analysis of address expressions.
//!
//! The SARA back end needs to know, for each memory access, whether its
//! (flattened) address is an affine function of enclosing loop indices:
//!
//! * the memory partitioner (paper §III-B2) banks tensors cyclically and
//!   statically resolves the bank-address stream when the affine form allows
//!   it, replacing crossbars with point-to-point wiring;
//! * the `msr` optimization replaces scratchpads whose accessors all have
//!   *constant* addresses with FIFOs;
//! * credit relaxation compares address spans of producer/consumer accessors.

use crate::expr::{BinOp, Expr, ExprId};
use crate::mem::MemId;
use crate::program::{CtrlId, Program};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An affine form `offset + Σ coeff_i · idx(loop_i)`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Affine {
    /// Constant offset.
    pub offset: i64,
    /// Per-loop coefficients; zero coefficients are never stored.
    pub terms: BTreeMap<CtrlId, i64>,
}

impl Affine {
    /// A constant affine form.
    pub fn constant(v: i64) -> Self {
        Affine { offset: v, terms: BTreeMap::new() }
    }

    /// The form `idx(c)`.
    pub fn index(c: CtrlId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(c, 1);
        Affine { offset: 0, terms }
    }

    /// Whether the form is a compile-time constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of a loop index (zero if absent).
    pub fn coeff(&self, c: CtrlId) -> i64 {
        self.terms.get(&c).copied().unwrap_or(0)
    }

    fn add_term(&mut self, c: CtrlId, coeff: i64) {
        let v = self.terms.entry(c).or_insert(0);
        *v += coeff;
        if *v == 0 {
            self.terms.remove(&c);
        }
    }

    /// Sum of two affine forms.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.offset += other.offset;
        for (c, k) in &other.terms {
            out.add_term(*c, *k);
        }
        out
    }

    /// Difference of two affine forms.
    pub fn sub(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.offset -= other.offset;
        for (c, k) in &other.terms {
            out.add_term(*c, -*k);
        }
        out
    }

    /// Product by a constant.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            offset: self.offset * k,
            terms: self.terms.iter().map(|(c, v)| (*c, v * k)).collect(),
        }
    }

    /// Evaluate given loop-index bindings; indices absent from the binding
    /// map are treated as zero.
    pub fn eval(&self, binding: &BTreeMap<CtrlId, i64>) -> i64 {
        self.offset
            + self.terms.iter().map(|(c, k)| k * binding.get(c).copied().unwrap_or(0)).sum::<i64>()
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.offset)?;
        for (c, k) in &self.terms {
            write!(f, " + {k}*{c}")?;
        }
        Ok(())
    }
}

/// Compute the affine form of an expression inside hyperblock `hb`, if it
/// has one. Returns `None` for data-dependent expressions (loads, muxes,
/// float arithmetic, ...).
pub fn affine_of(p: &Program, hb: CtrlId, e: ExprId) -> Option<Affine> {
    let h = p.ctrl(hb).hyperblock()?;
    affine_rec(h, e)
}

fn affine_rec(h: &crate::expr::Hyperblock, e: ExprId) -> Option<Affine> {
    match h.get(e)? {
        Expr::Const(v) => match v {
            crate::value::Elem::I64(x) => Some(Affine::constant(*x)),
            crate::value::Elem::F64(_) => None,
        },
        Expr::Idx(c) => Some(Affine::index(*c)),
        Expr::Bin(BinOp::Add, a, b) => Some(affine_rec(h, *a)?.add(&affine_rec(h, *b)?)),
        Expr::Bin(BinOp::Sub, a, b) => Some(affine_rec(h, *a)?.sub(&affine_rec(h, *b)?)),
        Expr::Bin(BinOp::Mul, a, b) => {
            let fa = affine_rec(h, *a)?;
            let fb = affine_rec(h, *b)?;
            if fa.is_constant() {
                Some(fb.scale(fa.offset))
            } else if fb.is_constant() {
                Some(fa.scale(fb.offset))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Affine form of the row-major *flattened* address of an access.
///
/// Given a multi-dimensional address `[a0, a1, ..]` on memory `mem`, this
/// combines the per-dimension affine forms with the tensor strides. Returns
/// `None` if any coordinate is non-affine.
pub fn flat_affine(p: &Program, hb: CtrlId, mem: MemId, addr: &[ExprId]) -> Option<Affine> {
    let decl = p.mem(mem);
    let strides = decl.strides();
    let mut out = Affine::constant(0);
    for (a, s) in addr.iter().zip(strides) {
        out = out.add(&affine_of(p, hb, *a)?.scale(s as i64));
    }
    Some(out)
}

/// Affine form of the flattened address of the access at `(hb, expr)`, if
/// the expression is a load/store with an affine address.
pub fn access_affine(p: &Program, hb: CtrlId, expr: ExprId) -> Option<Affine> {
    let h = p.ctrl(hb).hyperblock()?;
    match h.get(expr)? {
        Expr::Load { mem, addr } | Expr::Store { mem, addr, .. } => flat_affine(p, hb, *mem, addr),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LoopSpec;
    use crate::value::DType;

    #[test]
    fn affine_algebra() {
        let c = Affine::constant(3);
        let i = Affine::index(CtrlId(1));
        let s = c.add(&i.scale(4));
        assert_eq!(s.offset, 3);
        assert_eq!(s.coeff(CtrlId(1)), 4);
        let d = s.sub(&i.scale(4));
        assert!(d.is_constant());
        assert_eq!(d.offset, 3);
        let z = i.scale(0);
        assert!(z.is_constant());
    }

    #[test]
    fn eval_with_bindings() {
        let mut b = BTreeMap::new();
        b.insert(CtrlId(1), 5);
        let a = Affine::constant(2).add(&Affine::index(CtrlId(1)).scale(3));
        assert_eq!(a.eval(&b), 17);
        assert_eq!(a.eval(&BTreeMap::new()), 2);
    }

    #[test]
    fn expression_affine_extraction() {
        let mut p = Program::new("t");
        let root = p.root();
        let li = p.add_loop(root, "i", LoopSpec::new(0, 8, 1)).unwrap();
        let lj = p.add_loop(li, "j", LoopSpec::new(0, 4, 1)).unwrap();
        let hb = p.add_leaf(lj, "b").unwrap();
        let i = p.idx(hb, li).unwrap();
        let j = p.idx(hb, lj).unwrap();
        let four = p.c_i64(hb, 4).unwrap();
        let i4 = p.bin(hb, BinOp::Mul, i, four).unwrap();
        let a = p.bin(hb, BinOp::Add, i4, j).unwrap();
        let f = affine_of(&p, hb, a).unwrap();
        assert_eq!(f.coeff(li), 4);
        assert_eq!(f.coeff(lj), 1);
        assert_eq!(f.offset, 0);
    }

    #[test]
    fn non_affine_returns_none() {
        let mut p = Program::new("t");
        let root = p.root();
        let li = p.add_loop(root, "i", LoopSpec::new(0, 8, 1)).unwrap();
        let hb = p.add_leaf(li, "b").unwrap();
        let m = p.sram("m", &[8], DType::I64);
        let i = p.idx(hb, li).unwrap();
        let ld = p.load(hb, m, &[i]).unwrap();
        assert!(affine_of(&p, hb, ld).is_none());
        // i * i is non-affine
        let ii = p.bin(hb, BinOp::Mul, i, i).unwrap();
        assert!(affine_of(&p, hb, ii).is_none());
    }

    #[test]
    fn flat_affine_uses_strides() {
        let mut p = Program::new("t");
        let root = p.root();
        let li = p.add_loop(root, "i", LoopSpec::new(0, 2, 1)).unwrap();
        let lj = p.add_loop(li, "j", LoopSpec::new(0, 3, 1)).unwrap();
        let hb = p.add_leaf(lj, "b").unwrap();
        let m = p.sram("m", &[2, 3], DType::F64);
        let i = p.idx(hb, li).unwrap();
        let j = p.idx(hb, lj).unwrap();
        let ld = p.load(hb, m, &[i, j]).unwrap();
        let f = access_affine(&p, hb, ld).unwrap();
        assert_eq!(f.coeff(li), 3);
        assert_eq!(f.coeff(lj), 1);
        let _ = ld;
    }
}
