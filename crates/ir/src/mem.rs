//! Memory declarations: DRAM tensors, on-chip scratchpads, scalar registers
//! and FIFOs.

use crate::value::{DType, Elem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a memory declaration within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemId(pub u32);

impl MemId {
    /// Index into the program's memory table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Kind of a declared memory.
///
/// The kind determines which physical resource the SARA back end lowers the
/// memory to: DRAM tensors become address-generator + DRAM-interface streams,
/// scratchpads become virtual memory units (VMUs, later Plasticine PMUs),
/// registers become single-element VMUs or broadcast streams, and FIFOs
/// become the input buffers of the consuming unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// Off-chip tensor, explicitly transferred through DRAM interfaces.
    Dram,
    /// On-chip software-managed scratchpad.
    Sram,
    /// Scalar register; the only legal carrier for dynamic loop bounds,
    /// branch conditions and do-while conditions.
    Reg,
    /// Streaming first-in-first-out queue. Reads are destructive and must
    /// happen in write order; the compiler maps FIFOs onto unit input
    /// buffers (see the `msr` optimization, paper §III-C).
    Fifo,
}

impl MemKind {
    /// Whether the memory lives on-chip.
    pub fn on_chip(self) -> bool {
        !matches!(self, MemKind::Dram)
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemKind::Dram => "dram",
            MemKind::Sram => "sram",
            MemKind::Reg => "reg",
            MemKind::Fifo => "fifo",
        };
        f.write_str(s)
    }
}

/// Initial contents of a memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemInit {
    /// All elements zero.
    Zero,
    /// Explicit element data, row-major; length must equal the memory size.
    Data(Vec<Elem>),
    /// `start + i * step` as `F64` for flat index `i`.
    LinSpace { start: f64, step: f64 },
    /// Uniform random floats in `[0, 1)`, reproducible from the seed.
    RandomF { seed: u64 },
    /// Uniform random integers in `[lo, hi)`, reproducible from the seed.
    RandomI { seed: u64, lo: i64, hi: i64 },
}

impl MemInit {
    /// Materialize the initial contents as a flat vector of `len` elements
    /// of type `dtype`.
    pub fn materialize(&self, len: usize, dtype: DType) -> Vec<Elem> {
        match self {
            MemInit::Zero => vec![dtype.zero(); len],
            MemInit::Data(d) => d.clone(),
            MemInit::LinSpace { start, step } => (0..len)
                .map(|i| {
                    let v = start + i as f64 * step;
                    match dtype {
                        DType::F64 => Elem::F64(v),
                        DType::I64 => Elem::I64(v as i64),
                    }
                })
                .collect(),
            MemInit::RandomF { seed } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                (0..len).map(|_| Elem::F64(rng.gen::<f64>())).collect()
            }
            MemInit::RandomI { seed, lo, hi } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                (0..len).map(|_| Elem::I64(rng.gen_range(*lo..*hi))).collect()
            }
        }
    }
}

/// A declared memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemDecl {
    /// Human-readable name, used by the pretty printer and diagnostics.
    pub name: String,
    /// Storage class.
    pub kind: MemKind,
    /// Logical tensor shape (row-major). Scalars use `[1]`.
    pub dims: Vec<usize>,
    /// Element type.
    pub dtype: DType,
    /// Initial contents.
    pub init: MemInit,
}

impl MemDecl {
    /// Total number of elements.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the memory is a scalar register.
    pub fn is_scalar_reg(&self) -> bool {
        self.kind == MemKind::Reg && self.size() == 1
    }

    /// Row-major flattening of a multi-dimensional address.
    ///
    /// Returns `None` if any coordinate is out of range.
    pub fn flatten(&self, coords: &[i64]) -> Option<i64> {
        if coords.len() != self.dims.len() {
            return None;
        }
        let mut flat: i64 = 0;
        for (c, d) in coords.iter().zip(&self.dims) {
            if *c < 0 || *c >= *d as i64 {
                return None;
            }
            flat = flat * *d as i64 + c;
        }
        Some(flat)
    }

    /// Row-major strides of the tensor shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl(dims: &[usize]) -> MemDecl {
        MemDecl {
            name: "m".into(),
            kind: MemKind::Sram,
            dims: dims.to_vec(),
            dtype: DType::F64,
            init: MemInit::Zero,
        }
    }

    #[test]
    fn size_and_strides() {
        let m = decl(&[2, 3, 4]);
        assert_eq!(m.size(), 24);
        assert_eq!(m.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flatten_row_major() {
        let m = decl(&[2, 3]);
        assert_eq!(m.flatten(&[0, 0]), Some(0));
        assert_eq!(m.flatten(&[1, 2]), Some(5));
        assert_eq!(m.flatten(&[2, 0]), None);
        assert_eq!(m.flatten(&[0, -1]), None);
        assert_eq!(m.flatten(&[0]), None);
    }

    #[test]
    fn materialize_zero_and_linspace() {
        let z = MemInit::Zero.materialize(3, DType::I64);
        assert!(z.iter().all(|e| e.bit_eq(Elem::I64(0))));
        let l = MemInit::LinSpace { start: 1.0, step: 0.5 }.materialize(3, DType::F64);
        assert_eq!(l[2], Elem::F64(2.0));
    }

    #[test]
    fn materialize_random_is_reproducible() {
        let a = MemInit::RandomF { seed: 7 }.materialize(16, DType::F64);
        let b = MemInit::RandomF { seed: 7 }.materialize(16, DType::F64);
        assert!(a.iter().zip(&b).all(|(x, y)| x.bit_eq(*y)));
        let c = MemInit::RandomI { seed: 7, lo: 0, hi: 10 }.materialize(64, DType::I64);
        assert!(c.iter().all(|e| (0..10).contains(&e.as_i64())));
    }

    #[test]
    fn scalar_reg_detection() {
        let mut m = decl(&[1]);
        m.kind = MemKind::Reg;
        assert!(m.is_scalar_reg());
        m.dims = vec![2];
        assert!(!m.is_scalar_reg());
    }
}
