//! Scalar element values and data types carried by the IR, the reference
//! interpreter and the functional dataflow simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element data type of a memory or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 64-bit signed integer (also used for booleans, 0/1).
    I64,
    /// 64-bit IEEE-754 float.
    F64,
}

impl DType {
    /// Number of bytes an element of this type occupies in DRAM traffic
    /// accounting. The modeled Plasticine datapath is 32-bit, so both types
    /// count as 4 bytes when estimating off-chip bandwidth, matching the
    /// paper's single-precision workloads.
    pub fn dram_bytes(self) -> usize {
        4
    }

    /// Zero value of this type.
    pub fn zero(self) -> Elem {
        match self {
            DType::I64 => Elem::I64(0),
            DType::F64 => Elem::F64(0.0),
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::I64 => write!(f, "i64"),
            DType::F64 => write!(f, "f64"),
        }
    }
}

/// A scalar element value.
///
/// Booleans are represented as `I64(0)`/`I64(1)`. All arithmetic helpers
/// promote `I64` to `F64` when the two operands disagree, mirroring the
/// implicit widening the Spatial front end performs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Elem {
    I64(i64),
    F64(f64),
}

impl Elem {
    pub const TRUE: Elem = Elem::I64(1);
    pub const FALSE: Elem = Elem::I64(0);

    /// The data type of this element.
    pub fn dtype(self) -> DType {
        match self {
            Elem::I64(_) => DType::I64,
            Elem::F64(_) => DType::F64,
        }
    }

    /// Interpret as a boolean: nonzero is true.
    pub fn as_bool(self) -> bool {
        match self {
            Elem::I64(v) => v != 0,
            Elem::F64(v) => v != 0.0,
        }
    }

    /// Interpret as an integer, truncating floats.
    ///
    /// Addresses in the IR are integer expressions; the interpreter uses
    /// this to fold float-typed index arithmetic defensively.
    pub fn as_i64(self) -> i64 {
        match self {
            Elem::I64(v) => v,
            Elem::F64(v) => v as i64,
        }
    }

    /// Interpret as a float.
    pub fn as_f64(self) -> f64 {
        match self {
            Elem::I64(v) => v as f64,
            Elem::F64(v) => v,
        }
    }

    /// Construct a boolean element.
    pub fn from_bool(b: bool) -> Elem {
        if b {
            Elem::TRUE
        } else {
            Elem::FALSE
        }
    }

    /// Bit-exact equality used by differential tests between the reference
    /// interpreter and the dataflow simulator. NaN equals NaN so that a
    /// NaN-producing program still compares deterministically.
    pub fn bit_eq(self, other: Elem) -> bool {
        match (self, other) {
            (Elem::I64(a), Elem::I64(b)) => a == b,
            (Elem::F64(a), Elem::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl PartialEq for Elem {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Elem::I64(a), Elem::I64(b)) => a == b,
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Elem::I64(v) => write!(f, "{v}"),
            Elem::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Elem {
    fn from(v: i64) -> Self {
        Elem::I64(v)
    }
}

impl From<f64> for Elem {
    fn from(v: f64) -> Self {
        Elem::F64(v)
    }
}

impl From<bool> for Elem {
    fn from(v: bool) -> Self {
        Elem::from_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_display_and_zero() {
        assert_eq!(DType::I64.to_string(), "i64");
        assert_eq!(DType::F64.to_string(), "f64");
        assert!(DType::I64.zero().bit_eq(Elem::I64(0)));
        assert!(DType::F64.zero().bit_eq(Elem::F64(0.0)));
    }

    #[test]
    fn elem_coercions() {
        assert_eq!(Elem::I64(3).as_f64(), 3.0);
        assert_eq!(Elem::F64(3.7).as_i64(), 3);
        assert!(Elem::I64(1).as_bool());
        assert!(!Elem::F64(0.0).as_bool());
        assert_eq!(Elem::from_bool(true), Elem::I64(1));
    }

    #[test]
    fn mixed_equality_promotes() {
        assert_eq!(Elem::I64(2), Elem::F64(2.0));
        assert_ne!(Elem::I64(2), Elem::F64(2.5));
    }

    #[test]
    fn bit_eq_is_type_strict_and_nan_stable() {
        assert!(!Elem::I64(2).bit_eq(Elem::F64(2.0)));
        assert!(Elem::F64(f64::NAN).bit_eq(Elem::F64(f64::NAN)));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Elem::from(4i64), Elem::I64(4));
        assert_eq!(Elem::from(4.0f64), Elem::F64(4.0));
        assert_eq!(Elem::from(false), Elem::I64(0));
    }
}
