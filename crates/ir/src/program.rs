//! The program: a control tree over hyperblocks, plus memory declarations,
//! and the builder API used by workloads.

use crate::error::IrError;
use crate::expr::{Access, AccessId, BinOp, Expr, ExprId, Hyperblock, UnOp};
use crate::mem::{MemDecl, MemId, MemInit, MemKind};
use crate::value::{DType, Elem};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a controller (node of the control tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CtrlId(pub u32);

impl CtrlId {
    /// Index into the program's controller table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CtrlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A loop bound: either a compile-time constant or the value of a scalar
/// register produced by an earlier hyperblock (a *dynamic bound*, paper
/// §III-A2a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// Compile-time constant bound.
    Const(i64),
    /// Bound read from a scalar register at loop entry.
    Reg(MemId),
}

impl Bound {
    /// The constant value, if static.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Bound::Const(v) => Some(v),
            Bound::Reg(_) => None,
        }
    }
}

impl From<i64> for Bound {
    fn from(v: i64) -> Self {
        Bound::Const(v)
    }
}

/// Counter specification of a `for` loop: `for i in (min..max).step_by(step)`,
/// with a spatial parallelization factor `par` (paper §II-A(b)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopSpec {
    pub min: Bound,
    pub max: Bound,
    pub step: i64,
    /// Parallelization factor. On an innermost loop this vectorizes across
    /// SIMD lanes; on an outer loop it spatially unrolls the loop body
    /// across duplicated virtual units.
    pub par: u32,
}

impl LoopSpec {
    /// A unit-step loop over `min..max` with `par = 1`.
    pub fn new(min: impl Into<Bound>, max: impl Into<Bound>, step: i64) -> Self {
        LoopSpec { min: min.into(), max: max.into(), step, par: 1 }
    }

    /// Set the parallelization factor (builder style).
    pub fn par(mut self, par: u32) -> Self {
        self.par = par;
        self
    }

    /// Static trip count, if both bounds are constants.
    pub fn trip_count(&self) -> Option<u64> {
        let (min, max) = (self.min.as_const()?, self.max.as_const()?);
        if self.step == 0 {
            return None;
        }
        if self.step > 0 {
            Some(((max - min).max(0) as u64).div_ceil(self.step as u64))
        } else {
            Some(((min - max).max(0) as u64).div_ceil((-self.step) as u64))
        }
    }
}

/// Scheduling directive for a controller with children (paper Fig 2:
/// hierarchical pipelining).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Schedule {
    /// Children form coarse-grained pipeline stages overlapped across
    /// iterations of this controller (credits > 1, multibuffered
    /// intermediate memories).
    #[default]
    Pipelined,
    /// Children execute strictly one activation at a time (credit = 1).
    Sequential,
}

/// Kind of a controller node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CtrlKind {
    /// Root of the control tree; executes its children in program order
    /// exactly once (per accelerator invocation).
    Root,
    /// Counted loop with an attached counter specification.
    Loop(LoopSpec),
    /// Two-way (or one-way) branch. The condition is a scalar register
    /// written by an earlier hyperblock; child 0 is the `then` arm, child 1
    /// (if present) the `else` arm (paper §III-A2b, Fig 4).
    Branch { cond: MemId },
    /// Do-while loop: executes children, then repeats while the scalar
    /// register `cond` is nonzero (paper §III-A2c). `max_iter` bounds
    /// divergence in the interpreter and simulator.
    DoWhile { cond: MemId, max_iter: u64 },
    /// Leaf hyperblock: a straight-line expression DAG.
    Leaf(Hyperblock),
}

/// A controller node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ctrl {
    /// Human-readable name.
    pub name: String,
    /// Parent controller (`None` only for the root).
    pub parent: Option<CtrlId>,
    /// Node kind.
    pub kind: CtrlKind,
    /// Children, in program order.
    pub children: Vec<CtrlId>,
    /// Schedule for the children of this controller.
    pub schedule: Schedule,
}

impl Ctrl {
    /// Loop specification, if this is a counted loop.
    pub fn loop_spec(&self) -> Option<&LoopSpec> {
        match &self.kind {
            CtrlKind::Loop(s) => Some(s),
            _ => None,
        }
    }

    /// Hyperblock body, if this is a leaf.
    pub fn hyperblock(&self) -> Option<&Hyperblock> {
        match &self.kind {
            CtrlKind::Leaf(h) => Some(h),
            _ => None,
        }
    }

    /// Whether this controller iterates (loop or do-while).
    pub fn is_iterative(&self) -> bool {
        matches!(self.kind, CtrlKind::Loop(_) | CtrlKind::DoWhile { .. })
    }
}

/// A complete program: memories + control tree.
///
/// Construction goes through the builder methods (`dram`, `add_loop`,
/// `load`, ...) which perform local checks; [`Program::validate`] performs
/// the global checks and should be called before compiling or interpreting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Memory declarations.
    pub mems: Vec<MemDecl>,
    /// Controller table; index 0 is always the root.
    pub ctrls: Vec<Ctrl>,
}

impl Program {
    /// Create an empty program with a root controller.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            mems: Vec::new(),
            ctrls: vec![Ctrl {
                name: "root".into(),
                parent: None,
                kind: CtrlKind::Root,
                children: Vec::new(),
                schedule: Schedule::Pipelined,
            }],
        }
    }

    /// The root controller id.
    pub fn root(&self) -> CtrlId {
        CtrlId(0)
    }

    // ---- declarations -----------------------------------------------------

    fn add_mem(
        &mut self,
        name: &str,
        kind: MemKind,
        dims: &[usize],
        dtype: DType,
        init: MemInit,
    ) -> MemId {
        let id = MemId(self.mems.len() as u32);
        self.mems.push(MemDecl { name: name.to_string(), kind, dims: dims.to_vec(), dtype, init });
        id
    }

    /// Declare an off-chip DRAM tensor.
    pub fn dram(&mut self, name: &str, dims: &[usize], dtype: DType, init: MemInit) -> MemId {
        self.add_mem(name, MemKind::Dram, dims, dtype, init)
    }

    /// Declare an on-chip scratchpad.
    pub fn sram(&mut self, name: &str, dims: &[usize], dtype: DType) -> MemId {
        self.add_mem(name, MemKind::Sram, dims, dtype, MemInit::Zero)
    }

    /// Declare a scalar register (initialized to zero).
    pub fn reg(&mut self, name: &str, dtype: DType) -> MemId {
        self.add_mem(name, MemKind::Reg, &[1], dtype, MemInit::Zero)
    }

    /// Declare a scalar register with an initial value.
    pub fn reg_init(&mut self, name: &str, init: Elem) -> MemId {
        self.add_mem(name, MemKind::Reg, &[1], init.dtype(), MemInit::Data(vec![init]))
    }

    /// Declare a FIFO of the given capacity (capacity is a legality hint for
    /// the hardware mapping; reference semantics treat it as unbounded).
    pub fn fifo(&mut self, name: &str, capacity: usize, dtype: DType) -> MemId {
        self.add_mem(name, MemKind::Fifo, &[capacity], dtype, MemInit::Zero)
    }

    /// Memory declaration lookup.
    pub fn mem(&self, id: MemId) -> &MemDecl {
        &self.mems[id.index()]
    }

    /// Controller lookup.
    pub fn ctrl(&self, id: CtrlId) -> &Ctrl {
        &self.ctrls[id.index()]
    }

    /// Mutable controller lookup.
    pub fn ctrl_mut(&mut self, id: CtrlId) -> &mut Ctrl {
        &mut self.ctrls[id.index()]
    }

    // ---- control-tree construction ----------------------------------------

    fn add_ctrl(&mut self, parent: CtrlId, name: &str, kind: CtrlKind) -> Result<CtrlId, IrError> {
        let p = self.ctrls.get(parent.index()).ok_or(IrError::UnknownCtrl(parent))?;
        match &p.kind {
            CtrlKind::Leaf(_) => return Err(IrError::LeafHasChildren(parent)),
            CtrlKind::Branch { .. } if p.children.len() >= 2 => {
                return Err(IrError::BadChild { parent, reason: "branch already has two arms" })
            }
            _ => {}
        }
        let id = CtrlId(self.ctrls.len() as u32);
        self.ctrls.push(Ctrl {
            name: name.to_string(),
            parent: Some(parent),
            kind,
            children: Vec::new(),
            schedule: Schedule::Pipelined,
        });
        self.ctrls[parent.index()].children.push(id);
        Ok(id)
    }

    /// Add a counted loop under `parent`.
    ///
    /// # Errors
    /// Fails if `parent` does not exist, is a leaf, or is a full branch.
    pub fn add_loop(
        &mut self,
        parent: CtrlId,
        name: &str,
        spec: LoopSpec,
    ) -> Result<CtrlId, IrError> {
        self.add_ctrl(parent, name, CtrlKind::Loop(spec))
    }

    /// Add a branch controller whose condition is the scalar register `cond`.
    /// Attach arms by adding children to the returned id (first child =
    /// `then`, second = `else`).
    ///
    /// # Errors
    /// Fails if `parent` is invalid or `cond` is not a scalar register.
    pub fn add_branch(
        &mut self,
        parent: CtrlId,
        name: &str,
        cond: MemId,
    ) -> Result<CtrlId, IrError> {
        let decl = self.mems.get(cond.index()).ok_or(IrError::UnknownMem(cond))?;
        if !decl.is_scalar_reg() {
            return Err(IrError::CondNotScalarReg(cond));
        }
        self.add_ctrl(parent, name, CtrlKind::Branch { cond })
    }

    /// Add a do-while controller. The body (children) executes at least
    /// once and repeats while `cond` is nonzero.
    ///
    /// # Errors
    /// Fails if `parent` is invalid or `cond` is not a scalar register.
    pub fn add_do_while(
        &mut self,
        parent: CtrlId,
        name: &str,
        cond: MemId,
        max_iter: u64,
    ) -> Result<CtrlId, IrError> {
        let decl = self.mems.get(cond.index()).ok_or(IrError::UnknownMem(cond))?;
        if !decl.is_scalar_reg() {
            return Err(IrError::CondNotScalarReg(cond));
        }
        self.add_ctrl(parent, name, CtrlKind::DoWhile { cond, max_iter })
    }

    /// Add a leaf hyperblock under `parent`.
    ///
    /// # Errors
    /// Fails if `parent` is invalid, a leaf, or a full branch.
    pub fn add_leaf(&mut self, parent: CtrlId, name: &str) -> Result<CtrlId, IrError> {
        self.add_ctrl(parent, name, CtrlKind::Leaf(Hyperblock::default()))
    }

    /// Set a controller's child schedule (builder style).
    pub fn set_schedule(&mut self, ctrl: CtrlId, schedule: Schedule) {
        self.ctrls[ctrl.index()].schedule = schedule;
    }

    /// Override the parallelization factor of an already-built loop.
    ///
    /// This is the programmatic knob the DSE engine (and tests) use to
    /// retune a program without reconstructing it. The value is checked
    /// like the builder path ([`Program::validate`]): `par` must be at
    /// least 1.
    ///
    /// # Errors
    /// [`IrError::UnknownCtrl`] if `loop_id` does not exist,
    /// [`IrError::NotALoop`] if it is not a counted loop, and
    /// [`IrError::BadPar`] if `par` is 0.
    pub fn set_par(&mut self, loop_id: CtrlId, par: u32) -> Result<(), IrError> {
        let c = self.ctrls.get_mut(loop_id.index()).ok_or(IrError::UnknownCtrl(loop_id))?;
        let CtrlKind::Loop(spec) = &mut c.kind else {
            return Err(IrError::NotALoop(loop_id));
        };
        if par == 0 {
            return Err(IrError::BadPar(loop_id));
        }
        spec.par = par;
        Ok(())
    }

    // ---- expression construction -------------------------------------------

    fn push_expr(&mut self, hb: CtrlId, e: Expr) -> Result<ExprId, IrError> {
        // Check operand slots exist *before* borrowing mutably.
        let n = {
            let c = self.ctrls.get(hb.index()).ok_or(IrError::UnknownCtrl(hb))?;
            match &c.kind {
                CtrlKind::Leaf(h) => h.exprs.len(),
                _ => return Err(IrError::NotALeaf(hb)),
            }
        };
        for op in e.operands() {
            if op.index() >= n {
                return Err(IrError::UnknownExpr(hb, op));
            }
        }
        match &mut self.ctrls[hb.index()].kind {
            CtrlKind::Leaf(h) => {
                h.exprs.push(e);
                Ok(ExprId((h.exprs.len() - 1) as u32))
            }
            _ => unreachable!("checked above"),
        }
    }

    /// Integer constant.
    pub fn c_i64(&mut self, hb: CtrlId, v: i64) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::Const(Elem::I64(v)))
    }

    /// Float constant.
    pub fn c_f64(&mut self, hb: CtrlId, v: f64) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::Const(Elem::F64(v)))
    }

    /// Current index of ancestor loop `ctrl`.
    pub fn idx(&mut self, hb: CtrlId, ctrl: CtrlId) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::Idx(ctrl))
    }

    /// First-iteration predicate of ancestor loop `ctrl`.
    pub fn is_first(&mut self, hb: CtrlId, ctrl: CtrlId) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::IsFirst(ctrl))
    }

    /// Last-iteration predicate of ancestor loop `ctrl`.
    pub fn is_last(&mut self, hb: CtrlId, ctrl: CtrlId) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::IsLast(ctrl))
    }

    /// Unary operation.
    pub fn un(&mut self, hb: CtrlId, op: UnOp, a: ExprId) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::Un(op, a))
    }

    /// Binary operation.
    pub fn bin(&mut self, hb: CtrlId, op: BinOp, a: ExprId, b: ExprId) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::Bin(op, a, b))
    }

    /// Select.
    pub fn mux(&mut self, hb: CtrlId, c: ExprId, t: ExprId, f: ExprId) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::Mux { c, t, f })
    }

    /// Load from memory.
    pub fn load(&mut self, hb: CtrlId, mem: MemId, addr: &[ExprId]) -> Result<ExprId, IrError> {
        let decl = self.mems.get(mem.index()).ok_or(IrError::UnknownMem(mem))?;
        if decl.dims.len() != addr.len() {
            return Err(IrError::AddrArity { mem, expected: decl.dims.len(), got: addr.len() });
        }
        self.push_expr(hb, Expr::Load { mem, addr: addr.to_vec() })
    }

    /// Unconditional store to memory.
    pub fn store(
        &mut self,
        hb: CtrlId,
        mem: MemId,
        addr: &[ExprId],
        value: ExprId,
    ) -> Result<ExprId, IrError> {
        let decl = self.mems.get(mem.index()).ok_or(IrError::UnknownMem(mem))?;
        if decl.dims.len() != addr.len() {
            return Err(IrError::AddrArity { mem, expected: decl.dims.len(), got: addr.len() });
        }
        self.push_expr(hb, Expr::Store { mem, addr: addr.to_vec(), value, cond: None })
    }

    /// Predicated store to memory.
    pub fn store_if(
        &mut self,
        hb: CtrlId,
        mem: MemId,
        addr: &[ExprId],
        value: ExprId,
        cond: ExprId,
    ) -> Result<ExprId, IrError> {
        let decl = self.mems.get(mem.index()).ok_or(IrError::UnknownMem(mem))?;
        if decl.dims.len() != addr.len() {
            return Err(IrError::AddrArity { mem, expected: decl.dims.len(), got: addr.len() });
        }
        self.push_expr(hb, Expr::Store { mem, addr: addr.to_vec(), value, cond: Some(cond) })
    }

    /// Loop-carried reduction over ancestor loop `over`.
    pub fn reduce(
        &mut self,
        hb: CtrlId,
        op: BinOp,
        value: ExprId,
        init: Elem,
        over: CtrlId,
    ) -> Result<ExprId, IrError> {
        self.push_expr(hb, Expr::Reduce { op, value, init, over })
    }

    // ---- queries ------------------------------------------------------------

    /// Ancestors of a controller from itself up to (and including) the root.
    pub fn ancestors(&self, mut c: CtrlId) -> Vec<CtrlId> {
        let mut out = vec![c];
        while let Some(p) = self.ctrls[c.index()].parent {
            out.push(p);
            c = p;
        }
        out
    }

    /// Whether `anc` is an ancestor of `c` (inclusive).
    pub fn is_ancestor(&self, anc: CtrlId, c: CtrlId) -> bool {
        self.ancestors(c).contains(&anc)
    }

    /// Least common ancestor of two controllers.
    pub fn lca(&self, a: CtrlId, b: CtrlId) -> CtrlId {
        let aa = self.ancestors(a);
        let bb: std::collections::HashSet<_> = self.ancestors(b).into_iter().collect();
        *aa.iter().find(|c| bb.contains(c)).expect("root is a common ancestor")
    }

    /// The child of `lca` on the path from `lca` down to `c`, or `c` itself
    /// if `c == lca`. This is the "immediate child ancestor" of §III-A1 used
    /// to drive token push/pop signals.
    pub fn child_toward(&self, lca: CtrlId, c: CtrlId) -> CtrlId {
        let path = self.ancestors(c);
        let pos = path.iter().position(|x| *x == lca).expect("lca must be an ancestor");
        if pos == 0 {
            c
        } else {
            path[pos - 1]
        }
    }

    /// Loop ancestors of a controller (innermost first), *excluding*
    /// non-loop controllers, used as the counter chain of lowered units.
    pub fn loop_ancestors(&self, c: CtrlId) -> Vec<CtrlId> {
        self.ancestors(c).into_iter().filter(|id| self.ctrls[id.index()].is_iterative()).collect()
    }

    /// All counted loops in program order (depth-first), the knob space
    /// of per-loop parallelization tuning.
    pub fn loops(&self) -> Vec<CtrlId> {
        let mut out = Vec::new();
        self.visit_preorder(self.root(), &mut |id| {
            if matches!(self.ctrls[id.index()].kind, CtrlKind::Loop(_)) {
                out.push(id);
            }
        });
        out
    }

    /// Whether a counted loop has no counted loops beneath it (its `par`
    /// vectorizes across SIMD lanes rather than spatially unrolling).
    pub fn is_innermost_loop(&self, id: CtrlId) -> bool {
        matches!(self.ctrls[id.index()].kind, CtrlKind::Loop(_))
            && self.loops().iter().all(|&l| l == id || !self.is_ancestor(id, l))
    }

    /// All leaf hyperblocks in program order (depth-first).
    pub fn leaves(&self) -> Vec<CtrlId> {
        let mut out = Vec::new();
        self.visit_preorder(self.root(), &mut |id| {
            if matches!(self.ctrls[id.index()].kind, CtrlKind::Leaf(_)) {
                out.push(id);
            }
        });
        out
    }

    /// Depth-first pre-order traversal.
    pub fn visit_preorder(&self, from: CtrlId, f: &mut impl FnMut(CtrlId)) {
        f(from);
        // Clone to avoid borrowing issues with the closure.
        let children = self.ctrls[from.index()].children.clone();
        for c in children {
            self.visit_preorder(c, f);
        }
    }

    /// All memory access sites in program order. This order defines the
    /// sequential semantics CMMC must preserve.
    pub fn accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        for hb in self.leaves() {
            if let CtrlKind::Leaf(h) = &self.ctrls[hb.index()].kind {
                for (eid, e) in h.iter() {
                    if let Some((mem, is_write)) = e.mem_effect() {
                        out.push(Access { id: AccessId { hb, expr: eid }, mem, is_write });
                    }
                }
            }
        }
        out
    }

    /// Access sites touching one memory, in program order.
    pub fn accesses_of(&self, mem: MemId) -> Vec<Access> {
        self.accesses().into_iter().filter(|a| a.mem == mem).collect()
    }

    /// Scalar registers consumed as dynamic bounds or conditions by a
    /// controller. The lowering turns each into a broadcast value stream.
    pub fn control_inputs(&self, c: CtrlId) -> Vec<MemId> {
        let mut out = Vec::new();
        match &self.ctrls[c.index()].kind {
            CtrlKind::Loop(spec) => {
                if let Bound::Reg(m) = spec.min {
                    out.push(m);
                }
                if let Bound::Reg(m) = spec.max {
                    out.push(m);
                }
            }
            CtrlKind::Branch { cond } => out.push(*cond),
            CtrlKind::DoWhile { cond, .. } => out.push(*cond),
            _ => {}
        }
        out
    }

    /// Total number of expression slots across all hyperblocks (a crude
    /// program-size metric used in reports).
    pub fn total_exprs(&self) -> usize {
        self.ctrls.iter().filter_map(|c| c.hyperblock().map(|h| h.len())).sum()
    }

    /// Maximum control-tree depth (root = 1).
    pub fn control_depth(&self) -> usize {
        self.ctrls
            .iter()
            .enumerate()
            .map(|(i, _)| self.ancestors(CtrlId(i as u32)).len())
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Program, CtrlId, CtrlId, CtrlId, CtrlId) {
        // root { A { B { C leaf, D leaf }, G leaf } }
        let mut p = Program::new("t");
        let root = p.root();
        let a = p.add_loop(root, "A", LoopSpec::new(0, 4, 1)).unwrap();
        let b = p.add_loop(a, "B", LoopSpec::new(0, 2, 1)).unwrap();
        let c = p.add_leaf(b, "C").unwrap();
        let d = p.add_leaf(b, "D").unwrap();
        let g = p.add_leaf(a, "G").unwrap();
        (p, a, c, d, g)
    }

    #[test]
    fn tree_structure_queries() {
        let (p, a, c, d, g) = sample();
        assert!(p.is_ancestor(a, c));
        assert!(!p.is_ancestor(c, a));
        let b = p.ctrl(c).parent.unwrap();
        assert_eq!(p.lca(c, d), b);
        assert_eq!(p.lca(c, g), a);
        assert_eq!(p.child_toward(a, c), b);
        assert_eq!(p.child_toward(a, g), g);
        assert_eq!(p.leaves(), vec![c, d, g]);
    }

    #[test]
    fn loop_ancestors_innermost_first() {
        let (p, a, c, _, _) = sample();
        let b = p.ctrl(c).parent.unwrap();
        assert_eq!(p.loop_ancestors(c), vec![b, a]);
    }

    #[test]
    fn leaf_rejects_children_and_exprs_on_nonleaf() {
        let (mut p, a, c, _, _) = sample();
        assert!(matches!(p.add_leaf(c, "x"), Err(IrError::LeafHasChildren(_))));
        assert!(matches!(p.c_i64(a, 0), Err(IrError::NotALeaf(_))));
    }

    #[test]
    fn branch_arity_enforced() {
        let mut p = Program::new("t");
        let root = p.root();
        let cond = p.reg("c", DType::I64);
        let br = p.add_branch(root, "br", cond).unwrap();
        p.add_leaf(br, "then").unwrap();
        p.add_leaf(br, "else").unwrap();
        assert!(matches!(p.add_leaf(br, "third"), Err(IrError::BadChild { .. })));
    }

    #[test]
    fn branch_cond_must_be_scalar_reg() {
        let mut p = Program::new("t");
        let root = p.root();
        let s = p.sram("s", &[4], DType::I64);
        assert!(matches!(p.add_branch(root, "br", s), Err(IrError::CondNotScalarReg(_))));
    }

    #[test]
    fn expr_operand_order_enforced() {
        let (mut p, _, c, _, _) = sample();
        let bad = ExprId(99);
        assert!(matches!(p.un(c, UnOp::Neg, bad), Err(IrError::UnknownExpr(..))));
        let x = p.c_i64(c, 1).unwrap();
        assert!(p.un(c, UnOp::Neg, x).is_ok());
    }

    #[test]
    fn addr_arity_checked() {
        let (mut p, _, c, _, _) = sample();
        let m = p.sram("m", &[2, 2], DType::F64);
        let z = p.c_i64(c, 0).unwrap();
        assert!(matches!(p.load(c, m, &[z]), Err(IrError::AddrArity { .. })));
        assert!(p.load(c, m, &[z, z]).is_ok());
    }

    #[test]
    fn accesses_in_program_order() {
        let (mut p, _, c, d, _) = sample();
        let m = p.sram("m", &[8], DType::F64);
        let zc = p.c_i64(c, 0).unwrap();
        let v = p.c_f64(c, 1.0).unwrap();
        p.store(c, m, &[zc], v).unwrap();
        let zd = p.c_i64(d, 0).unwrap();
        p.load(d, m, &[zd]).unwrap();
        let acc = p.accesses_of(m);
        assert_eq!(acc.len(), 2);
        assert!(acc[0].is_write && acc[0].id.hb == c);
        assert!(!acc[1].is_write && acc[1].id.hb == d);
    }

    #[test]
    fn trip_count() {
        assert_eq!(LoopSpec::new(0, 10, 1).trip_count(), Some(10));
        assert_eq!(LoopSpec::new(0, 10, 3).trip_count(), Some(4));
        assert_eq!(LoopSpec::new(10, 0, -2).trip_count(), Some(5));
        assert_eq!(LoopSpec::new(0, Bound::Reg(MemId(0)), 1).trip_count(), None);
    }

    #[test]
    fn set_par_overrides_a_built_loop() {
        let (mut p, a, c, _, _) = sample();
        assert_eq!(p.ctrl(a).loop_spec().unwrap().par, 1);
        p.set_par(a, 4).unwrap();
        assert_eq!(p.ctrl(a).loop_spec().unwrap().par, 4);
        // Validated like the builder path, never a panic.
        assert_eq!(p.set_par(a, 0), Err(IrError::BadPar(a)));
        assert_eq!(p.ctrl(a).loop_spec().unwrap().par, 4);
        assert_eq!(p.set_par(c, 2), Err(IrError::NotALoop(c)));
        assert_eq!(p.set_par(CtrlId(99), 2), Err(IrError::UnknownCtrl(CtrlId(99))));
    }

    #[test]
    fn loops_and_innermost_queries() {
        let (p, a, c, _, _) = sample();
        let b = p.ctrl(c).parent.unwrap();
        assert_eq!(p.loops(), vec![a, b]);
        assert!(!p.is_innermost_loop(a));
        assert!(p.is_innermost_loop(b));
        assert!(!p.is_innermost_loop(c)); // a leaf, not a loop
    }

    #[test]
    fn control_inputs_reported() {
        let mut p = Program::new("t");
        let root = p.root();
        let r = p.reg("n", DType::I64);
        let l = p.add_loop(root, "L", LoopSpec::new(0, Bound::Reg(r), 1)).unwrap();
        assert_eq!(p.control_inputs(l), vec![r]);
    }
}
