//! Error type shared by IR construction, validation and interpretation.

use crate::expr::ExprId;
use crate::mem::MemId;
use crate::program::CtrlId;
use std::fmt;

/// Error produced while building, validating or interpreting a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A control id referenced a node that does not exist.
    UnknownCtrl(CtrlId),
    /// A memory id referenced a declaration that does not exist.
    UnknownMem(MemId),
    /// An expression id referenced a slot that does not exist (or a later
    /// slot, violating DAG order) within the given hyperblock.
    UnknownExpr(CtrlId, ExprId),
    /// Children were added to a hyperblock leaf.
    LeafHasChildren(CtrlId),
    /// Expressions were added to a non-leaf controller.
    NotALeaf(CtrlId),
    /// A branch controller must have one or two arms.
    BadBranchArity(CtrlId, usize),
    /// `Idx`, `IsFirst`, `IsLast` or `Reduce::over` referenced a controller
    /// that is not a loop ancestor of the hyperblock.
    NotAnAncestorLoop { hb: CtrlId, ctrl: CtrlId },
    /// The memory used as a dynamic bound / branch / do-while condition must
    /// be a scalar register.
    CondNotScalarReg(MemId),
    /// Address arity does not match the memory's declared dimensions.
    AddrArity { mem: MemId, expected: usize, got: usize },
    /// Loop parallelization factor must be at least 1.
    BadPar(CtrlId),
    /// A loop-only operation (e.g. [`crate::Program::set_par`]) targeted a
    /// controller that is not a counted loop.
    NotALoop(CtrlId),
    /// A loop with min >= max and positive step never executes; treated as
    /// an error to catch builder mistakes early (dynamic bounds may still
    /// evaluate to empty at run time, which is fine).
    EmptyStaticLoop(CtrlId),
    /// Loop step must be nonzero.
    ZeroStep(CtrlId),
    /// Declared init data length does not match the memory size.
    InitLenMismatch { mem: MemId, expected: usize, got: usize },
    /// Out-of-bounds access detected by the interpreter.
    Oob { mem: MemId, addr: i64, size: usize },
    /// A do-while loop exceeded its configured iteration bound.
    DoWhileDiverged(CtrlId),
    /// Attempt to attach a child to a controller that cannot have children
    /// of the given kind (e.g. a second arm on a 2-arm branch).
    BadChild { parent: CtrlId, reason: &'static str },
    /// Generic validation failure with a human-readable reason.
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownCtrl(c) => write!(f, "unknown controller {c:?}"),
            IrError::UnknownMem(m) => write!(f, "unknown memory {m:?}"),
            IrError::UnknownExpr(c, e) => {
                write!(f, "unknown or forward expression {e:?} in hyperblock {c:?}")
            }
            IrError::LeafHasChildren(c) => write!(f, "hyperblock {c:?} has children"),
            IrError::NotALeaf(c) => write!(f, "controller {c:?} is not a hyperblock"),
            IrError::BadBranchArity(c, n) => {
                write!(f, "branch {c:?} has {n} arms, expected 1 or 2")
            }
            IrError::NotAnAncestorLoop { hb, ctrl } => {
                write!(f, "controller {ctrl:?} is not a loop ancestor of hyperblock {hb:?}")
            }
            IrError::CondNotScalarReg(m) => {
                write!(
                    f,
                    "memory {m:?} used as condition or dynamic bound is not a scalar register"
                )
            }
            IrError::AddrArity { mem, expected, got } => {
                write!(f, "address for {mem:?} has {got} dimensions, expected {expected}")
            }
            IrError::BadPar(c) => write!(f, "loop {c:?} has parallelization factor 0"),
            IrError::NotALoop(c) => write!(f, "controller {c:?} is not a counted loop"),
            IrError::EmptyStaticLoop(c) => write!(f, "loop {c:?} has statically empty range"),
            IrError::ZeroStep(c) => write!(f, "loop {c:?} has zero step"),
            IrError::InitLenMismatch { mem, expected, got } => {
                write!(f, "init data for {mem:?} has {got} elements, expected {expected}")
            }
            IrError::Oob { mem, addr, size } => {
                write!(f, "out-of-bounds access to {mem:?}: address {addr}, size {size}")
            }
            IrError::DoWhileDiverged(c) => {
                write!(f, "do-while {c:?} exceeded its iteration bound")
            }
            IrError::BadChild { parent, reason } => {
                write!(f, "cannot add child to {parent:?}: {reason}")
            }
            IrError::Invalid(s) => write!(f, "invalid program: {s}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CtrlId;

    #[test]
    fn display_is_nonempty() {
        let errs: Vec<IrError> = vec![
            IrError::UnknownCtrl(CtrlId(3)),
            IrError::BadPar(CtrlId(0)),
            IrError::Invalid("x".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
