//! Sequential reference interpreter.
//!
//! Executes the program with the semantics CMMC must preserve: controllers
//! run in program order, one activation at a time, and every memory access
//! observes all earlier accesses. The interpreter also gathers the dynamic
//! statistics (per-hyperblock firing counts, op counts, off-chip traffic)
//! consumed by Table IV and the GPU roofline baseline.

use crate::error::IrError;
use crate::expr::{Expr, ExprId};
use crate::mem::{MemId, MemKind};
use crate::program::{Bound, CtrlId, CtrlKind, Program};
use crate::value::{DType, Elem};
use std::collections::{HashMap, VecDeque};

/// Dynamic statistics gathered by one interpreter run.
#[derive(Debug, Clone, Default)]
pub struct InterpStats {
    /// Innermost-iteration (firing) count per hyperblock.
    pub hb_execs: HashMap<CtrlId, u64>,
    /// Activation count per controller.
    pub activations: HashMap<CtrlId, u64>,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Integer/bool operations executed.
    pub int_ops: u64,
    /// Loads executed (any memory).
    pub loads: u64,
    /// Stores executed (any memory; predicated-off stores do not count).
    pub stores: u64,
    /// Bytes read from DRAM tensors.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM tensors.
    pub dram_write_bytes: u64,
}

impl InterpStats {
    /// Total off-chip traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total arithmetic operations.
    pub fn total_ops(&self) -> u64 {
        self.flops + self.int_ops
    }
}

/// Result of an interpreter run: final memory images plus statistics.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final contents of every memory, indexed by [`MemId`]. FIFO images
    /// contain the *remaining* (unpopped) elements front-first, padded with
    /// zeros to capacity.
    pub mem: Vec<Vec<Elem>>,
    /// Dynamic statistics.
    pub stats: InterpStats,
}

impl RunOutcome {
    /// Final contents of a memory as `f64`s (convenience for assertions).
    pub fn mem_f64(&self, id: MemId) -> Vec<f64> {
        self.mem[id.index()].iter().map(|e| e.as_f64()).collect()
    }

    /// Final contents of a memory as `i64`s.
    pub fn mem_i64(&self, id: MemId) -> Vec<i64> {
        self.mem[id.index()].iter().map(|e| e.as_i64()).collect()
    }
}

/// Per-loop dynamic iteration state used to answer `Idx`/`IsFirst`/`IsLast`.
#[derive(Debug, Clone, Copy)]
struct LoopState {
    idx: i64,
    min: i64,
    max: i64,
    step: i64,
}

impl LoopState {
    fn is_first(&self) -> bool {
        self.idx == self.min
    }
    fn is_last(&self) -> bool {
        if self.step > 0 {
            self.idx + self.step >= self.max
        } else {
            self.idx + self.step <= self.max
        }
    }
}

/// The sequential interpreter. Create with [`Interp::new`], optionally bound
/// with [`Interp::with_fuel`], then [`Interp::run`].
#[derive(Debug)]
pub struct Interp<'p> {
    p: &'p Program,
    mem: Vec<Vec<Elem>>,
    fifos: HashMap<MemId, VecDeque<Elem>>,
    loops: HashMap<CtrlId, LoopState>,
    /// Do-while iteration counter (also serves `Idx` over do-while).
    dw_iter: HashMap<CtrlId, i64>,
    activation: HashMap<CtrlId, u64>,
    reduce: HashMap<(CtrlId, ExprId), (u64, Elem)>,
    stats: InterpStats,
    fuel: Option<u64>,
}

impl<'p> Interp<'p> {
    /// Create an interpreter over a validated program.
    pub fn new(p: &'p Program) -> Self {
        let mem = p.mems.iter().map(|m| m.init.materialize(m.size(), m.dtype)).collect();
        Interp {
            p,
            mem,
            fifos: HashMap::new(),
            loops: HashMap::new(),
            dw_iter: HashMap::new(),
            activation: HashMap::new(),
            reduce: HashMap::new(),
            stats: InterpStats::default(),
            fuel: None,
        }
    }

    /// Bound the total number of hyperblock firings; exceeding it returns
    /// [`IrError::DoWhileDiverged`] on the root. Useful when interpreting
    /// randomly generated programs in property tests.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Run the program to completion.
    ///
    /// # Errors
    ///
    /// Out-of-bounds accesses, diverging do-while loops and fuel exhaustion
    /// are reported as errors.
    pub fn run(mut self) -> Result<RunOutcome, IrError> {
        // FIFO queues start with their initial images considered empty:
        // FIFOs are transient streams.
        for (i, m) in self.p.mems.iter().enumerate() {
            if m.kind == MemKind::Fifo {
                self.fifos.insert(MemId(i as u32), VecDeque::new());
            }
        }
        self.exec(self.p.root())?;
        // Fold remaining FIFO contents back into the memory image so
        // differential tests can compare them.
        for (id, q) in &self.fifos {
            let img = &mut self.mem[id.index()];
            let dtype = self.p.mem(*id).dtype;
            img.iter_mut().for_each(|e| *e = dtype.zero());
            for (i, v) in q.iter().enumerate().take(img.len()) {
                img[i] = *v;
            }
        }
        Ok(RunOutcome { mem: self.mem, stats: self.stats })
    }

    fn read_scalar_reg(&self, m: MemId) -> Elem {
        self.mem[m.index()][0]
    }

    fn resolve_bound(&self, b: Bound) -> i64 {
        match b {
            Bound::Const(v) => v,
            Bound::Reg(m) => self.read_scalar_reg(m).as_i64(),
        }
    }

    fn exec(&mut self, c: CtrlId) -> Result<(), IrError> {
        *self.activation.entry(c).or_insert(0) += 1;
        *self.stats.activations.entry(c).or_insert(0) += 1;
        let ctrl = self.p.ctrl(c).clone();
        match &ctrl.kind {
            CtrlKind::Root => {
                for ch in &ctrl.children {
                    self.exec(*ch)?;
                }
            }
            CtrlKind::Loop(spec) => {
                let min = self.resolve_bound(spec.min);
                let max = self.resolve_bound(spec.max);
                let step = spec.step;
                let mut i = min;
                while (step > 0 && i < max) || (step < 0 && i > max) {
                    self.loops.insert(c, LoopState { idx: i, min, max, step });
                    for ch in &ctrl.children {
                        self.exec(*ch)?;
                    }
                    i += step;
                }
                self.loops.remove(&c);
            }
            CtrlKind::Branch { cond } => {
                let taken = self.read_scalar_reg(*cond).as_bool();
                if taken {
                    self.exec(ctrl.children[0])?;
                } else if ctrl.children.len() > 1 {
                    self.exec(ctrl.children[1])?;
                }
            }
            CtrlKind::DoWhile { cond, max_iter } => {
                let mut k: i64 = 0;
                loop {
                    self.dw_iter.insert(c, k);
                    for ch in &ctrl.children {
                        self.exec(*ch)?;
                    }
                    if !self.read_scalar_reg(*cond).as_bool() {
                        break;
                    }
                    k += 1;
                    if k as u64 >= *max_iter {
                        return Err(IrError::DoWhileDiverged(c));
                    }
                }
                self.dw_iter.remove(&c);
            }
            CtrlKind::Leaf(_) => {
                self.exec_hyperblock(c)?;
            }
        }
        Ok(())
    }

    fn exec_hyperblock(&mut self, hb: CtrlId) -> Result<(), IrError> {
        *self.stats.hb_execs.entry(hb).or_insert(0) += 1;
        if let Some(fuel) = self.fuel {
            let total: u64 = self.stats.hb_execs.values().sum();
            if total > fuel {
                return Err(IrError::DoWhileDiverged(self.p.root()));
            }
        }
        let h = match &self.p.ctrl(hb).kind {
            CtrlKind::Leaf(h) => h.clone(),
            _ => unreachable!("exec_hyperblock called on non-leaf"),
        };
        let mut vals: Vec<Elem> = Vec::with_capacity(h.len());
        for (eid, e) in h.iter() {
            let v = match e {
                Expr::Const(v) => *v,
                Expr::Idx(c) => {
                    if let Some(ls) = self.loops.get(c) {
                        Elem::I64(ls.idx)
                    } else if let Some(k) = self.dw_iter.get(c) {
                        Elem::I64(*k)
                    } else {
                        // Referencing a loop that is not currently active is
                        // a validation bug; treat as zero defensively.
                        Elem::I64(0)
                    }
                }
                Expr::IsFirst(c) => {
                    if let Some(ls) = self.loops.get(c) {
                        Elem::from_bool(ls.is_first())
                    } else if let Some(k) = self.dw_iter.get(c) {
                        Elem::from_bool(*k == 0)
                    } else {
                        Elem::TRUE
                    }
                }
                Expr::IsLast(c) => {
                    let ls = self.loops.get(c).copied();
                    Elem::from_bool(ls.map(|l| l.is_last()).unwrap_or(true))
                }
                Expr::Un(op, a) => {
                    let v = op.eval(vals[a.index()]);
                    self.count_op(v.dtype());
                    v
                }
                Expr::Bin(op, a, b) => {
                    let v = op.eval(vals[a.index()], vals[b.index()]);
                    self.count_op(v.dtype());
                    v
                }
                Expr::Mux { c, t, f } => {
                    if vals[c.index()].as_bool() {
                        vals[t.index()]
                    } else {
                        vals[f.index()]
                    }
                }
                Expr::Load { mem, addr } => self.do_load(*mem, addr, &vals)?,
                Expr::Store { mem, addr, value, cond } => {
                    let enabled = cond.map(|c| vals[c.index()].as_bool()).unwrap_or(true);
                    if enabled {
                        self.do_store(*mem, addr, vals[value.index()], &vals)?;
                    }
                    vals[value.index()]
                }
                Expr::Reduce { op, value, init, over } => {
                    let over_act = self.activation.get(over).copied().unwrap_or(0);
                    let key = (hb, eid);
                    let entry = self.reduce.entry(key).or_insert((over_act, *init));
                    if entry.0 != over_act {
                        *entry = (over_act, *init);
                    }
                    let acc = op.eval(entry.1, vals[value.index()]);
                    entry.1 = acc;
                    self.count_op(acc.dtype());
                    acc
                }
            };
            vals.push(v);
        }
        Ok(())
    }

    fn count_op(&mut self, dtype: DType) {
        match dtype {
            DType::F64 => self.stats.flops += 1,
            DType::I64 => self.stats.int_ops += 1,
        }
    }

    fn do_load(&mut self, mem: MemId, addr: &[ExprId], vals: &[Elem]) -> Result<Elem, IrError> {
        self.stats.loads += 1;
        let decl = self.p.mem(mem);
        if decl.kind == MemKind::Fifo {
            let q = self.fifos.get_mut(&mem).expect("fifo queue exists");
            return Ok(q.pop_front().unwrap_or_else(|| decl.dtype.zero()));
        }
        let coords: Vec<i64> = addr.iter().map(|a| vals[a.index()].as_i64()).collect();
        let flat = decl.flatten(&coords).ok_or(IrError::Oob {
            mem,
            addr: *coords.first().unwrap_or(&-1),
            size: decl.size(),
        })?;
        if decl.kind == MemKind::Dram {
            self.stats.dram_read_bytes += decl.dtype.dram_bytes() as u64;
        }
        Ok(self.mem[mem.index()][flat as usize])
    }

    fn do_store(
        &mut self,
        mem: MemId,
        addr: &[ExprId],
        v: Elem,
        vals: &[Elem],
    ) -> Result<(), IrError> {
        self.stats.stores += 1;
        let decl = self.p.mem(mem);
        if decl.kind == MemKind::Fifo {
            let q = self.fifos.get_mut(&mem).expect("fifo queue exists");
            q.push_back(v);
            return Ok(());
        }
        let coords: Vec<i64> = addr.iter().map(|a| vals[a.index()].as_i64()).collect();
        let flat = decl.flatten(&coords).ok_or(IrError::Oob {
            mem,
            addr: *coords.first().unwrap_or(&-1),
            size: decl.size(),
        })?;
        if decl.kind == MemKind::Dram {
            self.stats.dram_write_bytes += decl.dtype.dram_bytes() as u64;
        }
        self.mem[mem.index()][flat as usize] = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::mem::MemInit;
    use crate::program::LoopSpec;

    #[test]
    fn nested_loop_matmul_like() {
        // out[i] = sum_j a[i*4+j]
        let mut p = Program::new("t");
        let root = p.root();
        let a = p.dram("a", &[8], DType::F64, MemInit::LinSpace { start: 0.0, step: 1.0 });
        let out = p.dram("out", &[2], DType::F64, MemInit::Zero);
        let li = p.add_loop(root, "i", LoopSpec::new(0, 2, 1)).unwrap();
        let lj = p.add_loop(li, "j", LoopSpec::new(0, 4, 1)).unwrap();
        let hb = p.add_leaf(lj, "b").unwrap();
        let i = p.idx(hb, li).unwrap();
        let j = p.idx(hb, lj).unwrap();
        let four = p.c_i64(hb, 4).unwrap();
        let base = p.bin(hb, BinOp::Mul, i, four).unwrap();
        let addr = p.bin(hb, BinOp::Add, base, j).unwrap();
        let x = p.load(hb, a, &[addr]).unwrap();
        let acc = p.reduce(hb, BinOp::Add, x, Elem::F64(0.0), lj).unwrap();
        let last = p.is_last(hb, lj).unwrap();
        p.store_if(hb, out, &[i], acc, last).unwrap();
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.mem_f64(out), vec![0.0 + 1.0 + 2.0 + 3.0, 4.0 + 5.0 + 6.0 + 7.0]);
        // reduce resets per activation of lj (per iteration of li)
        assert_eq!(o.stats.hb_execs[&hb], 8);
    }

    #[test]
    fn branch_on_parity() {
        // for i in 0..4 { c = i%2==0; if c { m[i]=1 } else { m[i]=2 } }
        let mut p = Program::new("t");
        let root = p.root();
        let m = p.dram("m", &[4], DType::I64, MemInit::Zero);
        let cond = p.reg("cond", DType::I64);
        let li = p.add_loop(root, "i", LoopSpec::new(0, 4, 1)).unwrap();
        let chb = p.add_leaf(li, "cond").unwrap();
        let i = p.idx(chb, li).unwrap();
        let two = p.c_i64(chb, 2).unwrap();
        let rem = p.bin(chb, BinOp::Mod, i, two).unwrap();
        let zero = p.c_i64(chb, 0).unwrap();
        let is_even = p.bin(chb, BinOp::Eq, rem, zero).unwrap();
        let z2 = p.c_i64(chb, 0).unwrap();
        p.store(chb, cond, &[z2], is_even).unwrap();
        let br = p.add_branch(li, "br", cond).unwrap();
        let t = p.add_leaf(br, "then").unwrap();
        let it = p.idx(t, li).unwrap();
        let one = p.c_i64(t, 1).unwrap();
        p.store(t, m, &[it], one).unwrap();
        let e = p.add_leaf(br, "else").unwrap();
        let ie = p.idx(e, li).unwrap();
        let twoe = p.c_i64(e, 2).unwrap();
        p.store(e, m, &[ie], twoe).unwrap();
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.mem_i64(m), vec![1, 2, 1, 2]);
        assert_eq!(o.stats.hb_execs[&t], 2);
        assert_eq!(o.stats.hb_execs[&e], 2);
    }

    #[test]
    fn do_while_counts_to_threshold() {
        // k = 0; do { k += 1; cond = k < 5 } while cond;  result: k == 5
        let mut p = Program::new("t");
        let root = p.root();
        let k = p.reg("k", DType::I64);
        let cond = p.reg("cond", DType::I64);
        let dw = p.add_do_while(root, "dw", cond, 100).unwrap();
        let hb = p.add_leaf(dw, "body").unwrap();
        let z = p.c_i64(hb, 0).unwrap();
        let kv = p.load(hb, k, &[z]).unwrap();
        let one = p.c_i64(hb, 1).unwrap();
        let k1 = p.bin(hb, BinOp::Add, kv, one).unwrap();
        p.store(hb, k, &[z], k1).unwrap();
        let five = p.c_i64(hb, 5).unwrap();
        let c = p.bin(hb, BinOp::Lt, k1, five).unwrap();
        p.store(hb, cond, &[z], c).unwrap();
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.mem_i64(k), vec![5]);
    }

    #[test]
    fn do_while_divergence_detected() {
        let mut p = Program::new("t");
        let root = p.root();
        let cond = p.reg_init("cond", Elem::I64(1));
        let dw = p.add_do_while(root, "dw", cond, 4).unwrap();
        let hb = p.add_leaf(dw, "body").unwrap();
        let z = p.c_i64(hb, 0).unwrap();
        let one = p.c_i64(hb, 1).unwrap();
        p.store(hb, cond, &[z], one).unwrap();
        p.validate().unwrap();
        assert!(matches!(Interp::new(&p).run(), Err(IrError::DoWhileDiverged(_))));
    }

    #[test]
    fn dynamic_bounds_from_register() {
        // n = 6; for i in 0..n { m[i] = i }
        let mut p = Program::new("t");
        let root = p.root();
        let n = p.reg("n", DType::I64);
        let m = p.dram("m", &[8], DType::I64, MemInit::Zero);
        let setup = p.add_leaf(root, "setup").unwrap();
        let six = p.c_i64(setup, 6).unwrap();
        let z = p.c_i64(setup, 0).unwrap();
        p.store(setup, n, &[z], six).unwrap();
        let li = p.add_loop(root, "i", LoopSpec::new(0, Bound::Reg(n), 1)).unwrap();
        let hb = p.add_leaf(li, "b").unwrap();
        let i = p.idx(hb, li).unwrap();
        p.store(hb, m, &[i], i).unwrap();
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.mem_i64(m), vec![0, 1, 2, 3, 4, 5, 0, 0]);
    }

    #[test]
    fn oob_detected() {
        let mut p = Program::new("t");
        let root = p.root();
        let m = p.sram("m", &[2], DType::I64);
        let hb = p.add_leaf(root, "b").unwrap();
        let five = p.c_i64(hb, 5).unwrap();
        p.load(hb, m, &[five]).unwrap();
        p.validate().unwrap();
        assert!(matches!(Interp::new(&p).run(), Err(IrError::Oob { .. })));
    }

    #[test]
    fn fifo_queue_semantics() {
        // push 0..4 into fifo in one loop, pop into dram in another
        let mut p = Program::new("t");
        let root = p.root();
        let f = p.fifo("f", 8, DType::I64);
        let out = p.dram("out", &[4], DType::I64, MemInit::Zero);
        let l1 = p.add_loop(root, "w", LoopSpec::new(0, 4, 1)).unwrap();
        let h1 = p.add_leaf(l1, "wb").unwrap();
        let i1 = p.idx(h1, l1).unwrap();
        let z1 = p.c_i64(h1, 0).unwrap();
        p.store(h1, f, &[z1], i1).unwrap();
        let l2 = p.add_loop(root, "r", LoopSpec::new(0, 4, 1)).unwrap();
        let h2 = p.add_leaf(l2, "rb").unwrap();
        let z2 = p.c_i64(h2, 0).unwrap();
        let v = p.load(h2, f, &[z2]).unwrap();
        let i2 = p.idx(h2, l2).unwrap();
        p.store(h2, out, &[i2], v).unwrap();
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.mem_i64(out), vec![0, 1, 2, 3]);
    }

    #[test]
    fn stats_count_dram_traffic() {
        let mut p = Program::new("t");
        let root = p.root();
        let a = p.dram("a", &[4], DType::F64, MemInit::Zero);
        let l = p.add_loop(root, "i", LoopSpec::new(0, 4, 1)).unwrap();
        let hb = p.add_leaf(l, "b").unwrap();
        let i = p.idx(hb, l).unwrap();
        let x = p.load(hb, a, &[i]).unwrap();
        p.store(hb, a, &[i], x).unwrap();
        p.validate().unwrap();
        let o = Interp::new(&p).run().unwrap();
        assert_eq!(o.stats.dram_read_bytes, 16);
        assert_eq!(o.stats.dram_write_bytes, 16);
        assert_eq!(o.stats.loads, 4);
        assert_eq!(o.stats.stores, 4);
    }
}
