//! Hyperblock expressions: straight-line SSA-ordered DAGs evaluated once per
//! innermost-loop iteration.

use crate::mem::MemId;
use crate::program::CtrlId;
use crate::value::Elem;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an expression slot within one hyperblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExprId(pub u32);

impl ExprId {
    /// Index into the hyperblock's expression table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Binary operators.
///
/// Comparison operators produce boolean elements (`I64` 0/1). Integer
/// division and modulo follow Rust semantics (truncating, panics on zero are
/// mapped to 0 in the interpreter to keep differential tests total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// Whether the operator is a comparison yielding a boolean.
    pub fn is_cmp(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// Whether the operator is associative, and thus legal as a reduction
    /// operator (floating-point associativity is assumed, as accelerators
    /// and the paper's tree reductions do).
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Evaluate on two elements.
    pub fn eval(self, a: Elem, b: Elem) -> Elem {
        use BinOp::*;
        // Integer path when both operands are integers; float otherwise.
        match (a, b) {
            (Elem::I64(x), Elem::I64(y)) => match self {
                Add => Elem::I64(x.wrapping_add(y)),
                Sub => Elem::I64(x.wrapping_sub(y)),
                Mul => Elem::I64(x.wrapping_mul(y)),
                Div => Elem::I64(if y == 0 { 0 } else { x.wrapping_div(y) }),
                Mod => Elem::I64(if y == 0 { 0 } else { x.wrapping_rem(y) }),
                Min => Elem::I64(x.min(y)),
                Max => Elem::I64(x.max(y)),
                And => Elem::I64(x & y),
                Or => Elem::I64(x | y),
                Xor => Elem::I64(x ^ y),
                Shl => Elem::I64(x.wrapping_shl(y as u32)),
                Shr => Elem::I64(x.wrapping_shr(y as u32)),
                Lt => Elem::from_bool(x < y),
                Le => Elem::from_bool(x <= y),
                Gt => Elem::from_bool(x > y),
                Ge => Elem::from_bool(x >= y),
                Eq => Elem::from_bool(x == y),
                Ne => Elem::from_bool(x != y),
            },
            _ => {
                let (x, y) = (a.as_f64(), b.as_f64());
                match self {
                    Add => Elem::F64(x + y),
                    Sub => Elem::F64(x - y),
                    Mul => Elem::F64(x * y),
                    Div => Elem::F64(x / y),
                    Mod => Elem::F64(x % y),
                    Min => Elem::F64(x.min(y)),
                    Max => Elem::F64(x.max(y)),
                    And => Elem::from_bool(x != 0.0 && y != 0.0),
                    Or => Elem::from_bool(x != 0.0 || y != 0.0),
                    Xor => Elem::from_bool((x != 0.0) ^ (y != 0.0)),
                    Shl => Elem::I64((x as i64).wrapping_shl(y as u32)),
                    Shr => Elem::I64((x as i64).wrapping_shr(y as u32)),
                    Lt => Elem::from_bool(x < y),
                    Le => Elem::from_bool(x <= y),
                    Gt => Elem::from_bool(x > y),
                    Ge => Elem::from_bool(x >= y),
                    Eq => Elem::from_bool(x == y),
                    Ne => Elem::from_bool(x != y),
                }
            }
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Not,
    Abs,
    Exp,
    Log,
    Sqrt,
    Sigmoid,
    Tanh,
    Relu,
    Floor,
    /// Convert to float.
    ToF,
    /// Convert to integer (truncating).
    ToI,
}

impl UnOp {
    /// Evaluate on one element.
    pub fn eval(self, a: Elem) -> Elem {
        use UnOp::*;
        match self {
            Neg => match a {
                Elem::I64(v) => Elem::I64(v.wrapping_neg()),
                Elem::F64(v) => Elem::F64(-v),
            },
            Not => Elem::from_bool(!a.as_bool()),
            Abs => match a {
                Elem::I64(v) => Elem::I64(v.wrapping_abs()),
                Elem::F64(v) => Elem::F64(v.abs()),
            },
            Exp => Elem::F64(a.as_f64().exp()),
            Log => Elem::F64(a.as_f64().ln()),
            Sqrt => Elem::F64(a.as_f64().sqrt()),
            Sigmoid => Elem::F64(1.0 / (1.0 + (-a.as_f64()).exp())),
            Tanh => Elem::F64(a.as_f64().tanh()),
            Relu => Elem::F64(a.as_f64().max(0.0)),
            Floor => Elem::F64(a.as_f64().floor()),
            ToF => Elem::F64(a.as_f64()),
            ToI => Elem::I64(a.as_i64()),
        }
    }

    /// Whether the op requires a transcendental functional unit (these cost
    /// more pipeline stages on the Plasticine PCU).
    pub fn is_transcendental(self) -> bool {
        matches!(self, UnOp::Exp | UnOp::Log | UnOp::Sqrt | UnOp::Sigmoid | UnOp::Tanh)
    }
}

/// One expression in a hyperblock.
///
/// Expressions form an SSA-ordered DAG: each operand [`ExprId`] must refer
/// to an *earlier* slot. Side effects ([`Expr::Store`]) execute in slot
/// order. The reference semantics are "evaluate every slot once per
/// innermost iteration".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A compile-time constant.
    Const(Elem),
    /// Current index of an ancestor loop controller.
    Idx(CtrlId),
    /// True on the first iteration of the given ancestor loop (within its
    /// current activation).
    IsFirst(CtrlId),
    /// True on the last iteration of the given ancestor loop.
    IsLast(CtrlId),
    /// Unary operation.
    Un(UnOp, ExprId),
    /// Binary operation.
    Bin(BinOp, ExprId, ExprId),
    /// Select `t` if `c` is true else `f`.
    Mux { c: ExprId, t: ExprId, f: ExprId },
    /// Read `mem[addr]` (multi-dimensional address, row-major).
    Load { mem: MemId, addr: Vec<ExprId> },
    /// Write `value` to `mem[addr]`, optionally predicated on `cond`.
    Store { mem: MemId, addr: Vec<ExprId>, value: ExprId, cond: Option<ExprId> },
    /// Loop-carried accumulation: the accumulator is reset to `init` at
    /// each new activation of ancestor loop `over` and updated with
    /// `op(acc, value)` every evaluation; the expression yields the updated
    /// running value.
    Reduce { op: BinOp, value: ExprId, init: Elem, over: CtrlId },
}

impl Expr {
    /// Operand expression ids (not including addresses of stores/loads?
    /// — addresses *are* operands and are included).
    pub fn operands(&self) -> Vec<ExprId> {
        match self {
            Expr::Const(_) | Expr::Idx(_) | Expr::IsFirst(_) | Expr::IsLast(_) => vec![],
            Expr::Un(_, a) => vec![*a],
            Expr::Bin(_, a, b) => vec![*a, *b],
            Expr::Mux { c, t, f } => vec![*c, *t, *f],
            Expr::Load { addr, .. } => addr.clone(),
            Expr::Store { addr, value, cond, .. } => {
                let mut v = addr.clone();
                v.push(*value);
                if let Some(c) = cond {
                    v.push(*c);
                }
                v
            }
            Expr::Reduce { value, .. } => vec![*value],
        }
    }

    /// Memory touched by this expression, with `true` for writes.
    pub fn mem_effect(&self) -> Option<(MemId, bool)> {
        match self {
            Expr::Load { mem, .. } => Some((*mem, false)),
            Expr::Store { mem, .. } => Some((*mem, true)),
            _ => None,
        }
    }

    /// Whether this expression has a side effect (stores).
    pub fn is_effect(&self) -> bool {
        matches!(self, Expr::Store { .. })
    }
}

/// A hyperblock: the straight-line body of an innermost controller.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Hyperblock {
    /// SSA-ordered expression slots.
    pub exprs: Vec<Expr>,
}

impl Hyperblock {
    /// Number of expression slots.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Whether the hyperblock has no expressions.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// Expression at a slot, if in range.
    pub fn get(&self, id: ExprId) -> Option<&Expr> {
        self.exprs.get(id.index())
    }

    /// Iterate `(ExprId, &Expr)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, &Expr)> {
        self.exprs.iter().enumerate().map(|(i, e)| (ExprId(i as u32), e))
    }
}

/// Globally unique identifier of one memory access site: a (hyperblock,
/// expression-slot) pair. CMMC dependency analysis, the memory partitioner
/// and the vanilla-PC baseline all reason in terms of `AccessId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccessId {
    /// Hyperblock (leaf controller) containing the access.
    pub hb: CtrlId,
    /// Expression slot of the `Load` or `Store`.
    pub expr: ExprId,
}

impl fmt::Display for AccessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.hb, self.expr)
    }
}

/// A resolved access site: which memory it touches and whether it writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Access {
    /// Access site.
    pub id: AccessId,
    /// Target memory.
    pub mem: MemId,
    /// True for stores.
    pub is_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_int_semantics() {
        assert_eq!(BinOp::Add.eval(Elem::I64(2), Elem::I64(3)), Elem::I64(5));
        assert_eq!(BinOp::Div.eval(Elem::I64(7), Elem::I64(2)), Elem::I64(3));
        assert_eq!(BinOp::Div.eval(Elem::I64(7), Elem::I64(0)), Elem::I64(0));
        assert_eq!(BinOp::Mod.eval(Elem::I64(7), Elem::I64(4)), Elem::I64(3));
        assert_eq!(BinOp::Lt.eval(Elem::I64(1), Elem::I64(2)), Elem::TRUE);
    }

    #[test]
    fn binop_float_promotion() {
        assert_eq!(BinOp::Add.eval(Elem::I64(2), Elem::F64(0.5)), Elem::F64(2.5));
        assert_eq!(BinOp::Max.eval(Elem::F64(1.0), Elem::F64(2.0)), Elem::F64(2.0));
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(UnOp::Relu.eval(Elem::F64(-3.0)), Elem::F64(0.0));
        assert_eq!(UnOp::ToI.eval(Elem::F64(3.9)), Elem::I64(3));
        assert_eq!(UnOp::Not.eval(Elem::I64(0)), Elem::TRUE);
        let s = UnOp::Sigmoid.eval(Elem::F64(0.0)).as_f64();
        assert!((s - 0.5).abs() < 1e-12);
        assert!(UnOp::Exp.is_transcendental());
        assert!(!UnOp::Neg.is_transcendental());
    }

    #[test]
    fn associativity_classification() {
        assert!(BinOp::Add.is_associative());
        assert!(BinOp::Max.is_associative());
        assert!(!BinOp::Sub.is_associative());
        assert!(BinOp::Lt.is_cmp());
    }

    #[test]
    fn operands_cover_all_inputs() {
        let store = Expr::Store {
            mem: MemId(0),
            addr: vec![ExprId(0), ExprId(1)],
            value: ExprId(2),
            cond: Some(ExprId(3)),
        };
        assert_eq!(store.operands(), vec![ExprId(0), ExprId(1), ExprId(2), ExprId(3)]);
        assert_eq!(store.mem_effect(), Some((MemId(0), true)));
        assert!(store.is_effect());
        let load = Expr::Load { mem: MemId(1), addr: vec![ExprId(0)] };
        assert_eq!(load.mem_effect(), Some((MemId(1), false)));
        assert!(!load.is_effect());
    }
}
