//! # sara-ir
//!
//! A Spatial-like, single-threaded imperative intermediate representation
//! for nested-loop data-analytics programs, together with a sequential
//! reference interpreter.
//!
//! This crate is the front-end abstraction of the SARA compiler
//! reproduction (Zhang et al., *SARA: Scaling a Reconfigurable Dataflow
//! Accelerator*, ISCA 2021). Programs are expressed as a **control tree**
//! whose inner nodes are loops, branches and do-while controllers and whose
//! leaves are **hyperblocks** — straight-line expression DAGs over loop
//! indices and explicitly declared memories (DRAM tensors, on-chip
//! scratchpads, scalar registers and FIFOs).
//!
//! The IR deliberately routes *all* cross-hyperblock dataflow through
//! memories: dynamic loop bounds, branch conditions and do-while conditions
//! are reads of scalar [`MemKind::Reg`] registers written by earlier
//! hyperblocks. This uniformity is what lets the SARA back end synthesize
//! compiler-managed memory consistency (CMMC) tokens for every
//! inter-hyperblock dependency, including control dependencies.
//!
//! ## Example
//!
//! A dot product, built programmatically and run through the reference
//! interpreter:
//!
//! ```
//! use sara_ir::{Program, MemKind, DType, MemInit, LoopSpec, BinOp, Elem};
//!
//! # fn main() -> Result<(), sara_ir::IrError> {
//! let mut p = Program::new("dot");
//! let n = 64usize;
//! let a = p.dram("a", &[n], DType::F64, MemInit::LinSpace { start: 0.0, step: 1.0 });
//! let b = p.dram("b", &[n], DType::F64, MemInit::LinSpace { start: 1.0, step: 0.0 });
//! let out = p.dram("out", &[1], DType::F64, MemInit::Zero);
//!
//! let root = p.root();
//! let i = p.add_loop(root, "i", LoopSpec::new(0, n as i64, 1))?;
//! let hb = p.add_leaf(i, "body")?;
//! let ai = p.idx(hb, i)?;
//! let x = p.load(hb, a, &[ai])?;
//! let y = p.load(hb, b, &[ai])?;
//! let xy = p.bin(hb, BinOp::Mul, x, y)?;
//! let acc = p.reduce(hb, BinOp::Add, xy, Elem::F64(0.0), i)?;
//! let last = p.is_last(hb, i)?;
//! let zero = p.c_i64(hb, 0)?;
//! p.store_if(hb, out, &[zero], acc, last)?;
//!
//! p.validate()?;
//! let outcome = sara_ir::interp::Interp::new(&p).run()?;
//! assert_eq!(outcome.mem_f64(out)[0], (0..64).map(|v| v as f64).sum::<f64>());
//! # Ok(())
//! # }
//! ```

pub mod affine;
pub mod error;
pub mod expr;
pub mod interp;
pub mod mem;
pub mod pretty;
pub mod program;
pub mod validate;
pub mod value;

pub use error::IrError;
pub use expr::{Access, AccessId, BinOp, Expr, ExprId, Hyperblock, UnOp};
pub use mem::{MemDecl, MemId, MemInit, MemKind};
pub use program::{Bound, Ctrl, CtrlId, CtrlKind, LoopSpec, Program, Schedule};
pub use value::{DType, Elem};
