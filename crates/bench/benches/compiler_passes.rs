//! Timing harness for the compiler passes themselves: CMMC synthesis
//! (Fig 5 machinery), traversal vs solver partitioning (Fig 11's compile
//! time axis), full compilation, and the cycle-level simulator under both
//! schedulers.
//!
//! Plain `harness = false` timing (median of repeated runs) — criterion
//! is unavailable in the offline build. Run with
//! `cargo bench -p sara-bench`.

use plasticine_arch::{ChipSpec, PartitionConstraints, PcuSpec};
use plasticine_sim::{simulate, SimConfig};
use sara_core::cmmc::{synthesize, CmmcOptions};
use sara_core::compile::{compile, CompilerOptions};
use sara_core::partition::{partition, Algo, Problem, SolverCfg, TraversalOrder};
use std::time::Instant;

/// Median wall-clock of `iters` runs of `f`, in milliseconds.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    // warmup
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    println!("{name:<40} {median:>10.3} ms   (min {min:.3}, max {max:.3}, n={iters})");
}

/// Layered random DAG partitioning instance (Fig 11 compile-time axis).
fn layered_dag(layers: usize, width: usize) -> Problem {
    let n = layers * width;
    let mut edges = Vec::new();
    for l in 0..layers - 1 {
        for i in 0..width {
            for d in 0..2 {
                let src = l * width + i;
                let dst = (l + 1) * width + (i + d) % width;
                edges.push((src, dst));
            }
        }
    }
    Problem::new(vec![1; n], edges, PartitionConstraints::of_pcu(&PcuSpec::default()))
}

fn main() {
    let iters: usize =
        std::env::var("SARA_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(9);

    // ---- CMMC synthesis ----
    let lstm = sara_workloads::by_name("lstm").unwrap();
    bench("cmmc/synthesize/lstm", iters, || {
        let _ = synthesize(&lstm.program, &CmmcOptions::default());
    });
    let naive = CmmcOptions { reduce: false, ..CmmcOptions::default() };
    bench("cmmc/synthesize-noreduce/lstm", iters, || {
        let _ = synthesize(&lstm.program, &naive);
    });

    // ---- partitioning ----
    let p = layered_dag(8, 8);
    bench("partition/traversal/64n", iters, || {
        partition(&p, Algo::Traversal(TraversalOrder::BfsFwd)).unwrap();
    });
    bench("partition/solver/64n", iters, || {
        partition(&p, Algo::Solver(SolverCfg { gap: 0.15, budget_ms: 200 })).unwrap();
    });

    // ---- full compilation ----
    let chip = ChipSpec::small_8x8();
    for name in ["mlp", "kmeans", "pr"] {
        let w = sara_workloads::by_name(name).unwrap();
        bench(&format!("compile/{name}"), iters, || {
            compile(&w.program, &chip, &CompilerOptions::default()).unwrap();
        });
    }

    // ---- simulation, both schedulers ----
    let w = sara_workloads::by_name("gemm").unwrap();
    let mut compiled = compile(&w.program, &chip, &CompilerOptions::default()).unwrap();
    sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 1).unwrap();
    bench("simulate/gemm (active-list)", iters, || {
        simulate(&compiled.vudfg, &chip, &SimConfig::default()).unwrap();
    });
    bench("simulate/gemm (dense)", iters, || {
        simulate(&compiled.vudfg, &chip, &SimConfig::dense()).unwrap();
    });
}
