//! Criterion benches of the compiler passes themselves: CMMC synthesis
//! (Fig 5 machinery), traversal vs solver partitioning (Fig 11's compile
//! time axis), full compilation, and the cycle-level simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use plasticine_arch::{ChipSpec, PartitionConstraints, PcuSpec};
use plasticine_sim::{simulate, SimConfig};
use sara_core::cmmc::{synthesize, CmmcOptions};
use sara_core::compile::{compile, CompilerOptions};
use sara_core::partition::{partition, Algo, Problem, SolverCfg, TraversalOrder};

fn bench_cmmc(c: &mut Criterion) {
    let w = sara_workloads::by_name("lstm").unwrap();
    c.bench_function("cmmc/synthesize/lstm", |b| {
        b.iter(|| synthesize(&w.program, &CmmcOptions::default()))
    });
    let mut naive = CmmcOptions::default();
    naive.reduce = false;
    c.bench_function("cmmc/synthesize-noreduce/lstm", |b| {
        b.iter(|| synthesize(&w.program, &naive))
    });
}

/// Layered random DAG partitioning instance (Fig 11 compile-time axis).
fn layered_dag(layers: usize, width: usize) -> Problem {
    let n = layers * width;
    let mut edges = Vec::new();
    for l in 0..layers - 1 {
        for i in 0..width {
            for d in 0..2 {
                let src = l * width + i;
                let dst = (l + 1) * width + (i + d) % width;
                edges.push((src, dst));
            }
        }
    }
    Problem::new(vec![1; n], edges, PartitionConstraints::of_pcu(&PcuSpec::default()))
}

fn bench_partition(c: &mut Criterion) {
    let p = layered_dag(8, 8);
    c.bench_function("partition/traversal/64n", |b| {
        b.iter(|| partition(&p, Algo::Traversal(TraversalOrder::BfsFwd)).unwrap())
    });
    c.bench_function("partition/solver/64n", |b| {
        b.iter(|| {
            partition(&p, Algo::Solver(SolverCfg { gap: 0.15, budget_ms: 200 })).unwrap()
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let chip = ChipSpec::small_8x8();
    for name in ["mlp", "kmeans", "pr"] {
        let w = sara_workloads::by_name(name).unwrap();
        c.bench_function(&format!("compile/{name}"), |b| {
            b.iter(|| compile(&w.program, &chip, &CompilerOptions::default()).unwrap())
        });
    }
}

fn bench_simulate(c: &mut Criterion) {
    let chip = ChipSpec::small_8x8();
    let w = sara_workloads::by_name("gemm").unwrap();
    let mut compiled = compile(&w.program, &chip, &CompilerOptions::default()).unwrap();
    sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 1).unwrap();
    c.bench_function("simulate/gemm", |b| {
        b.iter(|| simulate(&compiled.vudfg, &chip, &SimConfig::default()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    targets = bench_cmmc, bench_partition, bench_compile, bench_simulate
}
criterion_main!(benches);
