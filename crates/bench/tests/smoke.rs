//! Smoke tests: every bench binary runs end-to-end at reduced sweep
//! sizes (`SARA_BENCH_SMOKE=1`) under `cargo test`, so a broken figure
//! pipeline is caught by CI rather than at paper-reproduction time.
//!
//! JSON output is redirected to a scratch directory via
//! `SARA_BENCH_RESULTS_DIR` so smoke rows never overwrite the full sweep
//! results committed under `results/`.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Per-test scratch directory for redirected JSON results.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sara-bench-smoke-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch results dir");
    dir
}

fn run_bin(exe: &str, args: &[&str], results_dir: &Path) -> std::process::Output {
    Command::new(exe)
        .args(args)
        .env("SARA_BENCH_SMOKE", "1")
        .env("SARA_BENCH_RESULTS_DIR", results_dir)
        .output()
        .unwrap_or_else(|e| panic!("spawn {exe}: {e}"))
}

fn assert_ok(exe: &str, args: &[&str], results_dir: &Path, expect_stdout: &[&str]) {
    let out = run_bin(exe, args, results_dir);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "{exe} {args:?} failed ({:?})\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    for needle in expect_stdout {
        assert!(stdout.contains(needle), "{exe} {args:?}: missing {needle:?} in stdout:\n{stdout}");
    }
}

/// The saved JSON must be a non-empty array of objects.
fn assert_json_rows(dir: &Path, name: &str) {
    let body = std::fs::read_to_string(dir.join(format!("{name}.json")))
        .unwrap_or_else(|e| panic!("read {name}.json: {e}"));
    let trimmed = body.trim();
    assert!(trimmed.starts_with('['), "{name}.json: not an array:\n{trimmed}");
    assert!(trimmed.ends_with(']'), "{name}.json: truncated:\n{trimmed}");
    assert!(trimmed.contains('{'), "{name}.json: no rows:\n{trimmed}");
}

#[test]
fn fig9a_smoke() {
    let dir = scratch("fig9a");
    assert_ok(env!("CARGO_BIN_EXE_fig9a"), &[], &dir, &["mlp", "rf", "tpchq6-ddr3", "saved"]);
    assert_json_rows(&dir, "fig9a");
}

#[test]
fn fig9b_smoke() {
    let dir = scratch("fig9b");
    assert_ok(env!("CARGO_BIN_EXE_fig9b"), &[], &dir, &["mlp", "gda", "lstm", "pareto", "saved"]);
    assert_json_rows(&dir, "fig9b");
}

#[test]
fn fig10_smoke() {
    let dir = scratch("fig10");
    assert_ok(env!("CARGO_BIN_EXE_fig10"), &[], &dir, &["mlp", "retime", "saved"]);
    assert_json_rows(&dir, "fig10");
}

#[test]
fn fig11_smoke() {
    let dir = scratch("fig11");
    assert_ok(env!("CARGO_BIN_EXE_fig11"), &[], &dir, &["mlp", "Solver", "saved"]);
    assert_json_rows(&dir, "fig11");
}

#[test]
fn table4_smoke() {
    let dir = scratch("table4");
    assert_ok(env!("CARGO_BIN_EXE_table4"), &[], &dir, &["domain", "saved"]);
    assert_json_rows(&dir, "table4");
}

#[test]
fn table5_smoke() {
    let dir = scratch("table5");
    assert_ok(env!("CARGO_BIN_EXE_table5"), &[], &dir, &["geo-mean speedup over PC", "saved"]);
    assert_json_rows(&dir, "table5");
}

#[test]
fn table6_smoke() {
    let dir = scratch("table6");
    assert_ok(env!("CARGO_BIN_EXE_table6"), &[], &dir, &["geo-mean speedup over V100", "saved"]);
    assert_json_rows(&dir, "table6");
}

#[test]
fn sarac_single_workload() {
    let dir = scratch("sarac1");
    assert_ok(
        env!("CARGO_BIN_EXE_sarac"),
        &["dotprod", "--simulate"],
        &dir,
        &["== dotprod", "vudfg:", "pnr:", "sim:"],
    );
}

#[test]
fn sarac_sweep() {
    let dir = scratch("sarac2");
    assert_ok(
        env!("CARGO_BIN_EXE_sarac"),
        &["--sweep", "--simulate"],
        &dir,
        &["workload", "dotprod", "gemm"],
    );
}

#[test]
fn sarac_profile_writes_trace_and_summary() {
    let dir = scratch("sarac4");
    let trace = dir.join("dotprod.trace.json");
    assert_ok(
        env!("CARGO_BIN_EXE_sarac"),
        &["dotprod", "--profile", trace.to_str().unwrap()],
        &dir,
        &["sim:", "trace: wrote", "bottlenecks over", "worst-stalled VCUs"],
    );
    let body = std::fs::read_to_string(&trace).expect("read trace file");
    assert!(body.contains("\"traceEvents\""), "not a chrome trace:\n{body}");
    assert!(body.contains("\"thread_name\""), "no per-VCU threads:\n{body}");
}

#[test]
fn fig9a_profile_dir_writes_artifacts() {
    let dir = scratch("fig9a-prof");
    let prof_dir = dir.join("profiles");
    assert_ok(
        env!("CARGO_BIN_EXE_fig9a"),
        &["--profile-dir", prof_dir.to_str().unwrap()],
        &dir,
        &["saved"],
    );
    // One pair of artifacts per design point; spot-check a known tag.
    let trace = prof_dir.join("fig9a-mlp-par1.trace.json");
    let counters = prof_dir.join("fig9a-mlp-par1.profile.json");
    let body =
        std::fs::read_to_string(&trace).unwrap_or_else(|e| panic!("read {}: {e}", trace.display()));
    assert!(body.contains("\"traceEvents\""));
    let body = std::fs::read_to_string(&counters)
        .unwrap_or_else(|e| panic!("read {}: {e}", counters.display()));
    assert!(body.contains("\"stalled_cycles\""));
    assert!(body.contains("\"dram_epochs\""));
}

#[test]
fn sarac_rejects_unknown_workload() {
    let dir = scratch("sarac3");
    let out = run_bin(env!("CARGO_BIN_EXE_sarac"), &["no-such-workload"], &dir);
    assert!(!out.status.success());
}
