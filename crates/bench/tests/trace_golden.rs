//! Golden-file test for the Chrome trace exporter: the full trace JSON
//! for a deterministic profiled `dotprod` run must match
//! `tests/golden/dotprod_trace.json` byte for byte. The simulator is
//! deterministic (fixed PnR seed, no wall-clock input), so any diff here
//! is a real change to either the profiler semantics or the trace
//! format — both worth a deliberate golden update.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sara-bench --test trace_golden
//! ```

use plasticine_arch::ChipSpec;
use plasticine_sim::{simulate, SimConfig};
use sara_core::compile::{compile, CompilerOptions};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/dotprod_trace.json")
}

fn render_trace() -> String {
    let w = sara_workloads::by_name("dotprod").expect("dotprod in registry");
    let chip = ChipSpec::small_8x8();
    let mut compiled =
        compile(&w.program, &chip, &CompilerOptions::default()).expect("compile dotprod");
    sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 17)
        .expect("pnr dotprod");
    let out = simulate(&compiled.vudfg, &chip, &SimConfig::profiled()).expect("simulate dotprod");
    let prof = out.profile.as_ref().expect("profile present");
    sara_bench::trace::chrome_trace("dotprod", prof).pretty()
}

#[test]
fn dotprod_trace_matches_golden() {
    let rendered = render_trace();

    // Structural checks first: these hold for any workload and give a
    // readable failure before the byte-level diff.
    assert!(rendered.contains("\"traceEvents\""));
    assert!(rendered.contains("\"process_name\""));
    assert!(rendered.contains("\"thread_name\""));
    assert!(rendered.contains("\"ph\": \"X\""), "no duration events");
    assert!(rendered.contains("\"ph\": \"C\""), "no DRAM counter events");
    assert!(rendered.contains("\"displayTimeUnit\""));

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).expect("golden dir");
        std::fs::write(golden_path(), &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path()).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\nrun UPDATE_GOLDEN=1 cargo test -p sara-bench --test trace_golden",
            golden_path().display()
        )
    });
    assert_eq!(
        rendered, golden,
        "trace output drifted from golden; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p sara-bench --test trace_golden"
    );
}
