//! Malformed invocations of the bench binaries must die with a one-line
//! diagnostic and a nonzero exit code — never a panic backtrace. Each
//! case here was a panic (index out of bounds, `expect`) or a silent
//! misbehavior (ignored `SARA_BENCH_THREADS`) before the hardening pass.

use std::process::Command;

fn sarac() -> &'static str {
    env!("CARGO_BIN_EXE_sarac")
}

fn assert_diagnostic(out: &std::process::Output, what: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{what}: want exit 2, stderr:\n{stderr}");
    assert!(stderr.starts_with("error:"), "{what}: want one-line error, got:\n{stderr}");
    assert!(!stderr.contains("panicked"), "{what}: no backtrace wanted, got:\n{stderr}");
}

#[test]
fn sarac_flag_without_value_is_a_usage_error() {
    for flag in ["--chip", "--dot", "--profile"] {
        let out = Command::new(sarac()).arg(flag).output().expect("spawn sarac");
        assert_diagnostic(&out, flag);
    }
}

#[test]
fn sarac_unknown_chip_and_flag_are_usage_errors() {
    let out = Command::new(sarac()).args(["--chip", "9x9"]).output().expect("spawn sarac");
    assert_diagnostic(&out, "--chip 9x9");
    let out = Command::new(sarac()).args(["--frobnicate"]).output().expect("spawn sarac");
    assert_diagnostic(&out, "--frobnicate");
}

#[test]
fn sarac_unknown_chip_error_lists_chip_and_system_names() {
    // A user who typed a *system* name at --chip must learn both the
    // accepted chip spellings and the flag that takes system names.
    let out = Command::new(sarac()).args(["--chip", "4x8x8"]).output().expect("spawn sarac");
    assert_diagnostic(&out, "--chip 4x8x8");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for name in ["8x8", "20x20", "2x8x8", "4x8x8", "--system"] {
        assert!(stderr.contains(name), "--chip error must mention {name}:\n{stderr}");
    }
}

#[test]
fn sarac_system_flag_misuse_is_a_usage_error() {
    for argsets in [
        vec!["dotprod", "--system"],                           // missing value
        vec!["dotprod", "--system", "bogus"],                  // unknown name
        vec!["dotprod", "--system", "17x8x8"],                 // count out of range
        vec!["dotprod", "--system", "2x8x8", "--chip", "8x8"], // mutually exclusive
        vec!["--sweep", "--system", "2x8x8"],                  // unsupported combination
    ] {
        let out = Command::new(sarac()).args(&argsets).output().expect("spawn sarac");
        assert_diagnostic(&out, &argsets.join(" "));
    }
    let out =
        Command::new(sarac()).args(["dotprod", "--system", "bogus"]).output().expect("spawn sarac");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for name in ["8x8", "2x8x8"] {
        assert!(stderr.contains(name), "--system error must list {name}:\n{stderr}");
    }
}

#[test]
fn unparsable_thread_count_is_a_usage_error() {
    let out = Command::new(sarac())
        .args(["--sweep"])
        .env("SARA_BENCH_THREADS", "many")
        .output()
        .expect("spawn sarac");
    assert_diagnostic(&out, "SARA_BENCH_THREADS=many");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SARA_BENCH_THREADS"), "diagnostic names the variable:\n{stderr}");
}

#[test]
fn unwritable_results_dir_is_a_one_line_error() {
    // Point SARA_BENCH_RESULTS_DIR below a regular file so create_dir_all
    // must fail.
    let blocker = std::env::temp_dir().join(format!("sara-cli-diag-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("write blocker file");
    let out = Command::new(env!("CARGO_BIN_EXE_table4"))
        .env("SARA_BENCH_SMOKE", "1")
        .env("SARA_BENCH_RESULTS_DIR", blocker.join("results"))
        .output()
        .expect("spawn table4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "want exit 1, stderr:\n{stderr}");
    assert!(stderr.starts_with("error:"), "want one-line error, got:\n{stderr}");
    assert!(!stderr.contains("panicked"), "no backtrace wanted, got:\n{stderr}");
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn profile_dir_flag_without_value_is_a_usage_error() {
    // table5 always honored --profile-dir; fig11 and table4 were ported
    // to the shared cli module later and must follow the same contract.
    for (name, bin) in [
        ("table5", env!("CARGO_BIN_EXE_table5")),
        ("fig11", env!("CARGO_BIN_EXE_fig11")),
        ("table4", env!("CARGO_BIN_EXE_table4")),
    ] {
        let out = Command::new(bin)
            .env("SARA_BENCH_SMOKE", "1")
            .args(["--profile-dir"])
            .output()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        assert_diagnostic(&out, &format!("{name} --profile-dir"));
    }
}

#[test]
fn sarac_dse_flag_misuse_is_a_usage_error() {
    for argsets in [
        vec!["--knobs"],                         // missing value
        vec!["gemm", "--budget"],                // missing value
        vec!["gemm", "--budget", "zero"],        // not an integer
        vec!["gemm", "--budget", "0"],           // not positive
        vec!["gemm", "--knobs", "/nonexistent"], // positional + replay conflict
    ] {
        let out = Command::new(sarac()).args(&argsets).output().expect("spawn sarac");
        assert_diagnostic(&out, &argsets.join(" "));
    }
}

#[test]
fn sarac_rejects_a_malformed_knobs_artifact() {
    let dir = std::env::temp_dir().join(format!("sara-knobs-diag-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.knobs.json");
    std::fs::write(&path, "{ not json").unwrap();
    let out = Command::new(sarac()).args(["--knobs", path.to_str().unwrap()]).output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "malformed artifact: want exit 1:\n{stderr}");
    assert!(stderr.starts_with("error:"), "one-line error wanted:\n{stderr}");
    assert!(!stderr.contains("panicked"), "no backtrace wanted:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
