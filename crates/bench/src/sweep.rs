//! Parallel sweep harness — re-export of [`sara_util::pool`].
//!
//! The pool moved to `sara-util` so crates below the bench harness
//! (notably `sara-dse`, whose search engine the `sarac --autotune` flag
//! pulls back *into* this crate) can use it without a dependency cycle.
//! Every existing `sara_bench::sweep::run_points` call site keeps
//! working unchanged.

pub use sara_util::pool::{parse_threads, run_points, run_points_on, threads_for, THREADS_ENV};
