//! Shared CLI scaffolding for the bench binaries.
//!
//! Every fig/table/driver binary follows the same contract: malformed
//! invocations die with a one-line `error:` diagnostic on stderr and
//! exit code 2 — never a panic backtrace (see `tests/cli_diagnostics.rs`).
//! This module is the single implementation of that contract: flag-value
//! extraction, chip-name parsing, and the `--profile-dir` knob every
//! fig/table binary accepts.

use plasticine_arch::{ChipSpec, SystemSpec};
use std::path::PathBuf;
use std::sync::OnceLock;

/// This process's arguments, program name dropped.
pub fn args() -> Vec<String> {
    std::env::args().skip(1).collect()
}

/// Die with a one-line usage diagnostic (exit 2).
pub fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Value of a `--flag VALUE` pair, advancing `i` past the value, or a
/// one-line usage error (exit 2) when the value is missing.
pub fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => usage_error(&format!("{flag} requires a value")),
    }
}

/// Parse a `--chip` value through [`ChipSpec::by_name`], or a one-line
/// usage error (exit 2) naming the accepted spellings — including the
/// multi-chip system names, which `--chip` itself does not accept, so a
/// user who typed `--chip 4x8x8` learns the flag they wanted.
pub fn parse_chip_or_exit(name: &str) -> ChipSpec {
    ChipSpec::by_name(name).unwrap_or_else(|| {
        usage_error(&format!(
            "unknown chip {name} (expected {}; multi-chip systems like {} take --system)",
            ChipSpec::NAMES.join(", "),
            SystemSpec::NAMES.join(", "),
        ))
    })
}

/// Parse a `--system` value through [`SystemSpec::by_name`] (plain chip
/// names resolve to their 1-chip system), or a one-line usage error
/// (exit 2) naming both the chip and the system spellings.
pub fn parse_system_or_exit(name: &str) -> SystemSpec {
    SystemSpec::by_name(name).unwrap_or_else(|| {
        usage_error(&format!(
            "unknown system {name} (expected a chip ({}) or <count>x<chip> with 2-16 chips, \
             e.g. {})",
            ChipSpec::NAMES.join(", "),
            SystemSpec::NAMES.join(", "),
        ))
    })
}

static PROFILE_DIR: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Directory for per-run profile artifacts, from `--profile-dir` (see
/// [`parse_profile_dir_flag`]) or `SARA_BENCH_PROFILE_DIR`. `None`
/// disables profiling in [`crate::run_profiled`].
pub fn profile_dir() -> Option<PathBuf> {
    PROFILE_DIR
        .get_or_init(|| std::env::var_os("SARA_BENCH_PROFILE_DIR").map(PathBuf::from))
        .clone()
}

/// Consume a `--profile-dir DIR` argument from this process's command
/// line (the one knob the fig/table binaries accept). Call at the top of
/// `main`, before any [`crate::run_profiled`].
pub fn parse_profile_dir_flag() {
    let mut dir = std::env::var_os("SARA_BENCH_PROFILE_DIR").map(PathBuf::from);
    let args = args();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--profile-dir" {
            dir = Some(PathBuf::from(flag_value(&args, &mut i, "--profile-dir")));
        }
        i += 1;
    }
    let _ = PROFILE_DIR.set(dir);
}
