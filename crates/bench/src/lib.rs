//! Shared experiment-harness plumbing: compile+PnR+simulate runners, the
//! parallel sweep pool, and result records serialized into `results/`.

pub mod cli;
pub mod json;
pub mod sweep;
pub mod trace;

use json::Json;
use plasticine_arch::{ChipSpec, SystemSpec};
use plasticine_sim::{simulate, simulate_system, SimConfig, SimOutcome};
use sara_core::compile::{compile, Compiled, CompilerOptions};
use sara_ir::interp::{Interp, InterpStats};
use sara_ir::Program;
use std::path::PathBuf;

pub use cli::{parse_profile_dir_flag, profile_dir};

/// One full run of a program through the SARA stack.
#[derive(Debug)]
pub struct Run {
    pub compiled: Compiled,
    pub outcome: SimOutcome,
    /// Reference interpreter statistics (dynamic op/byte counts).
    pub interp: InterpStats,
}

impl Run {
    /// Cycles to completion.
    pub fn cycles(&self) -> u64 {
        self.outcome.cycles
    }

    /// Throughput in FLOP/cycle.
    pub fn flops_per_cycle(&self) -> f64 {
        self.interp.total_ops() as f64 / self.outcome.cycles as f64
    }

    /// Wall-clock seconds at the chip's clock.
    pub fn seconds(&self, chip: &ChipSpec) -> f64 {
        self.outcome.cycles as f64 / (chip.clock_ghz * 1e9)
    }

    /// Physical units used.
    pub fn pus(&self) -> usize {
        self.compiled.report.total_pus()
    }
}

/// Simulator configuration for bench runs: the wakeup-driven active-list
/// scheduler by default, or the dense reference scheduler when
/// `SARA_SIM_DENSE=1` (the two are cycle-for-cycle equivalent; the
/// override exists to measure the engine speedup, see EXPERIMENTS.md).
pub fn sim_config() -> SimConfig {
    if std::env::var_os("SARA_SIM_DENSE").is_some_and(|v| v == "1") {
        SimConfig::dense()
    } else {
        SimConfig::default()
    }
}

/// Compile, place-and-route, and simulate a program.
///
/// # Errors
///
/// Returns a human-readable description of the failing phase.
pub fn run(p: &Program, chip: &ChipSpec, opts: &CompilerOptions) -> Result<Run, String> {
    run_with(p, chip, opts, &sim_config())
}

/// [`run`] with an explicit simulator configuration.
///
/// # Errors
///
/// Returns a human-readable description of the failing phase.
pub fn run_with(
    p: &Program,
    chip: &ChipSpec,
    opts: &CompilerOptions,
    cfg: &SimConfig,
) -> Result<Run, String> {
    let interp = Interp::new(p).run().map_err(|e| format!("interp: {e}"))?.stats;
    let mut compiled = compile(p, chip, opts).map_err(|e| format!("compile: {e}"))?;
    sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, chip, 17)
        .map_err(|e| format!("pnr: {e}"))?;
    let outcome = simulate(&compiled.vudfg, chip, cfg).map_err(|e| format!("sim: {e}"))?;
    Ok(Run { compiled, outcome, interp })
}

/// [`run`], plus profile artifacts when a profile directory is
/// configured: simulates with profiling enabled (cycle counts are
/// bit-identical either way) and writes `<dir>/<tag>.profile.json`
/// (counters) and `<dir>/<tag>.trace.json` (Chrome trace, opens in
/// Perfetto).
///
/// # Errors
///
/// Returns a human-readable description of the failing phase, including
/// artifact I/O.
pub fn run_profiled(
    tag: &str,
    p: &Program,
    chip: &ChipSpec,
    opts: &CompilerOptions,
) -> Result<Run, String> {
    let Some(dir) = profile_dir() else { return run(p, chip, opts) };
    let cfg = SimConfig { profile: true, ..sim_config() };
    let r = run_with(p, chip, opts, &cfg)?;
    if let Some(prof) = &r.outcome.profile {
        std::fs::create_dir_all(&dir).map_err(|e| format!("profile dir: {e}"))?;
        std::fs::write(dir.join(format!("{tag}.profile.json")), json::profile_json(prof).pretty())
            .map_err(|e| format!("write profile json: {e}"))?;
        std::fs::write(
            dir.join(format!("{tag}.trace.json")),
            trace::chrome_trace(tag, prof).pretty(),
        )
        .map_err(|e| format!("write chrome trace: {e}"))?;
    }
    Ok(r)
}

/// Compile, shard, place-and-route per chip, and simulate a program on
/// every chip of a multi-chip system (see `sara_pnr::place_and_route_system`
/// and `plasticine_sim::simulate_system`). A 1-chip system follows the
/// single-chip pipeline bit-for-bit. Returns the run plus the shard plan
/// (chip assignment, crossing streams, cut traffic) for reporting.
///
/// # Errors
///
/// Returns a human-readable description of the failing phase.
pub fn run_system(
    p: &Program,
    system: &SystemSpec,
    opts: &CompilerOptions,
) -> Result<(Run, sara_core::shard::ShardPlan), String> {
    run_system_with(p, system, opts, &sim_config())
}

/// [`run_system`] with an explicit simulator configuration.
///
/// # Errors
///
/// Returns a human-readable description of the failing phase.
pub fn run_system_with(
    p: &Program,
    system: &SystemSpec,
    opts: &CompilerOptions,
    cfg: &SimConfig,
) -> Result<(Run, sara_core::shard::ShardPlan), String> {
    let interp = Interp::new(p).run().map_err(|e| format!("interp: {e}"))?.stats;
    let mut compiled = compile(p, &system.chip, opts).map_err(|e| format!("compile: {e}"))?;
    let pnr =
        sara_pnr::place_and_route_system(&mut compiled.vudfg, &compiled.assignment, system, 17)
            .map_err(|e| format!("pnr: {e}"))?;
    let outcome = simulate_system(&compiled.vudfg, system, &pnr.plan, cfg)
        .map_err(|e| format!("sim: {e}"))?;
    Ok((Run { compiled, outcome, interp }, pnr.plan))
}

/// Compile, place-and-route, and simulate a registry workload by name.
///
/// The lookup failure is part of the `Result` — no panic path — so
/// library consumers (the `sarad` service in particular) can surface an
/// unknown-workload request as a typed protocol error.
///
/// # Errors
///
/// Returns a one-line description naming the unknown workload (with the
/// known names) or the failing pipeline phase.
pub fn run_workload(name: &str, chip: &ChipSpec, opts: &CompilerOptions) -> Result<Run, String> {
    let w = sara_workloads::by_name(name).ok_or_else(|| {
        let known: Vec<&str> = sara_workloads::all_small().iter().map(|w| w.name).collect();
        format!("unknown workload {name:?} (known: {})", known.join(", "))
    })?;
    run(&w.program, chip, opts)
}

/// Compile and simulate through the vanilla-Plasticine (PC) baseline.
pub fn run_pc(p: &Program, chip: &ChipSpec) -> Result<Run, String> {
    let interp = Interp::new(p).run().map_err(|e| format!("interp: {e}"))?.stats;
    let mut compiled = sara_baselines::pc::compile_pc(p, chip).map_err(|e| format!("pc: {e}"))?;
    sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, chip, 17)
        .map_err(|e| format!("pnr: {e}"))?;
    sara_baselines::pc::apply_hierarchical_control(&mut compiled);
    let outcome =
        simulate(&compiled.vudfg, chip, &sim_config()).map_err(|e| format!("sim: {e}"))?;
    Ok(Run { compiled, outcome, interp })
}

/// Write a result set to `results/<name>.json` (repo root), returning the
/// path. `SARA_BENCH_RESULTS_DIR` redirects the output directory (used by
/// the smoke tests to avoid overwriting full sweep results).
///
/// # Errors
///
/// A human-readable description when the directory cannot be created or
/// the file cannot be written.
pub fn save_json(name: &str, value: &Json) -> Result<PathBuf, String> {
    let dir = std::env::var_os("SARA_BENCH_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("cannot create results dir {}: {e}", dir.display()))?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.pretty())
        .map_err(|e| format!("cannot write results file {}: {e}", path.display()))?;
    Ok(path)
}

/// [`save_json`] for the fig/table binaries: exits with a one-line
/// diagnostic (code 1) instead of a panic backtrace on I/O failure.
pub fn save_json_or_exit(name: &str, value: &Json) -> PathBuf {
    save_json(name, value).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// True when `SARA_BENCH_SMOKE` is set: binaries shrink their sweeps to a
/// few seconds total so `cargo test` can exercise them end-to-end.
pub fn smoke() -> bool {
    std::env::var_os("SARA_BENCH_SMOKE").is_some()
}

/// Geometric mean of positive factors.
pub fn geomean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn run_small_workload() {
        let chip = ChipSpec::small_8x8();
        let r = run_workload("dotprod", &chip, &CompilerOptions::default()).unwrap();
        assert!(r.cycles() > 0);
        assert!(r.pus() > 0);
        assert!(r.flops_per_cycle() > 0.0);
    }

    #[test]
    fn unknown_workload_is_a_typed_error_naming_the_registry() {
        let chip = ChipSpec::small_8x8();
        let e = run_workload("no-such-kernel", &chip, &CompilerOptions::default()).unwrap_err();
        assert!(e.contains("unknown workload"), "got: {e}");
        assert!(e.contains("dotprod"), "error must list known names: {e}");
    }
}
