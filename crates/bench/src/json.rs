//! Result-file JSON helpers.
//!
//! The [`Json`] value type (and its parser) moved to [`sara_util::json`]
//! so artifact-emitting crates below the bench harness can share it;
//! this module re-exports it for the existing call sites and keeps the
//! profile serialization, which depends on `sara-core`.

pub use sara_util::json::Json;

use sara_core::profile::{SimProfile, StallReason};

/// Serialize a [`SimProfile`] into the result-file JSON shape: per-VCU
/// cycle attribution with a per-reason stall object, per-stream
/// occupancy/backpressure counters, and the DRAM epoch timeline. The
/// segment-level timeline is not duplicated here — it ships in the
/// Chrome trace (see [`crate::trace::chrome_trace`]).
pub fn profile_json(p: &SimProfile) -> Json {
    let vcus: Vec<Json> = p
        .vcus
        .iter()
        .map(|v| {
            let mut stalls = Json::object();
            for r in StallReason::ALL {
                stalls = stalls.set(r.label(), v.stalled(r));
            }
            Json::object()
                .set("label", v.label.as_str())
                .set("firings", v.firings)
                .set("active_cycles", v.active_cycles)
                .set("idle_cycles", v.idle_cycles)
                .set("stalled_cycles", stalls)
                .set("stalled_total", v.stalled_total())
                .set("segments_truncated", v.segments_truncated)
        })
        .collect();
    let streams: Vec<Json> = p
        .streams
        .iter()
        .map(|s| {
            Json::object()
                .set("label", s.label.as_str())
                .set("slots", s.slots)
                .set("occupancy_hwm", s.occupancy_hwm)
                .set("backpressure_cycles", s.backpressure_cycles)
                .set("pushes", s.pushes)
                .set("pops", s.pops)
        })
        .collect();
    let epochs: Vec<Json> = p
        .dram_epochs
        .iter()
        .map(|e| {
            Json::object()
                .set("start_cycle", e.start_cycle)
                .set("read_bytes", e.read_bytes)
                .set("write_bytes", e.write_bytes)
                .set("row_hits", e.row_hits)
                .set("row_misses", e.row_misses)
        })
        .collect();
    Json::object()
        .set("cycles", p.cycles)
        .set("epoch_cycles", p.epoch_cycles)
        .set("vcus", Json::Array(vcus))
        .set("streams", Json::Array(streams))
        .set("dram_epochs", Json::Array(epochs))
}
