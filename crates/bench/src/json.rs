//! Minimal JSON value + pretty printer.
//!
//! Replaces `serde_json` for result files: the harness only ever *writes*
//! JSON, and only from hand-assembled rows, so a small value enum with
//! ordered object keys is all that's needed.

use sara_core::profile::{SimProfile, StallReason};
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so result files diff
/// cleanly run-to-run.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Empty object, to be filled with [`Json::set`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert (or replace) a key in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps a decimal point or exponent so the value
                    // reads back as a float.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Serialize a [`SimProfile`] into the result-file JSON shape: per-VCU
/// cycle attribution with a per-reason stall object, per-stream
/// occupancy/backpressure counters, and the DRAM epoch timeline. The
/// segment-level timeline is not duplicated here — it ships in the
/// Chrome trace (see [`crate::trace::chrome_trace`]).
pub fn profile_json(p: &SimProfile) -> Json {
    let vcus: Vec<Json> = p
        .vcus
        .iter()
        .map(|v| {
            let mut stalls = Json::object();
            for r in StallReason::ALL {
                stalls = stalls.set(r.label(), v.stalled(r));
            }
            Json::object()
                .set("label", v.label.as_str())
                .set("firings", v.firings)
                .set("active_cycles", v.active_cycles)
                .set("idle_cycles", v.idle_cycles)
                .set("stalled_cycles", stalls)
                .set("stalled_total", v.stalled_total())
                .set("segments_truncated", v.segments_truncated)
        })
        .collect();
    let streams: Vec<Json> = p
        .streams
        .iter()
        .map(|s| {
            Json::object()
                .set("label", s.label.as_str())
                .set("slots", s.slots)
                .set("occupancy_hwm", s.occupancy_hwm)
                .set("backpressure_cycles", s.backpressure_cycles)
                .set("pushes", s.pushes)
                .set("pops", s.pops)
        })
        .collect();
    let epochs: Vec<Json> = p
        .dram_epochs
        .iter()
        .map(|e| {
            Json::object()
                .set("start_cycle", e.start_cycle)
                .set("read_bytes", e.read_bytes)
                .set("write_bytes", e.write_bytes)
                .set("row_hits", e.row_hits)
                .set("row_misses", e.row_misses)
        })
        .collect();
    Json::object()
        .set("cycles", p.cycles)
        .set("epoch_cycles", p.epoch_cycles)
        .set("vcus", Json::Array(vcus))
        .set("streams", Json::Array(streams))
        .set("dram_epochs", Json::Array(epochs))
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        if let Ok(i) = i64::try_from(v) {
            Json::Int(i)
        } else {
            Json::Float(v as f64)
        }
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::object()
            .set("name", "fig9a")
            .set("ok", true)
            .set(
                "rows",
                Json::Array(vec![
                    Json::object().set("par", 4).set("cycles", 123u64),
                    Json::object().set("par", 8).set("speedup", 1.5),
                ]),
            )
            .set("empty", Json::Array(vec![]))
            .set("missing", Json::Null);
        let s = doc.pretty();
        assert!(s.contains("\"name\": \"fig9a\""));
        assert!(s.contains("\"cycles\": 123"));
        assert!(s.contains("\"speedup\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".to_string()).pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn set_replaces_existing_key() {
        let doc = Json::object().set("k", 1).set("k", 2);
        assert_eq!(doc, Json::object().set("k", 2));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).pretty(), "2.0\n");
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
    }
}
