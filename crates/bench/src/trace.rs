//! Chrome `trace_event` exporter: renders a [`SimProfile`] as a JSON
//! document that loads directly in `chrome://tracing` or Perfetto
//! (<https://ui.perfetto.dev>).
//!
//! Mapping: one trace *thread* per VCU, one complete ("X") event per
//! non-idle timeline segment, with **1 simulated cycle = 1 µs** of trace
//! time so cycle numbers read off the ruler directly. DRAM bandwidth and
//! row-hit counters are emitted as counter ("C") events per epoch bin.

use crate::json::Json;
use sara_core::profile::{SimProfile, UnitState};

/// Build the `trace_event` document for one profiled run. `source` names
/// the run in the trace UI (process name and metadata).
pub fn chrome_trace(source: &str, p: &SimProfile) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(
        Json::object()
            .set("name", "process_name")
            .set("ph", "M")
            .set("pid", 0)
            .set("tid", 0)
            .set("args", Json::object().set("name", format!("{source} (1 cycle = 1 us)"))),
    );
    for (k, v) in p.vcus.iter().enumerate() {
        let tid = k as i64 + 1;
        events.push(
            Json::object()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 0)
                .set("tid", tid)
                .set("args", Json::object().set("name", v.label.as_str())),
        );
        for seg in &v.segments {
            // Idle tail segments carry no information the gap doesn't.
            if seg.state == UnitState::Idle {
                continue;
            }
            events.push(
                Json::object()
                    .set("name", seg.state.label())
                    .set("cat", "vcu")
                    .set("ph", "X")
                    .set("pid", 0)
                    .set("tid", tid)
                    .set("ts", seg.start)
                    .set("dur", seg.end - seg.start),
            );
        }
    }
    for e in &p.dram_epochs {
        let per_cycle = |b: u64| b as f64 / p.epoch_cycles.max(1) as f64;
        events.push(
            Json::object()
                .set("name", "dram bandwidth (B/cycle)")
                .set("ph", "C")
                .set("pid", 0)
                .set("tid", 0)
                .set("ts", e.start_cycle)
                .set(
                    "args",
                    Json::object()
                        .set("read", per_cycle(e.read_bytes))
                        .set("write", per_cycle(e.write_bytes)),
                ),
        );
        events.push(
            Json::object()
                .set("name", "dram row buffer")
                .set("ph", "C")
                .set("pid", 0)
                .set("tid", 0)
                .set("ts", e.start_cycle)
                .set("args", Json::object().set("hits", e.row_hits).set("misses", e.row_misses)),
        );
    }
    Json::object()
        .set("displayTimeUnit", "ms")
        .set("traceEvents", Json::Array(events))
        .set("otherData", Json::object().set("source", source).set("cycles", p.cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sara_core::profile::{Segment, StallReason, VcuProfile};

    #[test]
    fn events_cover_non_idle_segments_only() {
        let p = SimProfile {
            cycles: 30,
            epoch_cycles: 10,
            vcus: vec![VcuProfile {
                label: "u0".into(),
                firings: 5,
                active_cycles: 10,
                idle_cycles: 15,
                stalled_cycles: [5, 0, 0, 0],
                segments: vec![
                    Segment { state: UnitState::Active, start: 1, end: 11 },
                    Segment {
                        state: UnitState::Stalled(StallReason::InputStarved),
                        start: 11,
                        end: 16,
                    },
                    Segment { state: UnitState::Idle, start: 16, end: 31 },
                ],
                segments_truncated: false,
            }],
            streams: Vec::new(),
            dram_epochs: Vec::new(),
        };
        let doc = chrome_trace("test", &p);
        let s = doc.pretty();
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("\"input-starved\""));
        // Two metadata events + two segment events; the idle segment is
        // dropped.
        let x_events = s.matches("\"ph\": \"X\"").count();
        assert_eq!(x_events, 2);
        assert!(!s.contains("\"idle\""));
    }
}
