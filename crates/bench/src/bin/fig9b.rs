//! Fig 9b: the performance/resource trade-off space. Each point is one
//! (parallelization, optimization-set) configuration; the Pareto frontier
//! is marked. Optimizations push points up (faster) and left (cheaper),
//! expanding the frontier.
//!
//! All configurations are independent and run concurrently on the sweep
//! pool (`SARA_BENCH_THREADS`); `SARA_BENCH_SMOKE` shrinks the sweep.

use plasticine_arch::ChipSpec;
use sara_bench::json::Json;
use sara_bench::{run_profiled, sweep};
use sara_core::compile::CompilerOptions;
use sara_core::opt::OptConfig;
use sara_workloads::{linalg, ml};

const OPT_SETS: &[&str] = &["all", "none", "no-retime"];

fn opts_of(name: &str) -> CompilerOptions {
    let mut o = CompilerOptions::default();
    match name {
        "all" => {}
        "none" => {
            o.opt = OptConfig::none();
            o.lower.cmmc.relax_credits = false;
        }
        "no-retime" => o.opt.retime = false,
        other => panic!("unknown opt set {other}"),
    }
    o
}

/// One configuration: app, its parallelization factors, and an opt set.
#[derive(Debug, Clone, Copy)]
struct Pt {
    app: &'static str,
    pi: u32,
    pn: u32,
    opts: &'static str,
}

struct Out {
    pus: usize,
    perf: f64,
    cycles: u64,
}

fn eval(pt: &Pt) -> Result<Out, String> {
    let chip = ChipSpec::sara_20x20();
    let p = match pt.app {
        "mlp" => linalg::mlp(&linalg::MlpParams {
            d_in: 64,
            d_hidden: 64,
            d_out: 16,
            par_inner: pt.pi,
            par_neuron: pt.pn,
        }),
        "gda" => ml::gda(&ml::GdaParams { n: 24, d: 16, par_d: pt.pi }),
        "lstm" => ml::lstm(&ml::LstmParams { t: 6, h: 16, par_h: pt.pi }),
        other => return Err(format!("unknown app {other}")),
    };
    let tag = format!("fig9b-{}-p{}x{}-{}", pt.app, pt.pi, pt.pn, pt.opts);
    let r = run_profiled(&tag, &p, &chip, &opts_of(pt.opts))?;
    eprintln!(
        "{} par {} {}: {} cycles {} PUs",
        pt.app,
        pt.pi * pt.pn,
        pt.opts,
        r.cycles(),
        r.pus()
    );
    Ok(Out { pus: r.pus(), perf: 1.0e6 / r.cycles() as f64, cycles: r.cycles() })
}

fn main() {
    sara_bench::cli::parse_profile_dir_flag();
    let smoke = sara_bench::smoke();
    let mut points: Vec<Pt> = Vec::new();
    let mlp_pars: &[(u32, u32)] =
        if smoke { &[(1, 1), (16, 1)] } else { &[(1, 1), (4, 1), (16, 1), (16, 2), (16, 4)] };
    let gda_pars: &[u32] = if smoke { &[1, 16] } else { &[1, 4, 16, 32] };
    let lstm_pars: &[u32] = if smoke { &[1, 16] } else { &[1, 8, 16] };
    for &(pi, pn) in mlp_pars {
        for &opts in OPT_SETS {
            points.push(Pt { app: "mlp", pi, pn, opts });
        }
    }
    for &par in gda_pars {
        for &opts in OPT_SETS {
            points.push(Pt { app: "gda", pi: par, pn: 1, opts });
        }
    }
    for &par in lstm_pars {
        for &opts in OPT_SETS {
            points.push(Pt { app: "lstm", pi: par, pn: 1, opts });
        }
    }

    let results = sweep::run_points(&points, eval);
    let ok: Vec<(&Pt, Out)> = points
        .iter()
        .zip(results)
        .filter_map(|(pt, res)| match res {
            Ok(o) => Some((pt, o)),
            Err(e) => {
                eprintln!("{} par {} {}: {e}", pt.app, pt.pi * pt.pn, pt.opts);
                None
            }
        })
        .collect();

    // Per-app Pareto frontier: no other point of the same app is both
    // cheaper and faster.
    let pareto: Vec<bool> = ok
        .iter()
        .enumerate()
        .map(|(i, (pt, o))| {
            !ok.iter().enumerate().any(|(j, (qt, q))| {
                j != i
                    && qt.app == pt.app
                    && q.pus <= o.pus
                    && q.perf >= o.perf
                    && (q.pus, q.perf) != (o.pus, o.perf)
            })
        })
        .collect();

    println!(
        "{:<6} {:>5} {:<10} {:>5} {:>11} {:>7}",
        "app", "par", "opts", "PUs", "perf(1/Mcy)", "pareto"
    );
    let mut rows: Vec<Json> = Vec::new();
    for ((pt, o), is_pareto) in ok.iter().zip(&pareto) {
        println!(
            "{:<6} {:>5} {:<10} {:>5} {:>11.3} {:>7}",
            pt.app,
            pt.pi * pt.pn,
            pt.opts,
            o.pus,
            o.perf,
            is_pareto
        );
        rows.push(
            Json::object()
                .set("app", pt.app)
                .set("par", pt.pi * pt.pn)
                .set("opts", pt.opts)
                .set("pus", o.pus)
                .set("cycles", o.cycles)
                .set("perf", o.perf)
                .set("pareto", *is_pareto),
        );
    }
    let path = sara_bench::save_json_or_exit("fig9b", &Json::from(rows));
    println!("\nsaved {}", path.display());
}
