//! Fig 9b: the performance/resource trade-off space. Each point is one
//! (parallelization, optimization-set) configuration; the Pareto frontier
//! is marked. Optimizations push points up (faster) and left (cheaper),
//! expanding the frontier.

use plasticine_arch::ChipSpec;
use sara_bench::run;
use sara_core::compile::CompilerOptions;
use sara_core::opt::OptConfig;
use sara_workloads::{linalg, ml};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    app: String,
    par: u32,
    opts: String,
    pus: usize,
    perf: f64,
    pareto: bool,
}

fn opt_sets() -> Vec<(&'static str, CompilerOptions)> {
    let all = CompilerOptions::default();
    let mut none = CompilerOptions::default();
    none.opt = OptConfig::none();
    none.lower.cmmc.relax_credits = false;
    let mut noretime = CompilerOptions::default();
    noretime.opt.retime = false;
    vec![("all", all), ("none", none), ("no-retime", noretime)]
}

fn main() {
    let chip = ChipSpec::sara_20x20();
    let mut points: Vec<Point> = Vec::new();
    let record = |points: &mut Vec<Point>, app: &str, par: u32, oname: &str, p: &sara_ir::Program, opts: &CompilerOptions| {
        match run(p, &chip, opts) {
            Ok(r) => {
                points.push(Point {
                    app: app.into(),
                    par,
                    opts: oname.into(),
                    pus: r.pus(),
                    perf: 1.0e6 / r.cycles() as f64,
                    pareto: false,
                });
                eprintln!("{app} par {par} {oname}: {} cycles {} PUs", r.cycles(), r.pus());
            }
            Err(e) => eprintln!("{app} par {par} {oname}: {e}"),
        }
    };
    for (pi, pn) in [(1u32, 1u32), (4, 1), (16, 1), (16, 2), (16, 4)] {
        for (oname, opts) in opt_sets() {
            let p = linalg::mlp(&linalg::MlpParams {
                d_in: 64,
                d_hidden: 64,
                d_out: 16,
                par_inner: pi,
                par_neuron: pn,
            });
            record(&mut points, "mlp", pi * pn, oname, &p, &opts);
        }
    }
    for par in [1u32, 4, 16, 32] {
        for (oname, opts) in opt_sets() {
            let p = ml::gda(&ml::GdaParams { n: 24, d: 16, par_d: par });
            record(&mut points, "gda", par, oname, &p, &opts);
        }
    }
    for par in [1u32, 8, 16] {
        for (oname, opts) in opt_sets() {
            let p = ml::lstm(&ml::LstmParams { t: 6, h: 16, par_h: par });
            record(&mut points, "lstm", par, oname, &p, &opts);
        }
    }
    // Per-app Pareto frontier: no other point of the same app is both
    // cheaper and faster.
    let snapshot: Vec<(String, usize, f64)> =
        points.iter().map(|p| (p.app.clone(), p.pus, p.perf)).collect();
    for (i, p) in points.iter_mut().enumerate() {
        p.pareto = !snapshot.iter().enumerate().any(|(j, (app, pu, pf))| {
            j != i
                && *app == p.app
                && *pu <= p.pus
                && *pf >= p.perf
                && (*pu, *pf) != (p.pus, p.perf)
        });
    }
    println!(
        "{:<6} {:>5} {:<10} {:>5} {:>10} {:>7}",
        "app", "par", "opts", "PUs", "perf(1/Mcy)", "pareto"
    );
    for p in &points {
        println!(
            "{:<6} {:>5} {:<10} {:>5} {:>10.3} {:>7}",
            p.app, p.par, p.opts, p.pus, p.perf, p.pareto
        );
    }
    let path = sara_bench::save_json("fig9b", &points);
    println!("\nsaved {}", path.display());
}
