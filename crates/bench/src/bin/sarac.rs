//! `sarac` — the SARA compiler driver: compile a named workload, print
//! the pass-by-pass report, optionally simulate and dump the VUDFG as
//! Graphviz. `--sweep` compiles (and with `--simulate`, simulates) every
//! registry workload concurrently on the sweep pool
//! (`SARA_BENCH_THREADS` overrides the worker count).
//!
//! ```text
//! sarac <workload> [--chip 20x20|16x8|8x8|4x4] [--simulate] [--dot FILE] [--profile FILE]
//!                  [--faults PLAN] [--sanitize]
//! sarac <workload> --system 4x8x8 [--simulate]      # multi-chip scale-out
//! sarac <workload> --autotune [--budget N] [--chip NAME]
//! sarac --knobs FILE [--simulate]
//! sarac --sweep   [--chip 20x20|16x8|8x8|4x4] [--simulate]
//! ```
//!
//! `--system <count>x<chip>` (e.g. `2x8x8`, `4x20x20`; plain chip names
//! mean one chip) compiles for the system's chip, shards the graph
//! across the chips where crossing traffic is thinnest, places each
//! chip independently, and — with `--simulate` — runs the linked
//! multi-chip simulation with rate-limited inter-chip links. It names
//! the chip itself, so it is mutually exclusive with `--chip`, and the
//! scale-out pipeline has no fault-injection or replay support yet
//! (`--faults`, `--knobs`, `--autotune`, `--sweep`, `--connect`).
//!
//! `--faults PLAN` (implies `--simulate`) injects the fault plan in file
//! PLAN (see the DSL in `plasticine_sim::fault`); `--sanitize` enables
//! the runtime invariant sanitizer. Both report typed diagnoses instead
//! of silent divergence.
//!
//! `--profile FILE` implies `--simulate`: the run is profiled (same
//! cycle counts), a Chrome-trace JSON is written to FILE (open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>), and the top
//! bottlenecks are printed.
//!
//! `--autotune` runs the design-space explorer (`sara-dse`) on the
//! workload and writes the best configuration as a replayable knob
//! artifact plus a tuning report into the results directory.
//! `--knobs FILE` replays such an artifact: the workload, chip, par
//! factors, optimization flags, and PnR seed all come from the file, so
//! the simulated cycle count reproduces the tuner's number exactly.
//!
//! `--server` starts the persistent `sarad` service; `--connect ENDPOINT`
//! routes work through a running service instead of compiling
//! in-process — repeated requests are served from its content-addressed
//! artifact cache. An endpoint containing `':'` is a TCP `host:port`
//! address; anything else is a Unix socket path (same rule for
//! `--socket`):
//!
//! ```text
//! sarac --server [--socket PATH | --socket HOST:PORT]
//! sarac --connect ENDPOINT <workload> [--chip NAME]  # cached compile+sim
//! sarac --connect ENDPOINT <workload> --autotune [--budget N]
//! sarac --connect ENDPOINT --stats                   # hit/miss counters
//! sarac --connect ENDPOINT --shutdown
//! ```
//!
//! `--connect` retries refused connections and `busy` shedding with
//! jittered backoff, and if the daemon stays unreachable it warns and
//! falls back to local in-process compilation; `--no-fallback` makes
//! an unreachable daemon a hard error instead (`--stats`/`--shutdown`
//! always hard-fail — there is no local equivalent to fall back to).

use plasticine_arch::{ChipSpec, SystemSpec};
use plasticine_sim::{simulate, simulate_system, FaultPlan, SimConfig};
use sara_bench::{cli, sweep};
use sara_core::compile::{compile, CompilerOptions};
use sara_core::vudfg::{StreamKind, UnitKind, Vudfg};
use std::fmt::Write as _;

fn dot_of(g: &Vudfg) -> String {
    let mut out = String::from("digraph vudfg {\n  rankdir=LR;\n  node [fontsize=9];\n");
    for (i, u) in g.units.iter().enumerate() {
        let (shape, color) = match &u.kind {
            UnitKind::Vcu(_) => ("box", "lightblue"),
            UnitKind::Vmu(_) => ("cylinder", "lightyellow"),
            UnitKind::Ag(_) => ("house", "lightsalmon"),
            UnitKind::Sync(_) => ("diamond", "lightgray"),
            UnitKind::XbarDist(_) | UnitKind::XbarColl(_) => ("trapezium", "lightgreen"),
        };
        let _ = writeln!(
            out,
            "  u{i} [label=\"{}\" shape={shape} style=filled fillcolor={color}];",
            u.label.replace('"', "'")
        );
    }
    for s in &g.streams {
        let style = match s.kind {
            StreamKind::Token { .. } => "dashed",
            _ => "solid",
        };
        let label = match s.kind {
            StreamKind::Token { init } if init > 0 => format!("{init}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "  u{} -> u{} [style={style} label=\"{label}\" fontsize=8];",
            s.src.0, s.dst.0
        );
    }
    out.push_str("}\n");
    out
}

/// `--sweep`: every registry workload through compile (+PnR, optionally
/// simulation) in parallel, one summary line per workload.
fn sweep_all(chip: &ChipSpec, do_sim: bool) -> ! {
    let names: Vec<&'static str> = sara_workloads::all_small().iter().map(|w| w.name).collect();
    let results = sweep::run_points(&names, |name| {
        let w = sara_workloads::by_name(name).ok_or("unknown workload")?;
        let mut compiled =
            compile(&w.program, chip, &CompilerOptions::default()).map_err(|e| e.to_string())?;
        let pnr = sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, chip, 42)
            .map_err(|e| e.to_string())?;
        let cycles = if do_sim {
            Some(
                simulate(&compiled.vudfg, chip, &SimConfig::default())
                    .map_err(|e| e.to_string())?
                    .cycles,
            )
        } else {
            None
        };
        Ok((compiled.report, pnr.wirelength, cycles))
    });
    println!(
        "{:<10} {:>5} {:>5} {:>5} {:>8} {:>7} {:>10}",
        "workload", "PCUs", "PMUs", "AGs", "streams", "wirelen", "cycles"
    );
    let mut failed = false;
    for (name, res) in names.iter().zip(results) {
        match res {
            Ok((report, wirelength, cycles)) => println!(
                "{:<10} {:>5} {:>5} {:>5} {:>8} {:>7} {:>10}",
                name,
                report.pcus,
                report.pmus,
                report.ags,
                report.streams,
                wirelength,
                cycles.map_or_else(|| "-".to_string(), |c| c.to_string()),
            ),
            Err(e) => {
                println!("{name:<10} FAILED: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}

/// `--autotune`: run the design-space explorer on one workload and emit
/// the replayable knob artifact plus the tuning report.
fn autotune(name: &str, chip: &ChipSpec, budget: Option<usize>) -> ! {
    let opts = sara_dse::SearchOptions {
        chip: chip.name(),
        budget: budget.unwrap_or_else(|| sara_dse::SearchOptions::default().budget),
        ..sara_dse::SearchOptions::default()
    };
    let out = sara_dse::autotune(name, &opts).unwrap_or_else(|e| {
        eprintln!("autotune error: {e}");
        std::process::exit(1);
    });
    println!("{}", sara_dse::summary_line(&out));
    let knobs = sara_bench::save_json_or_exit(&format!("{name}.knobs"), &out.best.knobs.to_json());
    let report =
        sara_bench::save_json_or_exit(&format!("{name}.report"), &sara_dse::report_json(&out));
    println!("knobs:  wrote {} (replay with: sarac --knobs <file>)", knobs.display());
    println!("report: wrote {}", report.display());
    std::process::exit(0);
}

/// `--server`: run the persistent `sarad` service in the foreground
/// until a shutdown request arrives on the endpoint (a Unix socket
/// path, or a TCP `host:port` when the spelling contains `':'`).
fn run_server(socket: Option<String>) -> ! {
    let opts = sarad::ServerOptions {
        socket: socket.map_or_else(sarad::server::default_socket, std::path::PathBuf::from),
        cache_dir: sarad::server::default_cache_dir(),
        ..sarad::ServerOptions::default()
    };
    eprintln!("sarad: listening on {} (cache {})", opts.endpoint(), opts.cache_dir.display());
    match sarad::serve(&opts) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `--connect ENDPOINT`: route the request through a running `sarad`
/// service instead of compiling in-process.
struct ConnectJob {
    /// Endpoint spelling: `host:port` for TCP, a path for Unix.
    socket: String,
    stats: bool,
    shutdown: bool,
    autotune: bool,
    budget: Option<usize>,
    workload: Option<String>,
    chip: String,
    /// Degrade to local in-process compilation when the daemon is
    /// unreachable (`--no-fallback` turns this into a hard error).
    fallback: bool,
}

/// Returning (instead of exiting) means: the daemon is unreachable and
/// the caller should fall back to local in-process compilation.
fn run_connect(job: &ConnectJob) {
    use sara_util::Json;
    use sarad::{client::run_with_retry_to, ClientError, Endpoint, RetryPolicy};
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("error: {}: {e}", job.socket);
        std::process::exit(1);
    };
    let policy = RetryPolicy::default();
    let endpoint = Endpoint::parse(&job.socket);
    // --stats / --shutdown have no local equivalent, so they never fall
    // back: an unreachable daemon is an error.
    if job.stats || job.shutdown {
        let mut client =
            sarad::Client::connect_to_with_retry(&endpoint, &policy).unwrap_or_else(|e| fail(&e));
        if job.shutdown {
            client.shutdown().unwrap_or_else(|e| fail(&e));
            println!("sarad: shutdown acknowledged");
        } else {
            let stats = client.stats().unwrap_or_else(|e| fail(&e));
            println!("{}", stats.pretty());
        }
        std::process::exit(0);
    }
    let Some(name) = &job.workload else {
        cli::usage_error("--connect needs a workload (or --stats / --shutdown)");
    };
    let req = if job.autotune {
        let mut req = Json::object()
            .set("op", "autotune")
            .set("workload", name.as_str())
            .set("chip", job.chip.as_str());
        if let Some(b) = job.budget {
            req = req.set("budget", b as i64);
        }
        req
    } else {
        Json::object()
            .set("op", "run")
            .set("workload", name.as_str())
            .set("chip", job.chip.as_str())
            .set("pnr_seed", 42)
    };
    // Transient failures — connection refused, `busy` shedding, dropped
    // connections, deadline timeouts — retry with jittered backoff;
    // requests are content-addressed and idempotent, so a retry re-serves
    // (or resumes) cached work.
    let lines = match run_with_retry_to(&endpoint, &req, &policy) {
        Ok(lines) => lines,
        Err(e @ ClientError::Connect(_)) if job.fallback => {
            eprintln!(
                "warning: {e}; falling back to local compilation \
                 (--no-fallback makes this an error)"
            );
            return;
        }
        Err(e) => fail(&e),
    };
    let done = lines.last().unwrap_or_else(|| fail(&"empty response"));
    if let Some(e) = done.get("error").and_then(Json::as_str) {
        fail(&e);
    }
    if job.autotune {
        let field = |k: &str| done.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "autotune {name}: {} -> {} cycles ({:.2}x), {} points, {} sims",
            field("default_cycles"),
            field("best_cycles"),
            done.get("speedup").and_then(Json::as_f64).unwrap_or(1.0),
            field("points_explored"),
            field("sims_run"),
        );
        if let Some(stats) = done.get("stats") {
            println!("cache: {}", stats.pretty());
        }
        std::process::exit(0);
    }
    for line in &lines {
        if line.get("event").and_then(Json::as_str) == Some("stage") {
            println!(
                "stage: {:<8} {}",
                line.get("stage").and_then(Json::as_str).unwrap_or("?"),
                line.get("cache").and_then(Json::as_str).unwrap_or("?"),
            );
        }
    }
    println!(
        "sim:   {} cycles, {} firings (dram blocked {:.1}%)",
        done.get("cycles").and_then(Json::as_u64).unwrap_or(0),
        done.get("firings").and_then(Json::as_u64).unwrap_or(0),
        done.get("dram_blocked_frac").and_then(Json::as_f64).unwrap_or(0.0) * 100.0,
    );
    if let Some(b) = done.get("bottleneck").and_then(Json::as_str) {
        if !b.is_empty() {
            println!("top:   {b}");
        }
    }
    std::process::exit(0);
}

/// `--knobs FILE`: replay a tuner artifact. Everything — workload, chip,
/// par factors, optimization flags, PnR seed — comes from the file.
fn load_knobs(file: &str) -> sara_dse::KnobConfig {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        cli::usage_error(&format!("cannot read knobs artifact {file}: {e}"));
    });
    sara_dse::KnobConfig::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {file}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args = cli::args();
    if args.is_empty() {
        eprintln!(
            "usage: sarac <workload> [--chip {chips}] [--simulate] [--dot FILE] [--profile FILE] [--faults PLAN] [--sanitize]",
            chips = ChipSpec::NAMES.join("|")
        );
        eprintln!(
            "       sarac <workload> --system {systems}|<count>x<chip> [--simulate]",
            systems = SystemSpec::NAMES.join("|")
        );
        eprintln!("       sarac <workload> --autotune [--budget N] [--chip NAME]");
        eprintln!("       sarac --knobs FILE [--simulate]");
        eprintln!(
            "       sarac --sweep [--chip {chips}] [--simulate]",
            chips = ChipSpec::NAMES.join("|")
        );
        eprintln!("       sarac --server [--socket PATH|HOST:PORT]");
        eprintln!(
            "       sarac --connect ENDPOINT [<workload> [--autotune] | --stats | --shutdown] \
             [--no-fallback]"
        );
        eprintln!(
            "workloads: {}",
            sara_workloads::all_small().iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    }
    let mut name: Option<String> = None;
    let mut do_sweep = false;
    let mut chip = ChipSpec::small_8x8();
    let mut chip_given = false;
    let mut system: Option<SystemSpec> = None;
    let mut do_sim = false;
    let mut dot_file: Option<String> = None;
    let mut profile_file: Option<String> = None;
    let mut faults_file: Option<String> = None;
    let mut sanitize = false;
    let mut do_autotune = false;
    let mut budget: Option<usize> = None;
    let mut knobs_file: Option<String> = None;
    let mut do_server = false;
    let mut socket: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut do_stats = false;
    let mut do_shutdown = false;
    let mut no_fallback = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chip" => {
                chip = cli::parse_chip_or_exit(&cli::flag_value(&args, &mut i, "--chip"));
                chip_given = true;
            }
            "--system" => {
                system =
                    Some(cli::parse_system_or_exit(&cli::flag_value(&args, &mut i, "--system")));
            }
            "--simulate" => do_sim = true,
            "--sweep" => do_sweep = true,
            "--dot" => dot_file = Some(cli::flag_value(&args, &mut i, "--dot")),
            "--profile" => {
                profile_file = Some(cli::flag_value(&args, &mut i, "--profile"));
                do_sim = true;
            }
            "--faults" => {
                faults_file = Some(cli::flag_value(&args, &mut i, "--faults"));
                do_sim = true;
            }
            "--sanitize" => sanitize = true,
            "--autotune" => do_autotune = true,
            "--budget" => {
                let v = cli::flag_value(&args, &mut i, "--budget");
                budget = match v.parse() {
                    Ok(n) if n > 0 => Some(n),
                    _ => cli::usage_error("--budget needs a positive integer"),
                };
            }
            "--knobs" => knobs_file = Some(cli::flag_value(&args, &mut i, "--knobs")),
            "--server" => do_server = true,
            "--socket" => socket = Some(cli::flag_value(&args, &mut i, "--socket")),
            "--connect" => connect = Some(cli::flag_value(&args, &mut i, "--connect")),
            "--stats" => do_stats = true,
            "--shutdown" => do_shutdown = true,
            "--no-fallback" => no_fallback = true,
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => cli::usage_error(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if let Some(sys) = &system {
        if chip_given {
            cli::usage_error("--system names the chip itself; drop --chip");
        }
        if do_sweep || do_autotune || knobs_file.is_some() || connect.is_some() {
            cli::usage_error(
                "--system only supports the direct compile path \
                 (not --sweep / --autotune / --knobs / --connect)",
            );
        }
        chip = sys.chip.clone();
    }
    if do_server {
        run_server(socket);
    }
    if let Some(socket) = connect {
        run_connect(&ConnectJob {
            socket,
            stats: do_stats,
            shutdown: do_shutdown,
            autotune: do_autotune,
            budget,
            workload: name.clone(),
            chip: chip.name(),
            fallback: !no_fallback,
        });
        // run_connect returning (instead of exiting) means the daemon is
        // unreachable and fallback is on: continue on the local path.
    }
    if do_stats || do_shutdown {
        cli::usage_error("--stats / --shutdown need --connect ENDPOINT");
    }
    if do_sweep {
        sweep_all(&chip, do_sim);
    }
    // Replay mode: the artifact carries its own workload/chip/knobs/seed,
    // and the whole point is the cycle count, so it implies --simulate.
    let replay = knobs_file.map(|f| {
        if name.is_some() {
            cli::usage_error(
                "--knobs replays the artifact's own workload; drop the positional name",
            );
        }
        do_sim = true;
        load_knobs(&f)
    });
    let name = match (&replay, name) {
        (Some(k), _) => k.workload.clone(),
        (None, Some(n)) => n,
        (None, None) => cli::usage_error("no workload given (or use --sweep / --knobs)"),
    };
    if do_autotune {
        if replay.is_some() {
            cli::usage_error("--autotune and --knobs are mutually exclusive");
        }
        autotune(&name, &chip, budget);
    }
    let Some(w) = sara_workloads::by_name(&name) else {
        eprintln!("unknown workload {name}");
        std::process::exit(2);
    };
    // In replay mode the artifact dictates the program knobs, chip,
    // compiler options, and PnR seed; the defaults apply otherwise.
    let (program, chip, options, pnr_seed) = match &replay {
        Some(k) => {
            let p = k.build_program().unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            // The artifact's chip field may name a multi-chip system;
            // replaying it follows the same scale-out pipeline the
            // tuner measured, reproducing its cycle count.
            let sys = k.system_spec().unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            println!("knobs: replaying {} on {} (pnr seed {})", k.key(), k.chip, k.pnr_seed);
            let c = sys.chip.clone();
            if sys.count > 1 {
                system = Some(sys);
            }
            (p, c, k.compiler_options(), k.pnr_seed)
        }
        None => (w.program.clone(), chip, CompilerOptions::default(), 42),
    };
    println!("== {} ({}) ==", w.name, w.domain);
    println!("{}", program.pretty());
    let mut compiled = match compile(&program, &chip, &options) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    };
    println!("vudfg: {}", compiled.vudfg.summary());
    println!(
        "cmmc:  {} -> {} sync edges after reduction",
        compiled.cmmc_stats.before(),
        compiled.cmmc_stats.after()
    );
    println!(
        "chip:  {} PCUs, {} PMUs, {} AGs, {} retime units ({} streams, {} tokens)",
        compiled.report.pcus,
        compiled.report.pmus,
        compiled.report.ags,
        compiled.report.retime_units,
        compiled.report.streams,
        compiled.report.token_streams
    );
    // Multi-chip systems shard the graph and place every chip; the plan
    // is kept for the linked simulation below.
    let mut plan: Option<sara_core::shard::ShardPlan> = None;
    match &system {
        Some(sys) if sys.count > 1 => {
            let r = sara_pnr::place_and_route_system(
                &mut compiled.vudfg,
                &compiled.assignment,
                sys,
                pnr_seed,
            )
            .unwrap_or_else(|e| {
                eprintln!("pnr error: {e}");
                std::process::exit(1);
            });
            let used: std::collections::HashSet<u32> = r.plan.chip_of.iter().copied().collect();
            println!(
                "shard: {} of {} chips used, {} crossings, cut traffic {:.1}",
                used.len(),
                sys.count,
                r.plan.crossings.len(),
                r.plan.cut_traffic
            );
            println!(
                "pnr:   wirelength {} over {} chips",
                r.chips.iter().map(|c| c.wirelength).sum::<u64>(),
                r.chips.len()
            );
            plan = Some(r.plan);
        }
        _ => {
            let pnr = sara_pnr::place_and_route(
                &mut compiled.vudfg,
                &compiled.assignment,
                &chip,
                pnr_seed,
            )
            .unwrap_or_else(|e| {
                eprintln!("pnr error: {e}");
                std::process::exit(1);
            });
            println!("pnr:   wirelength {}, max link use {}", pnr.wirelength, pnr.max_link_use);
        }
    }
    if let Some(f) = dot_file {
        if let Err(e) = std::fs::write(&f, dot_of(&compiled.vudfg)) {
            eprintln!("error: cannot write dot file {f}: {e}");
            std::process::exit(1);
        }
        println!("dot:   wrote {f}");
    }
    if do_sim {
        let mut cfg =
            if profile_file.is_some() { SimConfig::profiled() } else { SimConfig::default() };
        cfg.sanitize = sanitize;
        if let Some(f) = faults_file {
            let text = std::fs::read_to_string(&f).unwrap_or_else(|e| {
                eprintln!("error: cannot read fault plan {f}: {e}");
                std::process::exit(2);
            });
            let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            println!("faults: {} fault(s) armed from {f}", plan.faults.len());
            cfg.faults = Some(plan);
        }
        let outcome = match (&system, &plan) {
            (Some(sys), Some(p)) => simulate_system(&compiled.vudfg, sys, p, &cfg),
            _ => simulate(&compiled.vudfg, &chip, &cfg),
        };
        match outcome {
            Ok(o) => {
                println!(
                    "sim:   {} cycles, {:.2} flop/cycle, dram {:.1} B/cycle",
                    o.cycles,
                    o.stats.firings as f64 / o.cycles as f64,
                    o.stats.dram.achieved_bw(o.cycles)
                );
                if let (Some(f), Some(prof)) = (profile_file, o.profile.as_ref()) {
                    let doc = sara_bench::trace::chrome_trace(&format!("{name} sim"), prof);
                    if let Err(e) = std::fs::write(&f, doc.pretty()) {
                        eprintln!("error: cannot write profile trace {f}: {e}");
                        std::process::exit(1);
                    }
                    println!("trace: wrote {f} (open in chrome://tracing or ui.perfetto.dev)");
                    print!("{}", sara_core::report::bottleneck_summary(prof, 5));
                }
            }
            Err(e) => {
                eprintln!("sim error: {e}");
                std::process::exit(1);
            }
        }
    }
}
