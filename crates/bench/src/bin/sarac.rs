//! `sarac` — the SARA compiler driver: compile a named workload, print
//! the pass-by-pass report, optionally simulate and dump the VUDFG as
//! Graphviz. `--sweep` compiles (and with `--simulate`, simulates) every
//! registry workload concurrently on the sweep pool
//! (`SARA_BENCH_THREADS` overrides the worker count).
//!
//! ```text
//! sarac <workload> [--chip 20x20|16x8|8x8] [--simulate] [--dot FILE] [--profile FILE]
//!                  [--faults PLAN] [--sanitize]
//! sarac --sweep   [--chip 20x20|16x8|8x8] [--simulate]
//! ```
//!
//! `--faults PLAN` (implies `--simulate`) injects the fault plan in file
//! PLAN (see the DSL in `plasticine_sim::fault`); `--sanitize` enables
//! the runtime invariant sanitizer. Both report typed diagnoses instead
//! of silent divergence.
//!
//! `--profile FILE` implies `--simulate`: the run is profiled (same
//! cycle counts), a Chrome-trace JSON is written to FILE (open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>), and the top
//! bottlenecks are printed.

use plasticine_arch::ChipSpec;
use plasticine_sim::{simulate, FaultPlan, SimConfig};
use sara_bench::sweep;
use sara_core::compile::{compile, CompilerOptions};
use sara_core::vudfg::{StreamKind, UnitKind, Vudfg};
use std::fmt::Write as _;

fn dot_of(g: &Vudfg) -> String {
    let mut out = String::from("digraph vudfg {\n  rankdir=LR;\n  node [fontsize=9];\n");
    for (i, u) in g.units.iter().enumerate() {
        let (shape, color) = match &u.kind {
            UnitKind::Vcu(_) => ("box", "lightblue"),
            UnitKind::Vmu(_) => ("cylinder", "lightyellow"),
            UnitKind::Ag(_) => ("house", "lightsalmon"),
            UnitKind::Sync(_) => ("diamond", "lightgray"),
            UnitKind::XbarDist(_) | UnitKind::XbarColl(_) => ("trapezium", "lightgreen"),
        };
        let _ = writeln!(
            out,
            "  u{i} [label=\"{}\" shape={shape} style=filled fillcolor={color}];",
            u.label.replace('"', "'")
        );
    }
    for s in &g.streams {
        let style = match s.kind {
            StreamKind::Token { .. } => "dashed",
            _ => "solid",
        };
        let label = match s.kind {
            StreamKind::Token { init } if init > 0 => format!("{init}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "  u{} -> u{} [style={style} label=\"{label}\" fontsize=8];",
            s.src.0, s.dst.0
        );
    }
    out.push_str("}\n");
    out
}

/// `--sweep`: every registry workload through compile (+PnR, optionally
/// simulation) in parallel, one summary line per workload.
fn sweep_all(chip: &ChipSpec, do_sim: bool) -> ! {
    let names: Vec<&'static str> = sara_workloads::all_small().iter().map(|w| w.name).collect();
    let results = sweep::run_points(&names, |name| {
        let w = sara_workloads::by_name(name).ok_or("unknown workload")?;
        let mut compiled =
            compile(&w.program, chip, &CompilerOptions::default()).map_err(|e| e.to_string())?;
        let pnr = sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, chip, 42)
            .map_err(|e| e.to_string())?;
        let cycles = if do_sim {
            Some(
                simulate(&compiled.vudfg, chip, &SimConfig::default())
                    .map_err(|e| e.to_string())?
                    .cycles,
            )
        } else {
            None
        };
        Ok((compiled.report, pnr.wirelength, cycles))
    });
    println!(
        "{:<10} {:>5} {:>5} {:>5} {:>8} {:>7} {:>10}",
        "workload", "PCUs", "PMUs", "AGs", "streams", "wirelen", "cycles"
    );
    let mut failed = false;
    for (name, res) in names.iter().zip(results) {
        match res {
            Ok((report, wirelength, cycles)) => println!(
                "{:<10} {:>5} {:>5} {:>5} {:>8} {:>7} {:>10}",
                name,
                report.pcus,
                report.pmus,
                report.ags,
                report.streams,
                wirelength,
                cycles.map_or_else(|| "-".to_string(), |c| c.to_string()),
            ),
            Err(e) => {
                println!("{name:<10} FAILED: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}

/// Value of a `--flag VALUE` pair, or a one-line usage error (exit 2)
/// when the value is missing.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            eprintln!("error: {flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: sarac <workload> [--chip 20x20|16x8|8x8] [--simulate] [--dot FILE] [--profile FILE] [--faults PLAN] [--sanitize]"
        );
        eprintln!("       sarac --sweep [--chip 20x20|16x8|8x8] [--simulate]");
        eprintln!(
            "workloads: {}",
            sara_workloads::all_small().iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    }
    let mut name: Option<String> = None;
    let mut do_sweep = false;
    let mut chip = ChipSpec::small_8x8();
    let mut do_sim = false;
    let mut dot_file: Option<String> = None;
    let mut profile_file: Option<String> = None;
    let mut faults_file: Option<String> = None;
    let mut sanitize = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chip" => {
                chip = match flag_value(&args, &mut i, "--chip").as_str() {
                    "20x20" => ChipSpec::sara_20x20(),
                    "16x8" => ChipSpec::vanilla_16x8(),
                    "8x8" => ChipSpec::small_8x8(),
                    other => {
                        eprintln!("error: unknown chip {other} (expected 20x20, 16x8, or 8x8)");
                        std::process::exit(2);
                    }
                };
            }
            "--simulate" => do_sim = true,
            "--sweep" => do_sweep = true,
            "--dot" => dot_file = Some(flag_value(&args, &mut i, "--dot")),
            "--profile" => {
                profile_file = Some(flag_value(&args, &mut i, "--profile"));
                do_sim = true;
            }
            "--faults" => {
                faults_file = Some(flag_value(&args, &mut i, "--faults"));
                do_sim = true;
            }
            "--sanitize" => sanitize = true,
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if do_sweep {
        sweep_all(&chip, do_sim);
    }
    let Some(name) = name else {
        eprintln!("no workload given (or use --sweep)");
        std::process::exit(2);
    };
    let Some(w) = sara_workloads::by_name(&name) else {
        eprintln!("unknown workload {name}");
        std::process::exit(2);
    };
    println!("== {} ({}) ==", w.name, w.domain);
    println!("{}", w.program.pretty());
    let mut compiled = match compile(&w.program, &chip, &CompilerOptions::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    };
    println!("vudfg: {}", compiled.vudfg.summary());
    println!(
        "cmmc:  {} -> {} sync edges after reduction",
        compiled.cmmc_stats.before(),
        compiled.cmmc_stats.after()
    );
    println!(
        "chip:  {} PCUs, {} PMUs, {} AGs, {} retime units ({} streams, {} tokens)",
        compiled.report.pcus,
        compiled.report.pmus,
        compiled.report.ags,
        compiled.report.retime_units,
        compiled.report.streams,
        compiled.report.token_streams
    );
    let pnr = sara_pnr::place_and_route(&mut compiled.vudfg, &compiled.assignment, &chip, 42)
        .unwrap_or_else(|e| {
            eprintln!("pnr error: {e}");
            std::process::exit(1);
        });
    println!("pnr:   wirelength {}, max link use {}", pnr.wirelength, pnr.max_link_use);
    if let Some(f) = dot_file {
        if let Err(e) = std::fs::write(&f, dot_of(&compiled.vudfg)) {
            eprintln!("error: cannot write dot file {f}: {e}");
            std::process::exit(1);
        }
        println!("dot:   wrote {f}");
    }
    if do_sim {
        let mut cfg =
            if profile_file.is_some() { SimConfig::profiled() } else { SimConfig::default() };
        cfg.sanitize = sanitize;
        if let Some(f) = faults_file {
            let text = std::fs::read_to_string(&f).unwrap_or_else(|e| {
                eprintln!("error: cannot read fault plan {f}: {e}");
                std::process::exit(2);
            });
            let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            println!("faults: {} fault(s) armed from {f}", plan.faults.len());
            cfg.faults = Some(plan);
        }
        match simulate(&compiled.vudfg, &chip, &cfg) {
            Ok(o) => {
                println!(
                    "sim:   {} cycles, {:.2} flop/cycle, dram {:.1} B/cycle",
                    o.cycles,
                    o.stats.firings as f64 / o.cycles as f64,
                    o.stats.dram.achieved_bw(o.cycles)
                );
                if let (Some(f), Some(prof)) = (profile_file, o.profile.as_ref()) {
                    let doc = sara_bench::trace::chrome_trace(&format!("{name} sim"), prof);
                    if let Err(e) = std::fs::write(&f, doc.pretty()) {
                        eprintln!("error: cannot write profile trace {f}: {e}");
                        std::process::exit(1);
                    }
                    println!("trace: wrote {f} (open in chrome://tracing or ui.perfetto.dev)");
                    print!("{}", sara_core::report::bottleneck_summary(prof, 5));
                }
            }
            Err(e) => {
                eprintln!("sim error: {e}");
                std::process::exit(1);
            }
        }
    }
}
