//! Fig 11: traversal-based vs solver-based partitioning/merging.
//!
//! (a) normalized physical compute units after partition+merge: the
//!     solver tracks the best solution; traversal orders can be worse;
//! (b/c) compile time: traversal runs orders of magnitude faster than the
//!     branch-and-bound solver (the paper's minutes-vs-hours gap, scaled
//!     down with instance size).

use plasticine_arch::ChipSpec;
use sara_core::compile::{compile, CompilerOptions};
use sara_core::partition::{Algo, SolverCfg, TraversalOrder};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Row {
    app: String,
    algo: String,
    pcus: usize,
    normalized: f64,
    compile_ms: f64,
}

fn algos() -> Vec<(String, Algo)> {
    let mut v: Vec<(String, Algo)> = TraversalOrder::ALL
        .iter()
        .map(|o| (format!("{o:?}"), Algo::Traversal(*o)))
        .collect();
    v.push((
        "Solver".to_string(),
        Algo::Solver(SolverCfg { gap: 0.15, budget_ms: 5_000 }),
    ));
    v
}

fn apps() -> Vec<(&'static str, sara_ir::Program)> {
    use sara_workloads::{cnn, linalg, ml, streamk};
    vec![
        (
            "mlp",
            linalg::mlp(&linalg::MlpParams {
                d_in: 64,
                d_hidden: 64,
                d_out: 16,
                par_inner: 16,
                par_neuron: 2,
            }),
        ),
        ("lstm", ml::lstm(&ml::LstmParams { t: 4, h: 16, par_h: 8 })),
        ("bs", streamk::bs(&streamk::BsParams { n: 256, par: 16 })),
        ("snet", cnn::snet(&cnn::SnetParams { img: 8, c_in: 3, c_out: 8, par_oc: 2, par_k: 9 })),
        ("gemm", linalg::gemm(&linalg::GemmParams { m: 16, n: 16, k: 32, par_m: 2, par_k: 16 })),
    ]
}

fn main() {
    let chip = ChipSpec::sara_20x20();
    let mut rows: Vec<Row> = Vec::new();
    for (app, p) in apps() {
        let mut app_rows = Vec::new();
        for (name, algo) in algos() {
            let mut opts = CompilerOptions::default();
            opts.partition_algo = algo;
            opts.merge_algo = algo;
            let t0 = Instant::now();
            match compile(&p, &chip, &opts) {
                Ok(c) => {
                    let dt = t0.elapsed().as_secs_f64() * 1e3;
                    app_rows.push(Row {
                        app: app.into(),
                        algo: name,
                        pcus: c.report.pcus,
                        normalized: 0.0,
                        compile_ms: dt,
                    });
                }
                Err(e) => eprintln!("{app}/{name}: {e}"),
            }
        }
        let best = app_rows.iter().map(|r| r.pcus).min().unwrap_or(1).max(1);
        for mut r in app_rows {
            r.normalized = r.pcus as f64 / best as f64;
            rows.push(r);
        }
    }
    println!("{:<6} {:<9} {:>6} {:>10} {:>12}", "app", "algo", "PCUs", "normalized", "compile(ms)");
    for r in &rows {
        println!(
            "{:<6} {:<9} {:>6} {:>10.2} {:>12.2}",
            r.app, r.algo, r.pcus, r.normalized, r.compile_ms
        );
    }
    let path = sara_bench::save_json("fig11", &rows);
    println!("\nsaved {}", path.display());
}
