//! Fig 11: traversal-based vs solver-based partitioning/merging.
//!
//! (a) normalized physical compute units after partition+merge: the
//!     solver tracks the best solution; traversal orders can be worse;
//! (b/c) compile time: traversal runs orders of magnitude faster than the
//!     branch-and-bound solver (the paper's minutes-vs-hours gap, scaled
//!     down with instance size).
//!
//! (app, algorithm) cells run concurrently on the sweep pool. Because
//! this figure measures *wall-clock compile time*, run with
//! `SARA_BENCH_THREADS=1` when you want undisturbed timing numbers —
//! concurrent workers share cores and inflate each other's latencies.
//! The PCU counts (axis a) are unaffected by threading.

use plasticine_arch::ChipSpec;
use sara_bench::json::Json;
use sara_bench::sweep;
use sara_core::compile::{compile, CompilerOptions};
use sara_core::partition::{Algo, SolverCfg, TraversalOrder};
use std::time::Instant;

fn algos() -> Vec<(String, Algo)> {
    let budget_ms = if sara_bench::smoke() { 200 } else { 5_000 };
    let mut v: Vec<(String, Algo)> =
        TraversalOrder::ALL.iter().map(|o| (format!("{o:?}"), Algo::Traversal(*o))).collect();
    v.push(("Solver".to_string(), Algo::Solver(SolverCfg { gap: 0.15, budget_ms })));
    v
}

fn apps() -> Vec<(&'static str, sara_ir::Program)> {
    use sara_workloads::{cnn, linalg, ml, streamk};
    let mut v = vec![
        (
            "mlp",
            linalg::mlp(&linalg::MlpParams {
                d_in: 64,
                d_hidden: 64,
                d_out: 16,
                par_inner: 16,
                par_neuron: 2,
            }),
        ),
        ("lstm", ml::lstm(&ml::LstmParams { t: 4, h: 16, par_h: 8 })),
    ];
    if !sara_bench::smoke() {
        v.push(("bs", streamk::bs(&streamk::BsParams { n: 256, par: 16 })));
        v.push((
            "snet",
            cnn::snet(&cnn::SnetParams { img: 8, c_in: 3, c_out: 8, par_oc: 2, par_k: 9 }),
        ));
        v.push((
            "gemm",
            linalg::gemm(&linalg::GemmParams { m: 16, n: 16, k: 32, par_m: 2, par_k: 16 }),
        ));
    }
    v
}

struct Pt {
    app: &'static str,
    program: sara_ir::Program,
    algo_name: String,
    algo: Algo,
}

struct Out {
    pcus: usize,
    compile_ms: f64,
}

fn eval(pt: &Pt) -> Result<Out, String> {
    let chip = ChipSpec::sara_20x20();
    let opts = CompilerOptions {
        partition_algo: pt.algo,
        merge_algo: pt.algo,
        ..CompilerOptions::default()
    };
    let t0 = Instant::now();
    let c = compile(&pt.program, &chip, &opts).map_err(|e| e.to_string())?;
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("{}/{}: {} PCUs in {compile_ms:.1} ms", pt.app, pt.algo_name, c.report.pcus);
    Ok(Out { pcus: c.report.pcus, compile_ms })
}

fn main() {
    // Uniform fig/table CLI surface: accept --profile-dir (exit-2 contract
    // on a missing value) even though this figure never simulates — the
    // flag selects a directory for run_profiled artifacts, and compile-time
    // measurement has none to write.
    sara_bench::cli::parse_profile_dir_flag();
    let mut points: Vec<Pt> = Vec::new();
    for (app, program) in apps() {
        for (algo_name, algo) in algos() {
            points.push(Pt { app, program: program.clone(), algo_name, algo });
        }
    }
    let results = sweep::run_points(&points, eval);
    let ok: Vec<(&Pt, Out)> = points
        .iter()
        .zip(results)
        .filter_map(|(pt, res)| match res {
            Ok(o) => Some((pt, o)),
            Err(e) => {
                eprintln!("{}/{}: {e}", pt.app, pt.algo_name);
                None
            }
        })
        .collect();

    // Normalize each app's PCU counts to the best algorithm for that app.
    println!("{:<6} {:<9} {:>6} {:>10} {:>12}", "app", "algo", "PCUs", "normalized", "compile(ms)");
    let mut rows: Vec<Json> = Vec::new();
    for (pt, o) in &ok {
        let best = ok
            .iter()
            .filter(|(qt, _)| qt.app == pt.app)
            .map(|(_, q)| q.pcus)
            .min()
            .unwrap_or(1)
            .max(1);
        let normalized = o.pcus as f64 / best as f64;
        println!(
            "{:<6} {:<9} {:>6} {:>10.2} {:>12.2}",
            pt.app, pt.algo_name, o.pcus, normalized, o.compile_ms
        );
        rows.push(
            Json::object()
                .set("app", pt.app)
                .set("algo", pt.algo_name.as_str())
                .set("pcus", o.pcus)
                .set("normalized", normalized)
                .set("compile_ms", o.compile_ms),
        );
    }
    let path = sara_bench::save_json_or_exit("fig11", &Json::from(rows));
    println!("\nsaved {}", path.display());
}
