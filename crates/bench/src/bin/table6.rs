//! Table VI: SARA on the 20×20 Plasticine (HBM2, 1 TB/s) vs a Tesla V100.
//!
//! The GPU side is the calibrated analytical model (see DESIGN.md
//! substitution #3). The paper reports a 1.9× geo-mean for SARA with 12%
//! of the GPU's silicon; dense `snet` loses in absolute terms (the chip
//! is 8.3× smaller) but wins area-normalized, while gather-heavy `rf`,
//! dataflow-friendly `ms` and sparse `pr` win outright.
//!
//! Apps run concurrently on the sweep pool (`SARA_BENCH_THREADS`);
//! `SARA_BENCH_SMOKE` shrinks the app set.

use plasticine_arch::ChipSpec;
use sara_baselines::gpu::{estimate, launches_of, GpuClass, V100};
use sara_bench::json::Json;
use sara_bench::{geomean, run_profiled, sweep};
use sara_core::compile::CompilerOptions;

fn apps() -> Vec<(&'static str, sara_ir::Program)> {
    use sara_workloads::{cnn, graph, ml, sort, streamk};
    if sara_bench::smoke() {
        return vec![
            ("lstm", ml::lstm(&ml::LstmParams { t: 4, h: 16, par_h: 16 })),
            ("bs", streamk::bs(&streamk::BsParams { n: 512, par: 16 })),
            ("ms", streamk::ms(&streamk::MsParams { n: 64 })),
        ];
    }
    vec![
        ("snet", cnn::snet(&cnn::SnetParams { img: 10, c_in: 4, c_out: 8, par_oc: 4, par_k: 16 })),
        ("lstm", ml::lstm(&ml::LstmParams { t: 8, h: 16, par_h: 16 })),
        ("pr", graph::pr(&graph::PrParams { v: 64, avg_deg: 4, seed: 7, par_v: 2 })),
        ("bs", streamk::bs(&streamk::BsParams { n: 2048, par: 16 })),
        ("sort", sort::sort(&sort::SortParams { n: 64 })),
        ("rf", graph::rf(&graph::RfParams { n: 64, d: 16, trees: 8, depth: 4, seed: 9, par_n: 4 })),
        ("ms", streamk::ms(&streamk::MsParams { n: 256 })),
    ]
}

struct Pt {
    app: &'static str,
    program: sara_ir::Program,
}

struct Out {
    sara_cycles: u64,
    sara_us: f64,
    gpu_us: f64,
    speedup: f64,
    area_norm_speedup: f64,
    gpu_compute_bound: bool,
    sara_pus: usize,
}

fn eval(pt: &Pt) -> Result<Out, String> {
    let chip = ChipSpec::sara_20x20();
    let v100 = V100::default();
    let tag = format!("table6-{}", pt.app);
    let sara = run_profiled(&tag, &pt.program, &chip, &CompilerOptions::default())?;
    let class = GpuClass::of_workload(pt.app);
    let launches = launches_of(pt.app, &sara.interp);
    let gpu = estimate(&v100, class, &sara.interp, launches);
    let sara_s = sara.seconds(&chip);
    let speedup = gpu.seconds / sara_s;
    eprintln!("{}: done ({} cycles)", pt.app, sara.cycles());
    Ok(Out {
        sara_cycles: sara.cycles(),
        sara_us: sara_s * 1e6,
        gpu_us: gpu.seconds * 1e6,
        speedup,
        area_norm_speedup: speedup * (v100.area_mm2 / chip.area_mm2),
        gpu_compute_bound: gpu.compute_bound,
        sara_pus: sara.pus(),
    })
}

fn main() {
    sara_bench::cli::parse_profile_dir_flag();
    let points: Vec<Pt> = apps().into_iter().map(|(app, program)| Pt { app, program }).collect();
    let results = sweep::run_points(&points, eval);

    println!(
        "{:<6} {:>11} {:>9} {:>9} {:>8} {:>9} {:>6} {:>5}",
        "app", "sara(cyc)", "sara(us)", "gpu(us)", "speedup", "area-norm", "gpuCB", "PUs"
    );
    let mut rows: Vec<Json> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for (pt, res) in points.iter().zip(results) {
        let r = match res {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{} sara: {e}", pt.app);
                continue;
            }
        };
        speedups.push(r.speedup);
        println!(
            "{:<6} {:>11} {:>9.2} {:>9.2} {:>8.2} {:>9.2} {:>6} {:>5}",
            pt.app,
            r.sara_cycles,
            r.sara_us,
            r.gpu_us,
            r.speedup,
            r.area_norm_speedup,
            r.gpu_compute_bound,
            r.sara_pus
        );
        rows.push(
            Json::object()
                .set("app", pt.app)
                .set("sara_cycles", r.sara_cycles)
                .set("sara_us", r.sara_us)
                .set("gpu_us", r.gpu_us)
                .set("speedup", r.speedup)
                .set("area_norm_speedup", r.area_norm_speedup)
                .set("gpu_compute_bound", r.gpu_compute_bound)
                .set("sara_pus", r.sara_pus),
        );
    }
    let gm = geomean(&speedups);
    println!("\ngeo-mean speedup over V100: {gm:.2}x (paper: 1.9x)");
    let path = sara_bench::save_json_or_exit("table6", &Json::from(rows));
    println!("saved {}", path.display());
}
