//! Table VI: SARA on the 20×20 Plasticine (HBM2, 1 TB/s) vs a Tesla V100.
//!
//! The GPU side is the calibrated analytical model (see DESIGN.md
//! substitution #3). The paper reports a 1.9× geo-mean for SARA with 12%
//! of the GPU's silicon; dense `snet` loses in absolute terms (the chip
//! is 8.3× smaller) but wins area-normalized, while gather-heavy `rf`,
//! dataflow-friendly `ms` and sparse `pr` win outright.

use plasticine_arch::ChipSpec;
use sara_baselines::gpu::{estimate, launches_of, GpuClass, V100};
use sara_bench::{geomean, run};
use sara_core::compile::CompilerOptions;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    app: String,
    sara_cycles: u64,
    sara_us: f64,
    gpu_us: f64,
    speedup: f64,
    area_norm_speedup: f64,
    gpu_compute_bound: bool,
    sara_pus: usize,
}

fn apps() -> Vec<(&'static str, sara_ir::Program)> {
    use sara_workloads::{cnn, graph, ml, sort, streamk};
    vec![
        ("snet", cnn::snet(&cnn::SnetParams { img: 10, c_in: 4, c_out: 8, par_oc: 4, par_k: 16 })),
        ("lstm", ml::lstm(&ml::LstmParams { t: 8, h: 16, par_h: 16 })),
        ("pr", graph::pr(&graph::PrParams { v: 64, avg_deg: 4, seed: 7, par_v: 2 })),
        ("bs", streamk::bs(&streamk::BsParams { n: 2048, par: 16 })),
        ("sort", sort::sort(&sort::SortParams { n: 64 })),
        ("rf", graph::rf(&graph::RfParams { n: 64, d: 16, trees: 8, depth: 4, seed: 9, par_n: 4 })),
        ("ms", streamk::ms(&streamk::MsParams { n: 256 })),
    ]
}

fn main() {
    let chip = ChipSpec::sara_20x20();
    let v100 = V100::default();
    let mut rows = Vec::new();
    for (app, p) in apps() {
        let sara = match run(&p, &chip, &CompilerOptions::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{app} sara: {e}");
                continue;
            }
        };
        let class = GpuClass::of_workload(app);
        let launches = launches_of(app, &sara.interp);
        let gpu = estimate(&v100, class, &sara.interp, launches);
        let sara_s = sara.seconds(&chip);
        let speedup = gpu.seconds / sara_s;
        rows.push(Row {
            app: app.into(),
            sara_cycles: sara.cycles(),
            sara_us: sara_s * 1e6,
            gpu_us: gpu.seconds * 1e6,
            speedup,
            area_norm_speedup: speedup * (v100.area_mm2 / chip.area_mm2),
            gpu_compute_bound: gpu.compute_bound,
            sara_pus: sara.pus(),
        });
        eprintln!("{app}: done ({} cycles)", sara.cycles());
    }
    println!(
        "{:<6} {:>11} {:>9} {:>9} {:>8} {:>9} {:>6} {:>5}",
        "app", "sara(cyc)", "sara(us)", "gpu(us)", "speedup", "area-norm", "gpuCB", "PUs"
    );
    for r in &rows {
        println!(
            "{:<6} {:>11} {:>9.2} {:>9.2} {:>8.2} {:>9.2} {:>6} {:>5}",
            r.app,
            r.sara_cycles,
            r.sara_us,
            r.gpu_us,
            r.speedup,
            r.area_norm_speedup,
            r.gpu_compute_bound,
            r.sara_pus
        );
    }
    let gm = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    println!("\ngeo-mean speedup over V100: {gm:.2}x (paper: 1.9x)");
    let path = sara_bench::save_json("table6", &rows);
    println!("saved {}", path.display());
}
