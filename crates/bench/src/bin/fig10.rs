//! Fig 10: effectiveness of individual compiler optimizations — the
//! speedup (and resource delta) of enabling each optimization relative to
//! a baseline with it disabled, per application.
//!
//! Ablation axes implemented in this reproduction:
//! * `reduce`  — CMMC dependency-graph reduction (§III-A3)
//! * `relax`   — credit relaxation / multibuffered overlap (retime's
//!   performance component in the paper's taxonomy)
//! * `retime`  — retiming-buffer insertion on imbalanced joins
//! * `retime-m`— scratchpads (PMUs) as retiming buffers (resource shift)
//!
//! Every (app, variant) cell — including each app's all-optimizations
//! baseline — is an independent design point on the sweep pool
//! (`SARA_BENCH_THREADS`); `SARA_BENCH_SMOKE` shrinks the app set.

use plasticine_arch::ChipSpec;
use sara_bench::json::Json;
use sara_bench::{run_profiled, sweep};
use sara_core::compile::CompilerOptions;

const VARIANTS: &[&str] = &["reduce", "relax", "retime", "retime-m"];

/// Compiler options with one optimization ablated (`None` = baseline).
fn opts_of(variant: Option<&str>) -> CompilerOptions {
    let mut o = CompilerOptions::default();
    match variant {
        None => {}
        Some("reduce") => o.lower.cmmc.reduce = false,
        Some("relax") => o.lower.cmmc.relax_credits = false,
        Some("retime") => o.opt.retime = false,
        Some("retime-m") => o.opt.retime_m = false,
        Some(other) => panic!("unknown variant {other}"),
    }
    o
}

fn program_of(app: &str) -> sara_ir::Program {
    use sara_workloads::{linalg, ml, streamk};
    match app {
        "mlp" => linalg::mlp(&linalg::MlpParams {
            d_in: 64,
            d_hidden: 64,
            d_out: 16,
            par_inner: 16,
            par_neuron: 2,
        }),
        "lstm" => ml::lstm(&ml::LstmParams { t: 6, h: 16, par_h: 8 }),
        "bs" => streamk::bs(&streamk::BsParams { n: 512, par: 16 }),
        "gda" => ml::gda(&ml::GdaParams { n: 16, d: 12, par_d: 4 }),
        other => panic!("unknown app {other}"),
    }
}

#[derive(Debug, Clone, Copy)]
struct Pt {
    app: &'static str,
    /// `None` is the all-optimizations baseline for the app.
    variant: Option<&'static str>,
}

struct Out {
    cycles: u64,
    pus: usize,
    token_streams: usize,
}

fn eval(pt: &Pt) -> Result<Out, String> {
    let chip = ChipSpec::sara_20x20();
    let p = program_of(pt.app);
    let tag = format!("fig10-{}-{}", pt.app, pt.variant.unwrap_or("baseline"));
    let r = run_profiled(&tag, &p, &chip, &opts_of(pt.variant))?;
    eprintln!("{}/{}: {} cycles", pt.app, pt.variant.unwrap_or("baseline"), r.cycles());
    Ok(Out { cycles: r.cycles(), pus: r.pus(), token_streams: r.compiled.report.token_streams })
}

fn main() {
    sara_bench::cli::parse_profile_dir_flag();
    let apps: &[&str] =
        if sara_bench::smoke() { &["mlp", "bs"] } else { &["mlp", "lstm", "bs", "gda"] };
    let mut points: Vec<Pt> = Vec::new();
    for &app in apps {
        points.push(Pt { app, variant: None });
        for &v in VARIANTS {
            points.push(Pt { app, variant: Some(v) });
        }
    }

    let results = sweep::run_points(&points, eval);
    let by_pt: Vec<(&Pt, Result<Out, String>)> = points.iter().zip(results).collect();

    let mut rows: Vec<Json> = Vec::new();
    println!(
        "{:<6} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app", "opt", "speedup", "PUs+", "PUs-", "tok+", "tok-"
    );
    for &app in apps {
        let Some(with) = by_pt.iter().find_map(|(pt, res)| {
            (pt.app == app && pt.variant.is_none()).then(|| res.as_ref().ok()).flatten()
        }) else {
            eprintln!("{app} baseline failed");
            continue;
        };
        for (pt, res) in &by_pt {
            let (Some(v), true) = (pt.variant, pt.app == app) else { continue };
            match res {
                Ok(without) => {
                    let speedup = without.cycles as f64 / with.cycles as f64;
                    println!(
                        "{:<6} {:<10} {:>8.2} {:>8} {:>8} {:>8} {:>8}",
                        app,
                        v,
                        speedup,
                        with.pus,
                        without.pus,
                        with.token_streams,
                        without.token_streams
                    );
                    rows.push(
                        Json::object()
                            .set("app", app)
                            .set("opt", v)
                            .set("speedup", speedup)
                            .set("pus_with", with.pus)
                            .set("pus_without", without.pus)
                            .set("token_streams_with", with.token_streams)
                            .set("token_streams_without", without.token_streams),
                    );
                }
                Err(e) => eprintln!("{app}/{v}: {e}"),
            }
        }
    }
    let path = sara_bench::save_json_or_exit("fig10", &Json::from(rows));
    println!("\nsaved {}", path.display());
}
