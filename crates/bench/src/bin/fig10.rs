//! Fig 10: effectiveness of individual compiler optimizations — the
//! speedup (and resource delta) of enabling each optimization relative to
//! a baseline with it disabled, per application.
//!
//! Ablation axes implemented in this reproduction:
//! * `reduce`  — CMMC dependency-graph reduction (§III-A3)
//! * `relax`   — credit relaxation / multibuffered overlap (retime's
//!               performance component in the paper's taxonomy)
//! * `retime`  — retiming-buffer insertion on imbalanced joins
//! * `retime-m`— scratchpads (PMUs) as retiming buffers (resource shift)

use plasticine_arch::ChipSpec;
use sara_bench::run;
use sara_core::compile::CompilerOptions;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    app: String,
    opt: String,
    speedup: f64,
    pus_with: usize,
    pus_without: usize,
    token_streams_with: usize,
    token_streams_without: usize,
}

fn variants() -> Vec<(&'static str, Box<dyn Fn(&mut CompilerOptions)>)> {
    vec![
        ("reduce", Box::new(|o: &mut CompilerOptions| o.lower.cmmc.reduce = false)),
        ("relax", Box::new(|o: &mut CompilerOptions| o.lower.cmmc.relax_credits = false)),
        ("retime", Box::new(|o: &mut CompilerOptions| o.opt.retime = false)),
        ("retime-m", Box::new(|o: &mut CompilerOptions| o.opt.retime_m = false)),
    ]
}

fn apps() -> Vec<(&'static str, sara_ir::Program)> {
    use sara_workloads::{linalg, ml, streamk};
    vec![
        (
            "mlp",
            linalg::mlp(&linalg::MlpParams {
                d_in: 64,
                d_hidden: 64,
                d_out: 16,
                par_inner: 16,
                par_neuron: 2,
            }),
        ),
        ("lstm", ml::lstm(&ml::LstmParams { t: 6, h: 16, par_h: 8 })),
        ("bs", streamk::bs(&streamk::BsParams { n: 512, par: 16 })),
        ("gda", ml::gda(&ml::GdaParams { n: 16, d: 12, par_d: 4 })),
    ]
}

fn main() {
    let chip = ChipSpec::sara_20x20();
    let mut rows = Vec::new();
    for (app, p) in apps() {
        let with = match run(&p, &chip, &CompilerOptions::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{app} baseline: {e}");
                continue;
            }
        };
        for (oname, disable) in variants() {
            let mut opts = CompilerOptions::default();
            disable(&mut opts);
            match run(&p, &chip, &opts) {
                Ok(without) => {
                    rows.push(Row {
                        app: app.into(),
                        opt: oname.into(),
                        speedup: without.cycles() as f64 / with.cycles() as f64,
                        pus_with: with.pus(),
                        pus_without: without.pus(),
                        token_streams_with: with.compiled.report.token_streams,
                        token_streams_without: without.compiled.report.token_streams,
                    });
                    eprintln!("{app}/{oname}: with {} vs without {}", with.cycles(), without.cycles());
                }
                Err(e) => eprintln!("{app}/{oname}: {e}"),
            }
        }
    }
    println!(
        "{:<6} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app", "opt", "speedup", "PUs+", "PUs-", "tok+", "tok-"
    );
    for r in &rows {
        println!(
            "{:<6} {:<10} {:>8.2} {:>8} {:>8} {:>8} {:>8}",
            r.app, r.opt, r.speedup, r.pus_with, r.pus_without, r.token_streams_with,
            r.token_streams_without
        );
    }
    let path = sara_bench::save_json("fig10", &rows);
    println!("\nsaved {}", path.display());
}
