//! Table IV: benchmark characteristics — domain, control depth, memory
//! counts, access counts, dynamic op/traffic counts and data-dependent
//! control flow.
//!
//! Workloads are characterized concurrently on the sweep pool
//! (`SARA_BENCH_THREADS`); `SARA_BENCH_SMOKE` keeps only a handful.

use sara_bench::json::Json;
use sara_bench::sweep;
use sara_ir::interp::Interp;
use sara_ir::MemKind;

struct Row {
    name: String,
    domain: String,
    ctrl_depth: usize,
    loops: usize,
    hyperblocks: usize,
    drams: usize,
    srams: usize,
    regs: usize,
    accesses: usize,
    exprs: usize,
    data_dependent: bool,
    flops: u64,
    dram_bytes: u64,
    arithmetic_intensity: f64,
}

fn eval(name: &&'static str) -> Result<Row, String> {
    let w = sara_workloads::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
    let p = &w.program;
    let stats = Interp::new(p).run().map_err(|e| format!("interp: {e}"))?.stats;
    let loops = p.ctrls.iter().filter(|c| matches!(c.kind, sara_ir::CtrlKind::Loop(_))).count();
    let dyn_ctrl = p.ctrls.iter().any(|c| {
        matches!(c.kind, sara_ir::CtrlKind::Branch { .. } | sara_ir::CtrlKind::DoWhile { .. })
    }) || p.ctrls.iter().any(|c| {
        matches!(&c.kind, sara_ir::CtrlKind::Loop(s)
            if s.min.as_const().is_none() || s.max.as_const().is_none())
    });
    let count_kind = |k: MemKind| p.mems.iter().filter(|m| m.kind == k).count();
    Ok(Row {
        name: w.name.to_string(),
        domain: w.domain.to_string(),
        ctrl_depth: p.control_depth(),
        loops,
        hyperblocks: p.leaves().len(),
        drams: count_kind(MemKind::Dram),
        srams: count_kind(MemKind::Sram),
        regs: count_kind(MemKind::Reg),
        accesses: p.accesses().len(),
        exprs: p.total_exprs(),
        data_dependent: dyn_ctrl,
        flops: stats.flops,
        dram_bytes: stats.dram_bytes(),
        arithmetic_intensity: stats.flops as f64 / stats.dram_bytes().max(1) as f64,
    })
}

fn main() {
    // Uniform fig/table CLI surface: accept --profile-dir with the same
    // exit-2 contract as the simulating binaries (this table only runs
    // the interpreter, so no profile artifacts are produced).
    sara_bench::cli::parse_profile_dir_flag();
    let mut names: Vec<&'static str> = sara_workloads::all_small().iter().map(|w| w.name).collect();
    if sara_bench::smoke() {
        names.truncate(4);
    }
    let results = sweep::run_points(&names, eval);
    println!(
        "{:<10} {:<14} {:>5} {:>6} {:>4} {:>5} {:>5} {:>5} {:>5} {:>6} {:>7} {:>10} {:>10} {:>6}",
        "name",
        "domain",
        "depth",
        "loops",
        "hbs",
        "dram",
        "sram",
        "reg",
        "accs",
        "exprs",
        "dynctl",
        "flops",
        "drambytes",
        "AI"
    );
    let mut rows: Vec<Json> = Vec::new();
    for (name, res) in names.iter().zip(results) {
        let r = match res {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        println!(
            "{:<10} {:<14} {:>5} {:>6} {:>4} {:>5} {:>5} {:>5} {:>5} {:>6} {:>7} {:>10} {:>10} {:>6.2}",
            r.name,
            r.domain,
            r.ctrl_depth,
            r.loops,
            r.hyperblocks,
            r.drams,
            r.srams,
            r.regs,
            r.accesses,
            r.exprs,
            r.data_dependent,
            r.flops,
            r.dram_bytes,
            r.arithmetic_intensity
        );
        rows.push(
            Json::object()
                .set("name", r.name.as_str())
                .set("domain", r.domain.as_str())
                .set("ctrl_depth", r.ctrl_depth)
                .set("loops", r.loops)
                .set("hyperblocks", r.hyperblocks)
                .set("drams", r.drams)
                .set("srams", r.srams)
                .set("regs", r.regs)
                .set("accesses", r.accesses)
                .set("exprs", r.exprs)
                .set("data_dependent", r.data_dependent)
                .set("flops", r.flops)
                .set("dram_bytes", r.dram_bytes)
                .set("arithmetic_intensity", r.arithmetic_intensity),
        );
    }
    let path = sara_bench::save_json_or_exit("table4", &Json::from(rows));
    println!("\nsaved {}", path.display());
}
