//! Fig 9a: performance and resource scaling with parallelization.
//!
//! Starting from a fully pipelined design, the parallelization factor of
//! the dominant loops is swept; the paper reports near-linear performance
//! scaling until on-chip resources (compute-bound `mlp`) or DRAM
//! bandwidth (memory-bound `rf`) saturate.

use plasticine_arch::ChipSpec;
use sara_bench::run;
use sara_core::compile::CompilerOptions;
use sara_workloads::{graph, linalg};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    app: String,
    par: u32,
    cycles: u64,
    flops_per_cycle: f64,
    speedup_vs_par1: f64,
    pus: usize,
    pcus: usize,
    pmus: usize,
    dram_bw_bytes_per_cycle: f64,
}

fn main() {
    let chip = ChipSpec::sara_20x20();
    let mut points: Vec<Point> = Vec::new();

    // mlp: compute-bound, no batch parallelism; sweep the intra-layer
    // factors (vectorize the reduction, then spatially unroll neurons).
    let mlp_sweep: Vec<(u32, u32)> =
        vec![(1, 1), (2, 1), (4, 1), (8, 1), (16, 1), (16, 2), (16, 4), (16, 8), (16, 16)];
    let mut base_cycles = None;
    for (pi, pn) in mlp_sweep {
        let par = pi * pn;
        let p = linalg::mlp(&linalg::MlpParams {
            d_in: 256,
            d_hidden: 256,
            d_out: 64,
            par_inner: pi,
            par_neuron: pn,
        });
        match run(&p, &chip, &CompilerOptions::default()) {
            Ok(r) => {
                let base = *base_cycles.get_or_insert(r.cycles());
                points.push(Point {
                    app: "mlp".into(),
                    par,
                    cycles: r.cycles(),
                    flops_per_cycle: r.flops_per_cycle(),
                    speedup_vs_par1: base as f64 / r.cycles() as f64,
                    pus: r.pus(),
                    pcus: r.compiled.report.pcus,
                    pmus: r.compiled.report.pmus,
                    dram_bw_bytes_per_cycle: r.outcome.stats.dram.achieved_bw(r.cycles()),
                });
                eprintln!("mlp par {par}: {} cycles, {} PUs", r.cycles(), r.pus());
            }
            Err(e) => eprintln!("mlp par {par}: {e}"),
        }
    }

    // rf: gather-heavy, saturates DRAM bandwidth before compute.
    let mut base_cycles = None;
    for pn in [1u32, 2, 4, 8, 16, 32] {
        let p = graph::rf(&graph::RfParams {
            n: 64,
            d: 16,
            trees: 8,
            depth: 4,
            seed: 9,
            par_n: pn,
        });
        match run(&p, &chip, &CompilerOptions::default()) {
            Ok(r) => {
                let base = *base_cycles.get_or_insert(r.cycles());
                points.push(Point {
                    app: "rf".into(),
                    par: pn,
                    cycles: r.cycles(),
                    flops_per_cycle: r.flops_per_cycle(),
                    speedup_vs_par1: base as f64 / r.cycles() as f64,
                    pus: r.pus(),
                    pcus: r.compiled.report.pcus,
                    pmus: r.compiled.report.pmus,
                    dram_bw_bytes_per_cycle: r.outcome.stats.dram.achieved_bw(r.cycles()),
                });
                eprintln!("rf par {pn}: {} cycles, {} PUs", r.cycles(), r.pus());
            }
            Err(e) => eprintln!("rf par {pn}: {e}"),
        }
    }

    // tpchq6 on the DDR3 chip: a streaming aggregation that hits the
    // off-chip bandwidth wall — performance saturates once achieved DRAM
    // bandwidth approaches the 49 B/cycle DDR3 peak (the paper's
    // memory-bound half of Fig 9a).
    let ddr_chip = ChipSpec::vanilla_16x8();
    let mut base_cycles = None;
    for par in [1u32, 4, 16, 32, 64, 128] {
        let p = sara_workloads::streamk::tpchq6(&sara_workloads::streamk::Q6Params {
            n: 16384,
            par,
        });
        match run(&p, &ddr_chip, &CompilerOptions::default()) {
            Ok(r) => {
                let base = *base_cycles.get_or_insert(r.cycles());
                points.push(Point {
                    app: "tpchq6-ddr3".into(),
                    par,
                    cycles: r.cycles(),
                    flops_per_cycle: r.flops_per_cycle(),
                    speedup_vs_par1: base as f64 / r.cycles() as f64,
                    pus: r.pus(),
                    pcus: r.compiled.report.pcus,
                    pmus: r.compiled.report.pmus,
                    dram_bw_bytes_per_cycle: r.outcome.stats.dram.achieved_bw(r.cycles()),
                });
                eprintln!("tpchq6 par {par}: {} cycles, {} PUs", r.cycles(), r.pus());
            }
            Err(e) => eprintln!("tpchq6 par {par}: {e}"),
        }
    }

    println!(
        "{:<12} {:>5} {:>10} {:>8} {:>9} {:>5} {:>5} {:>5} {:>8}",
        "app", "par", "cycles", "flop/cy", "speedup", "PUs", "PCUs", "PMUs", "dramB/cy"
    );
    for p in &points {
        println!(
            "{:<12} {:>5} {:>10} {:>8.2} {:>9.2} {:>5} {:>5} {:>5} {:>8.2}",
            p.app,
            p.par,
            p.cycles,
            p.flops_per_cycle,
            p.speedup_vs_par1,
            p.pus,
            p.pcus,
            p.pmus,
            p.dram_bw_bytes_per_cycle
        );
    }
    let path = sara_bench::save_json("fig9a", &points);
    println!("\nsaved {}", path.display());
}
